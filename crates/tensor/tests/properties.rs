//! Property-based tests for the linear-algebra substrate.

use mars_tensor::{init, nonlin, ops, Matrix};
use proptest::prelude::*;

fn vec_strategy(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #[test]
    fn dot_is_commutative(a in vec_strategy(8), b in vec_strategy(8)) {
        let ab = ops::dot(&a, &b);
        let ba = ops::dot(&b, &a);
        prop_assert!((ab - ba).abs() <= 1e-4 * (1.0 + ab.abs()));
    }

    #[test]
    fn cauchy_schwarz(a in vec_strategy(6), b in vec_strategy(6)) {
        let lhs = ops::dot(&a, &b).abs();
        let rhs = ops::norm(&a) * ops::norm(&b);
        prop_assert!(lhs <= rhs * (1.0 + 1e-4) + 1e-4);
    }

    #[test]
    fn cosine_in_range(a in vec_strategy(5), b in vec_strategy(5)) {
        let c = ops::cosine(&a, &b);
        prop_assert!((-1.0..=1.0).contains(&c));
    }

    #[test]
    fn cosine_scale_invariant(a in vec_strategy(5), b in vec_strategy(5), s in 0.1f32..10.0) {
        let c1 = ops::cosine(&a, &b);
        let scaled: Vec<f32> = a.iter().map(|x| x * s).collect();
        let c2 = ops::cosine(&scaled, &b);
        prop_assert!((c1 - c2).abs() < 1e-3);
    }

    #[test]
    fn normalize_lands_on_sphere(mut a in vec_strategy(7)) {
        ops::normalize(&mut a);
        prop_assert!((ops::norm(&a) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn clip_ball_never_grows(mut a in vec_strategy(7)) {
        let before = ops::norm(&a);
        ops::clip_to_unit_ball(&mut a);
        let after = ops::norm(&a);
        prop_assert!(after <= 1.0 + 1e-5);
        prop_assert!(after <= before + 1e-5);
    }

    #[test]
    fn triangle_inequality(a in vec_strategy(6), b in vec_strategy(6), c in vec_strategy(6)) {
        let ab = ops::dist(&a, &b);
        let bc = ops::dist(&b, &c);
        let ac = ops::dist(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-3);
    }

    #[test]
    fn softmax_is_distribution(logits in vec_strategy(6)) {
        let p = nonlin::softmax_vec(&logits);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn softmax_preserves_order(logits in vec_strategy(5)) {
        let p = nonlin::softmax_vec(&logits);
        for i in 0..5 {
            for j in 0..5 {
                if logits[i] > logits[j] {
                    prop_assert!(p[i] >= p[j] - 1e-6);
                }
            }
        }
    }

    #[test]
    fn sigmoid_monotone(x in -20.0f32..20.0, dx in 0.01f32..5.0) {
        prop_assert!(nonlin::sigmoid(x + dx) >= nonlin::sigmoid(x));
    }

    #[test]
    fn matvec_linearity(
        data in proptest::collection::vec(-3.0f32..3.0, 12),
        x in vec_strategy(4),
        y in vec_strategy(4),
    ) {
        let m = Matrix::from_vec(3, 4, data);
        let mut mx = vec![0.0; 3];
        let mut my = vec![0.0; 3];
        let mut mxy = vec![0.0; 3];
        let xy: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        m.matvec(&x, &mut mx);
        m.matvec(&y, &mut my);
        m.matvec(&xy, &mut mxy);
        for i in 0..3 {
            prop_assert!((mxy[i] - (mx[i] + my[i])).abs() < 1e-3);
        }
    }

    #[test]
    fn spectral_bounds_facet_norm(
        data in proptest::collection::vec(-1.0f32..1.0, 16),
        x in vec_strategy(4),
    ) {
        // After spectral clipping to 1, ‖Aᵀx‖ ≤ ‖x‖ — the MAR guarantee.
        let mut m = Matrix::from_vec(4, 4, data);
        m.clip_spectral_norm(1.0, 50);
        let mut out = vec![0.0; 4];
        m.matvec_t(&x, &mut out);
        prop_assert!(ops::norm(&out) <= ops::norm(&x) * 1.02 + 1e-4);
    }

    #[test]
    fn unit_sphere_init_is_unit(seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut v = vec![0.0; 12];
        init::unit_sphere(&mut rng, &mut v);
        prop_assert!((ops::norm(&v) - 1.0).abs() < 1e-4);
    }
}
