//! Cross-tier agreement and dispatch tests for the vectorized kernel layer
//! (`mars_tensor::simd`).
//!
//! The portable and AVX2 tiers share summation *structure* but differ in
//! FMA contraction, so cross-tier comparisons use a relative tolerance;
//! the dispatched entry points must match the active tier **bitwise**
//! (they are the same code).

// Indexed `for r in 0..rows` loops are deliberate here: the assertions
// compare slot `r` of a row-kernel output against an independently computed
// per-row value, and the subscript form keeps the two sides visibly aligned.
#![allow(clippy::needless_range_loop)]

use mars_tensor::simd::{self, portable, scalar, Path};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Relative-tolerance check: `|a − b| ≤ tol · max(|a|, |b|, 1)`.
fn rel_close(a: f32, b: f32, tol: f32) -> bool {
    (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
}

/// Deterministic pseudo-random vector for a given dim/salt.
fn vec_for(dim: usize, salt: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(salt.wrapping_mul(0x9E3779B97F4A7C15) + dim as u64);
    (0..dim).map(|_| rng.gen_range(-2.0f32..2.0)).collect()
}

/// Runs `check(dim)` over every dim 1..=67 — odd sizes, powers of two, and
/// every tail length against the 8-lane body.
fn for_all_dims(check: impl Fn(usize)) {
    for dim in 1..=67 {
        check(dim);
    }
}

#[test]
fn simd_and_portable_reductions_agree_across_dims() {
    for_all_dims(|dim| {
        let a = vec_for(dim, 1);
        let b = vec_for(dim, 2);
        // Dispatched vs portable: within tolerance (equal when the
        // portable tier is active; FMA-contraction distance otherwise).
        assert!(
            rel_close(simd::dot(&a, &b), portable::dot(&a, &b), 1e-5),
            "dot diverged at dim {dim}"
        );
        assert!(
            rel_close(simd::dist_sq(&a, &b), portable::dist_sq(&a, &b), 1e-5),
            "dist_sq diverged at dim {dim}"
        );
        // And both stay near the sequential scalar oracle.
        assert!(
            rel_close(simd::dot(&a, &b), scalar::dot(&a, &b), 1e-4),
            "dot far from scalar at dim {dim}"
        );
        assert!(
            rel_close(simd::dist_sq(&a, &b), scalar::dist_sq(&a, &b), 1e-4),
            "dist_sq far from scalar at dim {dim}"
        );
    });
}

#[cfg(target_arch = "x86_64")]
#[test]
fn avx2_and_portable_kernels_agree_across_dims() {
    use mars_tensor::simd::avx2;
    if !avx2::available() {
        eprintln!("AVX2+FMA not available; cross-tier test skipped");
        return;
    }
    for_all_dims(|dim| {
        let a = vec_for(dim, 3);
        let b = vec_for(dim, 4);
        // SAFETY: AVX2+FMA availability is checked above, and every
        // slice meets the kernel's `# Safety` length preconditions.
        let (d_a, d_p) = (unsafe { avx2::dot(&a, &b) }, portable::dot(&a, &b));
        assert!(
            rel_close(d_a, d_p, 1e-5),
            "dot: avx2 {d_a} vs portable {d_p} at dim {dim}"
        );
        let (s_a, s_p) = (unsafe { avx2::dist_sq(&a, &b) }, portable::dist_sq(&a, &b));
        assert!(rel_close(s_a, s_p, 1e-5), "dist_sq diverged at dim {dim}");

        let mut y_a = vec_for(dim, 5);
        let mut y_p = y_a.clone();
        // SAFETY: AVX2+FMA availability is checked above, and every
        // slice meets the kernel's `# Safety` length preconditions.
        unsafe { avx2::axpy(0.37, &a, &mut y_a) };
        portable::axpy(0.37, &a, &mut y_p);
        for i in 0..dim {
            assert!(
                rel_close(y_a[i], y_p[i], 1e-5),
                "axpy diverged at dim {dim} lane {i}"
            );
        }

        // Row kernels: 3 rows of `dim`, plus the fused gradient kernel.
        let ra = vec_for(dim * 3, 6);
        let rb = vec_for(dim * 3, 7);
        let mut out_a = vec![0.0f32; 3];
        let mut out_p = vec![0.0f32; 3];
        // SAFETY: AVX2+FMA availability is checked above, and every
        // slice meets the kernel's `# Safety` length preconditions.
        unsafe { avx2::dot_rows(&ra, &rb, dim, &mut out_a) };
        portable::dot_rows(&ra, &rb, dim, &mut out_p);
        for r in 0..3 {
            assert!(
                rel_close(out_a[r], out_p[r], 1e-5),
                "dot_rows row {r} dim {dim}"
            );
        }
        unsafe { avx2::dist_sq_one_rows(&a, &rb, &mut out_a) };
        portable::dist_sq_one_rows(&a, &rb, &mut out_p);
        for r in 0..3 {
            assert!(
                rel_close(out_a[r], out_p[r], 1e-5),
                "dist_sq_one_rows row {r} dim {dim}"
            );
        }

        let u = vec_for(dim, 8);
        let p = vec_for(dim, 9);
        let q = vec_for(dim, 10);
        let mut grads_a = vec![vec![0.0f32; dim]; 3];
        let mut grads_p = vec![vec![0.0f32; dim]; 3];
        {
            let [du, dp, dq] = grads_a.get_disjoint_mut([0, 1, 2]).unwrap();
            // SAFETY: AVX2+FMA availability is checked above, and every
            // slice meets the kernel's `# Safety` length preconditions.
            unsafe { avx2::euclid_grad_row(1.3, -0.7, &u, &p, &q, du, dp, dq) };
        }
        {
            let [du, dp, dq] = grads_p.get_disjoint_mut([0, 1, 2]).unwrap();
            portable::euclid_grad_row(1.3, -0.7, &u, &p, &q, du, dp, dq);
        }
        for k in 0..3 {
            for i in 0..dim {
                assert!(
                    rel_close(grads_a[k][i], grads_p[k][i], 1e-5),
                    "euclid_grad_row out {k} lane {i} dim {dim}"
                );
            }
        }
    });
}

/// The dispatch test: asserts which tier is active and that — on AVX2
/// hardware — **both** tiers were actually exercised and routed correctly
/// (the dispatched result is bitwise the active tier's result).
#[test]
fn dispatch_routes_to_the_detected_tier_and_both_paths_run() {
    let a = vec_for(33, 11);
    let b = vec_for(33, 12);
    let dispatched = simd::dot(&a, &b);
    let from_portable = portable::dot(&a, &b); // the portable tier always runs here
    match simd::active_path() {
        Path::Avx2Fma => {
            #[cfg(target_arch = "x86_64")]
            {
                use mars_tensor::simd::avx2;
                assert!(avx2::available(), "AVX2 tier active but not detected");
                // SAFETY: AVX2+FMA availability is checked above, and every
                // slice meets the kernel's `# Safety` length preconditions.
                let from_avx2 = unsafe { avx2::dot(&a, &b) }; // ...and so does the AVX2 tier
                assert_eq!(
                    dispatched.to_bits(),
                    from_avx2.to_bits(),
                    "dispatch did not route to the AVX2 tier"
                );
                assert!(rel_close(from_avx2, from_portable, 1e-5));
            }
            #[cfg(not(target_arch = "x86_64"))]
            panic!("AVX2 tier selected on a non-x86-64 target");
        }
        Path::Portable => {
            #[cfg(target_arch = "x86_64")]
            assert!(
                !mars_tensor::simd::avx2::available(),
                "portable tier active although AVX2 is available"
            );
            assert_eq!(
                dispatched.to_bits(),
                from_portable.to_bits(),
                "dispatch did not route to the portable tier"
            );
        }
    }
}

/// Deterministic pseudo-random int8 vector covering the full range,
/// including the `-128` edge.
fn i8_vec_for(len: usize, salt: u64) -> Vec<i8> {
    let mut rng = StdRng::seed_from_u64(salt.wrapping_mul(0x9E3779B97F4A7C15) + len as u64);
    (0..len).map(|_| rng.gen::<i8>()).collect()
}

/// The int8 kernels accumulate in exact integer arithmetic, so every tier
/// must agree to the bit — equality, not tolerance — at every dim 1..=67
/// (all tail lengths against the 16-byte AVX2 body).
#[test]
fn int8_kernels_agree_exactly_across_tiers_and_dims() {
    for_all_dims(|dim| {
        let rows = 3;
        let x = i8_vec_for(dim, 21);
        let b = i8_vec_for(dim * rows, 22);
        let mut expect = vec![0i32; rows];
        let mut got = vec![0i32; rows];

        scalar::dot_rows_i8(&x, &b, &mut expect);
        simd::dot_rows_i8(&x, &b, &mut got);
        assert_eq!(expect, got, "dispatched dot_rows_i8 at dim {dim}");
        portable::dot_rows_i8(&x, &b, &mut got);
        assert_eq!(expect, got, "portable dot_rows_i8 at dim {dim}");

        scalar::dist_sq_rows_i8(&x, &b, &mut expect);
        simd::dist_sq_rows_i8(&x, &b, &mut got);
        assert_eq!(expect, got, "dispatched dist_sq_rows_i8 at dim {dim}");
        portable::dist_sq_rows_i8(&x, &b, &mut got);
        assert_eq!(expect, got, "portable dist_sq_rows_i8 at dim {dim}");

        #[cfg(target_arch = "x86_64")]
        {
            use mars_tensor::simd::avx2;
            if avx2::available() {
                scalar::dot_rows_i8(&x, &b, &mut expect);
                // SAFETY: AVX2+FMA availability is checked above, and every
                // slice meets the kernel's `# Safety` length preconditions.
                unsafe { avx2::dot_rows_i8(&x, &b, &mut got) };
                assert_eq!(expect, got, "avx2 dot_rows_i8 at dim {dim}");
                scalar::dist_sq_rows_i8(&x, &b, &mut expect);
                unsafe { avx2::dist_sq_rows_i8(&x, &b, &mut got) };
                assert_eq!(expect, got, "avx2 dist_sq_rows_i8 at dim {dim}");
            }
        }
    });
}

/// The splitmix64 fill kernel is pure integer arithmetic, so — like the
/// int8 kernels — every tier must agree to the bit at every block size
/// 1..=67 (all tail lengths against the 8-wide AVX2 body), for bases that
/// exercise counter wraparound.
#[test]
fn splitmix64_tiers_agree_exactly_across_block_sizes() {
    use mars_tensor::simd::fill_splitmix64;
    for_all_dims(|len| {
        for base in [0u64, 1, 0x1234_5678_9abc_def0, u64::MAX - 3] {
            let mut expect = vec![0u64; len];
            let mut got = vec![0u64; len];
            scalar::fill_splitmix64(base, &mut expect);
            fill_splitmix64(base, &mut got);
            assert_eq!(expect, got, "dispatched fill at len {len}, base {base:#x}");
            portable::fill_splitmix64(base, &mut got);
            assert_eq!(expect, got, "portable fill at len {len}, base {base:#x}");
            #[cfg(target_arch = "x86_64")]
            {
                use mars_tensor::simd::avx2;
                if avx2::available() {
                    // SAFETY: AVX2+FMA availability is checked above, and every
                    // slice meets the kernel's `# Safety` length preconditions.
                    unsafe { avx2::fill_splitmix64(base, &mut got) };
                    assert_eq!(expect, got, "avx2 fill at len {len}, base {base:#x}");
                }
            }
        }
    });
}

/// The canonical splitmix64 golden vector: `base = 0` makes the fill the
/// plain splitmix64 stream seeded with 0, whose first outputs are an
/// external cross-check on every tier (same pin as the `CounterRng`
/// golden-value test — the kernel and the RNG must never drift apart).
#[test]
fn splitmix64_kernel_reproduces_the_canonical_vector() {
    let mut out = [0u64; 4];
    mars_tensor::simd::fill_splitmix64(0, &mut out);
    assert_eq!(
        out,
        [
            0xe220_a839_7b1d_cdaf,
            0x6e78_9e6a_a1b9_65f4,
            0x06c4_5d18_8009_454f,
            0xf88b_b8a8_724c_81ec,
        ]
    );
}

/// The kernel's defining contract: bit-identical to the `CounterRng`
/// sequential stream, at any block size, from any key — which is what
/// makes installing it into the runtime hook a pure throughput change.
#[test]
fn splitmix64_kernel_matches_counter_rng_sequence() {
    use mars_runtime::rng::CounterRng;
    for (seed, stream) in [(0u64, 0u64), (42, 9), (2021, 1), (u64::MAX, 7)] {
        for len in [1usize, 7, 8, 9, 64, 67] {
            let mut seq = CounterRng::keyed(seed, stream);
            let want: Vec<u64> = (0..len).map(|_| seq.next_u64()).collect();
            // The keyed state is private, so drive the kernel through the
            // public hook: install it, then fill a block from the same key.
            let mut rng = CounterRng::keyed(seed, stream);
            let mut got = vec![0u64; len];
            mars_runtime::rng::install_fill_block_kernel(mars_tensor::simd::fill_splitmix64);
            rng.fill_block(&mut got);
            assert_eq!(want, got, "kernel diverged at ({seed},{stream},{len})");
        }
    }
}

/// Dispatch-routing: the dispatched entry point must be the active tier's
/// function — bitwise, since the kernel is exact — and `install_rng_kernel`
/// must actually route `CounterRng::fill_block` through it.
#[test]
fn splitmix64_dispatch_routes_to_active_tier_and_installs() {
    use mars_runtime::rng::CounterRng;
    let base = 0xdead_beef_cafe_f00d_u64;
    let mut dispatched = vec![0u64; 67];
    mars_tensor::simd::fill_splitmix64(base, &mut dispatched);
    let mut tier = vec![0u64; 67];
    match simd::active_path() {
        Path::Portable => portable::fill_splitmix64(base, &mut tier),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: AVX2+FMA availability is checked above, and every
        // slice meets the kernel's `# Safety` length preconditions.
        Path::Avx2Fma => unsafe { mars_tensor::simd::avx2::fill_splitmix64(base, &mut tier) },
        #[cfg(not(target_arch = "x86_64"))]
        Path::Avx2Fma => unreachable!("AVX2 tier off x86-64"),
    }
    assert_eq!(dispatched, tier, "dispatch did not hit the active tier");

    // Install, then prove the RNG's block path produces the kernel's
    // values (which the tests above proved equal the sequential stream).
    mars_tensor::simd::install_rng_kernel();
    let mut direct = vec![0u64; 67];
    CounterRng::keyed(3, 14).fill_block(&mut direct);
    let mut seq = CounterRng::keyed(3, 14);
    let want: Vec<u64> = (0..67).map(|_| seq.next_u64()).collect();
    assert_eq!(want, direct, "installed kernel changed the stream");
}

/// Saturation edge: `madd_epi16` can overflow `i16` pairs only if a pair
/// sum exceeds `i32` — impossible for int8 inputs, but the `-128 · -128`
/// corner is where a sloppy widening scheme would break. Pin it.
#[test]
fn int8_kernels_survive_extreme_values() {
    for dim in [1usize, 15, 16, 17, 32, 67] {
        let x = vec![-128i8; dim];
        let rows: Vec<i8> = (0..dim * 2)
            .map(|i| if i % 2 == 0 { -128 } else { 127 })
            .collect();
        let mut expect = vec![0i32; 2];
        let mut got = vec![0i32; 2];
        scalar::dot_rows_i8(&x, &rows, &mut expect);
        simd::dot_rows_i8(&x, &rows, &mut got);
        assert_eq!(expect, got, "extreme dot at dim {dim}");
        scalar::dist_sq_rows_i8(&x, &rows, &mut expect);
        simd::dist_sq_rows_i8(&x, &rows, &mut got);
        assert_eq!(expect, got, "extreme dist at dim {dim}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property form of the agreement check: random contents at every odd
    /// dim 1..=67, dispatched vs portable vs scalar oracle.
    #[test]
    fn reduction_tiers_agree_on_random_vectors(
        half_dim in 0usize..34,
        seed in 0u64..1_000,
    ) {
        let dim = (2 * half_dim + 1).min(67); // odd dims 1..=67
        let a = vec_for(dim, seed * 2 + 101);
        let b = vec_for(dim, seed * 2 + 102);
        prop_assert!(rel_close(simd::dot(&a, &b), portable::dot(&a, &b), 1e-5));
        prop_assert!(rel_close(simd::dot(&a, &b), scalar::dot(&a, &b), 1e-4));
        prop_assert!(rel_close(simd::dist_sq(&a, &b), portable::dist_sq(&a, &b), 1e-5));
        prop_assert!(rel_close(simd::dist_sq(&a, &b), scalar::dist_sq(&a, &b), 1e-4));
    }

    /// Row kernels must agree with their per-row scalar form bitwise —
    /// this is the `score` / `score_block` agreement contract.
    #[test]
    fn row_kernels_match_per_row_dispatch_bitwise(
        dim in 1usize..68,
        rows in 1usize..7,
        seed in 0u64..500,
    ) {
        let a = vec_for(dim * rows, seed + 7_000);
        let b = vec_for(dim * rows, seed + 8_000);
        let mut out = vec![0.0f32; rows];
        simd::dot_rows(&a, &b, dim, &mut out);
        for r in 0..rows {
            let lo = r * dim;
            let per_row = simd::dot(&a[lo..lo + dim], &b[lo..lo + dim]);
            prop_assert_eq!(out[r].to_bits(), per_row.to_bits());
        }
        simd::dist_sq_one_rows(&a[..dim], &b, &mut out);
        for r in 0..rows {
            let lo = r * dim;
            let per_row = simd::dist_sq(&a[..dim], &b[lo..lo + dim]);
            prop_assert_eq!(out[r].to_bits(), per_row.to_bits());
        }
    }

    /// Property form of the int8 exactness contract: random contents and
    /// row counts, dispatched tier vs the scalar oracle, `==` not `≈`.
    #[test]
    fn int8_kernels_match_scalar_exactly_on_random_input(
        dim in 1usize..68,
        rows in 1usize..7,
        seed in 0u64..500,
    ) {
        let x = i8_vec_for(dim, seed + 9_000);
        let b = i8_vec_for(dim * rows, seed + 10_000);
        let mut expect = vec![0i32; rows];
        let mut got = vec![0i32; rows];
        scalar::dot_rows_i8(&x, &b, &mut expect);
        simd::dot_rows_i8(&x, &b, &mut got);
        prop_assert_eq!(&expect, &got);
        scalar::dist_sq_rows_i8(&x, &b, &mut expect);
        simd::dist_sq_rows_i8(&x, &b, &mut got);
        prop_assert_eq!(&expect, &got);
    }
}
