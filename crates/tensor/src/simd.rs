//! Explicitly vectorized kernel layer: the single definition of every hot
//! inner loop in the workspace.
//!
//! Each kernel exists in (up to) three tiers:
//!
//! * [`scalar`] — the PR 2 reference loops (strictly sequential f32
//!   summation). Kept only as the A/B baseline for the agreement tests and
//!   the kernel microbench; nothing in the engine calls them anymore.
//! * [`portable`] — lane-chunked loops over an 8×`f32` accumulator block
//!   ([`LANES`]), written so LLVM vectorizes them on any target without
//!   reassociating float sums.
//! * [`avx2`] (x86-64 only) — hand-written `std::arch` intrinsics using
//!   256-bit loads and FMA, one 8-lane accumulator per reduction.
//!
//! The public functions in this module dispatch at runtime: AVX2 + FMA when
//! `is_x86_feature_detected!` reports both (cached after the first call),
//! the portable tier otherwise. `mars_tensor::ops` and `mars_tensor::rows`
//! forward their hot kernels here, so every layer of the engine — scoring,
//! gradient accumulation, batched evaluation — runs the same code.
//!
//! ## Summation-order / determinism contract
//!
//! Reductions ([`dot`], [`dist_sq`]) accumulate in **8-lane chunked order**:
//! lane `l` of the accumulator sums elements `l, l+8, l+16, …` of the main
//! body, the lanes are folded in a fixed tree (`((l0+l4)+(l1+l5)) +
//! ((l2+l6)+(l3+l7))` — exactly the AVX2 horizontal reduction), and a
//! strictly sequential tail of fewer than 8 elements is added last. This
//! order is *different* from the PR 2 scalar kernels (sequential
//! accumulation), which is allowed: the workspace determinism contract is
//! "bit-identical for a fixed seed at any worker count", **not** "identical
//! to the old scalar summation order". What the contract does require — and
//! what this module guarantees — is:
//!
//! * **One definition per kernel.** Every entry point that must agree
//!   bitwise (`Scorer::score` / `score_many` / `score_block`, the batched
//!   vs. sequential evaluator, the per-triplet vs. batched trainer) bottoms
//!   out in the same function here, so reorganizing a caller cannot change
//!   float semantics.
//! * **Stable dispatch.** The AVX2/portable decision is a pure function of
//!   the host CPU, resolved once per process and never per call, so a run
//!   never mixes tiers. The two tiers may differ in the last bits (FMA
//!   contracts the multiply-add), which is why cross-tier tests use a
//!   relative tolerance while cross-entry-point tests demand bit equality.

use std::sync::atomic::{AtomicU8, Ordering};

/// Accumulator width of the chunked kernels: one 256-bit `f32` vector.
pub const LANES: usize = 8;

/// The kernel tier the runtime dispatcher selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Path {
    /// Hand-vectorized `std::arch` intrinsics (AVX2 + FMA detected).
    Avx2Fma,
    /// Lane-chunked portable Rust (any target; LLVM auto-vectorizes).
    Portable,
}

const PATH_UNRESOLVED: u8 = 0;
const PATH_AVX2: u8 = 1;
const PATH_PORTABLE: u8 = 2;

static PATH: AtomicU8 = AtomicU8::new(PATH_UNRESOLVED);

/// The tier every dispatched kernel in this module runs on, resolved once
/// per process from the host CPU (so a run never mixes tiers).
#[inline]
pub fn active_path() -> Path {
    // ORDERING: relaxed suffices — the cached tier is a pure function of
    // the host CPU, so every racing resolver stores the same value; no
    // other memory is published through this flag.
    match PATH.load(Ordering::Relaxed) {
        PATH_AVX2 => Path::Avx2Fma,
        PATH_PORTABLE => Path::Portable,
        _ => resolve_path(),
    }
}

#[cold]
fn resolve_path() -> Path {
    #[cfg(target_arch = "x86_64")]
    let path = if avx2::available() {
        Path::Avx2Fma
    } else {
        Path::Portable
    };
    #[cfg(not(target_arch = "x86_64"))]
    let path = Path::Portable;
    let code = match path {
        Path::Avx2Fma => PATH_AVX2,
        Path::Portable => PATH_PORTABLE,
    };
    // ORDERING: relaxed suffices — see `active_path`: idempotent cache of
    // a host-CPU property, carrying no other data.
    PATH.store(code, Ordering::Relaxed);
    path
}

/// Dispatches one kernel call to the active tier.
// SAFETY: the AVX2 arm is `unsafe` only for the `target_feature` contract,
// which `active_path()` has verified on this host before ever returning
// `Path::Avx2Fma`; the safe wrappers checked the length preconditions.
macro_rules! dispatch {
    ($name:ident($($arg:expr),*)) => {
        match active_path() {
            #[cfg(target_arch = "x86_64")]
            Path::Avx2Fma => unsafe { avx2::$name($($arg),*) },
            #[cfg(not(target_arch = "x86_64"))]
            Path::Avx2Fma => unreachable!("AVX2 tier selected off x86-64"),
            Path::Portable => portable::$name($($arg),*),
        }
    };
}

/// Hard (release-mode) length-agreement check. The dispatch wrappers are
/// the safety boundary in front of the raw-pointer AVX2 tier, which sizes
/// its loops by one slice — a mismatch must panic, never read past an
/// allocation (the pre-SIMD iterator kernels merely truncated via `zip`).
#[inline]
fn check_same_len(a: &[f32], b: &[f32]) {
    assert_eq!(
        a.len(),
        b.len(),
        "kernel dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
}

/// Dot product `a · b` (chunked summation order, see the module docs).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    check_same_len(a, b);
    dispatch!(dot(a, b))
}

/// Squared Euclidean distance `‖a − b‖²`.
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    check_same_len(a, b);
    dispatch!(dist_sq(a, b))
}

/// `y ← y + alpha · x`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    check_same_len(x, y);
    dispatch!(axpy(alpha, x, y))
}

/// Per-row dot products over flat `k × dim` buffers:
/// `out[r] = a_r · b_r`. Row `r` is computed by the same per-row kernel as
/// [`dot`], so the two agree bitwise.
#[inline]
pub fn dot_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
    row_kernel_checks(a, b, dim, out);
    dispatch!(dot_rows(a, b, dim, out))
}

/// Per-row squared distances: `out[r] = ‖a_r − b_r‖²` (bitwise equal to
/// [`dist_sq`] per row).
#[inline]
pub fn dist_sq_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
    row_kernel_checks(a, b, dim, out);
    dispatch!(dist_sq_rows(a, b, dim, out))
}

/// One-vs-rows dot products: `out[r] = x · b_r` (bitwise equal to [`dot`]
/// per row).
#[inline]
pub fn dot_one_rows(x: &[f32], b: &[f32], out: &mut [f32]) {
    one_rows_checks(x, b, out);
    dispatch!(dot_one_rows(x, b, out))
}

/// One-vs-rows squared distances: `out[r] = ‖x − b_r‖²` (bitwise equal to
/// [`dist_sq`] per row).
#[inline]
pub fn dist_sq_one_rows(x: &[f32], b: &[f32], out: &mut [f32]) {
    one_rows_checks(x, b, out);
    dispatch!(dist_sq_one_rows(x, b, out))
}

/// Fused multi-row axpy with one coefficient per row:
/// `y_r ← y_r + alpha[r] · x_r`. Rows with `alpha[r] == 0` are skipped
/// entirely (their `x` values are never read — they may be NaN).
#[inline]
pub fn axpy_rows(alpha: &[f32], x: &[f32], y: &mut [f32], dim: usize) {
    assert!(dim > 0, "row kernels need dim ≥ 1");
    check_same_len(x, y);
    assert_eq!(alpha.len() * dim, x.len(), "axpy_rows: alpha mismatch");
    dispatch!(axpy_rows(alpha, x, y, dim))
}

/// The fused three-output Euclidean triplet gradient over one facet row:
/// with `diff_p = u − p` and `diff_q = u − q` elementwise,
///
/// ```text
/// dp[i] =  wp2 · diff_p[i]
/// dq[i] =  wq2 · diff_q[i]
/// du[i] = −wp2 · diff_p[i] − wq2 · diff_q[i]
/// ```
///
/// One pass over the five buffers (this was the fused loop in
/// `mars-core::kernels`; it lives here so the batched trainer's hottest
/// Euclidean section rides the vectorized tier). **Overwrites** the three
/// outputs.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn euclid_grad_row(
    wp2: f32,
    wq2: f32,
    u: &[f32],
    p: &[f32],
    q: &[f32],
    du: &mut [f32],
    dp: &mut [f32],
    dq: &mut [f32],
) {
    check_same_len(u, p);
    check_same_len(u, q);
    check_same_len(u, du);
    check_same_len(u, dp);
    check_same_len(u, dq);
    dispatch!(euclid_grad_row(wp2, wq2, u, p, q, du, dp, dq))
}

// Like `check_same_len`, the row-kernel shape checks are hard asserts: they
// stand between safe callers and the raw-pointer tier.
#[inline]
fn row_kernel_checks(a: &[f32], b: &[f32], dim: usize, out: &[f32]) {
    assert!(dim > 0, "row kernels need dim ≥ 1");
    check_same_len(a, b);
    assert_eq!(a.len() % dim, 0, "row kernel: ragged buffer");
    assert_eq!(out.len() * dim, a.len(), "row kernel: out length");
}

#[inline]
fn one_rows_checks(x: &[f32], b: &[f32], out: &[f32]) {
    assert!(!x.is_empty(), "one-vs-rows kernels need dim ≥ 1");
    assert_eq!(b.len() % x.len(), 0, "one-vs-rows kernel: ragged buffer");
    assert_eq!(out.len() * x.len(), b.len(), "one-vs-rows kernel: out");
}

/// One-vs-rows **int8** dot products — the quantized IVF cell scan's shape:
/// `out[r] = Σ_i x[i] · rows[r·dim + i]` with `dim = x.len()`, accumulated
/// in exact `i32` arithmetic.
///
/// Unlike the float reductions, integer addition is associative, so every
/// tier produces the **exact same** `i32` — the cross-tier tests demand
/// equality, not a tolerance. No overflow below `dim ≈ 2¹⁷` (each product
/// is ≤ 2¹⁴), far above any embedding dimension here.
#[inline]
pub fn dot_rows_i8(x: &[i8], rows: &[i8], out: &mut [i32]) {
    i8_rows_checks(x, rows, out);
    dispatch!(dot_rows_i8(x, rows, out))
}

/// One-vs-rows **int8** squared Euclidean distances:
/// `out[r] = Σ_i (x[i] − rows[r·dim + i])²` in exact `i32` arithmetic
/// (differences fit `i16`, squares fit `i32`; see [`dot_rows_i8`] for the
/// exactness contract shared by all tiers).
#[inline]
pub fn dist_sq_rows_i8(x: &[i8], rows: &[i8], out: &mut [i32]) {
    i8_rows_checks(x, rows, out);
    dispatch!(dist_sq_rows_i8(x, rows, out))
}

#[inline]
fn i8_rows_checks(x: &[i8], rows: &[i8], out: &[i32]) {
    assert!(!x.is_empty(), "int8 row kernels need dim ≥ 1");
    assert_eq!(rows.len() % x.len(), 0, "int8 row kernel: ragged buffer");
    assert_eq!(out.len() * x.len(), rows.len(), "int8 row kernel: out");
}

/// Vectorized splitmix64 block fill — the counter RNG's draw kernel:
/// `out[i] = mix64(base + (i + 1) · GOLDEN)`, the defining equation of
/// `mars_runtime::rng::CounterRng::fill_block`. All integer arithmetic, so
/// unlike the float reductions every tier is **bit-identical** — the
/// cross-tier tests demand equality, and the output is pinned to the
/// canonical splitmix64 golden vector (`base = 0` reproduces splitmix64
/// seeded with 0, first value `0xe220a8397b1dcdaf`).
///
/// The sampling pipeline consumes this through the runtime's fill hook:
/// call [`install_rng_kernel`] once and every
/// `CounterRng::fill_block` in the process runs here.
#[inline]
pub fn fill_splitmix64(base: u64, out: &mut [u64]) {
    dispatch!(fill_splitmix64(base, out))
}

/// Routes `mars_runtime::rng::CounterRng::fill_block` through
/// [`fill_splitmix64`] (idempotent; call it at any engine entry point).
/// Values are bit-identical to the scalar fallback by the cross-tier
/// contract above, so when this runs is a throughput decision only.
pub fn install_rng_kernel() {
    mars_runtime::rng::install_fill_block_kernel(fill_splitmix64);
}

/// The PR 2 reference kernels: strictly sequential scalar loops. Baseline
/// for the kernel microbench (`BENCH_kernels.json`) and oracle for the
/// cross-tier agreement tests — the engine itself no longer calls these.
pub mod scalar {
    /// Sequential dot product.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// Sequential squared Euclidean distance.
    #[inline]
    pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    /// Sequential `y ← y + alpha · x`.
    #[inline]
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Per-row [`dot`] over a flat `k × dim` pair of buffers.
    pub fn dot_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(&a[r * dim..(r + 1) * dim], &b[r * dim..(r + 1) * dim]);
        }
    }

    /// Per-row [`dist_sq`] over a flat `k × dim` pair of buffers.
    pub fn dist_sq_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
        for (r, o) in out.iter_mut().enumerate() {
            *o = dist_sq(&a[r * dim..(r + 1) * dim], &b[r * dim..(r + 1) * dim]);
        }
    }

    /// Per-row axpy with one coefficient per row (zero rows skipped).
    pub fn axpy_rows(alpha: &[f32], x: &[f32], y: &mut [f32], dim: usize) {
        for (r, &a) in alpha.iter().enumerate() {
            if a != 0.0 {
                axpy(
                    a,
                    &x[r * dim..(r + 1) * dim],
                    &mut y[r * dim..(r + 1) * dim],
                );
            }
        }
    }

    /// One-vs-rows int8 dot products — the exact-`i32` oracle the other
    /// tiers must match bit-for-bit.
    pub fn dot_rows_i8(x: &[i8], rows: &[i8], out: &mut [i32]) {
        let dim = x.len();
        for (r, o) in out.iter_mut().enumerate() {
            let row = &rows[r * dim..(r + 1) * dim];
            *o = x.iter().zip(row).map(|(&a, &b)| a as i32 * b as i32).sum();
        }
    }

    /// One-vs-rows int8 squared Euclidean distances (exact `i32`).
    pub fn dist_sq_rows_i8(x: &[i8], rows: &[i8], out: &mut [i32]) {
        let dim = x.len();
        for (r, o) in out.iter_mut().enumerate() {
            let row = &rows[r * dim..(r + 1) * dim];
            *o = x
                .iter()
                .zip(row)
                .map(|(&a, &b)| {
                    let d = a as i32 - b as i32;
                    d * d
                })
                .sum();
        }
    }

    /// Sequential splitmix64 block fill — the reference loop (and the
    /// scalar fallback inside `CounterRng::fill_block` itself).
    pub fn fill_splitmix64(base: u64, out: &mut [u64]) {
        use mars_runtime::rng::{mix64, GOLDEN};
        for (i, o) in out.iter_mut().enumerate() {
            *o = mix64(base.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN)));
        }
    }
}

/// Lane-chunked portable tier: plain Rust over an 8×`f32` accumulator
/// block, mirroring the AVX2 tier's summation order exactly (same chunking,
/// same horizontal-reduction tree, same sequential tail) so the two tiers
/// differ only by FMA contraction.
pub mod portable {
    use super::LANES;

    /// Folds the 8-lane accumulator in the AVX2 horizontal-reduction order:
    /// halves first (`l + l+4`), then pairwise.
    #[inline]
    fn hsum(acc: &[f32; LANES]) -> f32 {
        let h = [
            acc[0] + acc[4],
            acc[1] + acc[5],
            acc[2] + acc[6],
            acc[3] + acc[7],
        ];
        (h[0] + h[1]) + (h[2] + h[3])
    }

    /// Chunked dot product. The body iterates `[f32; LANES]` array views
    /// (via `chunks_exact` + `try_into`), so the lane loop carries no
    /// bounds checks and LLVM vectorizes it without reassociating.
    #[inline]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut chunks_a = a.chunks_exact(LANES);
        let mut chunks_b = b.chunks_exact(LANES);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            let ca: &[f32; LANES] = ca.try_into().unwrap();
            let cb: &[f32; LANES] = cb.try_into().unwrap();
            for l in 0..LANES {
                acc[l] += ca[l] * cb[l];
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            tail += x * y;
        }
        hsum(&acc) + tail
    }

    /// Chunked squared Euclidean distance.
    #[inline]
    pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = [0.0f32; LANES];
        let mut chunks_a = a.chunks_exact(LANES);
        let mut chunks_b = b.chunks_exact(LANES);
        for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
            let ca: &[f32; LANES] = ca.try_into().unwrap();
            let cb: &[f32; LANES] = cb.try_into().unwrap();
            for l in 0..LANES {
                let d = ca[l] - cb[l];
                acc[l] += d * d;
            }
        }
        let mut tail = 0.0f32;
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            let d = x - y;
            tail += d * d;
        }
        hsum(&acc) + tail
    }

    /// Elementwise `y ← y + alpha · x` (no reduction, so no ordering
    /// subtleties; LLVM vectorizes the loop as-is).
    #[inline]
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Per-row [`dot`].
    pub fn dot_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(&a[r * dim..(r + 1) * dim], &b[r * dim..(r + 1) * dim]);
        }
    }

    /// Per-row [`dist_sq`].
    pub fn dist_sq_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
        for (r, o) in out.iter_mut().enumerate() {
            *o = dist_sq(&a[r * dim..(r + 1) * dim], &b[r * dim..(r + 1) * dim]);
        }
    }

    /// One-vs-rows [`dot`].
    pub fn dot_one_rows(x: &[f32], b: &[f32], out: &mut [f32]) {
        let dim = x.len();
        for (r, o) in out.iter_mut().enumerate() {
            *o = dot(x, &b[r * dim..(r + 1) * dim]);
        }
    }

    /// One-vs-rows [`dist_sq`].
    pub fn dist_sq_one_rows(x: &[f32], b: &[f32], out: &mut [f32]) {
        let dim = x.len();
        for (r, o) in out.iter_mut().enumerate() {
            *o = dist_sq(x, &b[r * dim..(r + 1) * dim]);
        }
    }

    /// Per-row axpy with one coefficient per row (zero rows skipped).
    pub fn axpy_rows(alpha: &[f32], x: &[f32], y: &mut [f32], dim: usize) {
        for (r, &a) in alpha.iter().enumerate() {
            if a != 0.0 {
                axpy(
                    a,
                    &x[r * dim..(r + 1) * dim],
                    &mut y[r * dim..(r + 1) * dim],
                );
            }
        }
    }

    /// One-vs-rows int8 dot products. Integer addition is associative, so
    /// this plain loop (which LLVM auto-vectorizes) is bit-equal to every
    /// other tier by construction — no chunk-order mirroring needed.
    pub fn dot_rows_i8(x: &[i8], rows: &[i8], out: &mut [i32]) {
        let dim = x.len();
        for (r, o) in out.iter_mut().enumerate() {
            let row = &rows[r * dim..(r + 1) * dim];
            let mut acc = 0i32;
            for i in 0..dim {
                acc += x[i] as i32 * row[i] as i32;
            }
            *o = acc;
        }
    }

    /// One-vs-rows int8 squared distances (exact `i32`, any order).
    pub fn dist_sq_rows_i8(x: &[i8], rows: &[i8], out: &mut [i32]) {
        let dim = x.len();
        for (r, o) in out.iter_mut().enumerate() {
            let row = &rows[r * dim..(r + 1) * dim];
            let mut acc = 0i32;
            for i in 0..dim {
                let d = x[i] as i32 - row[i] as i32;
                acc += d * d;
            }
            *o = acc;
        }
    }

    /// 8-lane chunked splitmix64 block fill. Integer arithmetic is exact
    /// in any order, so this is bit-identical to the scalar tier by
    /// construction; the per-lane counters carry no loop dependency, which
    /// lets LLVM vectorize both the counter update and the two
    /// multiply-xor-shift rounds of the finalizer.
    pub fn fill_splitmix64(base: u64, out: &mut [u64]) {
        use mars_runtime::rng::{mix64, GOLDEN};
        let mut chunks = out.chunks_exact_mut(LANES);
        let mut idx = 0u64;
        for chunk in &mut chunks {
            let chunk: &mut [u64; LANES] = chunk.try_into().unwrap();
            for (l, o) in chunk.iter_mut().enumerate() {
                *o = mix64(base.wrapping_add((idx + l as u64 + 1).wrapping_mul(GOLDEN)));
            }
            idx += LANES as u64;
        }
        for (l, o) in chunks.into_remainder().iter_mut().enumerate() {
            *o = mix64(base.wrapping_add((idx + l as u64 + 1).wrapping_mul(GOLDEN)));
        }
    }

    /// Fused three-output Euclidean triplet gradient (see
    /// [`super::euclid_grad_row`]).
    #[allow(clippy::too_many_arguments)]
    pub fn euclid_grad_row(
        wp2: f32,
        wq2: f32,
        u: &[f32],
        p: &[f32],
        q: &[f32],
        du: &mut [f32],
        dp: &mut [f32],
        dq: &mut [f32],
    ) {
        for i in 0..u.len() {
            let gp = wp2 * (u[i] - p[i]);
            let gq = wq2 * (u[i] - q[i]);
            du[i] = -(gp + gq);
            dp[i] = gp;
            dq[i] = gq;
        }
    }
}

/// Hand-vectorized x86-64 tier: 256-bit loads, FMA, one 8-lane accumulator
/// per reduction. Every function carries
/// `#[target_feature(enable = "avx2,fma")]` and is therefore `unsafe` to
/// call — the dispatcher (and only the dispatcher, plus tests/benches that
/// check [`avx2::available`] first) upholds the contract.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::LANES;
    use core::arch::x86_64::*;

    /// Whether this host supports the AVX2 + FMA tier.
    pub fn available() -> bool {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }

    /// Horizontal sum of one 256-bit accumulator: halves first
    /// (`l + l+4`), then pairwise — the tree [`super::portable`] mirrors.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    fn hsum256(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let halves = _mm_add_ps(lo, hi); // [l0+l4, l1+l5, l2+l6, l3+l7]
        let odd = _mm_movehdup_ps(halves); // [h1, h1, h3, h3]
        let pairs = _mm_add_ps(halves, odd); // [h0+h1, _, h2+h3, _]
        let upper = _mm_movehl_ps(pairs, pairs);
        _mm_cvtss_f32(_mm_add_ss(pairs, upper))
    }

    /// Chunked dot product.
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]). Slices must be equal
    /// length.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let body = n / LANES * LANES;
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i < body {
                acc = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc);
                i += LANES;
            }
            let mut tail = 0.0f32;
            while i < n {
                tail += *pa.add(i) * *pb.add(i);
                i += 1;
            }
            hsum256(acc) + tail
        }
    }

    /// Chunked squared Euclidean distance.
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]). Slices must be equal
    /// length.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            debug_assert_eq!(a.len(), b.len());
            let n = a.len();
            let body = n / LANES * LANES;
            let (pa, pb) = (a.as_ptr(), b.as_ptr());
            let mut acc = _mm256_setzero_ps();
            let mut i = 0;
            while i < body {
                let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
                acc = _mm256_fmadd_ps(d, d, acc);
                i += LANES;
            }
            let mut tail = 0.0f32;
            while i < n {
                let d = *pa.add(i) - *pb.add(i);
                tail += d * d;
                i += 1;
            }
            hsum256(acc) + tail
        }
    }

    /// `y ← y + alpha · x` with FMA.
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]). Slices must be equal
    /// length.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            debug_assert_eq!(x.len(), y.len());
            let n = x.len();
            let body = n / LANES * LANES;
            let va = _mm256_set1_ps(alpha);
            let px = x.as_ptr();
            let py = y.as_mut_ptr();
            let mut i = 0;
            while i < body {
                let acc =
                    _mm256_fmadd_ps(va, _mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(py.add(i)));
                _mm256_storeu_ps(py.add(i), acc);
                i += LANES;
            }
            while i < n {
                *py.add(i) += alpha * *px.add(i);
                i += 1;
            }
        }
    }

    /// Per-row [`dot`].
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]); buffers must hold
    /// `out.len()` rows of `dim`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            for (r, o) in out.iter_mut().enumerate() {
                *o = dot(&a[r * dim..(r + 1) * dim], &b[r * dim..(r + 1) * dim]);
            }
        }
    }

    /// Per-row [`dist_sq`].
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]); buffers must hold
    /// `out.len()` rows of `dim`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dist_sq_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            for (r, o) in out.iter_mut().enumerate() {
                *o = dist_sq(&a[r * dim..(r + 1) * dim], &b[r * dim..(r + 1) * dim]);
            }
        }
    }

    /// One-vs-rows [`dot`].
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]); `b` must hold
    /// `out.len()` rows of `x.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_one_rows(x: &[f32], b: &[f32], out: &mut [f32]) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            let dim = x.len();
            for (r, o) in out.iter_mut().enumerate() {
                *o = dot(x, &b[r * dim..(r + 1) * dim]);
            }
        }
    }

    /// One-vs-rows [`dist_sq`].
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]); `b` must hold
    /// `out.len()` rows of `x.len()`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dist_sq_one_rows(x: &[f32], b: &[f32], out: &mut [f32]) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            let dim = x.len();
            for (r, o) in out.iter_mut().enumerate() {
                *o = dist_sq(x, &b[r * dim..(r + 1) * dim]);
            }
        }
    }

    /// Per-row axpy with one coefficient per row (zero rows skipped, their
    /// `x` values never read).
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]); buffers must hold
    /// `alpha.len()` rows of `dim`.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy_rows(alpha: &[f32], x: &[f32], y: &mut [f32], dim: usize) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            for (r, &a) in alpha.iter().enumerate() {
                if a != 0.0 {
                    axpy(
                        a,
                        &x[r * dim..(r + 1) * dim],
                        &mut y[r * dim..(r + 1) * dim],
                    );
                }
            }
        }
    }

    /// Fused three-output Euclidean triplet gradient (see
    /// [`super::euclid_grad_row`]). The negation is a sign-bit flip, so
    /// `du = −(dp + dq)` matches the scalar `−gp − gq` bit-for-bit.
    ///
    /// # Safety
    /// Requires AVX2 + FMA (check [`available`]); all six slices must be
    /// equal length.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn euclid_grad_row(
        wp2: f32,
        wq2: f32,
        u: &[f32],
        p: &[f32],
        q: &[f32],
        du: &mut [f32],
        dp: &mut [f32],
        dq: &mut [f32],
    ) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            let n = u.len();
            let body = n / LANES * LANES;
            let vwp = _mm256_set1_ps(wp2);
            let vwq = _mm256_set1_ps(wq2);
            let sign = _mm256_set1_ps(-0.0);
            let (pu, pp, pq) = (u.as_ptr(), p.as_ptr(), q.as_ptr());
            let (pdu, pdp, pdq) = (du.as_mut_ptr(), dp.as_mut_ptr(), dq.as_mut_ptr());
            let mut i = 0;
            while i < body {
                let vu = _mm256_loadu_ps(pu.add(i));
                let gp = _mm256_mul_ps(vwp, _mm256_sub_ps(vu, _mm256_loadu_ps(pp.add(i))));
                let gq = _mm256_mul_ps(vwq, _mm256_sub_ps(vu, _mm256_loadu_ps(pq.add(i))));
                _mm256_storeu_ps(pdp.add(i), gp);
                _mm256_storeu_ps(pdq.add(i), gq);
                _mm256_storeu_ps(pdu.add(i), _mm256_xor_ps(_mm256_add_ps(gp, gq), sign));
                i += LANES;
            }
            while i < n {
                let gp = wp2 * (*pu.add(i) - *pp.add(i));
                let gq = wq2 * (*pu.add(i) - *pq.add(i));
                *pdp.add(i) = gp;
                *pdq.add(i) = gq;
                *pdu.add(i) = -(gp + gq);
                i += 1;
            }
        }
    }

    /// Bytes consumed per int8 loop iteration: one 128-bit load widened to
    /// sixteen `i16` lanes.
    const I8_STEP: usize = 16;

    /// Horizontal sum of a 256-bit `i32×8` accumulator. Order is
    /// irrelevant: integer addition is exact.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn hsum256_i32(v: __m256i) -> i32 {
        let s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_00_00_01));
        _mm_cvtsi128_si32(s)
    }

    /// One-vs-rows int8 dot products: widen sixteen `i8` to `i16`
    /// (`cvtepi8_epi16`), multiply-add adjacent pairs into `i32`
    /// (`madd_epi16`), accumulate. Products are ≤ 2¹⁴ so the pairwise adds
    /// and the `i32` accumulator are exact for any realistic `dim`; the
    /// result is bit-equal to the scalar tier.
    ///
    /// # Safety
    /// Requires AVX2 (check [`available`]); `rows` must hold `out.len()`
    /// rows of `x.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dot_rows_i8(x: &[i8], rows: &[i8], out: &mut [i32]) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            let dim = x.len();
            let body = dim / I8_STEP * I8_STEP;
            let px = x.as_ptr();
            for (r, o) in out.iter_mut().enumerate() {
                let pr = rows.as_ptr().add(r * dim);
                let mut acc = _mm256_setzero_si256();
                let mut i = 0;
                while i < body {
                    let vx = _mm256_cvtepi8_epi16(_mm_loadu_si128(px.add(i).cast()));
                    let vr = _mm256_cvtepi8_epi16(_mm_loadu_si128(pr.add(i).cast()));
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(vx, vr));
                    i += I8_STEP;
                }
                let mut sum = hsum256_i32(acc);
                while i < dim {
                    sum += *px.add(i) as i32 * *pr.add(i) as i32;
                    i += 1;
                }
                *o = sum;
            }
        }
    }

    /// Low 64 bits of a per-lane 64×64 multiply. AVX2 has no 64-bit
    /// `mullo`, so compose it from 32×32→64 partial products
    /// (`mul_epu32` reads the even 32-bit lanes of each 64-bit lane):
    /// `lo(a·b) = a_lo·b_lo + ((a_lo·b_hi + a_hi·b_lo) << 32)` — the high
    /// cross-product bits overflow past bit 63 and drop, exactly like
    /// `u64::wrapping_mul`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mullo64(a: __m256i, b: __m256i) -> __m256i {
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let low = _mm256_mul_epu32(a, b);
        let cross = _mm256_add_epi64(_mm256_mul_epu32(a_hi, b), _mm256_mul_epu32(a, b_hi));
        _mm256_add_epi64(low, _mm256_slli_epi64(cross, 32))
    }

    /// The splitmix64 finalizer over four 64-bit lanes: two
    /// xor-shift-multiply rounds plus a final xor-shift, each lane
    /// bit-identical to `mars_runtime::rng::mix64`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mix64x4(mut z: __m256i) -> __m256i {
        let m1 = _mm256_set1_epi64x(0xBF58_476D_1CE4_E5B9_u64 as i64);
        let m2 = _mm256_set1_epi64x(0x94D0_49BB_1331_11EB_u64 as i64);
        z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
        z = mullo64(z, m1);
        z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
        z = mullo64(z, m2);
        _mm256_xor_si256(z, _mm256_srli_epi64(z, 31))
    }

    /// 8-wide splitmix64 block fill: two 4-lane counter vectors advance by
    /// `8 · GOLDEN` per iteration (the multiply in `(i+1)·GOLDEN` unrolls
    /// into a running add — multiplication distributes over the counter),
    /// and each gets the vectorized finalizer. Integer ops are exact, so
    /// the output is bit-identical to the scalar tier.
    ///
    /// # Safety
    /// Requires AVX2 (check [`available`]).
    #[target_feature(enable = "avx2")]
    pub unsafe fn fill_splitmix64(base: u64, out: &mut [u64]) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            use mars_runtime::rng::{mix64, GOLDEN};
            const STEP: usize = 8;
            let n = out.len();
            let body = n / STEP * STEP;
            let po = out.as_mut_ptr();
            // Lane counters for i = 0..4 and 4..8, advanced by 8·G per step.
            // Setup is one broadcast plus adds of compile-time offset vectors
            // (k·G for k = 1..=8) — cheaper than eight scalar `base + k·G`
            // computes funneled through lane inserts, which matters because the
            // sampling pipeline calls this on fills as short as one block.
            const G: u64 = GOLDEN;
            let b = _mm256_set1_epi64x(base as i64);
            let off_lo = _mm256_setr_epi64x(
                G as i64,
                G.wrapping_mul(2) as i64,
                G.wrapping_mul(3) as i64,
                G.wrapping_mul(4) as i64,
            );
            let off_hi = _mm256_setr_epi64x(
                G.wrapping_mul(5) as i64,
                G.wrapping_mul(6) as i64,
                G.wrapping_mul(7) as i64,
                G.wrapping_mul(8) as i64,
            );
            let mut ctr_lo = _mm256_add_epi64(b, off_lo);
            let mut ctr_hi = _mm256_add_epi64(b, off_hi);
            let step = _mm256_set1_epi64x(GOLDEN.wrapping_mul(STEP as u64) as i64);
            let mut i = 0;
            while i < body {
                _mm256_storeu_si256(po.add(i).cast(), mix64x4(ctr_lo));
                _mm256_storeu_si256(po.add(i + 4).cast(), mix64x4(ctr_hi));
                ctr_lo = _mm256_add_epi64(ctr_lo, step);
                ctr_hi = _mm256_add_epi64(ctr_hi, step);
                i += STEP;
            }
            while i < n {
                *po.add(i) = mix64(base.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN)));
                i += 1;
            }
        }
    }

    /// One-vs-rows int8 squared distances: widen, subtract in `i16`
    /// (differences fit: |d| ≤ 255), then `madd_epi16(d, d)` squares and
    /// pair-sums into `i32` (each pair ≤ 2·255² < 2³¹). Exact, bit-equal to
    /// the scalar tier.
    ///
    /// # Safety
    /// Requires AVX2 (check [`available`]); `rows` must hold `out.len()`
    /// rows of `x.len()`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn dist_sq_rows_i8(x: &[i8], rows: &[i8], out: &mut [i32]) {
        // SAFETY: the caller upholds the `# Safety` contract above — the
        // required target features are enabled and the length preconditions
        // hold, so every lane load/store below stays in bounds.
        unsafe {
            let dim = x.len();
            let body = dim / I8_STEP * I8_STEP;
            let px = x.as_ptr();
            for (r, o) in out.iter_mut().enumerate() {
                let pr = rows.as_ptr().add(r * dim);
                let mut acc = _mm256_setzero_si256();
                let mut i = 0;
                while i < body {
                    let vx = _mm256_cvtepi8_epi16(_mm_loadu_si128(px.add(i).cast()));
                    let vr = _mm256_cvtepi8_epi16(_mm_loadu_si128(pr.add(i).cast()));
                    let d = _mm256_sub_epi16(vx, vr);
                    acc = _mm256_add_epi32(acc, _mm256_madd_epi16(d, d));
                    i += I8_STEP;
                }
                let mut sum = hsum256_i32(acc);
                while i < dim {
                    let d = *px.add(i) as i32 - *pr.add(i) as i32;
                    sum += d * d;
                    i += 1;
                }
                *o = sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_is_stable_across_calls() {
        let first = active_path();
        for _ in 0..10 {
            assert_eq!(active_path(), first);
        }
        #[cfg(target_arch = "x86_64")]
        assert_eq!(first == Path::Avx2Fma, avx2::available());
    }

    #[test]
    fn empty_and_tail_only_inputs() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dist_sq(&[], &[]), 0.0);
        assert_eq!(dot(&[2.0, 3.0], &[4.0, 5.0]), 23.0);
        assert_eq!(dist_sq(&[1.0], &[4.0]), 9.0);
        let mut y = vec![1.0f32; 3];
        axpy(2.0, &[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0, 7.0]);
    }

    #[test]
    fn dispatched_reductions_match_scalar_within_tolerance() {
        // Chunking reorders the sum, so compare against the sequential
        // oracle with a relative tolerance.
        for n in [1usize, 7, 8, 9, 31, 32, 64, 67] {
            let a: Vec<f32> = (0..n)
                .map(|i| ((i * 37 + 11) % 23) as f32 * 0.37 - 3.0)
                .collect();
            let b: Vec<f32> = (0..n)
                .map(|i| ((i * 17 + 5) % 19) as f32 * 0.29 - 2.0)
                .collect();
            let (d0, d1) = (scalar::dot(&a, &b), dot(&a, &b));
            assert!((d0 - d1).abs() <= 1e-4 * d0.abs().max(1.0), "dot at n={n}");
            let (s0, s1) = (scalar::dist_sq(&a, &b), dist_sq(&a, &b));
            assert!(
                (s0 - s1).abs() <= 1e-4 * s0.abs().max(1.0),
                "dist_sq at n={n}"
            );
        }
    }

    #[test]
    fn row_kernels_agree_with_per_row_calls_bitwise() {
        let dim = 13;
        let k = 5;
        let a: Vec<f32> = (0..k * dim).map(|i| (i as f32 * 0.3).sin()).collect();
        let b: Vec<f32> = (0..k * dim).map(|i| (i as f32 * 0.7).cos()).collect();
        let mut out = vec![0.0; k];
        dot_rows(&a, &b, dim, &mut out);
        for r in 0..k {
            let per_row = dot(&a[r * dim..(r + 1) * dim], &b[r * dim..(r + 1) * dim]);
            assert_eq!(out[r].to_bits(), per_row.to_bits(), "dot row {r}");
        }
        dist_sq_rows(&a, &b, dim, &mut out);
        for r in 0..k {
            let per_row = dist_sq(&a[r * dim..(r + 1) * dim], &b[r * dim..(r + 1) * dim]);
            assert_eq!(out[r].to_bits(), per_row.to_bits(), "dist row {r}");
        }
        let x = &a[..dim];
        dot_one_rows(x, &b, &mut out);
        for r in 0..k {
            let per_row = dot(x, &b[r * dim..(r + 1) * dim]);
            assert_eq!(out[r].to_bits(), per_row.to_bits(), "one-vs row {r}");
        }
    }

    #[test]
    fn axpy_rows_skips_zero_alpha_rows() {
        let x = [f32::NAN, f32::NAN, 1.0, 1.0];
        let mut y = [1.0, 1.0, 2.0, 2.0];
        axpy_rows(&[0.0, 3.0], &x, &mut y, 2);
        assert_eq!(y, [1.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn euclid_grad_row_matches_reference() {
        let n = 19; // body + tail
        let u: Vec<f32> = (0..n).map(|i| (i as f32 * 0.11).sin()).collect();
        let p: Vec<f32> = (0..n).map(|i| (i as f32 * 0.23).cos()).collect();
        let q: Vec<f32> = (0..n).map(|i| (i as f32 * 0.31).sin() - 0.2).collect();
        let (wp2, wq2) = (1.4f32, -0.6f32);
        let mut du = vec![0.0; n];
        let mut dp = vec![0.0; n];
        let mut dq = vec![0.0; n];
        euclid_grad_row(wp2, wq2, &u, &p, &q, &mut du, &mut dp, &mut dq);
        for i in 0..n {
            let gp = wp2 * (u[i] - p[i]);
            let gq = wq2 * (u[i] - q[i]);
            assert!((dp[i] - gp).abs() < 1e-6);
            assert!((dq[i] - gq).abs() < 1e-6);
            assert!((du[i] + gp + gq).abs() < 1e-6);
        }
    }
}
