//! Small descriptive-statistics helpers used by the experiment harness
//! (dataset statistics for Table I, separation ratios for Figure 7, and the
//! mean/stddev columns the benchmark binaries print).

/// Arithmetic mean. Returns `0.0` for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f32>() / xs.len() as f32
}

/// Population variance. Returns `0.0` for fewer than two samples.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn stddev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Minimum (0.0 on empty input).
pub fn min(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().cloned().fold(f32::INFINITY, f32::min)
    }
}

/// Maximum (0.0 on empty input).
pub fn max(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }
}

/// `q`-th quantile (nearest-rank, `q ∈ [0,1]`). Sorts a copy; fine for the
/// report-sized inputs it is used on. Returns `0.0` on empty input.
pub fn quantile(xs: &[f32], q: f32) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    // total_cmp: a NaN-total order (NaN sorts above +inf), so the
    // comparator never lies to the sort and the result is deterministic
    // for any input permutation.
    sorted.sort_by(f32::total_cmp);
    let idx = ((q.clamp(0.0, 1.0)) * (sorted.len() - 1) as f32).round() as usize;
    sorted[idx]
}

/// Pearson correlation of two equal-length samples; `0.0` when degenerate.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f32 {
    assert_eq!(xs.len(), ys.len());
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    let denom = (vx * vy).sqrt();
    if denom <= f32::MIN_POSITIVE {
        0.0
    } else {
        cov / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 4.0).abs() < 1e-6);
        assert!((stddev(&xs) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn min_max_quantile() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0];
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 5.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
    }

    #[test]
    fn quantile_is_nan_safe_and_permutation_deterministic() {
        // Regression: the old `partial_cmp(..).unwrap_or(Equal)` comparator
        // was inconsistent under NaN, so the sort result (and thus any
        // percentile) depended on the input permutation. total_cmp ranks
        // NaN above +inf, deterministically.
        let perms: [[f32; 5]; 3] = [
            [2.0, f32::NAN, 1.0, 5.0, 3.0],
            [f32::NAN, 5.0, 3.0, 2.0, 1.0],
            [1.0, 2.0, 3.0, f32::NAN, 5.0],
        ];
        for xs in perms {
            assert_eq!(quantile(&xs, 0.0), 1.0);
            assert_eq!(quantile(&xs, 0.5), 3.0);
            assert!(quantile(&xs, 1.0).is_nan(), "NaN sorts last");
        }
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-6);
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        let xs = [1.0, 1.0, 1.0];
        let ys = [2.0, 3.0, 4.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
    }
}
