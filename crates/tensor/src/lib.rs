//! # mars-tensor
//!
//! A small, dependency-light dense linear-algebra substrate used by the MARS
//! reproduction. The models in the paper are shallow — bilinear projections,
//! Euclidean / cosine similarities and rank-1 gradient updates — so rather
//! than pulling in a deep-learning framework we provide exactly the kernels
//! the models need, over plain `f32` slices and a row-major [`Matrix`].
//!
//! Design notes (following the Rust performance-book guidance the project
//! adopts):
//!
//! * All hot kernels operate on `&[f32]` / `&mut [f32]` so embedding tables
//!   can be stored as one flat allocation and sliced per row — no per-row
//!   boxing, no bounds checks inside the loops (we iterate, not index).
//! * The hot reductions and `axpy` have a single explicitly vectorized
//!   definition in [`simd`] (runtime-dispatched AVX2/FMA with a
//!   lane-chunked portable fallback); [`ops`] and [`rows`] forward to it,
//!   so every entry point shares one float semantics (see the [`simd`]
//!   module docs for the summation-order / determinism contract).
//! * Everything is deterministic given a seed: initializers take an explicit
//!   [`rand::Rng`], and nothing reads global state.
//! * Numerical helpers ([`ops::cosine`], [`nonlin::softmax`], …) are written
//!   to be safe at the edges (zero vectors, large logits) because training
//!   loops will hit those edges.
//!
//! The crate also hosts the PCA routine ([`pca::Pca`]) used to regenerate the
//! paper's Figure 7 embedding visualisations.

pub mod init;
pub mod kmeans;
pub mod matrix;
pub mod nonlin;
pub mod ops;
pub mod pca;
pub mod rows;
pub mod simd;
pub mod stats;

pub use matrix::Matrix;
pub use pca::Pca;

/// Tolerance used across the workspace when comparing floats in tests and
/// when asserting the unit-sphere invariant after Riemannian updates.
pub const EPS: f32 = 1e-5;

/// Asserts (in debug builds) that two slices have equal length, returning it.
///
/// All binary kernels funnel through this so dimension mismatches fail loudly
/// at the call site instead of silently truncating via `zip`.
#[inline]
pub fn same_len(a: &[f32], b: &[f32]) -> usize {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "dimension mismatch: {} vs {}",
        a.len(),
        b.len()
    );
    a.len()
}
