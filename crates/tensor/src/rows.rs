//! Fused kernels over *row sets* — flat `k × dim` buffers holding `k`
//! vectors contiguously.
//!
//! The batched training engine gathers the facet embeddings of a triplet's
//! entities into such buffers (one row per facet) and needs the same
//! primitives as [`crate::ops`] applied row-wise: per-row dot products /
//! squared distances behind all `K` facet similarities in one call
//! ([`dot_rows`] for the spherical geometry, [`dist_sq_rows`] for the
//! Euclidean one) and fused multi-row `axpy` ([`axpy_rows`]) for the
//! spherical gradient accumulation. The Euclidean gradient keeps a single
//! fused three-output kernel (`simd::euclid_grad_row`, called per facet by
//! `mars-core::kernels`) — one pass over the buffers beats three kernel
//! calls there.
//!
//! All row kernels forward to the vectorized layer in [`crate::simd`]; each
//! row is computed by the same per-row kernel as the matching
//! [`crate::ops`] function, so the two entry points agree **bitwise** (the
//! contract the batched scorers rely on).

use crate::simd;

/// Asserts (debug) that `buf` holds a whole number of `dim`-sized rows and
/// returns that row count.
#[inline]
pub fn row_count(buf: &[f32], dim: usize) -> usize {
    debug_assert!(dim > 0, "row kernels need dim ≥ 1");
    debug_assert_eq!(
        buf.len() % dim,
        0,
        "buffer length {} is not a multiple of dim {}",
        buf.len(),
        dim
    );
    buf.len() / dim
}

/// Row `r` of a flat `k × dim` buffer.
#[inline]
pub fn row(buf: &[f32], dim: usize, r: usize) -> &[f32] {
    &buf[r * dim..(r + 1) * dim]
}

/// Mutable row `r` of a flat `k × dim` buffer.
#[inline]
pub fn row_mut(buf: &mut [f32], dim: usize, r: usize) -> &mut [f32] {
    &mut buf[r * dim..(r + 1) * dim]
}

/// Per-row dot products: `out[r] = a_r · b_r` for every row `r`.
pub fn dot_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
    let k = row_count(a, dim);
    debug_assert_eq!(a.len(), b.len(), "dot_rows: buffer mismatch");
    debug_assert_eq!(out.len(), k, "dot_rows: out has wrong length");
    simd::dot_rows(a, b, dim, out);
}

/// Per-row squared Euclidean distances: `out[r] = ‖a_r − b_r‖²`.
pub fn dist_sq_rows(a: &[f32], b: &[f32], dim: usize, out: &mut [f32]) {
    let k = row_count(a, dim);
    debug_assert_eq!(a.len(), b.len(), "dist_sq_rows: buffer mismatch");
    debug_assert_eq!(out.len(), k, "dist_sq_rows: out has wrong length");
    simd::dist_sq_rows(a, b, dim, out);
}

/// One-vs-rows dot products: `out[r] = x · b_r` for every row `r` of `b` —
/// the broadcast form of [`dot_rows`] used by batched scoring, where one
/// user vector meets a gathered block of candidate rows.
pub fn dot_one_rows(x: &[f32], b: &[f32], out: &mut [f32]) {
    let k = row_count(b, x.len());
    debug_assert_eq!(out.len(), k, "dot_one_rows: out has wrong length");
    simd::dot_one_rows(x, b, out);
}

/// One-vs-rows squared Euclidean distances: `out[r] = ‖x − b_r‖²` (the
/// broadcast form of [`dist_sq_rows`]; metric-model batched scoring).
pub fn dist_sq_one_rows(x: &[f32], b: &[f32], out: &mut [f32]) {
    let k = row_count(b, x.len());
    debug_assert_eq!(out.len(), k, "dist_sq_one_rows: out has wrong length");
    simd::dist_sq_one_rows(x, b, out);
}

/// Gathers arbitrary rows of a flat `rows × dim` table into a contiguous
/// block: `block[i] = table_row(ids[i])`. The batched scorers use this to
/// turn a scattered candidate list into row-kernel food.
pub fn gather_rows(
    table: &[f32],
    dim: usize,
    ids: impl IntoIterator<Item = usize>,
    block: &mut Vec<f32>,
) {
    block.clear();
    for id in ids {
        block.extend_from_slice(&table[id * dim..(id + 1) * dim]);
    }
}

/// Fused multi-row axpy with one coefficient per row:
/// `y_r ← y_r + alpha[r] · x_r` for every row `r`.
///
/// With `alpha` holding the per-facet loss weights (`c · θ_u^k`), one call
/// accumulates a triplet's contribution to all `K` spherical facet
/// gradients.
pub fn axpy_rows(alpha: &[f32], x: &[f32], y: &mut [f32], dim: usize) {
    let k = row_count(x, dim);
    debug_assert_eq!(x.len(), y.len(), "axpy_rows: buffer mismatch");
    debug_assert_eq!(alpha.len(), k, "axpy_rows: alpha has wrong length");
    simd::axpy_rows(alpha, x, y, dim);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_rows_matches_per_row_dot() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // rows [1,2,3] and [4,5,6] at dim 3
        let b = [1.0, 0.0, -1.0, 2.0, 2.0, 2.0];
        let mut out = [0.0; 2];
        dot_rows(&a, &b, 3, &mut out);
        assert_eq!(out, [-2.0, 30.0]);
    }

    #[test]
    fn dist_sq_rows_matches_per_row() {
        let a = [0.0, 0.0, 3.0, 4.0];
        let b = [1.0, 1.0, 0.0, 0.0];
        let mut out = [0.0; 2];
        dist_sq_rows(&a, &b, 2, &mut out);
        assert_eq!(out, [2.0, 25.0]);
    }

    #[test]
    fn axpy_rows_uses_per_row_alpha() {
        let x = [1.0, 1.0, 2.0, 2.0];
        let mut y = [0.0, 0.0, 10.0, 10.0];
        axpy_rows(&[2.0, -1.0], &x, &mut y, 2);
        assert_eq!(y, [2.0, 2.0, 8.0, 8.0]);
    }

    #[test]
    fn axpy_rows_skips_zero_alpha() {
        let x = [f32::NAN, f32::NAN];
        let mut y = [1.0, 1.0];
        axpy_rows(&[0.0], &x, &mut y, 2);
        assert_eq!(y, [1.0, 1.0]);
    }

    #[test]
    fn one_vs_rows_kernels_match_per_row_ops() {
        let x = [1.0, 2.0];
        let b = [3.0, 4.0, -1.0, 0.5, 1.0, 2.0];
        let mut dots = [0.0; 3];
        dot_one_rows(&x, &b, &mut dots);
        assert_eq!(dots, [11.0, 0.0, 5.0]);
        let mut dists = [0.0; 3];
        dist_sq_one_rows(&x, &b, &mut dists);
        assert_eq!(dists, [8.0, 6.25, 0.0]);
    }

    #[test]
    fn gather_rows_copies_in_id_order() {
        let table = [0.0, 1.0, 10.0, 11.0, 20.0, 21.0];
        let mut block = vec![99.0];
        gather_rows(&table, 2, [2usize, 0, 2], &mut block);
        assert_eq!(block, vec![20.0, 21.0, 0.0, 1.0, 20.0, 21.0]);
    }

    #[test]
    fn row_accessors() {
        let mut buf = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(row_count(&buf, 3), 2);
        assert_eq!(row(&buf, 3, 1), &[3.0, 4.0, 5.0]);
        row_mut(&mut buf, 3, 0)[0] = 9.0;
        assert_eq!(buf[0], 9.0);
    }
}
