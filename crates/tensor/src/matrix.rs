//! Row-major dense `f32` matrix.
//!
//! [`Matrix`] backs the facet projection matrices `Φ_k`, `Ψ_k` (D×D), the
//! MLP weights inside NeuMF / LRML, and the relation memories of LRML. It is
//! a single flat `Vec<f32>` plus shape; rows are contiguous so `row(i)`
//! returns a plain slice that the [`crate::ops`] kernels accept directly.

use crate::ops;

/// Dense row-major matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// `y = A x` (matrix–vector product). `x.len() == cols`, `y.len() == rows`.
    pub fn matvec(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols, "matvec: x has wrong length");
        assert_eq!(y.len(), self.rows, "matvec: y has wrong length");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = ops::dot(self.row(r), x);
        }
    }

    /// `y = Aᵀ x` (transposed matrix–vector product).
    /// `x.len() == rows`, `y.len() == cols`.
    ///
    /// This is the projection used in Eq. 1–2 of the paper: a facet-specific
    /// embedding is `u^k = φ_kᵀ u` (the paper writes the row vector `uᵀ φ_k`).
    pub fn matvec_t(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.rows, "matvec_t: x has wrong length");
        assert_eq!(y.len(), self.cols, "matvec_t: y has wrong length");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr != 0.0 {
                ops::axpy(xr, self.row(r), y);
            }
        }
    }

    /// Rank-1 update `A ← A + alpha · x yᵀ` (BLAS `ger`).
    ///
    /// Used for projection-matrix gradients: `∂L/∂φ_k = u ⊗ ∂L/∂u^k`.
    pub fn ger(&mut self, alpha: f32, x: &[f32], y: &[f32]) {
        assert_eq!(x.len(), self.rows, "ger: x has wrong length");
        assert_eq!(y.len(), self.cols, "ger: y has wrong length");
        for (r, &xr) in x.iter().enumerate() {
            if xr != 0.0 {
                ops::axpy(alpha * xr, y, self.row_mut(r));
            }
        }
    }

    /// Dense matrix product `C = A B` (naive triple loop; only used for small
    /// matrices such as D×D projections in tests and PCA).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a != 0.0 {
                    ops::axpy(a, other.row(k), out.row_mut(i));
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f32 {
        ops::norm(&self.data)
    }

    /// In-place scalar multiply.
    pub fn scale(&mut self, alpha: f32) {
        ops::scale(&mut self.data, alpha);
    }

    /// `self ← self + alpha · other` (element-wise). Shapes must match.
    pub fn add_scaled(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_scaled: shape mismatch");
        ops::axpy(alpha, &other.data, &mut self.data);
    }

    /// Estimates the spectral norm (largest singular value) with `iters`
    /// rounds of power iteration on `AᵀA`.
    ///
    /// MAR uses this to keep each projection matrix contractive
    /// (`‖φ_k‖₂ ≤ 1`), which together with `‖u‖ ≤ 1` guarantees the paper's
    /// facet-norm constraint `‖u^k‖ ≤ 1` (Eq. 11).
    pub fn spectral_norm_est(&self, iters: usize) -> f32 {
        if self.rows == 0 || self.cols == 0 {
            return 0.0;
        }
        // Deterministic start vector: ones, normalized.
        let mut v = vec![1.0 / (self.cols as f32).sqrt(); self.cols];
        let mut av = vec![0.0; self.rows];
        let mut atav = vec![0.0; self.cols];
        let mut sigma = 0.0;
        for _ in 0..iters.max(1) {
            self.matvec(&v, &mut av);
            self.matvec_t(&av, &mut atav);
            let n = ops::norm(&atav);
            if n <= f32::MIN_POSITIVE {
                return 0.0;
            }
            ops::scale(&mut atav, 1.0 / n);
            v.copy_from_slice(&atav);
            self.matvec(&v, &mut av);
            sigma = ops::norm(&av);
        }
        sigma
    }

    /// Rescales the matrix so its estimated spectral norm is at most
    /// `max_sigma`. Returns the estimate that was used.
    pub fn clip_spectral_norm(&mut self, max_sigma: f32, iters: usize) -> f32 {
        let sigma = self.spectral_norm_est(iters);
        if sigma > max_sigma && sigma > 0.0 {
            self.scale(max_sigma / sigma);
        }
        sigma
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        // [[1, 2], [3, 4], [5, 6]]
        Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn shape_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.get(2, 0), 5.0);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_checks_shape() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = sample();
        let mut y = vec![0.0; 3];
        m.matvec(&[1.0, -1.0], &mut y);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn matvec_t_matches_hand_computation() {
        let m = sample();
        let mut y = vec![0.0; 2];
        m.matvec_t(&[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![-4.0, -4.0]);
    }

    #[test]
    fn matvec_t_equals_transpose_matvec() {
        let m = sample();
        let t = m.transpose();
        let x = [0.5, -1.5, 2.0];
        let mut a = vec![0.0; 2];
        let mut b = vec![0.0; 2];
        m.matvec_t(&x, &mut a);
        t.matvec(&x, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn ger_rank1_update() {
        let mut m = Matrix::zeros(2, 3);
        m.ger(2.0, &[1.0, -1.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(0), &[2.0, 4.0, 6.0]);
        assert_eq!(m.row(1), &[-2.0, -4.0, -6.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i2 = Matrix::identity(2);
        assert_eq!(m.matmul(&i2), m);
        let i3 = Matrix::identity(3);
        assert_eq!(i3.matmul(&m), m);
    }

    #[test]
    fn matmul_hand_example() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn frobenius_norm_value() {
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn spectral_norm_of_diagonal() {
        // diag(3, 1): spectral norm is exactly 3.
        let m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 1.0]);
        let s = m.spectral_norm_est(30);
        assert!((s - 3.0).abs() < 1e-3, "estimate {s}");
    }

    #[test]
    fn spectral_clip_contracts() {
        let mut m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 1.0]);
        m.clip_spectral_norm(1.0, 30);
        let s = m.spectral_norm_est(30);
        assert!(s <= 1.0 + 1e-3, "after clipping: {s}");
    }

    #[test]
    fn spectral_norm_identity_is_one() {
        let m = Matrix::identity(4);
        let s = m.spectral_norm_est(10);
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        a.add_scaled(2.0, &b);
        assert_eq!(a.as_slice(), &[2.0, 0.0, 0.0, 2.0]);
    }
}
