//! Parameter initializers.
//!
//! Every initializer takes an explicit RNG so experiments are exactly
//! reproducible from a single seed. The schemes follow common usage:
//! Xavier/Glorot for the bilinear projections and MLP layers, scaled uniform
//! for embedding tables (as in the CML/BPR reference implementations), and
//! unit-sphere Gaussian direction sampling for MARS facet embeddings.

use crate::matrix::Matrix;
use crate::ops;
use rand::Rng;
use rand_distr_shim::StandardNormal;

/// Minimal inline replacement for `rand_distr`'s `StandardNormal` so we do
/// not pull in an extra dependency: Box–Muller over `rand`'s uniform source.
mod rand_distr_shim {
    use rand::Rng;

    /// Marker type; see [`sample_standard_normal`].
    pub struct StandardNormal;

    impl StandardNormal {
        /// Draws one `N(0,1)` sample via the Box–Muller transform.
        pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
            // Guard u1 away from 0 so ln is finite.
            let u1: f32 = rng.gen_range(f32::MIN_POSITIVE..1.0);
            let u2: f32 = rng.gen::<f32>();
            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
        }
    }
}

/// Draws one standard-normal sample.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    StandardNormal::sample(rng)
}

/// Fills `out` with `U(−scale, scale)` samples.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], scale: f32) {
    assert!(scale > 0.0, "uniform init scale must be positive");
    for v in out.iter_mut() {
        *v = rng.gen_range(-scale..scale);
    }
}

/// Fills `out` with `N(0, std²)` samples.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32], std: f32) {
    assert!(std > 0.0, "normal init std must be positive");
    for v in out.iter_mut() {
        *v = standard_normal(rng) * std;
    }
}

/// Fills `out` with a uniformly random *direction* on the unit sphere
/// (Gaussian sample, normalized). Used for MARS facet embeddings, which must
/// start on the manifold the Riemannian optimizer walks on.
pub fn unit_sphere<R: Rng + ?Sized>(rng: &mut R, out: &mut [f32]) {
    normal(rng, out, 1.0);
    ops::normalize(out);
}

/// Xavier/Glorot uniform bound for a layer with the given fan-in/out:
/// `sqrt(6 / (fan_in + fan_out))`.
#[inline]
pub fn xavier_bound(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}

/// Xavier/Glorot-uniform matrix of shape `rows × cols`
/// (`fan_in = cols`, `fan_out = rows`).
pub fn xavier_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let bound = xavier_bound(cols, rows);
    let mut m = Matrix::zeros(rows, cols);
    uniform(rng, m.as_mut_slice(), bound);
    m
}

/// He-uniform matrix (`sqrt(6 / fan_in)` bound) — used ahead of ReLU layers
/// in the NeuMF tower.
pub fn he_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let bound = (6.0 / cols as f32).sqrt();
    let mut m = Matrix::zeros(rows, cols);
    uniform(rng, m.as_mut_slice(), bound);
    m
}

/// A random matrix close to a scaled identity: `α·I + noise`. The paper
/// initializes the facet projections so that at step 0 every facet space is a
/// mild perturbation of the universal space; the facet-separating loss then
/// pushes them apart.
pub fn near_identity_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    diag: f32,
    noise: f32,
) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    if noise > 0.0 {
        uniform(rng, m.as_mut_slice(), noise);
    }
    for i in 0..n {
        let v = m.get(i, i) + diag;
        m.set(i, i, v);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn uniform_within_bounds() {
        let mut r = rng();
        let mut buf = vec![0.0; 1000];
        uniform(&mut r, &mut buf, 0.25);
        assert!(buf.iter().all(|v| v.abs() <= 0.25));
        // Not degenerate.
        assert!(buf.iter().any(|v| v.abs() > 0.01));
    }

    #[test]
    fn normal_moments_roughly_match() {
        let mut r = rng();
        let mut buf = vec![0.0; 20_000];
        normal(&mut r, &mut buf, 2.0);
        let mean: f32 = buf.iter().sum::<f32>() / buf.len() as f32;
        let var: f32 = buf.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / buf.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn unit_sphere_is_unit() {
        let mut r = rng();
        for _ in 0..50 {
            let mut v = vec![0.0; 16];
            unit_sphere(&mut r, &mut v);
            assert!((ops::norm(&v) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn xavier_bound_formula() {
        assert!((xavier_bound(3, 3) - 1.0).abs() < 1e-6);
        let m = xavier_matrix(&mut rng(), 8, 4);
        let b = xavier_bound(4, 8);
        assert!(m.as_slice().iter().all(|v| v.abs() <= b));
    }

    #[test]
    fn near_identity_has_dominant_diagonal() {
        let m = near_identity_matrix(&mut rng(), 6, 1.0, 0.05);
        for i in 0..6 {
            assert!(m.get(i, i) > 0.9);
            for j in 0..6 {
                if i != j {
                    assert!(m.get(i, j).abs() <= 0.05);
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = xavier_matrix(&mut StdRng::seed_from_u64(42), 5, 5);
        let b = xavier_matrix(&mut StdRng::seed_from_u64(42), 5, 5);
        assert_eq!(a, b);
    }
}
