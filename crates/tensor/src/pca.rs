//! Principal component analysis via power iteration with deflation.
//!
//! Used to regenerate the paper's Figure 7: the learned item embeddings
//! (D-dimensional, one set per facet for MAR/MARS) are projected onto their
//! top two principal components and written out as 2-D coordinates, colored
//! by ground-truth category by the harness.
//!
//! Power iteration on the covariance is ample here — we only ever need the
//! top 2 components of a few-thousand × ≤256 matrix, and it keeps the crate
//! dependency-free.

use crate::matrix::Matrix;
use crate::ops;

/// A fitted PCA basis: column means and the top `k` principal directions.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Per-dimension means subtracted before projection.
    mean: Vec<f32>,
    /// `k` unit-norm principal directions, each of length `dim`.
    components: Vec<Vec<f32>>,
    /// Eigenvalue (explained variance) per component, descending.
    explained: Vec<f32>,
}

impl Pca {
    /// Fits the top `k` principal components of `data` (rows = samples).
    ///
    /// `iters` power-iteration rounds per component (50 is plenty for the
    /// well-separated spectra embedding matrices have).
    ///
    /// # Panics
    /// If `data` has no rows or `k == 0` or `k > data.cols()`.
    pub fn fit(data: &Matrix, k: usize, iters: usize) -> Self {
        let (n, d) = data.shape();
        assert!(n > 0, "PCA needs at least one sample");
        assert!(k > 0 && k <= d, "invalid component count {k} for dim {d}");

        // Column means.
        let mut mean = vec![0.0; d];
        for r in 0..n {
            ops::axpy(1.0, data.row(r), &mut mean);
        }
        ops::scale(&mut mean, 1.0 / n as f32);

        // Centered copy.
        let mut centered = data.clone();
        for r in 0..n {
            let row = centered.row_mut(r);
            for (v, m) in row.iter_mut().zip(&mean) {
                *v -= m;
            }
        }

        let mut components: Vec<Vec<f32>> = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        let mut proj = vec![0.0; n];
        for comp_idx in 0..k {
            // Deterministic start: axis with largest residual variance.
            let mut v = start_vector(&centered, d);
            let mut eigen = 0.0;
            for _ in 0..iters.max(1) {
                // w = Cᵀ(Cv) / n  (covariance times v, without forming C'C)
                centered.matvec(&v, &mut proj);
                let mut w = vec![0.0; d];
                centered.matvec_t(&proj, &mut w);
                ops::scale(&mut w, 1.0 / n as f32);
                eigen = ops::norm(&w);
                if eigen <= f32::MIN_POSITIVE {
                    break;
                }
                ops::scale(&mut w, 1.0 / eigen);
                v = w;
            }
            // Deflate: remove the found component from every row.
            centered.matvec(&v, &mut proj);
            for r in 0..n {
                let p = proj[r];
                ops::axpy(-p, &v, centered.row_mut(r));
            }
            components.push(v);
            explained.push(eigen);
            let _ = comp_idx;
        }

        Self {
            mean,
            components,
            explained,
        }
    }

    /// Number of fitted components.
    pub fn k(&self) -> usize {
        self.components.len()
    }

    /// Explained variance (eigenvalue) per component, descending.
    pub fn explained_variance(&self) -> &[f32] {
        &self.explained
    }

    /// Projects one sample onto the fitted components.
    pub fn transform_row(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.mean.len(), "PCA: dimension mismatch");
        let centered: Vec<f32> = row.iter().zip(&self.mean).map(|(x, m)| x - m).collect();
        self.components
            .iter()
            .map(|c| ops::dot(c, &centered))
            .collect()
    }

    /// Projects every row of `data`, returning an `n × k` matrix.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let n = data.rows();
        let mut out = Matrix::zeros(n, self.k());
        for r in 0..n {
            let t = self.transform_row(data.row(r));
            out.row_mut(r).copy_from_slice(&t);
        }
        out
    }
}

/// Picks the coordinate axis with the largest column variance as the initial
/// power-iteration vector — deterministic and never orthogonal to the top
/// component unless that component has zero variance along every axis.
fn start_vector(centered: &Matrix, d: usize) -> Vec<f32> {
    let (n, _) = centered.shape();
    let mut best_axis = 0;
    let mut best_var = -1.0;
    for c in 0..d {
        let mut var = 0.0;
        for r in 0..n {
            let v = centered.get(r, c);
            var += v * v;
        }
        if var > best_var {
            best_var = var;
            best_axis = c;
        }
    }
    let mut v = vec![0.0; d];
    v[best_axis] = 1.0;
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points stretched along the (1,1) diagonal in 2-D with tiny
    /// perpendicular noise: the first PC must align with the diagonal.
    #[test]
    fn recovers_dominant_direction() {
        let mut rows = Vec::new();
        for i in 0..100 {
            let t = (i as f32 / 50.0) - 1.0; // [-1, 1]
            let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
            rows.extend_from_slice(&[t + noise, t - noise]);
        }
        let data = Matrix::from_vec(100, 2, rows);
        let pca = Pca::fit(&data, 2, 100);
        let c0 = &pca.components[0];
        let diag = [std::f32::consts::FRAC_1_SQRT_2; 2];
        let align = ops::dot(c0, &diag).abs();
        assert!(align > 0.999, "alignment {align}");
        // First component explains far more variance than the second.
        let ev = pca.explained_variance();
        assert!(ev[0] > 10.0 * ev[1], "explained {ev:?}");
    }

    #[test]
    fn components_are_orthonormal() {
        // Random-ish but fixed 3-D data.
        let data = Matrix::from_fn(40, 3, |r, c| {
            let x = (r * 3 + c) as f32;
            (x * 0.37).sin() + 0.2 * (x * 0.11).cos() * c as f32
        });
        let pca = Pca::fit(&data, 3, 200);
        for i in 0..3 {
            assert!((ops::norm(&pca.components[i]) - 1.0).abs() < 1e-3);
            for j in (i + 1)..3 {
                let d = ops::dot(&pca.components[i], &pca.components[j]).abs();
                assert!(d < 1e-2, "components {i},{j} not orthogonal: {d}");
            }
        }
    }

    #[test]
    fn transform_centers_data() {
        let data = Matrix::from_vec(4, 2, vec![1.0, 1.0, 1.0, 3.0, 3.0, 1.0, 3.0, 3.0]);
        let pca = Pca::fit(&data, 2, 50);
        let t = pca.transform(&data);
        // Projections of a centered cloud have zero mean.
        for c in 0..2 {
            let m: f32 = (0..4).map(|r| t.get(r, c)).sum::<f32>() / 4.0;
            assert!(m.abs() < 1e-5, "component {c} mean {m}");
        }
    }

    #[test]
    fn constant_data_yields_zero_projections() {
        let data = Matrix::from_vec(3, 2, vec![5.0; 6]);
        let pca = Pca::fit(&data, 1, 10);
        let t = pca.transform(&data);
        assert!(t.as_slice().iter().all(|v| v.abs() < 1e-5));
    }

    #[test]
    #[should_panic(expected = "invalid component count")]
    fn rejects_too_many_components() {
        let data = Matrix::zeros(3, 2);
        let _ = Pca::fit(&data, 3, 10);
    }
}
