//! Lloyd's k-means over embedding rows.
//!
//! Backs the paper's future-work item "infer clusters and attributes of
//! users and items based on the learned MARS model, and utilize them to
//! support other related downstream tasks like user/item segmentation"
//! (`mars-core::analysis::segment_items`). Deterministic given the RNG:
//! k-means++ seeding, Lloyd iterations until assignment fixpoint or the
//! iteration cap, empty clusters re-seeded from the farthest point.

use crate::matrix::Matrix;
use crate::ops;
use rand::Rng;

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct KMeans {
    /// `k × dim` centroid matrix.
    pub centroids: Matrix,
    /// Cluster index per input row.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Runs k-means++ / Lloyd on the rows of `data`.
///
/// # Panics
/// If `k == 0`, `k > data.rows()`, or `data` has no rows.
pub fn kmeans<R: Rng + ?Sized>(data: &Matrix, k: usize, max_iters: usize, rng: &mut R) -> KMeans {
    let (n, dim) = data.shape();
    assert!(n > 0, "k-means needs at least one sample");
    assert!(k > 0 && k <= n, "invalid cluster count {k} for {n} rows");

    // --- k-means++ seeding ------------------------------------------------
    let mut centroids = Matrix::zeros(k, dim);
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut dist2 = vec![f32::INFINITY; n];
    for c in 1..k {
        // Update distance-to-nearest-chosen for every point.
        for i in 0..n {
            let d = ops::dist_sq(data.row(i), centroids.row(c - 1));
            if d < dist2[i] {
                dist2[i] = d;
            }
        }
        let total: f64 = dist2.iter().map(|&d| d as f64).sum();
        let chosen = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            // Sample proportional to squared distance.
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.row_mut(c).copy_from_slice(data.row(chosen));
    }

    // --- Lloyd iterations ---------------------------------------------------
    let mut assignment = vec![0usize; n];
    let mut counts = vec![0usize; k];
    let mut iterations = 0;
    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = ops::dist_sq(data.row(i), centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update.
        centroids.as_mut_slice().fill(0.0);
        counts.fill(0);
        for i in 0..n {
            counts[assignment[i]] += 1;
            ops::axpy(1.0, data.row(i), centroids.row_mut(assignment[i]));
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster from the point farthest from its
                // centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = ops::dist_sq(data.row(a), centroids.row(assignment[a]));
                        let db = ops::dist_sq(data.row(b), centroids.row(assignment[b]));
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .unwrap();
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                ops::scale(centroids.row_mut(c), 1.0 / counts[c] as f32);
            }
        }
    }

    let inertia: f64 = (0..n)
        .map(|i| ops::dist_sq(data.row(i), centroids.row(assignment[i])) as f64)
        .sum();
    KMeans {
        centroids,
        assignment,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Three well-separated 2-D blobs must be recovered exactly.
    fn blobs() -> (Matrix, Vec<usize>) {
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for j in 0..20 {
                let dx = ((j * 7) % 5) as f32 * 0.05;
                let dy = ((j * 3) % 5) as f32 * 0.05;
                rows.extend_from_slice(&[cx + dx, cy + dy]);
                truth.push(ci);
            }
        }
        (Matrix::from_vec(60, 2, rows), truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = blobs();
        let result = kmeans(&data, 3, 50, &mut StdRng::seed_from_u64(5));
        // Same-truth points share a cluster; different-truth points don't.
        for i in 0..60 {
            for j in 0..60 {
                let same_truth = truth[i] == truth[j];
                let same_cluster = result.assignment[i] == result.assignment[j];
                assert_eq!(same_truth, same_cluster, "points {i},{j}");
            }
        }
        assert!(result.inertia < 1.0, "inertia {}", result.inertia);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, _) = blobs();
        let mut rng = StdRng::seed_from_u64(6);
        let k1 = kmeans(&data, 1, 50, &mut rng).inertia;
        let k3 = kmeans(&data, 3, 50, &mut StdRng::seed_from_u64(6)).inertia;
        assert!(k3 < k1, "k=3 {k3} should beat k=1 {k1}");
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 5.0, 5.0]);
        let result = kmeans(&data, 4, 20, &mut StdRng::seed_from_u64(7));
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = blobs();
        let a = kmeans(&data, 3, 50, &mut StdRng::seed_from_u64(8));
        let b = kmeans(&data, 3, 50, &mut StdRng::seed_from_u64(8));
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic(expected = "invalid cluster count")]
    fn rejects_k_greater_than_n() {
        let data = Matrix::zeros(2, 2);
        let _ = kmeans(&data, 3, 10, &mut StdRng::seed_from_u64(9));
    }

    #[test]
    fn identical_points_are_fine() {
        let data = Matrix::from_vec(5, 2, vec![1.0; 10]);
        let result = kmeans(&data, 2, 10, &mut StdRng::seed_from_u64(10));
        assert!(result.inertia < 1e-9);
        assert_eq!(result.assignment.len(), 5);
    }
}
