//! Lloyd's k-means over embedding rows.
//!
//! Backs the paper's future-work item "infer clusters and attributes of
//! users and items based on the learned MARS model, and utilize them to
//! support other related downstream tasks like user/item segmentation"
//! (`mars-core::analysis::segment_items`) and the IVF retrieval index
//! (`mars-serve::index`). Deterministic given the seed: the k-means++
//! seeding draws from a [`CounterRng`] keyed on `(seed, 0)` — a pure
//! function of the seed, pinned by a golden-value test, independent of any
//! caller-side generator state — then Lloyd iterations run until an
//! assignment fixpoint or the iteration cap, with empty clusters re-seeded
//! from the farthest point.

use crate::matrix::Matrix;
use crate::ops;
use mars_runtime::rng::CounterRng;

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct KMeans {
    /// `k × dim` centroid matrix.
    pub centroids: Matrix,
    /// Cluster index per input row.
    pub assignment: Vec<usize>,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision — the distribution
/// the distance-weighted k-means++ pick samples its threshold from.
#[inline]
fn unit_f64(rng: &mut CounterRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The k-means++ seeding pass: the `k` chosen row indices, in pick order.
///
/// Exactly one counter tick per pick (the first pick is uniform, each later
/// pick samples a squared-distance-weighted threshold — or falls back to a
/// uniform pick when every remaining distance is zero), so the stream is a
/// pure function of `(seed, pick index)` and the golden test can pin it.
///
/// # Panics
/// If `k == 0`, `k > data.rows()`, or `data` has no rows.
pub fn kmeans_pp_seed(data: &Matrix, k: usize, seed: u64) -> Vec<usize> {
    let (n, _) = data.shape();
    assert!(n > 0, "k-means needs at least one sample");
    assert!(k > 0 && k <= n, "invalid cluster count {k} for {n} rows");

    let mut rng = CounterRng::keyed(seed, 0);
    let mut picks = Vec::with_capacity(k);
    picks.push(rng.gen_below(n as u64) as usize);
    let mut dist2 = vec![f32::INFINITY; n];
    for c in 1..k {
        // Update distance-to-nearest-chosen for every point.
        let last = data.row(picks[c - 1]);
        for i in 0..n {
            let d = ops::dist_sq(data.row(i), last);
            if d < dist2[i] {
                dist2[i] = d;
            }
        }
        let total: f64 = dist2.iter().map(|&d| d as f64).sum();
        let chosen = if total <= 0.0 {
            rng.gen_below(n as u64) as usize
        } else {
            // Sample proportional to squared distance.
            let mut target = unit_f64(&mut rng) * total;
            let mut pick = n - 1;
            for (i, &d) in dist2.iter().enumerate() {
                target -= d as f64;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        picks.push(chosen);
    }
    picks
}

/// Runs k-means++ / Lloyd on the rows of `data`.
///
/// # Panics
/// If `k == 0`, `k > data.rows()`, or `data` has no rows.
pub fn kmeans(data: &Matrix, k: usize, max_iters: usize, seed: u64) -> KMeans {
    let (n, dim) = data.shape();
    let picks = kmeans_pp_seed(data, k, seed);
    let mut centroids = Matrix::zeros(k, dim);
    for (c, &row) in picks.iter().enumerate() {
        centroids.row_mut(c).copy_from_slice(data.row(row));
    }

    // --- Lloyd iterations ---------------------------------------------------
    let mut assignment = vec![0usize; n];
    let mut counts = vec![0usize; k];
    let mut iterations = 0;
    for iter in 0..max_iters.max(1) {
        iterations = iter + 1;
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let mut best = 0;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = ops::dist_sq(data.row(i), centroids.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        if !changed && iter > 0 {
            break;
        }
        // Update.
        centroids.as_mut_slice().fill(0.0);
        counts.fill(0);
        for i in 0..n {
            counts[assignment[i]] += 1;
            ops::axpy(1.0, data.row(i), centroids.row_mut(assignment[i]));
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster from the point farthest from its
                // centroid.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = ops::dist_sq(data.row(a), centroids.row(assignment[a]));
                        let db = ops::dist_sq(data.row(b), centroids.row(assignment[b]));
                        // total_cmp keeps the argmax deterministic even if
                        // a distance degenerates to NaN (it ranks last,
                        // i.e. "farthest", and ties break by index).
                        da.total_cmp(&db)
                    })
                    .unwrap();
                centroids.row_mut(c).copy_from_slice(data.row(far));
            } else {
                ops::scale(centroids.row_mut(c), 1.0 / counts[c] as f32);
            }
        }
    }

    let inertia: f64 = (0..n)
        .map(|i| ops::dist_sq(data.row(i), centroids.row(assignment[i])) as f64)
        .sum();
    KMeans {
        centroids,
        assignment,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D blobs must be recovered exactly.
    fn blobs() -> (Matrix, Vec<usize>) {
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for j in 0..20 {
                let dx = ((j * 7) % 5) as f32 * 0.05;
                let dy = ((j * 3) % 5) as f32 * 0.05;
                rows.extend_from_slice(&[cx + dx, cy + dy]);
                truth.push(ci);
            }
        }
        (Matrix::from_vec(60, 2, rows), truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (data, truth) = blobs();
        let result = kmeans(&data, 3, 50, 5);
        // Same-truth points share a cluster; different-truth points don't.
        for i in 0..60 {
            for j in 0..60 {
                let same_truth = truth[i] == truth[j];
                let same_cluster = result.assignment[i] == result.assignment[j];
                assert_eq!(same_truth, same_cluster, "points {i},{j}");
            }
        }
        assert!(result.inertia < 1.0, "inertia {}", result.inertia);
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let (data, _) = blobs();
        let k1 = kmeans(&data, 1, 50, 6).inertia;
        let k3 = kmeans(&data, 3, 50, 6).inertia;
        assert!(k3 < k1, "k=3 {k3} should beat k=1 {k1}");
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let data = Matrix::from_vec(4, 2, vec![0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 5.0, 5.0]);
        let result = kmeans(&data, 4, 20, 7);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = blobs();
        let a = kmeans(&data, 3, 50, 8);
        let b = kmeans(&data, 3, 50, 8);
        assert_eq!(a.assignment, b.assignment);
        for (x, y) in a.centroids.as_slice().iter().zip(b.centroids.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// The seeding stream is `CounterRng::keyed(seed, 0)` — a contract, not
    /// an implementation detail: `analysis::segment_items` results and every
    /// serialized IVF cell layout depend on it. These literals pin the
    /// chosen row indices; bump them only with a deliberate protocol break.
    #[test]
    fn golden_values_pin_the_seeding_stream() {
        let (data, _) = blobs();
        assert_eq!(kmeans_pp_seed(&data, 3, 8), [12, 44, 32]);
        assert_eq!(kmeans_pp_seed(&data, 3, 2021), [29, 55, 13]);
        assert_eq!(kmeans_pp_seed(&data, 5, 0), [52, 22, 0, 58, 4]);
        // First pick is `gen_below(n)` on the keyed stream directly.
        let mut rng = mars_runtime::rng::CounterRng::keyed(8, 0);
        assert_eq!(kmeans_pp_seed(&data, 1, 8), [rng.gen_below(60) as usize]);
    }

    /// Regression for the NaN-unsound empty-cluster reseed: a NaN
    /// coordinate must neither panic nor make the run
    /// permutation/run-dependent (the old `partial_cmp(..).unwrap_or(Equal)`
    /// argmax comparator was inconsistent under NaN).
    #[test]
    fn kmeans_survives_nan_rows_deterministically() {
        let (data, _) = blobs();
        let mut rows = data.as_slice().to_vec();
        rows[7] = f32::NAN; // poison one coordinate of one point
        let data = Matrix::from_vec(60, 2, rows);
        let a = kmeans(&data, 3, 50, 8);
        let b = kmeans(&data, 3, 50, 8);
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.assignment.len(), 60);
        for (x, y) in a.centroids.as_slice().iter().zip(b.centroids.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// All-identical points: every distance is zero, so every pick after the
    /// first falls back to the uniform branch — still one tick per pick.
    #[test]
    fn degenerate_seeding_stays_uniform_and_deterministic() {
        let data = Matrix::from_vec(5, 2, vec![1.0; 10]);
        let a = kmeans_pp_seed(&data, 3, 4);
        let b = kmeans_pp_seed(&data, 3, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&i| i < 5));
    }

    #[test]
    #[should_panic(expected = "invalid cluster count")]
    fn rejects_k_greater_than_n() {
        let data = Matrix::zeros(2, 2);
        let _ = kmeans(&data, 3, 10, 9);
    }

    #[test]
    fn identical_points_are_fine() {
        let data = Matrix::from_vec(5, 2, vec![1.0; 10]);
        let result = kmeans(&data, 2, 10, 10);
        assert!(result.inertia < 1e-9);
        assert_eq!(result.assignment.len(), 5);
    }
}
