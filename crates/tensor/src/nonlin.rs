//! Nonlinearities and probabilistic helpers.
//!
//! The per-user facet weights `Θ_u` of the paper are stored as free logits
//! and exposed through [`softmax`]; BPR's objective needs a numerically
//! stable [`log_sigmoid`]; the facet-separating loss (Eq. 6/12) needs
//! [`softplus`]. All of them are written so large-magnitude inputs cannot
//! overflow to `inf`/`NaN` — training loops will produce such inputs.

/// Numerically stable logistic sigmoid `σ(x) = 1/(1+e^{−x})`.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Numerically stable `log σ(x) = −softplus(−x)`.
#[inline]
pub fn log_sigmoid(x: f32) -> f32 {
    -softplus(-x)
}

/// Numerically stable softplus `log(1 + e^x)`.
///
/// For large `x` this is `x + log(1+e^{−x}) ≈ x`; for very negative `x` it is
/// `e^x ≈ 0`. The naive formula overflows past `x ≈ 88` in `f32`.
#[inline]
pub fn softplus(x: f32) -> f32 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Derivative of softplus, which is exactly the sigmoid.
#[inline]
pub fn softplus_grad(x: f32) -> f32 {
    sigmoid(x)
}

/// ReLU `max(0, x)`.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Subgradient of ReLU (`1` for `x > 0`, else `0`).
#[inline]
pub fn relu_grad(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Hinge `[x]₊ = max(0, x)` — the outer bracket of the paper's push loss
/// (Eq. 8/15). Alias of [`relu`] with the paper's name.
#[inline]
pub fn hinge(x: f32) -> f32 {
    relu(x)
}

/// Softmax of `logits` written into `out` (max-subtracted for stability).
///
/// Output sums to 1 even for extreme logits; an all-`-inf` input (which the
/// models never produce) would yield a uniform distribution rather than NaN.
pub fn softmax(logits: &[f32], out: &mut [f32]) {
    assert_eq!(logits.len(), out.len());
    if logits.is_empty() {
        return;
    }
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for (o, &l) in out.iter_mut().zip(logits) {
        let e = if max.is_finite() {
            (l - max).exp()
        } else {
            1.0
        };
        *o = e;
        sum += e;
    }
    if sum <= f32::MIN_POSITIVE {
        let u = 1.0 / logits.len() as f32;
        out.fill(u);
    } else {
        for o in out.iter_mut() {
            *o /= sum;
        }
    }
}

/// Convenience allocating wrapper around [`softmax`].
pub fn softmax_vec(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax(logits, &mut out);
    out
}

/// Backpropagates through a softmax.
///
/// Given `p = softmax(z)` and the downstream gradient `d = ∂L/∂p`, the
/// gradient with respect to the logits is
/// `∂L/∂z_i = p_i (d_i − Σ_j p_j d_j)`.
pub fn softmax_backward(probs: &[f32], upstream: &[f32], out: &mut [f32]) {
    assert_eq!(probs.len(), upstream.len());
    assert_eq!(probs.len(), out.len());
    let inner: f32 = probs.iter().zip(upstream).map(|(p, d)| p * d).sum();
    for ((o, &p), &d) in out.iter_mut().zip(probs).zip(upstream) {
        *o = p * (d - inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_symmetry_and_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        for x in [-100.0f32, -5.0, -0.1, 0.3, 7.0, 200.0] {
            let s = sigmoid(x);
            assert!(s.is_finite() && (0.0..=1.0).contains(&s));
            assert!((sigmoid(-x) - (1.0 - s)).abs() < 1e-6);
        }
    }

    #[test]
    fn log_sigmoid_no_overflow() {
        assert!(log_sigmoid(-500.0).is_finite());
        assert!((log_sigmoid(500.0)).abs() < 1e-6);
        assert!((log_sigmoid(0.0) + std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn softplus_matches_naive_in_safe_range() {
        for x in [-5.0f32, -1.0, 0.0, 1.0, 5.0] {
            let naive = (1.0 + x.exp()).ln();
            assert!((softplus(x) - naive).abs() < 1e-5);
        }
        // Large input: asymptotically linear, finite.
        assert!((softplus(1000.0) - 1000.0).abs() < 1e-3);
        assert!(softplus(-1000.0).abs() < 1e-6);
    }

    #[test]
    fn softplus_grad_is_sigmoid() {
        let h = 1e-3;
        for x in [-2.0f32, -0.5, 0.0, 0.7, 3.0] {
            let fd = (softplus(x + h) - softplus(x - h)) / (2.0 * h);
            assert!((fd - softplus_grad(x)).abs() < 1e-3);
        }
    }

    #[test]
    fn relu_and_hinge() {
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(hinge(-0.5), 0.0);
        assert_eq!(hinge(0.5), 0.5);
        assert_eq!(relu_grad(-1.0), 0.0);
        assert_eq!(relu_grad(1.0), 1.0);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax_vec(&[1.0, 2.0, 3.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_extreme_logits_stable() {
        let p = softmax_vec(&[1000.0, 0.0, -1000.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p[0] - 1.0).abs() < 1e-6);
        let q = softmax_vec(&[-2000.0, -2000.0]);
        assert!((q[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_shift_invariance() {
        let a = softmax_vec(&[0.1, 0.5, -0.3]);
        let b = softmax_vec(&[10.1, 10.5, 9.7]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_finite_difference() {
        let z = [0.3f32, -0.7, 1.2, 0.0];
        let upstream = [0.5f32, -1.0, 0.25, 2.0];
        // L = upstream · softmax(z)
        let loss = |z: &[f32]| -> f32 {
            let p = softmax_vec(z);
            p.iter().zip(&upstream).map(|(p, u)| p * u).sum()
        };
        let p = softmax_vec(&z);
        let mut g = vec![0.0; 4];
        softmax_backward(&p, &upstream, &mut g);
        let h = 1e-3;
        for i in 0..z.len() {
            let mut zp = z;
            let mut zm = z;
            zp[i] += h;
            zm[i] -= h;
            let fd = (loss(&zp) - loss(&zm)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-3, "i={i} fd={fd} g={}", g[i]);
        }
    }
}
