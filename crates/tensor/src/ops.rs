//! Vector kernels over `f32` slices.
//!
//! These are the inner loops of every model in the workspace: similarity
//! scores, gradient accumulation (`axpy`), and the sphere projections used by
//! the Riemannian optimizer. The hot reductions and `axpy` forward to the
//! explicitly vectorized layer in [`crate::simd`] (runtime-dispatched
//! AVX2/FMA with a lane-chunked portable fallback); see that module's docs
//! for the summation-order / determinism contract. The cold helpers
//! (normalization, clipping, interpolation) stay as simple loops.

use crate::{same_len, simd};

/// Dot product `a · b` (chunked summation order, see [`crate::simd`]).
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    simd::dot(a, b)
}

/// Squared Euclidean norm `‖a‖²`.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    a.iter().map(|x| x * x).sum()
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    norm_sq(a).sqrt()
}

/// Squared Euclidean distance `‖a − b‖²` (chunked summation order, see
/// [`crate::simd`]).
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    simd::dist_sq(a, b)
}

/// Euclidean distance `‖a − b‖`.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f32 {
    dist_sq(a, b).sqrt()
}

/// `y ← y + alpha · x` (the classic BLAS axpy; vectorized, see
/// [`crate::simd`]).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    simd::axpy(alpha, x, y)
}

/// `a ← alpha · a`.
#[inline]
pub fn scale(a: &mut [f32], alpha: f32) {
    for v in a.iter_mut() {
        *v *= alpha;
    }
}

/// Element-wise `out = a − b`.
#[inline]
pub fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    same_len(a, b);
    same_len(a, out);
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Element-wise `out = a + b`.
#[inline]
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    same_len(a, b);
    same_len(a, out);
    for ((o, x), y) in out.iter_mut().zip(a).zip(b) {
        *o = x + y;
    }
}

/// Copies `src` into `dst`.
#[inline]
pub fn copy(src: &[f32], dst: &mut [f32]) {
    dst.copy_from_slice(src);
}

/// Sets every element to zero.
#[inline]
pub fn zero(a: &mut [f32]) {
    a.fill(0.0);
}

/// Cosine similarity `cos(a, b) = a·b / (‖a‖‖b‖)`.
///
/// Returns `0.0` when either vector is (numerically) zero, which is the
/// behaviour the training loops want: a zero embedding has no preferred
/// direction, so its similarity to anything is neutral.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f32::MIN_POSITIVE || nb <= f32::MIN_POSITIVE {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Normalizes `a` to unit length in place.
///
/// A zero vector is replaced by the unit vector along the first axis so the
/// result is always a valid point on the sphere (the Riemannian optimizer
/// requires its parameters to stay on the manifold).
#[inline]
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n <= f32::MIN_POSITIVE {
        zero(a);
        if let Some(first) = a.first_mut() {
            *first = 1.0;
        }
        return;
    }
    scale(a, 1.0 / n);
}

/// Returns a unit-normalized copy of `a` (see [`normalize`]).
#[inline]
pub fn normalized(a: &[f32]) -> Vec<f32> {
    let mut out = a.to_vec();
    normalize(&mut out);
    out
}

/// Clips `a` into the closed unit ball: if `‖a‖ > 1` rescales to `‖a‖ = 1`.
///
/// This is the norm constraint used by CML / MAR (`‖u^k‖² ≤ 1`, Eq. 11 of the
/// paper); MARS replaces it with the strict sphere constraint.
#[inline]
pub fn clip_to_unit_ball(a: &mut [f32]) {
    let n = norm(a);
    if n > 1.0 {
        scale(a, 1.0 / n);
    }
}

/// Clips the norm of `a` to at most `max_norm` (gradient clipping).
#[inline]
pub fn clip_norm(a: &mut [f32], max_norm: f32) {
    debug_assert!(max_norm > 0.0);
    let n = norm(a);
    if n > max_norm {
        scale(a, max_norm / n);
    }
}

/// Gradient of `cos(x, y)` with respect to `x`, written into `out`.
///
/// For general (not necessarily unit) vectors:
/// `∇ₓ cos(x,y) = y/(‖x‖‖y‖) − cos(x,y)·x/‖x‖²`.
///
/// When `‖x‖ = ‖y‖ = 1` this reduces to `y − (x·y)x`, which is already
/// tangent to the sphere at `x`. Either input being zero yields a zero
/// gradient (consistent with [`cosine`] returning a constant 0 there).
pub fn cosine_grad_x(x: &[f32], y: &[f32], out: &mut [f32]) {
    same_len(x, y);
    same_len(x, out);
    let nx = norm(x);
    let ny = norm(y);
    if nx <= f32::MIN_POSITIVE || ny <= f32::MIN_POSITIVE {
        zero(out);
        return;
    }
    let c = dot(x, y) / (nx * ny);
    let inv = 1.0 / (nx * ny);
    let self_coeff = c / (nx * nx);
    for ((o, &yi), &xi) in out.iter_mut().zip(y).zip(x) {
        *o = yi * inv - xi * self_coeff;
    }
}

/// Index of the maximum element (first one on ties). Panics on empty input.
#[inline]
pub fn argmax(a: &[f32]) -> usize {
    assert!(!a.is_empty(), "argmax of empty slice");
    let mut best = 0;
    let mut best_v = a[0];
    for (i, &v) in a.iter().enumerate().skip(1) {
        if v > best_v {
            best = i;
            best_v = v;
        }
    }
    best
}

/// Sum of all elements.
#[inline]
pub fn sum(a: &[f32]) -> f32 {
    a.iter().sum()
}

/// Linear interpolation `out = (1−t)·a + t·b`.
#[inline]
pub fn lerp(a: &[f32], b: &[f32], t: f32, out: &mut [f32]) {
    same_len(a, b);
    same_len(a, out);
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = (1.0 - t) * x + t * y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn norms_and_distances() {
        let a = [3.0, 4.0];
        assert_eq!(norm_sq(&a), 25.0);
        assert_eq!(norm(&a), 5.0);
        assert_eq!(dist_sq(&[1.0, 1.0], &[4.0, 5.0]), 25.0);
        assert_eq!(dist(&[1.0, 1.0], &[4.0, 5.0]), 5.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn scale_sub_add() {
        let mut a = vec![2.0, -4.0];
        scale(&mut a, 0.5);
        assert_eq!(a, vec![1.0, -2.0]);
        let mut out = vec![0.0; 2];
        sub(&[3.0, 3.0], &[1.0, 2.0], &mut out);
        assert_eq!(out, vec![2.0, 1.0]);
        add(&[3.0, 3.0], &[1.0, 2.0], &mut out);
        assert_eq!(out, vec![4.0, 5.0]);
    }

    #[test]
    fn cosine_matches_hand_values() {
        assert!((cosine(&[1.0, 0.0], &[0.0, 1.0])).abs() < 1e-7);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-7);
        assert!((cosine(&[1.0, 0.0], &[-2.0, 0.0]) + 1.0).abs() < 1e-7);
        // 45 degrees
        let c = cosine(&[1.0, 0.0], &[1.0, 1.0]);
        assert!((c - std::f32::consts::FRAC_1_SQRT_2).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_is_neutral() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine(&[1.0, 2.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn normalize_makes_unit() {
        let mut a = vec![3.0, 4.0];
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-6);
        assert!((a[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_vector_lands_on_sphere() {
        let mut a = vec![0.0; 4];
        normalize(&mut a);
        assert!((norm(&a) - 1.0).abs() < 1e-6);
        assert_eq!(a[0], 1.0);
    }

    #[test]
    fn clip_to_unit_ball_only_shrinks() {
        let mut long = vec![3.0, 4.0];
        clip_to_unit_ball(&mut long);
        assert!((norm(&long) - 1.0).abs() < 1e-6);
        let mut short = vec![0.3, 0.4];
        clip_to_unit_ball(&mut short);
        assert_eq!(short, vec![0.3, 0.4]);
    }

    #[test]
    fn clip_norm_caps_gradients() {
        let mut g = vec![30.0, 40.0];
        clip_norm(&mut g, 5.0);
        assert!((norm(&g) - 5.0).abs() < 1e-4);
        let mut small = vec![0.3, 0.4];
        clip_norm(&mut small, 5.0);
        assert_eq!(small, vec![0.3, 0.4]);
    }

    #[test]
    fn cosine_grad_finite_difference() {
        // Central finite differences on a handful of fixed points.
        let xs = [
            (vec![0.5f32, -0.2, 0.8], vec![0.1f32, 0.9, -0.3]),
            (vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]),
            (vec![0.3, 0.3, 0.3], vec![-0.5, 0.2, 0.9]),
        ];
        let h = 1e-3f32;
        for (x, y) in xs {
            let mut g = vec![0.0; x.len()];
            cosine_grad_x(&x, &y, &mut g);
            for i in 0..x.len() {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp[i] += h;
                xm[i] -= h;
                let fd = (cosine(&xp, &y) - cosine(&xm, &y)) / (2.0 * h);
                assert!(
                    (fd - g[i]).abs() < 5e-3,
                    "grad mismatch at {i}: fd={fd} analytic={}",
                    g[i]
                );
            }
        }
    }

    #[test]
    fn cosine_grad_unit_inputs_is_tangent() {
        let x = normalized(&[0.5, -0.2, 0.8]);
        let y = normalized(&[0.1, 0.9, -0.3]);
        let mut g = vec![0.0; 3];
        cosine_grad_x(&x, &y, &mut g);
        // Tangent: orthogonal to x.
        assert!(dot(&x, &g).abs() < 1e-5);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-1.0]), 0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = [0.0, 2.0];
        let b = [1.0, 4.0];
        let mut out = [0.0; 2];
        lerp(&a, &b, 0.0, &mut out);
        assert_eq!(out, a);
        lerp(&a, &b, 1.0, &mut out);
        assert_eq!(out, b);
        lerp(&a, &b, 0.5, &mut out);
        assert_eq!(out, [0.5, 3.0]);
    }
}
