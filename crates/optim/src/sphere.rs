//! Geometry of the unit hypersphere `S^{D−1}`.
//!
//! The building blocks of Riemannian SGD:
//!
//! * the **tangent projection** `P_x(z) = (I − xxᵀ)z` maps an ambient
//!   gradient into the tangent space at `x`;
//! * the **retraction** `R_x(z) = (x + z)/‖x + z‖` (the paper's choice,
//!   following Skopek et al.) maps a tangent step back onto the sphere;
//! * the **exponential map** `exp_x(z) = cos(‖z‖)x + sin(‖z‖)z/‖z‖` is the
//!   exact geodesic flow, provided for comparison (Eq. 20 uses it; Eq. 21
//!   uses the cheaper retraction).

use mars_tensor::ops;

/// Projects `z` onto the tangent space of the sphere at `x` (in place):
/// `z ← z − (xᵀz)x`. Assumes `‖x‖ = 1` (true for all MARS parameters).
pub fn project_to_tangent(x: &[f32], z: &mut [f32]) {
    let coeff = ops::dot(x, z);
    ops::axpy(-coeff, x, z);
}

/// Retraction `R_x(z) = (x + z)/‖x + z‖`, written into `x`.
///
/// If `x + z ≈ 0` (a tangent step of length ≈ ‖x‖ pointing "through" the
/// sphere, which finite learning rates never produce) `x` is left unchanged
/// rather than normalizing a zero vector.
pub fn retract(x: &mut [f32], z: &[f32]) {
    debug_assert_eq!(x.len(), z.len());
    let mut norm_sq = 0.0f32;
    for (xi, zi) in x.iter().zip(z) {
        let m = xi + zi;
        norm_sq += m * m;
    }
    let n = norm_sq.sqrt();
    if n <= 1e-12 {
        return;
    }
    for (xi, zi) in x.iter_mut().zip(z) {
        *xi = (*xi + zi) / n;
    }
}

/// Exact exponential map `exp_x(z)` for tangent `z`, written into `x`.
///
/// For `‖z‖ → 0` falls back to the retraction's first-order behaviour
/// (`x + z` normalized) to avoid 0/0.
pub fn exp_map(x: &mut [f32], z: &[f32]) {
    debug_assert_eq!(x.len(), z.len());
    let norm_z = ops::norm(z);
    if norm_z < 1e-8 {
        retract(x, z);
        return;
    }
    let (sin, cos) = norm_z.sin_cos();
    let scale_z = sin / norm_z;
    for (xi, zi) in x.iter_mut().zip(z) {
        *xi = cos * *xi + scale_z * zi;
    }
    // Re-normalize to kill accumulated rounding.
    ops::normalize(x);
}

/// Geodesic (great-circle) distance between two unit vectors.
pub fn geodesic_distance(a: &[f32], b: &[f32]) -> f32 {
    ops::cosine(a, b).acos()
}

/// Verifies `‖x‖ = 1` within `tol` — the invariant every MARS parameter
/// must satisfy after every update (asserted in tests and debug builds).
pub fn is_on_sphere(x: &[f32], tol: f32) -> bool {
    (ops::norm(x) - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_tensor::ops::{dot, norm, normalized};

    #[test]
    fn tangent_projection_is_orthogonal_to_x() {
        let x = normalized(&[0.3, -0.5, 0.8, 0.1]);
        let mut z = vec![1.0, 2.0, -0.5, 0.7];
        project_to_tangent(&x, &mut z);
        assert!(dot(&x, &z).abs() < 1e-5);
    }

    #[test]
    fn tangent_projection_is_idempotent() {
        let x = normalized(&[1.0, 1.0, 0.0]);
        let mut z = vec![0.2, -0.4, 0.9];
        project_to_tangent(&x, &mut z);
        let once = z.clone();
        project_to_tangent(&x, &mut z);
        for (a, b) in once.iter().zip(&z) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn tangent_of_tangent_vector_is_identity() {
        let x = normalized(&[0.0, 0.0, 1.0]);
        let mut z = vec![0.5, -0.25, 0.0]; // already tangent
        let orig = z.clone();
        project_to_tangent(&x, &mut z);
        for (a, b) in orig.iter().zip(&z) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn retraction_lands_on_sphere() {
        let mut x = normalized(&[0.6, 0.8]);
        retract(&mut x, &[0.1, -0.2]);
        assert!(is_on_sphere(&x, 1e-5));
    }

    #[test]
    fn retraction_hand_example() {
        // x = e1, z = e2 → (1,1)/√2.
        let mut x = vec![1.0, 0.0];
        retract(&mut x, &[0.0, 1.0]);
        let s = std::f32::consts::FRAC_1_SQRT_2;
        assert!((x[0] - s).abs() < 1e-6 && (x[1] - s).abs() < 1e-6);
    }

    #[test]
    fn retraction_zero_step_is_identity() {
        let mut x = normalized(&[0.2, 0.9, -0.1]);
        let before = x.clone();
        retract(&mut x, &[0.0; 3]);
        assert_eq!(x, before);
    }

    #[test]
    fn retraction_antipodal_step_is_noop() {
        let mut x = vec![1.0, 0.0];
        let before = x.clone();
        retract(&mut x, &[-1.0, 0.0]); // x + z = 0
        assert_eq!(x, before);
    }

    #[test]
    fn exp_map_quarter_circle() {
        // x = e1, tangent z = (π/2)·e2 → exp_x(z) = e2.
        let mut x = vec![1.0, 0.0];
        let z = [0.0, std::f32::consts::FRAC_PI_2];
        exp_map(&mut x, &z);
        assert!(x[0].abs() < 1e-5, "{x:?}");
        assert!((x[1] - 1.0).abs() < 1e-5, "{x:?}");
    }

    #[test]
    fn exp_map_full_circle_returns() {
        let mut x = vec![1.0, 0.0];
        let z = [0.0, std::f32::consts::TAU];
        exp_map(&mut x, &z);
        assert!((x[0] - 1.0).abs() < 1e-4, "{x:?}");
        assert!(x[1].abs() < 1e-4, "{x:?}");
    }

    #[test]
    fn exp_map_small_step_matches_retraction() {
        let x0 = normalized(&[0.4, -0.3, 0.85]);
        let mut tangent = vec![0.001, 0.002, 0.0];
        project_to_tangent(&x0, &mut tangent);
        let mut via_exp = x0.clone();
        exp_map(&mut via_exp, &tangent);
        let mut via_retract = x0.clone();
        retract(&mut via_retract, &tangent);
        for (a, b) in via_exp.iter().zip(&via_retract) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn geodesic_distance_values() {
        let e1 = [1.0, 0.0];
        let e2 = [0.0, 1.0];
        assert!((geodesic_distance(&e1, &e2) - std::f32::consts::FRAC_PI_2).abs() < 1e-5);
        assert!(geodesic_distance(&e1, &e1).abs() < 1e-3);
        let neg = [-1.0, 0.0];
        assert!((geodesic_distance(&e1, &neg) - std::f32::consts::PI).abs() < 1e-5);
    }

    #[test]
    fn exp_preserves_norm_for_random_tangents() {
        let x0 = normalized(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        for scale in [0.01f32, 0.5, 2.0] {
            let mut z = vec![0.7, -0.1, 0.4, 0.0, -0.6];
            project_to_tangent(&x0, &mut z);
            let zn = norm(&z).max(1e-9);
            mars_tensor::ops::scale(&mut z, scale / zn);
            let mut x = x0.clone();
            exp_map(&mut x, &z);
            assert!(is_on_sphere(&x, 1e-4), "scale {scale}: ‖x‖={}", norm(&x));
        }
    }
}
