//! Plain stochastic gradient descent (with optional max-norm projection),
//! used by MAR and the Euclidean baselines.

use crate::Optimizer;
use mars_tensor::ops;

/// Vanilla SGD: `x ← x − η·g`, optionally followed by projection into the
/// unit ball (`‖x‖ ≤ max_norm`) — the constraint CML-style models apply
/// after every update.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    lr: f32,
    /// `Some(r)` projects onto the ball of radius `r` after each step.
    max_norm: Option<f32>,
}

impl Sgd {
    /// Unconstrained SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        Self { lr, max_norm: None }
    }

    /// SGD with post-step projection into the ball of radius `max_norm`.
    pub fn with_max_norm(lr: f32, max_norm: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        assert!(max_norm > 0.0, "invalid max norm {max_norm}");
        Self {
            lr,
            max_norm: Some(max_norm),
        }
    }

    /// Returns a copy with a different learning rate (for schedules).
    pub fn with_lr(self, lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        Self { lr, ..self }
    }
}

impl Optimizer for Sgd {
    fn step(&self, param: &mut [f32], grad: &[f32]) {
        ops::axpy(-self.lr, grad, param);
        if let Some(r) = self.max_norm {
            ops::clip_norm(param, r);
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descends_a_quadratic() {
        // f(x) = ‖x‖²/2, ∇f = x. Converges geometrically.
        let opt = Sgd::new(0.1);
        let mut x = vec![1.0f32, -2.0, 3.0];
        for _ in 0..200 {
            let g = x.clone();
            opt.step(&mut x, &g);
        }
        assert!(ops::norm(&x) < 1e-6);
    }

    #[test]
    fn single_step_formula() {
        let opt = Sgd::new(0.5);
        let mut x = vec![1.0, 2.0];
        opt.step(&mut x, &[2.0, -2.0]);
        assert_eq!(x, vec![0.0, 3.0]);
    }

    #[test]
    fn max_norm_projection_applies() {
        let opt = Sgd::with_max_norm(1.0, 1.0);
        let mut x = vec![0.9, 0.0];
        // Step pushes past the unit ball; projection pulls back.
        opt.step(&mut x, &[-2.0, 0.0]);
        assert!((ops::norm(&x) - 1.0).abs() < 1e-6);
        assert!(x[0] > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid learning rate")]
    fn rejects_bad_lr() {
        let _ = Sgd::new(-0.1);
    }

    #[test]
    fn lr_accessor() {
        assert_eq!(Sgd::new(0.01).lr(), 0.01);
        assert_eq!(Sgd::new(0.01).with_lr(0.1).lr(), 0.1);
    }
}
