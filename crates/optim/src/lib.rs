//! # mars-optim
//!
//! Optimizers for the MARS reproduction.
//!
//! MAR trains with plain (projected) SGD; MARS requires optimization *on*
//! the unit hypersphere `S^{D−1}`, which this crate provides in two
//! flavours:
//!
//! * [`riemannian::RiemannianSgd`] — textbook Riemannian SGD (Eq. 20 of the
//!   paper): project the ambient gradient onto the tangent space at the
//!   current point, step, and retract back to the sphere.
//! * [`riemannian::CalibratedRiemannianSgd`] — the paper's Eq. 21: the same
//!   tangent step scaled by the angular calibration multiplier
//!   `1 + xᵀ∇f/‖∇f‖`, so parameters far (in angle) from the direction the
//!   loss pulls them towards take proportionally larger steps.
//!
//! [`sphere`] holds the manifold primitives (tangent projection, retraction,
//! exponential map) with the geometric identities tested directly, and
//! [`schedule`] the learning-rate schedules the trainer consumes.

// This crate is part of the deterministic numeric core: no unsafe
// anywhere (the vetted unsafe surface lives in mars-tensor::simd
// and mars-runtime; see `cargo run -p mars-audit -- check`).
#![forbid(unsafe_code)]
pub mod accum;
pub mod schedule;
pub mod sgd;
pub mod sphere;

pub mod riemannian;

pub use accum::{BatchMode, GradAccumulator};
// The thread-count convention moved to `mars-runtime` with the worker pool;
// re-exported here so existing `mars_optim::resolve_threads` callers keep
// compiling.
pub use mars_runtime::resolve_threads;
pub use riemannian::{CalibratedRiemannianSgd, RiemannianSgd};
pub use schedule::LrSchedule;
pub use sgd::Sgd;

/// A first-order optimizer over a single parameter vector.
///
/// The trainers in `mars-core`/`mars-baselines` apply per-row updates to
/// embedding tables, so the interface is a single `step` on a slice; state
/// (learning rate, schedules) lives in the optimizer.
///
/// ## Mini-batch gradient accumulation
///
/// The batched engine stages gradients in a [`GradAccumulator`] and applies
/// one step per touched row: [`Optimizer::begin_batch`] clears the staging
/// area, [`Optimizer::accumulate`] sums a contribution into a keyed row, and
/// [`Optimizer::apply`] walks the rows in first-touch order, resolving each
/// key to its parameter slice through a caller callback and stepping with
/// the summed gradient. Geometry is preserved per row: the Riemannian
/// variants tangent-project and calibrate the *accumulated* gradient at the
/// row's current position, so a batch of size 1 reproduces the immediate
/// per-triplet step exactly.
pub trait Optimizer {
    /// Updates `param` in place given the gradient of the loss at `param`.
    fn step(&self, param: &mut [f32], grad: &[f32]);

    /// Current learning rate (after any schedule).
    fn lr(&self) -> f32;

    /// [`Optimizer::step`] with caller-provided scratch of the same length,
    /// letting implementations avoid per-step allocation. The default
    /// ignores the scratch.
    fn step_buffered(&self, param: &mut [f32], grad: &[f32], tmp: &mut [f32]) {
        let _ = tmp;
        self.step(param, grad);
    }

    /// Starts a fresh mini-batch in `acc`.
    ///
    /// Thin delegate to [`GradAccumulator::clear`], provided so the batch
    /// lifecycle reads in optimizer terms at call sites that hold an
    /// optimizer. Engines that stage gradients before an optimizer exists
    /// (accumulation is lr-independent) call the accumulator directly —
    /// both spellings are equivalent and this method is not an override
    /// point.
    fn begin_batch(&self, acc: &mut GradAccumulator) {
        acc.clear();
    }

    /// Stages `grad` for the parameter row identified by `key`; repeated
    /// keys sum. Same contract as [`Optimizer::begin_batch`]: a delegate to
    /// [`GradAccumulator::add`], not an override point.
    fn accumulate(&self, acc: &mut GradAccumulator, key: u64, grad: &[f32]) {
        acc.add(key, grad);
    }

    /// Applies one step per accumulated row and clears the batch.
    ///
    /// `with_param` receives each key (in first-touch order) and must invoke
    /// the provided closure on that row's parameter slice; the inversion of
    /// control lets the caller hand out disjoint `&mut` table rows without
    /// fighting the borrow checker.
    fn apply(
        &self,
        acc: &mut GradAccumulator,
        mut with_param: impl FnMut(u64, &mut dyn FnMut(&mut [f32])),
    ) where
        Self: Sized,
    {
        acc.drain(|key, grad, tmp| {
            with_param(key, &mut |param: &mut [f32]| {
                self.step_buffered(param, grad, tmp);
            });
        });
    }
}
