//! # mars-optim
//!
//! Optimizers for the MARS reproduction.
//!
//! MAR trains with plain (projected) SGD; MARS requires optimization *on*
//! the unit hypersphere `S^{D−1}`, which this crate provides in two
//! flavours:
//!
//! * [`riemannian::RiemannianSgd`] — textbook Riemannian SGD (Eq. 20 of the
//!   paper): project the ambient gradient onto the tangent space at the
//!   current point, step, and retract back to the sphere.
//! * [`riemannian::CalibratedRiemannianSgd`] — the paper's Eq. 21: the same
//!   tangent step scaled by the angular calibration multiplier
//!   `1 + xᵀ∇f/‖∇f‖`, so parameters far (in angle) from the direction the
//!   loss pulls them towards take proportionally larger steps.
//!
//! [`sphere`] holds the manifold primitives (tangent projection, retraction,
//! exponential map) with the geometric identities tested directly, and
//! [`schedule`] the learning-rate schedules the trainer consumes.

pub mod schedule;
pub mod sgd;
pub mod sphere;

pub mod riemannian;

pub use riemannian::{CalibratedRiemannianSgd, RiemannianSgd};
pub use schedule::LrSchedule;
pub use sgd::Sgd;

/// A first-order optimizer over a single parameter vector.
///
/// The trainers in `mars-core`/`mars-baselines` apply per-row updates to
/// embedding tables, so the interface is a single `step` on a slice; state
/// (learning rate, schedules) lives in the optimizer.
pub trait Optimizer {
    /// Updates `param` in place given the gradient of the loss at `param`.
    fn step(&self, param: &mut [f32], grad: &[f32]);

    /// Current learning rate (after any schedule).
    fn lr(&self) -> f32;
}
