//! Learning-rate schedules.
//!
//! The paper tunes a fixed learning rate per dataset; the trainer
//! additionally supports step decay and cosine annealing for the ablation
//! harness (the optional extensions DESIGN.md lists).

/// A learning-rate schedule: maps (epoch, total_epochs) → multiplier on the
/// base learning rate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant base rate (the paper's setting).
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay { every: usize, gamma: f32 },
    /// Cosine annealing from 1 down to `floor` over the run.
    Cosine { floor: f32 },
}

impl LrSchedule {
    /// Learning-rate multiplier for `epoch` (0-based) of `total` epochs.
    pub fn factor(&self, epoch: usize, total: usize) -> f32 {
        match *self {
            LrSchedule::Constant => 1.0,
            LrSchedule::StepDecay { every, gamma } => {
                let drops = epoch.checked_div(every).unwrap_or(0);
                gamma.powi(drops as i32)
            }
            LrSchedule::Cosine { floor } => {
                if total <= 1 {
                    return 1.0;
                }
                let t = epoch.min(total - 1) as f32 / (total - 1) as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                floor + (1.0 - floor) * cos
            }
        }
    }

    /// Effective learning rate for the epoch.
    pub fn lr(&self, base: f32, epoch: usize, total: usize) -> f32 {
        base * self.factor(epoch, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        for e in 0..10 {
            assert_eq!(LrSchedule::Constant.factor(e, 10), 1.0);
        }
    }

    #[test]
    fn step_decay_drops() {
        let s = LrSchedule::StepDecay {
            every: 3,
            gamma: 0.5,
        };
        assert_eq!(s.factor(0, 10), 1.0);
        assert_eq!(s.factor(2, 10), 1.0);
        assert_eq!(s.factor(3, 10), 0.5);
        assert_eq!(s.factor(6, 10), 0.25);
    }

    #[test]
    fn step_decay_zero_period_never_drops() {
        let s = LrSchedule::StepDecay {
            every: 0,
            gamma: 0.5,
        };
        assert_eq!(s.factor(100, 200), 1.0);
    }

    #[test]
    fn cosine_endpoints_and_monotone() {
        let s = LrSchedule::Cosine { floor: 0.1 };
        assert!((s.factor(0, 11) - 1.0).abs() < 1e-6);
        assert!((s.factor(10, 11) - 0.1).abs() < 1e-6);
        let mut prev = f32::INFINITY;
        for e in 0..11 {
            let f = s.factor(e, 11);
            assert!(f <= prev + 1e-6);
            prev = f;
        }
    }

    #[test]
    fn cosine_degenerate_total() {
        let s = LrSchedule::Cosine { floor: 0.1 };
        assert_eq!(s.factor(0, 1), 1.0);
        assert_eq!(s.factor(0, 0), 1.0);
    }

    #[test]
    fn lr_multiplies_base() {
        let s = LrSchedule::StepDecay {
            every: 1,
            gamma: 0.1,
        };
        assert!((s.lr(0.5, 2, 10) - 0.005).abs() < 1e-9);
    }
}
