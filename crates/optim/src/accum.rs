//! Mini-batch gradient accumulation.
//!
//! The batched training engine computes gradients for a whole mini-batch of
//! triplets against *frozen* parameters and applies **one** optimizer step
//! per touched parameter row — instead of the seed's immediate per-triplet
//! steps. [`GradAccumulator`] is the staging area: rows are identified by an
//! opaque `u64` key (the caller encodes table/row/facet), gradients for the
//! same key sum, and iteration order is **first-touch order**, which makes
//! the apply phase deterministic and lets sharded producers be merged in a
//! fixed shard order (see [`GradAccumulator::merge_from`]).
//!
//! The accumulator owns a scratch row so the Riemannian optimizers can run
//! their tangent-projection + retraction step without allocating
//! ([`crate::Optimizer::step_buffered`]).

use std::collections::HashMap;

/// How a trainer schedules parameter updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// The seed's reference path: one optimizer step per triplet per row,
    /// applied immediately. Kept selectable for A/B checks and the
    /// batch-size-1 equivalence tests.
    PerTriplet,
    /// Batched execution: gradients accumulate over a mini-batch and each
    /// touched row takes a single step with its summed gradient.
    #[default]
    Batched,
}

/// Staging area for mini-batch gradients, keyed by opaque row ids.
#[derive(Clone, Debug, Default)]
pub struct GradAccumulator {
    dim: usize,
    /// Key → slot index into `keys` / `grads`.
    slots: HashMap<u64, u32>,
    /// Keys in first-touch order (the deterministic apply order).
    keys: Vec<u64>,
    /// Flat `len() × dim` gradient rows, parallel to `keys`.
    grads: Vec<f32>,
    /// Scratch row for allocation-free optimizer steps.
    tmp: Vec<f32>,
}

impl GradAccumulator {
    /// An empty accumulator for gradient rows of length `dim`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "accumulator dim must be ≥ 1");
        Self {
            dim,
            slots: HashMap::new(),
            keys: Vec::new(),
            grads: Vec::new(),
            tmp: vec![0.0; dim],
        }
    }

    /// Gradient row length.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of distinct rows touched so far this batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no row has been touched this batch.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Clears all staged gradients (capacity is kept).
    pub fn clear(&mut self) {
        self.slots.clear();
        self.keys.clear();
        self.grads.clear();
    }

    /// Adds `alpha · grad` into the row keyed `key`, creating it (zeroed) on
    /// first touch.
    pub fn add_scaled(&mut self, key: u64, alpha: f32, grad: &[f32]) {
        debug_assert_eq!(grad.len(), self.dim, "gradient has wrong length");
        let slot = *self.slots.entry(key).or_insert_with(|| {
            let s = self.keys.len() as u32;
            self.keys.push(key);
            self.grads.resize(self.grads.len() + self.dim, 0.0);
            s
        }) as usize;
        let row = &mut self.grads[slot * self.dim..(slot + 1) * self.dim];
        if alpha == 1.0 {
            for (r, &g) in row.iter_mut().zip(grad) {
                *r += g;
            }
        } else {
            for (r, &g) in row.iter_mut().zip(grad) {
                *r += alpha * g;
            }
        }
    }

    /// Adds `grad` into the row keyed `key` (see [`Self::add_scaled`]).
    #[inline]
    pub fn add(&mut self, key: u64, grad: &[f32]) {
        self.add_scaled(key, 1.0, grad);
    }

    /// The staged gradient for `key`, if that row was touched.
    pub fn grad(&self, key: u64) -> Option<&[f32]> {
        self.slots
            .get(&key)
            .map(|&s| &self.grads[s as usize * self.dim..(s as usize + 1) * self.dim])
    }

    /// Folds another accumulator's rows into this one, preserving `other`'s
    /// internal order. Merging shard accumulators in a fixed shard order
    /// yields a deterministic combined first-touch order.
    pub fn merge_from(&mut self, other: &GradAccumulator) {
        debug_assert_eq!(self.dim, other.dim, "accumulator dim mismatch");
        for (i, &key) in other.keys.iter().enumerate() {
            self.add(key, &other.grads[i * self.dim..(i + 1) * self.dim]);
        }
    }

    /// Visits every `(key, grad)` pair in first-touch order without
    /// consuming the batch.
    pub fn for_each(&self, mut f: impl FnMut(u64, &[f32])) {
        for (i, &key) in self.keys.iter().enumerate() {
            f(key, &self.grads[i * self.dim..(i + 1) * self.dim]);
        }
    }

    /// Visits every `(key, grad, scratch)` triple in first-touch order and
    /// then clears the batch. The scratch row is the accumulator's internal
    /// buffer for [`crate::Optimizer::step_buffered`].
    pub fn drain(&mut self, mut f: impl FnMut(u64, &[f32], &mut [f32])) {
        let mut tmp = std::mem::take(&mut self.tmp);
        for (i, &key) in self.keys.iter().enumerate() {
            f(key, &self.grads[i * self.dim..(i + 1) * self.dim], &mut tmp);
        }
        self.tmp = tmp;
        self.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_per_key_and_keeps_first_touch_order() {
        let mut acc = GradAccumulator::new(2);
        acc.add(7, &[1.0, 0.0]);
        acc.add(3, &[0.0, 1.0]);
        acc.add(7, &[1.0, 1.0]);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.grad(7), Some(&[2.0, 1.0][..]));
        assert_eq!(acc.grad(3), Some(&[0.0, 1.0][..]));
        let mut order = Vec::new();
        acc.for_each(|k, _| order.push(k));
        assert_eq!(order, vec![7, 3]);
    }

    #[test]
    fn add_scaled_scales() {
        let mut acc = GradAccumulator::new(2);
        acc.add_scaled(0, 0.5, &[2.0, 4.0]);
        assert_eq!(acc.grad(0), Some(&[1.0, 2.0][..]));
    }

    #[test]
    fn drain_clears_and_reuses() {
        let mut acc = GradAccumulator::new(1);
        acc.add(1, &[5.0]);
        let mut seen = 0;
        acc.drain(|k, g, tmp| {
            assert_eq!(k, 1);
            assert_eq!(g, &[5.0]);
            assert_eq!(tmp.len(), 1);
            seen += 1;
        });
        assert_eq!(seen, 1);
        assert!(acc.is_empty());
        acc.add(1, &[3.0]);
        assert_eq!(acc.grad(1), Some(&[3.0][..]));
    }

    #[test]
    fn merge_preserves_shard_order() {
        let mut a = GradAccumulator::new(1);
        a.add(10, &[1.0]);
        let mut b = GradAccumulator::new(1);
        b.add(20, &[2.0]);
        b.add(10, &[1.0]);
        a.merge_from(&b);
        assert_eq!(a.grad(10), Some(&[2.0][..]));
        let mut order = Vec::new();
        a.for_each(|k, _| order.push(k));
        assert_eq!(order, vec![10, 20]);
    }

    #[test]
    fn batch_mode_default_is_batched() {
        assert_eq!(BatchMode::default(), BatchMode::Batched);
    }

    #[test]
    fn optimizer_batch_api_round_trip() {
        // The trait-level batch lifecycle (begin_batch → accumulate →
        // apply): two contributions to one row collapse into a single SGD
        // step with the summed gradient.
        use crate::{Optimizer, Sgd};
        let opt = Sgd::new(0.5);
        let mut acc = GradAccumulator::new(2);
        let mut param = vec![1.0f32, 2.0];
        opt.begin_batch(&mut acc);
        opt.accumulate(&mut acc, 9, &[1.0, 0.0]);
        opt.accumulate(&mut acc, 9, &[1.0, 2.0]);
        opt.apply(&mut acc, |key, step| {
            assert_eq!(key, 9);
            step(&mut param);
        });
        // x ← x − 0.5·(g1 + g2) = [1,2] − 0.5·[2,2] = [0,1].
        assert_eq!(param, vec![0.0, 1.0]);
        assert!(acc.is_empty(), "apply must clear the batch");
    }
}
