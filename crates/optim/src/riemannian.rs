//! Riemannian SGD on the unit sphere, plain (Eq. 20) and calibrated
//! (Eq. 21 — the paper's contribution).
//!
//! Both optimizers receive the **ambient** (Euclidean) gradient `∇f(x)` of
//! the loss at a unit-norm parameter `x` and keep `x` exactly on the sphere:
//!
//! * **Plain RSGD** (Eq. 20): `x ← exp_x(−η · P_x(∇f))` where `P_x` is the
//!   tangent projection and `exp` the exponential map.
//! * **Calibrated RSGD** (Eq. 21):
//!   `x ← R_x(−η · (1 + xᵀ∇f/‖∇f‖) · (I − xxᵀ)∇f)` with the cheap
//!   retraction `R_x(z) = (x+z)/‖x+z‖`.
//!
//! ### Why the calibration multiplier does what the paper says
//!
//! For a pull-style loss `f = −cos(x, target)` the models compute the
//! ambient gradient of the *bilinear* form (`∇f = −target`, treating norms
//! as the constants they are on the manifold). Then
//! `1 + xᵀ∇f/‖∇f‖ = 1 − cos(x, target)`: a parameter pointing *away* from
//! its target (cos → −1) gets a ×2 step, an almost-converged one (cos → 1)
//! gets ×0 — exactly Figure 4's "greater angular distance ⇒ larger update".
//! The multiplier is bounded in `[0, 2]` by Cauchy–Schwarz, so it can never
//! destabilize training, and a zero gradient leaves the parameter untouched.

use crate::sphere;
use crate::Optimizer;
use mars_tensor::ops;

/// Plain Riemannian SGD (Eq. 20): tangent projection + exponential map.
#[derive(Clone, Copy, Debug)]
pub struct RiemannianSgd {
    lr: f32,
}

impl RiemannianSgd {
    /// Creates the optimizer. `lr` must be positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        Self { lr }
    }

    /// Copy with a different learning rate (for schedules).
    pub fn with_lr(self, lr: f32) -> Self {
        Self::new(lr)
    }
}

impl Optimizer for RiemannianSgd {
    fn step(&self, param: &mut [f32], grad: &[f32]) {
        let mut tangent = grad.to_vec();
        self.step_buffered(param, grad, &mut tangent);
    }

    /// Allocation-free variant for the batched apply path: `tmp` holds the
    /// tangent vector.
    fn step_buffered(&self, param: &mut [f32], grad: &[f32], tmp: &mut [f32]) {
        debug_assert!(
            sphere::is_on_sphere(param, 1e-3),
            "RSGD parameter left the sphere before the step"
        );
        tmp.copy_from_slice(grad);
        sphere::project_to_tangent(param, tmp);
        ops::scale(tmp, -self.lr);
        sphere::exp_map(param, tmp);
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Calibrated Riemannian SGD (Eq. 21).
#[derive(Clone, Copy, Debug)]
pub struct CalibratedRiemannianSgd {
    lr: f32,
}

impl CalibratedRiemannianSgd {
    /// Creates the optimizer. `lr` must be positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "invalid learning rate {lr}");
        Self { lr }
    }

    /// Copy with a different learning rate (for schedules).
    pub fn with_lr(self, lr: f32) -> Self {
        Self::new(lr)
    }

    /// The angular calibration multiplier `1 + xᵀ∇f/‖∇f‖ ∈ [0, 2]`.
    ///
    /// Exposed for tests and the optimizer microbench; returns 1 for a
    /// (numerically) zero gradient so the step is a clean no-op.
    pub fn calibration(param: &[f32], grad: &[f32]) -> f32 {
        let gnorm = ops::norm(grad);
        if gnorm <= 1e-12 {
            return 1.0;
        }
        (1.0 + ops::dot(param, grad) / gnorm).clamp(0.0, 2.0)
    }
}

impl Optimizer for CalibratedRiemannianSgd {
    fn step(&self, param: &mut [f32], grad: &[f32]) {
        let mut tangent = grad.to_vec();
        self.step_buffered(param, grad, &mut tangent);
    }

    /// Allocation-free variant for the batched apply path: `tmp` holds the
    /// tangent vector.
    fn step_buffered(&self, param: &mut [f32], grad: &[f32], tmp: &mut [f32]) {
        debug_assert!(
            sphere::is_on_sphere(param, 1e-3),
            "calibrated RSGD parameter left the sphere before the step"
        );
        let mult = Self::calibration(param, grad);
        tmp.copy_from_slice(grad);
        sphere::project_to_tangent(param, tmp);
        ops::scale(tmp, -self.lr * mult);
        sphere::retract(param, tmp);
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_tensor::ops::{cosine, normalized};

    /// Maximizing cos(x, target) by descending f = −cos: the ambient
    /// gradient of the bilinear surrogate is −target.
    fn pull_grad(target: &[f32]) -> Vec<f32> {
        target.iter().map(|t| -t).collect()
    }

    #[test]
    fn rsgd_converges_to_target_direction() {
        let target = normalized(&[0.2, -0.7, 0.4, 0.5]);
        let mut x = normalized(&[1.0, 0.0, 0.0, 0.0]);
        let opt = RiemannianSgd::new(0.3);
        for _ in 0..300 {
            let g = pull_grad(&target);
            opt.step(&mut x, &g);
        }
        assert!(cosine(&x, &target) > 0.999, "cos={}", cosine(&x, &target));
    }

    #[test]
    fn calibrated_converges_to_target_direction() {
        // Note the threshold: near convergence the ×(1−cos) multiplier
        // vanishes, so the calibrated variant approaches the target
        // asymptotically rather than snapping onto it.
        let target = normalized(&[0.2, -0.7, 0.4, 0.5]);
        let mut x = normalized(&[1.0, 0.0, 0.0, 0.0]);
        let opt = CalibratedRiemannianSgd::new(0.3);
        for _ in 0..300 {
            let g = pull_grad(&target);
            opt.step(&mut x, &g);
        }
        assert!(cosine(&x, &target) > 0.99, "cos={}", cosine(&x, &target));
    }

    #[test]
    fn both_preserve_sphere_invariant() {
        let target = normalized(&[0.3, 0.3, -0.9]);
        for opt in [true, false] {
            let mut x = normalized(&[0.5, -0.5, 0.7]);
            for step in 0..100 {
                let g = pull_grad(&target);
                if opt {
                    CalibratedRiemannianSgd::new(0.5).step(&mut x, &g);
                } else {
                    RiemannianSgd::new(0.5).step(&mut x, &g);
                }
                assert!(
                    sphere::is_on_sphere(&x, 1e-4),
                    "left sphere at step {step} (calibrated={opt})"
                );
            }
        }
    }

    #[test]
    fn calibration_range_and_extremes() {
        let x = [1.0f32, 0.0];
        // Gradient pulling towards x itself (target = −x): multiplier 2.
        let away = [2.0f32, 0.0];
        assert!((CalibratedRiemannianSgd::calibration(&x, &away) - 2.0).abs() < 1e-6);
        // Gradient = −x (target = x, converged): multiplier 0.
        let converged = [-3.0f32, 0.0];
        assert!(CalibratedRiemannianSgd::calibration(&x, &converged).abs() < 1e-6);
        // Orthogonal gradient: multiplier 1.
        let ortho = [0.0f32, 5.0];
        assert!((CalibratedRiemannianSgd::calibration(&x, &ortho) - 1.0).abs() < 1e-6);
        // Zero gradient: defined as 1.
        assert_eq!(CalibratedRiemannianSgd::calibration(&x, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn far_parameters_take_larger_steps() {
        // Paper Figure 4: greater angular distance to target ⇒ larger step.
        let target = [0.0f32, 1.0];
        let near = normalized(&[0.2, 1.0]); // close to target
        let far = normalized(&[1.0, -0.2]); // > 90° away
        let g = pull_grad(&target);
        let opt = CalibratedRiemannianSgd::new(0.1);

        let mut near_after = near.clone();
        opt.step(&mut near_after, &g);
        let mut far_after = far.clone();
        opt.step(&mut far_after, &g);

        let near_moved = sphere::geodesic_distance(&near, &near_after);
        let far_moved = sphere::geodesic_distance(&far, &far_after);
        assert!(
            far_moved > near_moved,
            "far moved {far_moved}, near moved {near_moved}"
        );
    }

    #[test]
    fn converged_parameter_stops_moving() {
        // x == target: calibration 0 and tangent projection 0 ⇒ no motion.
        let x0 = normalized(&[0.6, 0.8]);
        let g = pull_grad(&x0);
        let mut x = x0.clone();
        CalibratedRiemannianSgd::new(1.0).step(&mut x, &g);
        assert!(sphere::geodesic_distance(&x0, &x) < 1e-4);
    }

    #[test]
    fn zero_gradient_is_noop() {
        let mut x = normalized(&[0.1, 0.9, 0.4]);
        let before = x.clone();
        CalibratedRiemannianSgd::new(0.5).step(&mut x, &[0.0; 3]);
        assert_eq!(x, before);
        RiemannianSgd::new(0.5).step(&mut x, &[0.0; 3]);
        for (a, b) in x.iter().zip(&before) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn calibrated_escapes_far_starts_faster() {
        // Figure 4's promise, measured where it applies: starting nearly
        // antipodal to the target (a near-saddle for plain RSGD, whose
        // tangent gradient almost vanishes there), the ×(1−cos) ≈ ×2
        // multiplier makes early progress strictly faster. (Near
        // convergence the same multiplier shrinks steps, so "fewer total
        // steps to ε" is *not* the claim.)
        let target = normalized(&[0.0, 1.0, 0.0]);
        let start = normalized(&[0.05, -1.0, 0.02]);
        let progress_after = |calibrated: bool, steps: usize| {
            let mut x = start.clone();
            for _ in 0..steps {
                let g = pull_grad(&target);
                if calibrated {
                    CalibratedRiemannianSgd::new(0.05).step(&mut x, &g);
                } else {
                    RiemannianSgd::new(0.05).step(&mut x, &g);
                }
            }
            cosine(&x, &target)
        };
        for steps in [10, 25, 50] {
            let plain = progress_after(false, steps);
            let cal = progress_after(true, steps);
            assert!(
                cal > plain,
                "after {steps} steps: calibrated {cal} vs plain {plain}"
            );
        }
    }
}
