//! Property tests for the retrieval engine's exactness contract:
//! bounded-heap top-k must be **bit-identical** to the full-sort
//! reference for any scorer, any chunk size, any `k` (1, the catalogue,
//! beyond it), any seen-filter, any candidate restriction — and batched
//! retrieval must be bit-identical to single-query retrieval at every
//! worker count.
//!
//! The scorers here are deliberately hostile: a structureless hash (any
//! mis-ranked pair moves a rank), a constant (pure id-tie-break coverage),
//! and a NaN/∞-injecting wrapper (total-order coverage). The workspace's
//! real models are covered by the umbrella `tests/serving.rs` suite.

use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::WorkerPool;
use mars_serve::{full_sort_top_k, RecQuery, RecResponse, RetrievalScratch, Retriever};
use proptest::prelude::*;
use std::sync::Arc;

/// Structureless deterministic scorer.
struct Hashing;
impl Scorer for Hashing {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        let mut h = (user as u64) << 32 | item as u64;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        (h % 10_000) as f32 / 10_000.0
    }
}

/// Everything ties: ranking is decided entirely by the id tie-break.
struct Constant;
impl Scorer for Constant {
    fn score(&self, _: UserId, _: ItemId) -> f32 {
        0.5
    }
}

/// Hostile float output: sprinkles NaN (both signs), ±∞ and signed zeros
/// over the hash scorer — every non-finite class the total order covers.
struct Hostile;
impl Scorer for Hostile {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        match item % 11 {
            0 => f32::NAN,
            4 => -f32::NAN,
            7 => f32::INFINITY,
            9 => f32::NEG_INFINITY,
            2 => -0.0,
            5 => 0.0,
            _ => Hashing.score(user, item),
        }
    }
}

fn scorers() -> Vec<(&'static str, Arc<dyn Scorer + Sync + Send>)> {
    vec![
        ("hashing", Arc::new(Hashing)),
        ("constant", Arc::new(Constant)),
        ("hostile", Arc::new(Hostile)),
    ]
}

fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u64)> {
    v.iter().map(|&(i, s)| (i, s.to_bits() as u64)).collect()
}

/// Sorted, deduplicated seen list drawn from the catalogue.
fn make_seen(catalog: usize, stride: usize) -> Vec<ItemId> {
    (0..catalog as ItemId).step_by(stride.max(1)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Heap-select ≡ full sort, across catalogue sizes, chunk sizes, k
    /// (down to 1, exactly the catalogue, beyond it) and seen strides —
    /// for every scorer, down to the bit.
    #[test]
    fn heap_select_is_bit_identical_to_full_sort(
        catalog in 1usize..260,
        chunk in 1usize..300,
        seen_stride in 1usize..12,
        user in 0u32..5,
    ) {
        let seen = make_seen(catalog, seen_stride);
        for (name, scorer) in scorers() {
            let r = Retriever::from_arc(scorer, catalog).with_chunk_items(chunk);
            for k in [1usize, catalog, catalog + 13] {
                let q = RecQuery::top_k(user, k).excluding(&seen);
                let got = r.retrieve(&q);
                let expect = full_sort_top_k(r.model().as_ref(), catalog, &q);
                prop_assert!(
                    bits(&got.ranked) == bits(&expect),
                    "{} diverged: catalog {} chunk {} k {}", name, catalog, chunk, k
                );
            }
        }
    }

    /// Candidate-restricted retrieval ≡ full sort over the same
    /// shortlist, including duplicates and seen overlap.
    #[test]
    fn candidate_restriction_is_bit_identical_to_full_sort(
        catalog in 1usize..200,
        cands in proptest::collection::vec(0u32..200, 0..80),
        chunk in 1usize..40,
        k in 0usize..30,
        user in 0u32..5,
    ) {
        let cands: Vec<ItemId> = cands.into_iter().filter(|&v| (v as usize) < catalog).collect();
        let seen = make_seen(catalog, 5);
        for (name, scorer) in scorers() {
            let r = Retriever::from_arc(scorer, catalog).with_chunk_items(chunk);
            let q = RecQuery::top_k(user, k).among(&cands).excluding(&seen);
            let got = r.retrieve(&q);
            let expect = full_sort_top_k(r.model().as_ref(), catalog, &q);
            prop_assert!(
                bits(&got.ranked) == bits(&expect),
                "{} diverged on a shortlist of {}", name, cands.len()
            );
            // Nothing seen may surface.
            prop_assert!(got.ranked.iter().all(|(v, _)| seen.binary_search(v).is_err()));
        }
    }

    /// Batched retrieval ≡ the single-query loop at 1..=8 workers.
    #[test]
    fn batched_retrieval_is_worker_count_invariant(
        catalog in 1usize..180,
        num_queries in 0usize..40,
        chunk in 1usize..64,
        k in 1usize..25,
    ) {
        let seen = make_seen(catalog, 3);
        for (name, scorer) in scorers() {
            let r = Retriever::from_arc(scorer, catalog).with_chunk_items(chunk);
            let queries: Vec<RecQuery<'_>> = (0..num_queries as UserId)
                .map(|u| RecQuery::top_k(u, k).excluding(&seen))
                .collect();
            let mut scratch = RetrievalScratch::new();
            let reference: Vec<RecResponse> = queries
                .iter()
                .map(|q| r.retrieve_with(q, &mut scratch))
                .collect();
            for workers in 1..=8usize {
                let got = r.retrieve_batch(&queries, &WorkerPool::new(workers));
                prop_assert_eq!(got.len(), reference.len());
                for (g, e) in got.iter().zip(&reference) {
                    prop_assert_eq!(g.user, e.user);
                    prop_assert!(
                        bits(&g.ranked) == bits(&e.ranked),
                        "{} diverged at {} workers", name, workers
                    );
                }
            }
        }
    }
}

#[test]
fn seen_everything_yields_empty_everywhere() {
    let catalog = 37;
    let seen: Vec<ItemId> = (0..catalog as ItemId).collect();
    for (_, scorer) in scorers() {
        let r = Retriever::from_arc(scorer, catalog);
        let q = RecQuery::top_k(0, 10).excluding(&seen);
        assert!(r.retrieve(&q).is_empty());
        assert!(full_sort_top_k(r.model().as_ref(), catalog, &q).is_empty());
        let batch = r.retrieve_batch(&[q, q], &WorkerPool::new(3));
        assert!(batch.iter().all(RecResponse::is_empty));
    }
}

#[test]
fn nan_scored_items_never_outrank_real_ones() {
    // Hostile scores items ≡ 0 / 4 (mod 11) as NaN; with enough real
    // candidates available, no NaN id may appear in the top k.
    let catalog = 110;
    let r = Retriever::new(Hostile, catalog);
    let resp = r.retrieve(&RecQuery::top_k(3, 20));
    assert_eq!(resp.len(), 20);
    for &(v, s) in &resp.ranked {
        assert!(!s.is_nan(), "NaN item {v} surfaced in the top k");
    }
    // Asking for the whole catalogue pushes the NaNs to the tail, id-ordered.
    let all = r.retrieve(&RecQuery::top_k(3, catalog));
    let nan_tail: Vec<ItemId> = all
        .ranked
        .iter()
        .skip_while(|(_, s)| !s.is_nan())
        .map(|&(v, _)| v)
        .collect();
    let expect: Vec<ItemId> = (0..catalog as ItemId)
        .filter(|v| v % 11 == 0 || v % 11 == 4)
        .collect();
    assert_eq!(nan_tail, expect, "NaN tail must be id-ordered and complete");
    assert!(all.ranked[..catalog - nan_tail.len()]
        .iter()
        .all(|(_, s)| !s.is_nan()));
}
