//! Property tests for the IVF index path.
//!
//! Two contracts, probed with deliberately hostile embeddings (NaN, ±∞,
//! signed zeros, all-tie weights — every value class `rank_cmp`'s total
//! order has to absorb):
//!
//! * **Exhaustive probe ≡ exact scan.** With `nprobe == cells` the
//!   candidate union is the whole catalogue (each facet's cells partition
//!   the items no matter how degenerate the vectors are), so
//!   `IvfMode::ExactRescore` must reproduce the exact engine **bit for
//!   bit** — any catalogue size, chunk size, seen-filter, store, metric.
//! * **Partial probes stay deterministic.** At any `nprobe`, the ranked
//!   list is a well-formed top-k (ordered under `rank_cmp`, deduplicated,
//!   seen-filtered) and bit-identical across chunk sizes, scratch reuse,
//!   and `retrieve_batch` worker counts — approximation changes *which*
//!   items are considered, never introduces nondeterminism or a panic.

use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::WorkerPool;
use mars_serve::{
    rank_cmp, CellStore, IndexEmbeddings, IndexMetric, IvfConfig, IvfMode, RecQuery, RecResponse,
    RetrievalScratch, Retriever,
};
use mars_tensor::ops;
use proptest::prelude::*;
use std::sync::Arc;

/// A multi-facet embedding scorer whose score is exactly the coarse form
/// `Σ_f w_f · m(u_f, v_f)` — the values (including the weights) come from
/// a drawn pool that injects non-finite classes.
#[derive(Clone)]
struct EmbScorer {
    facets: usize,
    dim: usize,
    metric: IndexMetric,
    items: Vec<f32>,   // n × facets × dim
    users: Vec<f32>,   // u × facets × dim
    weights: Vec<f32>, // facets
}

impl EmbScorer {
    /// Builds the scorer from drawn knobs: a value pool (as hostile-class
    /// codes), facet/dim/metric selectors, and a catalogue size.
    fn from_draw(pool: &[u8], facets: usize, dim: usize, metric_code: u8, n: usize) -> Self {
        let users = 3usize;
        let fill = |len: usize, off: usize| -> Vec<f32> {
            (0..len)
                .map(|i| hostile(pool[(off + i) % pool.len()]))
                .collect()
        };
        EmbScorer {
            facets,
            dim,
            metric: if metric_code == 0 {
                IndexMetric::InnerProduct
            } else {
                IndexMetric::NegSquaredL2
            },
            items: fill(n * facets * dim, 0),
            users: fill(users * facets * dim, 7),
            weights: fill(facets, 3),
        }
    }
    fn item(&self, v: ItemId, f: usize) -> &[f32] {
        let s = (v as usize * self.facets + f) * self.dim;
        &self.items[s..s + self.dim]
    }
    fn user(&self, u: UserId, f: usize) -> &[f32] {
        let s = (u as usize * self.facets + f) * self.dim;
        &self.users[s..s + self.dim]
    }
    fn num_users(&self) -> usize {
        self.users.len() / (self.facets * self.dim)
    }
}

impl Scorer for EmbScorer {
    fn score(&self, u: UserId, v: ItemId) -> f32 {
        let mut s = 0.0;
        for f in 0..self.facets {
            let m = match self.metric {
                IndexMetric::InnerProduct => ops::dot(self.user(u, f), self.item(v, f)),
                IndexMetric::NegSquaredL2 => -ops::dist_sq(self.user(u, f), self.item(v, f)),
            };
            s += self.weights[f] * m;
        }
        s
    }
}

impl IndexEmbeddings for EmbScorer {
    fn num_index_facets(&self) -> usize {
        self.facets
    }
    fn index_dim(&self) -> usize {
        self.dim
    }
    fn index_metric(&self) -> IndexMetric {
        self.metric
    }
    fn item_index_vector(&self, v: ItemId, f: usize, out: &mut [f32]) {
        out.copy_from_slice(self.item(v, f));
    }
    fn query_index_vector(&self, user: UserId, f: usize, out: &mut [f32]) -> f32 {
        out.copy_from_slice(self.user(user, f));
        self.weights[f]
    }
}

/// Maps a drawn class code to a float, biased towards ordinary magnitudes
/// but guaranteeing non-finite and signed-zero coverage.
fn hostile(code: u8) -> f32 {
    match code {
        0 => f32::NAN,
        1 => f32::INFINITY,
        2 => f32::NEG_INFINITY,
        3 => 0.0,
        4 => -0.0,
        c => (c as f32 - 9.0) * 0.37, // 5..=13 → spread of ordinary values
    }
}

fn store_from(code: u8) -> CellStore {
    if code == 0 {
        CellStore::F32
    } else {
        CellStore::Int8
    }
}

fn mode_from(code: u8) -> IvfMode {
    match code {
        0 => IvfMode::ExactRescore,
        1 => IvfMode::Coarse { refine: 0 },
        _ => IvfMode::Coarse { refine: 3 },
    }
}

fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u64)> {
    v.iter().map(|&(i, s)| (i, s.to_bits() as u64)).collect()
}

/// Well-formedness of a ranked response: ordered under the total order,
/// deduplicated, nothing seen, at most k entries.
fn assert_well_formed(resp: &RecResponse, k: usize, seen: &[ItemId]) {
    assert!(resp.len() <= k);
    for w in resp.ranked.windows(2) {
        assert_ne!(
            rank_cmp(w[1], w[0]),
            std::cmp::Ordering::Less,
            "order violated: {:?}",
            resp.ranked
        );
    }
    let mut ids: Vec<ItemId> = resp.items();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), resp.len(), "duplicate ids surfaced");
    assert!(resp.items().iter().all(|v| seen.binary_search(v).is_err()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exhaustive probe + ExactRescore ≡ the exact engine, bitwise — for
    /// both metrics, both stores, hostile embeddings included.
    #[test]
    fn full_probe_exact_rescore_equals_exact_scan(
        pool in proptest::collection::vec(0u8..14, 16..600),
        (facets, dim, n) in (1usize..3, 1usize..6, 1usize..70),
        metric_code in 0u8..2,
        cells in 1usize..9,
        chunk in 1usize..80,
        seen_stride in 1usize..9,
        store_code in 0u8..2,
    ) {
        let model = EmbScorer::from_draw(&pool, facets, dim, metric_code, n);
        let seen: Vec<ItemId> = (0..n as ItemId).step_by(seen_stride).collect();
        let exact = Retriever::new(model, n).with_chunk_items(chunk);
        let indexed = exact.clone().with_index(IvfConfig {
            cells,
            nprobe: cells, // exhaustive even after build clamps cells to n
            store: store_from(store_code),
            mode: IvfMode::ExactRescore,
            ..IvfConfig::default()
        });
        for u in 0..exact.model().num_users() as UserId {
            for k in [1usize, n, n + 7] {
                let q = RecQuery::top_k(u, k).excluding(&seen);
                let got = indexed.retrieve(&q);
                let expect = exact.retrieve(&q);
                prop_assert!(
                    bits(&got.ranked) == bits(&expect.ranked),
                    "diverged: n {} cells {} chunk {} k {} user {}", n, cells, chunk, k, u
                );
            }
        }
    }

    /// Partial probes: every mode/store is panic-free on hostile input,
    /// well-formed, and bit-identical across chunk sizes, scratch reuse
    /// and worker counts.
    #[test]
    fn partial_probe_is_deterministic_and_well_formed(
        pool in proptest::collection::vec(0u8..14, 16..600),
        (facets, dim, n) in (1usize..3, 1usize..6, 1usize..60),
        metric_code in 0u8..2,
        (cells, nprobe, k) in (1usize..8, 1usize..8, 1usize..20),
        seen_stride in 2usize..9,
        store_code in 0u8..2,
        mode_code in 0u8..3,
    ) {
        let model = EmbScorer::from_draw(&pool, facets, dim, metric_code, n);
        let users = model.num_users();
        let seen: Vec<ItemId> = (0..n as ItemId).step_by(seen_stride).collect();
        let (store, mode) = (store_from(store_code), mode_from(mode_code));
        let base = Retriever::new(model, n).with_index(IvfConfig {
            cells,
            nprobe,
            store,
            mode,
            ..IvfConfig::default()
        });
        let queries: Vec<RecQuery<'_>> = (0..users as UserId)
            .map(|u| RecQuery::top_k(u, k).excluding(&seen))
            .collect();

        // Reference: chunk size 1, fresh scratch per query.
        let reference: Vec<RecResponse> = {
            let r = base.clone().with_chunk_items(1);
            queries.iter().map(|q| r.retrieve(q)).collect()
        };
        for resp in &reference {
            assert_well_formed(resp, k, &seen);
        }

        // Chunk sizes and scratch reuse cannot change a bit.
        for chunk in [2usize, 17, 256] {
            let r = base.clone().with_chunk_items(chunk);
            let mut scratch = RetrievalScratch::new();
            for (q, e) in queries.iter().zip(&reference) {
                let got = r.retrieve_with(q, &mut scratch);
                prop_assert!(
                    bits(&got.ranked) == bits(&e.ranked),
                    "chunk {} diverged ({:?} {:?})", chunk, store, mode
                );
            }
        }

        // Worker counts cannot change a bit.
        for workers in 1..=4usize {
            let got = base.retrieve_batch(&queries, &WorkerPool::new(workers));
            prop_assert_eq!(got.len(), reference.len());
            for (g, e) in got.iter().zip(&reference) {
                prop_assert!(
                    bits(&g.ranked) == bits(&e.ranked),
                    "{} workers diverged ({:?} {:?})", workers, store, mode
                );
            }
        }
    }

    /// Candidate-restricted queries bypass the index entirely: indexed and
    /// plain retrievers agree bitwise on any shortlist at any probe width.
    #[test]
    fn candidate_queries_bypass_the_index(
        pool in proptest::collection::vec(0u8..14, 16..400),
        (facets, dim, n) in (1usize..3, 1usize..5, 1usize..50),
        metric_code in 0u8..2,
        cands in proptest::collection::vec(0u32..50, 0..30),
        nprobe in 1usize..4,
        k in 0usize..15,
    ) {
        let model = EmbScorer::from_draw(&pool, facets, dim, metric_code, n);
        let mut cands: Vec<ItemId> =
            cands.into_iter().filter(|&v| (v as usize) < n).collect();
        cands.sort_unstable();
        cands.dedup();
        let exact = Retriever::new(model, n);
        let indexed = exact.clone().with_index(IvfConfig {
            cells: 3.min(n),
            nprobe,
            ..IvfConfig::default()
        });
        for u in 0..exact.model().num_users() as UserId {
            let q = RecQuery::top_k(u, k).among(&cands);
            prop_assert!(
                bits(&indexed.retrieve(&q).ranked) == bits(&exact.retrieve(&q).ranked),
                "shortlist of {} diverged", cands.len()
            );
        }
    }
}

/// Everything ties (zero weights): ranking degrades to the pure id
/// tie-break on every path through the index.
#[test]
fn all_tie_scores_rank_by_ascending_id_through_the_index() {
    let n = 40usize;
    let model = EmbScorer {
        facets: 1,
        dim: 2,
        metric: IndexMetric::InnerProduct,
        items: (0..n * 2).map(|i| (i % 7) as f32).collect(),
        users: vec![1.0; 4],
        weights: vec![0.0],
    };
    let seen = [0, 5];
    for mode in [
        IvfMode::ExactRescore,
        IvfMode::Coarse { refine: 0 },
        IvfMode::Coarse { refine: 2 },
    ] {
        let r = Retriever::new(model.clone(), n).with_index(IvfConfig {
            cells: 5,
            nprobe: 5,
            mode,
            ..IvfConfig::default()
        });
        let got = r.retrieve(&RecQuery::top_k(0, 6).excluding(&seen));
        assert_eq!(got.items(), vec![1, 2, 3, 4, 6, 7], "{mode:?}");
        assert!(got.ranked.iter().all(|&(_, s)| s == 0.0));
    }
}

/// The index handle is part of the retriever's cheap `Clone`: clones share
/// the same `Arc`-held index and serve identical results.
#[test]
fn cloned_retrievers_share_the_index() {
    let model = EmbScorer {
        facets: 2,
        dim: 3,
        metric: IndexMetric::NegSquaredL2,
        items: (0..60 * 2 * 3)
            .map(|i| ((i * 31) % 17) as f32 * 0.1)
            .collect(),
        users: (0..2 * 2 * 3).map(|i| (i % 5) as f32 * 0.2).collect(),
        weights: vec![0.7, 0.3],
    };
    let r = Retriever::new(model, 60).with_index(IvfConfig {
        cells: 6,
        nprobe: 2,
        ..IvfConfig::default()
    });
    let c = r.clone();
    assert!(Arc::ptr_eq(r.index().unwrap(), c.index().unwrap()));
    let q = RecQuery::top_k(1, 8);
    assert_eq!(bits(&r.retrieve(&q).ranked), bits(&c.retrieve(&q).ranked));
    // Detaching restores the exact scan without touching the clone.
    let plain = r.clone().without_index();
    assert!(plain.index().is_none());
    assert!(c.index().is_some());
}
