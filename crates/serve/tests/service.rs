//! Service-layer contracts, end to end:
//!
//! 1. **Coalescing bit-identity** — responses served through the queued,
//!    micro-batched [`RecService`] are bit-identical to direct
//!    [`Retriever::retrieve`] calls against the same snapshot, for every
//!    worker count 1..=8, several `max_batch`/`max_wait` configurations,
//!    and adversarial arrival interleavings (staggered submitter threads).
//! 2. **Snapshot coherence under hot-swap** — with a publisher thread
//!    swapping tagged snapshots mid-traffic, every response matches the
//!    reference ranking of **exactly one** tag (never a torn mix), and a
//!    request issued after the last publish sees the final tag.

use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::CounterRng;
use mars_serve::{RecRequest, RecService, Retriever, ServiceConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Structureless deterministic scorer keyed by an epoch tag: two tags
/// give unrelated score surfaces, so a response computed against one
/// snapshot can never accidentally equal another tag's ranking (the
/// tests assert that precondition on the references themselves).
struct Tagged {
    tag: u64,
}

impl Scorer for Tagged {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        let mut h = ((user as u64) << 32 | item as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ self.tag.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % 10_000) as f32 / 10_000.0
    }
}

fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u32)> {
    v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
}

const CATALOG: usize = 180;
const K: usize = 10;

fn seen_list() -> Vec<ItemId> {
    (0..CATALOG as ItemId).filter(|v| v % 7 == 0).collect()
}

#[test]
fn coalesced_responses_are_bit_identical_to_direct_retrieval() {
    const USERS: u32 = 96;
    const SUBMITTERS: usize = 4;
    // Miri executes every interleaving step interpreted; a handful of
    // requests per thread still exercises the coalescing invariant.
    const REQUESTS_PER_SUBMITTER: usize = if cfg!(miri) { 4 } else { 32 };

    let seen: Arc<[ItemId]> = seen_list().into();
    let reference = Retriever::new(Tagged { tag: 0 }, CATALOG);
    let expected: Vec<Vec<(ItemId, u32)>> = (0..USERS)
        .map(|u| {
            let req = RecRequest::top_k(u, K).excluding(Arc::clone(&seen));
            bits(&reference.retrieve(&req.as_query()).ranked)
        })
        .collect();
    let expected = Arc::new(expected);

    // (max_batch, max_wait): no coalescing, partial batches with a short
    // window, a window big enough to usually fill, and a huge batch with
    // a zero window (drain-only).
    let configs = [
        (1usize, Duration::ZERO),
        (3, Duration::from_micros(50)),
        (8, Duration::from_micros(200)),
        (32, Duration::ZERO),
    ];
    let worker_counts: &[usize] = if cfg!(miri) {
        &[2]
    } else {
        &[1, 2, 3, 4, 5, 6, 7, 8]
    };
    for &workers in worker_counts {
        for (ci, &(max_batch, max_wait)) in configs.iter().enumerate() {
            let service = Arc::new(RecService::start(
                Retriever::new(Tagged { tag: 0 }, CATALOG),
                ServiceConfig {
                    queue_depth: 64,
                    max_batch,
                    max_wait,
                    threads: workers,
                    ..ServiceConfig::default()
                },
            ));
            let handles: Vec<_> = (0..SUBMITTERS)
                .map(|t| {
                    let service = Arc::clone(&service);
                    let seen = Arc::clone(&seen);
                    let expected = Arc::clone(&expected);
                    thread::spawn(move || {
                        // Deterministic pseudo-random stagger so arrivals
                        // interleave differently per (worker, config, thread).
                        let mut rng = CounterRng::keyed(0xC0A1, (workers * 64 + ci * 8 + t) as u64);
                        for i in 0..REQUESTS_PER_SUBMITTER {
                            for _ in 0..rng.gen_below(2_000) {
                                std::hint::spin_loop();
                            }
                            let u = ((t * REQUESTS_PER_SUBMITTER + i) as u32 * 13) % USERS;
                            let req = RecRequest::top_k(u, K).excluding(Arc::clone(&seen));
                            let got = service.retrieve(&req).expect("service alive");
                            assert_eq!(got.user, u);
                            assert_eq!(
                                bits(&got.ranked),
                                expected[u as usize],
                                "user {u} diverged at workers={workers} \
                                 max_batch={max_batch} max_wait={max_wait:?}"
                            );
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("submitter panicked");
            }
        }
    }
}

#[test]
fn hot_swap_never_serves_a_torn_snapshot() {
    const USERS: u32 = 24;
    // Shortened under Miri: fewer epochs and a lower completion floor
    // keep the interpreted schedule tractable while still crossing
    // multiple publishes mid-traffic.
    const TAGS: u64 = if cfg!(miri) { 3 } else { 5 }; // snapshot versions 0..TAGS
    const CLIENTS: usize = 3;
    /// New completions the publisher waits for between swaps — guarantees
    /// a deterministic minimum of responses served per epoch.
    const COMPLETIONS_PER_EPOCH: u64 = if cfg!(miri) { 4 } else { 16 };

    let seen: Arc<[ItemId]> = seen_list().into();
    // refs[tag][user] = the ranking snapshot `tag` must produce.
    let refs: Vec<Vec<Vec<(ItemId, u32)>>> = (0..TAGS)
        .map(|tag| {
            let r = Retriever::new(Tagged { tag }, CATALOG);
            (0..USERS)
                .map(|u| {
                    let req = RecRequest::top_k(u, K).excluding(Arc::clone(&seen));
                    bits(&r.retrieve(&req.as_query()).ranked)
                })
                .collect()
        })
        .collect();
    // Precondition for "matches exactly one tag" to be meaningful: the
    // per-user references of different tags are pairwise distinct.
    for a in 0..TAGS as usize {
        for b in a + 1..TAGS as usize {
            for (u, (ra, rb)) in refs[a].iter().zip(&refs[b]).enumerate() {
                assert_ne!(ra, rb, "tags {a}/{b} collide for user {u}");
            }
        }
    }
    let refs = Arc::new(refs);

    let worker_counts: &[usize] = if cfg!(miri) { &[2] } else { &[1, 2, 4, 8] };
    for &workers in worker_counts {
        let service = Arc::new(RecService::start(
            Retriever::new(Tagged { tag: 0 }, CATALOG),
            ServiceConfig {
                queue_depth: 64,
                max_batch: 8,
                max_wait: Duration::from_micros(100),
                threads: workers,
                ..ServiceConfig::default()
            },
        ));
        let completed = Arc::new(AtomicU64::new(0));
        let done = Arc::new(AtomicBool::new(false));
        // matched[tag]: responses consistent with that tag.
        let matched: Arc<Vec<AtomicU64>> = Arc::new((0..TAGS).map(|_| AtomicU64::new(0)).collect());

        let publisher = {
            let service = Arc::clone(&service);
            let completed = Arc::clone(&completed);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                for tag in 1..TAGS {
                    let floor = tag * COMPLETIONS_PER_EPOCH;
                    while completed.load(Ordering::Acquire) < floor {
                        thread::yield_now();
                    }
                    let version = service.publish(Retriever::new(Tagged { tag }, CATALOG));
                    assert_eq!(version, tag);
                }
                done.store(true, Ordering::Release);
            })
        };

        let clients: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let service = Arc::clone(&service);
                let seen = Arc::clone(&seen);
                let refs = Arc::clone(&refs);
                let completed = Arc::clone(&completed);
                let done = Arc::clone(&done);
                let matched = Arc::clone(&matched);
                thread::spawn(move || {
                    let mut i = 0u32;
                    while !done.load(Ordering::Acquire) {
                        let u = (i * 7 + t as u32) % USERS;
                        i += 1;
                        let req = RecRequest::top_k(u, K).excluding(Arc::clone(&seen));
                        let got = bits(&service.retrieve(&req).expect("service alive").ranked);
                        let hits: Vec<usize> = (0..TAGS as usize)
                            .filter(|&tag| refs[tag][u as usize] == got)
                            .collect();
                        assert_eq!(
                            hits.len(),
                            1,
                            "response for user {u} matches {} tags at {workers} workers — \
                             torn or stale-beyond-history snapshot",
                            hits.len()
                        );
                        // ORDERING: per-tag tally; the thread joins below happen-before
                        // the final Relaxed reads.
                        matched[hits[0]].fetch_add(1, Ordering::Relaxed);
                        completed.fetch_add(1, Ordering::Release);
                    }
                })
            })
            .collect();

        publisher.join().expect("publisher panicked");
        for c in clients {
            c.join().expect("client panicked");
        }

        // A request formed after the last publish must serve the final tag.
        let u = 5u32;
        let req = RecRequest::top_k(u, K).excluding(Arc::clone(&seen));
        let last = bits(&service.retrieve(&req).expect("service alive").ranked);
        assert_eq!(
            last,
            refs[(TAGS - 1) as usize][u as usize],
            "post-swap request did not see the final snapshot at {workers} workers"
        );

        // Epoch floors make ≥ COMPLETIONS_PER_EPOCH completions land before the first swap,
        // so tag 0 must have been observed; the final request pinned the
        // last tag. Every response matched exactly one epoch.
        // ORDERING: writers were joined above; these Relaxed reads are
        // the only remaining accesses.
        assert!(
            matched[0].load(Ordering::Relaxed) > 0,
            "no tag-0 responses observed at {workers} workers"
        );
        let total: u64 = matched.iter().map(|m| m.load(Ordering::Relaxed)).sum();
        assert_eq!(total, completed.load(Ordering::Acquire));
    }
}
