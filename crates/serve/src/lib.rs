//! # mars-serve
//!
//! The serving layer: ranked top-k retrieval over any [`Scorer`]. Offline
//! evaluation ranks a held-out item against 100 sampled negatives; serving
//! ranks the *whole catalogue* (or a caller-restricted candidate set) and
//! returns the k best. This crate makes that retrieval the first-class
//! public surface — every model that implements [`Scorer`] (MAR/MARS, all
//! eight baselines, any future scorer) rides the same engine:
//!
//! * [`RecQuery`] — one retrieval request: user, `k`, a sorted seen-item
//!   exclusion list, and an optional candidate restriction.
//! * [`Retriever`] — an `Arc`-shared frozen model snapshot plus the scan
//!   configuration. Single-query retrieval ([`Retriever::retrieve`]) scans
//!   the catalogue in chunks through [`Scorer::score_block`] and selects
//!   the top k with a bounded heap ([`topk`]); batched retrieval
//!   ([`Retriever::retrieve_batch`]) fans queries across a
//!   `mars-runtime` [`WorkerPool`](mars_runtime::WorkerPool).
//! * [`RecResponse`] — the ranked `(item, score)` list, best first.
//! * [`RetrievalScratch`] — reusable per-thread buffers; steady-state
//!   retrieval performs no allocation beyond the response itself, and the
//!   [`Retriever::retrieve_ranked_into`] variant none at all.
//!
//! ## Ordering contract
//!
//! Results are ordered by [`order::rank_cmp`], a **total** order: higher
//! score first, ties broken by ascending item id, and NaN scores ranked
//! strictly after every real score (see the module docs for the exact
//! rules). Totality is what makes retrieval well-defined on arbitrary
//! float output — a scorer that emits NaN degrades to "those items rank
//! last", never to an inconsistent comparator or a panic.
//!
//! ## Determinism contract
//!
//! The ranked list returned for a query is **bit-identical** to the
//! full-sort reference ([`topk::full_sort_top_k`]: materialize every
//! surviving candidate, sort, truncate) at *any* chunk size and *any*
//! worker count:
//!
//! * Per-item scores cannot depend on how the catalogue is chunked —
//!   that is [`Scorer`]'s bitwise-agreement contract (`score_block` ≡
//!   `score_many` ≡ per-item `score`).
//! * Bounded-heap selection keeps exactly the k first elements of the
//!   total order, and the final k·log k sort emits them in that order —
//!   the selection *strategy* can never change the selection *result*.
//! * Batched retrieval shards queries positionally
//!   ([`mars_runtime::chunk_ranges`]) and concatenates per-shard responses
//!   in shard order; each query is served independently, so the fan-out
//!   cannot reorder or perturb anything.
//!
//! The property tests assert all three axes (chunk size, worker count,
//! heap vs. full sort) down to the bit, for every scorer in the workspace.
//!
//! ## Sublinear retrieval (opt-in)
//!
//! The exact scan is O(catalogue) per query. For large catalogues a
//! [`Retriever`] can attach an IVF clustered index
//! ([`Retriever::with_index`]): item embeddings are partitioned per facet
//! with `mars-tensor::kmeans`, and a query scans only the `nprobe` best
//! cells — see the [`index`] module for the cell layout, the f32 / int8
//! block stores, and the two probe modes. The default
//! [`IvfMode::ExactRescore`] uses the index purely as a candidate
//! selector (returned scores are the model's own, and `nprobe == cells`
//! reproduces the exact scan bit-for-bit); nothing changes for retrievers
//! that never opt in, and candidate-restricted queries always take the
//! exact path.
//!
//! ## Serving under load (the [`service`] module)
//!
//! Everything above is a synchronous library call. [`RecService`] is the
//! online front-end over it: concurrent callers submit owned
//! [`RecRequest`]s onto a bounded queue, a dispatcher thread coalesces
//! whatever is waiting into micro-batches ([`ServiceConfig::max_batch`] /
//! [`ServiceConfig::max_wait`]) and fans each batch across a worker pool
//! with [`Retriever::retrieve_batch`], and a [`SnapshotCell`] lets a
//! trainer atomically publish a new snapshot (model + index together)
//! while the old one serves. Coalescing is response-invisible — every
//! answer is bit-identical to a direct [`Retriever::retrieve`] against
//! the same snapshot — and every batch is served against exactly one
//! coherent snapshot; see the [`service`] module docs for both contracts.
//!
//! The service is additionally **fault-tolerant**: per-request deadlines
//! dropped at dequeue, a hysteresis degradation ladder over
//! [`ServingSnapshot`] rungs, and a supervised dispatcher that survives
//! scorer panics under a bounded restart budget — the [`service`] module
//! docs specify each guarantee, and the [`fault`] module provides the
//! deterministic fault-injection harness ([`FaultScorer`]) the chaos
//! tests drive them with.

pub mod fault;
pub mod index;
pub mod order;
pub mod query;
pub mod retriever;
pub mod service;
pub mod topk;

pub use fault::{Fault, FaultConfig, FaultScorer};
pub use index::{CellStore, IndexEmbeddings, IndexMetric, IvfConfig, IvfIndex, IvfMode};
pub use order::rank_cmp;
pub use query::{RecQuery, RecResponse};
pub use retriever::{rank_into, RetrievalScratch, Retriever, DEFAULT_CHUNK_ITEMS};
pub use service::{
    DegradeConfig, RecRequest, RecService, ServiceConfig, ServiceError, ServiceStats,
    ServingSnapshot, SnapshotCell, SnapshotReader,
};
pub use topk::full_sort_top_k;

// Doc-link target for the crate-level docs.
#[doc(no_inline)]
pub use mars_metrics::Scorer;
