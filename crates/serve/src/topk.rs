//! Bounded-heap top-k selection, plus the full-sort reference it is
//! asserted identical to.
//!
//! The heap keeps the k best candidates seen so far with the **worst kept
//! candidate at the root** (a max-heap under [`rank_cmp`], whose `Greater`
//! means "ranks later"). Offering a candidate is O(1) when it cannot enter
//! the top k — one comparison against the root — and O(log k) when it can,
//! so a catalogue scan costs O(n + k·log n) instead of the full sort's
//! O(n·log n), and needs k slots of memory instead of n.
//!
//! Because [`rank_cmp`] is a total order, the k candidates the heap
//! retains are exactly the k first elements of the sorted candidate list —
//! selection strategy cannot change the selection result, which is what
//! the property tests pin down bit-for-bit against [`full_sort_top_k`].

use crate::order::rank_cmp;
use crate::query::RecQuery;
use mars_data::ItemId;
use mars_metrics::Scorer;
use std::cmp::Ordering;

/// Offers one candidate to a bounded heap of capacity `k`. `heap` must
/// only be mutated through this function (and emptied with
/// [`drain_ranked`] / `clear`) to preserve the heap invariant.
#[inline]
pub(crate) fn offer(heap: &mut Vec<(ItemId, f32)>, k: usize, cand: (ItemId, f32)) {
    if k == 0 {
        return;
    }
    if heap.len() < k {
        heap.push(cand);
        let last = heap.len() - 1;
        sift_up(heap, last);
    } else if rank_cmp(cand, heap[0]) == Ordering::Less {
        heap[0] = cand;
        sift_down(heap);
    }
}

/// Sorts the heap's contents into rank order (best first), leaving them in
/// place. O(k·log k) — on k elements, not the catalogue.
pub(crate) fn drain_ranked(heap: &mut [(ItemId, f32)]) {
    heap.sort_unstable_by(|&a, &b| rank_cmp(a, b));
}

fn sift_up(heap: &mut [(ItemId, f32)], mut i: usize) {
    while i > 0 {
        let parent = (i - 1) / 2;
        if rank_cmp(heap[i], heap[parent]) == Ordering::Greater {
            heap.swap(i, parent);
            i = parent;
        } else {
            break;
        }
    }
}

fn sift_down(heap: &mut [(ItemId, f32)]) {
    let n = heap.len();
    let mut i = 0;
    loop {
        let left = 2 * i + 1;
        if left >= n {
            break;
        }
        let right = left + 1;
        // The child that ranks latest must bubble toward the root.
        let worst = if right < n && rank_cmp(heap[right], heap[left]) == Ordering::Greater {
            right
        } else {
            left
        };
        if rank_cmp(heap[worst], heap[i]) == Ordering::Greater {
            heap.swap(i, worst);
            i = worst;
        } else {
            break;
        }
    }
}

/// The full-sort reference selection: materialize every candidate that
/// survives the query's filters, score them in one
/// [`Scorer::score_many`] call, sort the whole list under [`rank_cmp`],
/// truncate to k.
///
/// This is the pre-serve `MultiFacetModel::recommend` algorithm (with the
/// NaN-unsound comparator replaced by the total order) — kept public as
/// the A/B baseline the bounded-heap engine is property-tested and
/// benchmarked against, the way `evaluate_pairs_sequential` anchors the
/// batched evaluator.
pub fn full_sort_top_k<S: Scorer + ?Sized>(
    model: &S,
    catalog_items: usize,
    query: &RecQuery<'_>,
) -> Vec<(ItemId, f32)> {
    let survives = |v: ItemId| query.seen.binary_search(&v).is_err();
    let candidates: Vec<ItemId> = match query.candidates {
        Some(cands) => cands.iter().copied().filter(|&v| survives(v)).collect(),
        None => (0..catalog_items as ItemId)
            .filter(|&v| survives(v))
            .collect(),
    };
    let mut scores = Vec::new();
    model.score_many(query.user, &candidates, &mut scores);
    let mut ranked: Vec<(ItemId, f32)> = candidates.into_iter().zip(scores).collect();
    ranked.sort_by(|&a, &b| rank_cmp(a, b));
    ranked.truncate(query.k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;

    fn select(k: usize, cands: &[(ItemId, f32)]) -> Vec<(ItemId, f32)> {
        let mut heap = Vec::new();
        for &c in cands {
            offer(&mut heap, k, c);
        }
        drain_ranked(&mut heap);
        heap
    }

    #[test]
    fn zero_k_keeps_nothing() {
        assert!(select(0, &[(0, 1.0), (1, 2.0)]).is_empty());
    }

    #[test]
    fn keeps_the_best_k_in_rank_order() {
        let cands = [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.9), (4, -1.0)];
        assert_eq!(select(2, &cands), vec![(1, 0.9), (3, 0.9)]);
        assert_eq!(select(3, &cands), vec![(1, 0.9), (3, 0.9), (2, 0.5)]);
        // k beyond the candidate count returns everything, ranked.
        assert_eq!(
            select(99, &cands),
            vec![(1, 0.9), (3, 0.9), (2, 0.5), (0, 0.1), (4, -1.0)]
        );
    }

    #[test]
    fn nan_scores_are_kept_only_when_nothing_real_competes() {
        let cands = [(0, f32::NAN), (1, 0.0), (2, f32::NAN), (3, -5.0)];
        assert_eq!(select(2, &cands), vec![(1, 0.0), (3, -5.0)]);
        let all = select(4, &cands);
        let ids: Vec<ItemId> = all.iter().map(|&(v, _)| v).collect();
        assert_eq!(ids, vec![1, 3, 0, 2]);
    }

    #[test]
    fn heap_matches_sorted_truncation_on_adversarial_orders() {
        // Feed the same candidate set in several permutations; the kept
        // set and order must be identical (bitwise) every time.
        let base: Vec<(ItemId, f32)> = (0..40)
            .map(|i| (i as ItemId, ((i * 37 % 11) as f32 - 5.0) / 3.0))
            .collect();
        let mut sorted = base.clone();
        sorted.sort_by(|&a, &b| rank_cmp(a, b));
        for k in [1usize, 7, 39, 40, 64] {
            let mut expect = sorted.clone();
            expect.truncate(k);
            let fwd = select(k, &base);
            let rev: Vec<_> = base.iter().rev().copied().collect();
            assert_eq!(select(k, &rev), fwd);
            let bits = |v: &[(ItemId, f32)]| -> Vec<(ItemId, u32)> {
                v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
            };
            assert_eq!(bits(&fwd), bits(&expect), "k = {k}");
        }
    }
}
