//! The request/response pair of the retrieval API.

use mars_data::{ItemId, UserId};

/// One top-k retrieval request.
///
/// Borrows its item lists so a serving loop can issue queries without
/// copying per-request state; the struct is `Copy` and cheap to fan out.
///
/// ```
/// use mars_serve::RecQuery;
/// let seen = vec![3, 8, 21];
/// let q = RecQuery::top_k(7, 10).excluding(&seen);
/// assert_eq!(q.user, 7);
/// assert_eq!(q.k, 10);
/// assert_eq!(q.seen, &seen[..]);
/// assert!(q.candidates.is_none());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RecQuery<'a> {
    /// The user to recommend for.
    pub user: UserId,
    /// How many items to return (fewer if the candidate set is smaller).
    pub k: usize,
    /// Items to exclude — typically the user's training interactions.
    /// **Must be sorted ascending** (the engine filters by binary search,
    /// exactly like `Interactions::items_of` provides its lists).
    pub seen: &'a [ItemId],
    /// Restrict scoring to these items instead of the whole catalogue
    /// (e.g. a business-rules prefilter or an ANN shortlist). Ids must be
    /// within the retriever's catalogue; duplicates are returned as drawn.
    pub candidates: Option<&'a [ItemId]>,
}

impl<'a> RecQuery<'a> {
    /// A catalogue-wide query with no exclusions.
    pub fn top_k(user: UserId, k: usize) -> Self {
        Self {
            user,
            k,
            seen: &[],
            candidates: None,
        }
    }

    /// Excludes `seen` (sorted ascending) from the results.
    pub fn excluding(mut self, seen: &'a [ItemId]) -> Self {
        debug_assert!(
            seen.windows(2).all(|w| w[0] <= w[1]),
            "RecQuery::excluding requires a sorted seen list"
        );
        self.seen = seen;
        self
    }

    /// Restricts scoring to `candidates` (in place of the full catalogue).
    pub fn among(mut self, candidates: &'a [ItemId]) -> Self {
        self.candidates = Some(candidates);
        self
    }
}

/// The ranked answer to one [`RecQuery`], best item first, ordered by
/// [`crate::order::rank_cmp`].
#[derive(Clone, Debug, PartialEq)]
pub struct RecResponse {
    /// The user the query was for.
    pub user: UserId,
    /// Up to `k` `(item, score)` pairs in rank order.
    pub ranked: Vec<(ItemId, f32)>,
    /// `true` iff the serving layer answered from a reduced-fidelity rung
    /// of its degradation ladder (see `service::ServingSnapshot`). Always
    /// `false` for direct [`Retriever`](crate::Retriever) calls — those
    /// compute exactly what was asked.
    pub degraded: bool,
}

impl RecResponse {
    /// Just the item ids, in rank order — the shape the beyond-accuracy
    /// metrics (`mars-metrics::beyond_accuracy`) consume.
    pub fn items(&self) -> Vec<ItemId> {
        self.ranked.iter().map(|&(v, _)| v).collect()
    }

    /// Number of returned items (≤ the query's `k`).
    pub fn len(&self) -> usize {
        self.ranked.len()
    }

    /// Whether nothing survived the filters.
    pub fn is_empty(&self) -> bool {
        self.ranked.is_empty()
    }
}
