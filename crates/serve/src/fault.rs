//! Deterministic fault injection for the serving layer.
//!
//! [`FaultScorer`] wraps any inner [`Scorer`] and injects the three
//! failure families the fault-tolerance layer must absorb, each on a
//! reproducible schedule:
//!
//! * **Panics** — a poisoned score call unwinds, exercising the
//!   dispatcher's `catch_unwind` + supervisor restart path.
//! * **NaN storms** — scores replaced by `NaN` for a deterministic subset
//!   of `(user, item)` pairs, exercising the NaN-total-order ranking
//!   contract (`order::rank_cmp` places NaN strictly last).
//! * **Latency** — injected sleeps, exercising deadline drops and the
//!   degradation ladder's latency trigger.
//!
//! ## Determinism discipline
//!
//! The two *value-affecting* faults are pure functions of the injection
//! seed and the score call's arguments: whether `(user, item)` scores as
//! NaN depends only on `(seed, user, item)` — never on call order — so a
//! `FaultScorer` still satisfies the [`Scorer`] purity contract and the
//! service's bit-identity guarantee holds against a *reference*
//! `FaultScorer` built with the same seed. The *timing* faults (panics,
//! sleeps) key off a global call counter through a [`CounterRng`]-derived
//! schedule: reproducible for a single-threaded caller, and in the
//! concurrent chaos test simply "a panic happens roughly every N calls",
//! which is all the invariants need.
//!
//! Injection is armed per-family at runtime ([`FaultScorer::arm`]), so a
//! chaos test can drive distinct fault phases through one scorer instance
//! (and its already-published snapshots).

use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::CounterRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Which fault family to arm/disarm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic in `score` on scheduled calls.
    Panic,
    /// Score a deterministic subset of `(user, item)` pairs as NaN.
    Nan,
    /// Sleep in `score` on scheduled calls.
    Latency,
}

/// Fault-injection schedule knobs (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Injection seed: keys both the NaN subset and the call-counter
    /// schedules.
    pub seed: u64,
    /// Roughly one panic per this many score calls while `Panic` is
    /// armed (min 1).
    pub panic_every: u64,
    /// NaN probability per `(user, item)` pair while `Nan` is armed,
    /// as a numerator over 2^16.
    pub nan_per_2_16: u64,
    /// Roughly one injected sleep per this many score calls while
    /// `Latency` is armed (min 1).
    pub sleep_every: u64,
    /// Duration of each injected sleep.
    pub sleep_for: Duration,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_fa17,
            panic_every: 5_000,
            nan_per_2_16: 6_554, // ~10% of pairs
            sleep_every: 64,
            sleep_for: Duration::from_millis(2),
        }
    }
}

/// A [`Scorer`] wrapper that injects panics, NaNs, and latency on a
/// deterministic schedule (see the module docs). Only `score` is
/// implemented, so the block/many/single default-agreement of the inner
/// scorer is preserved fault-for-fault.
pub struct FaultScorer<S> {
    inner: S,
    cfg: FaultConfig,
    /// Global score-call counter driving the panic/sleep schedules.
    calls: AtomicU64,
    panic_armed: AtomicBool,
    nan_armed: AtomicBool,
    latency_armed: AtomicBool,
}

impl<S: Scorer> FaultScorer<S> {
    /// Wraps `inner` with all fault families disarmed.
    pub fn new(inner: S, cfg: FaultConfig) -> Self {
        Self {
            inner,
            cfg,
            calls: AtomicU64::new(0),
            panic_armed: AtomicBool::new(false),
            nan_armed: AtomicBool::new(false),
            latency_armed: AtomicBool::new(false),
        }
    }

    /// Arms or disarms one fault family. Takes effect on the next score
    /// call; safe to flip from any thread while serving.
    pub fn arm(&self, fault: Fault, on: bool) {
        match fault {
            Fault::Panic => self.panic_armed.store(on, Ordering::SeqCst),
            Fault::Nan => self.nan_armed.store(on, Ordering::SeqCst),
            Fault::Latency => self.latency_armed.store(on, Ordering::SeqCst),
        }
    }

    /// Disarms every fault family.
    pub fn disarm_all(&self) {
        self.arm(Fault::Panic, false);
        self.arm(Fault::Nan, false);
        self.arm(Fault::Latency, false);
    }

    /// Total score calls observed so far.
    pub fn calls(&self) -> u64 {
        // ORDERING: a monotone statistics counter — readers only need an
        // eventually-consistent total, never cross-variable ordering.
        self.calls.load(Ordering::Relaxed)
    }

    /// Whether `(user, item)` scores as NaN under this seed while `Nan`
    /// is armed — pure in `(seed, user, item)`, so a reference scorer
    /// with the same seed agrees call-for-call.
    pub fn is_nan_pair(&self, user: UserId, item: ItemId) -> bool {
        let mut rng = CounterRng::keyed(self.cfg.seed, (user as u64) << 32 | item as u64);
        rng.gen_below(1 << 16) < self.cfg.nan_per_2_16
    }

    /// Whether the call-counter schedule fires at `call` for a period of
    /// `every` (decorrelated from other schedules by `stream`).
    fn scheduled(&self, call: u64, every: u64, stream: u64) -> bool {
        let every = every.max(1);
        // One deterministic "hit" offset per period, drawn per-period so
        // hits don't align across periods.
        let period = call / every;
        let mut rng = CounterRng::keyed(self.cfg.seed ^ stream, period);
        call % every == rng.gen_below(every)
    }
}

impl<S: Scorer> Scorer for FaultScorer<S> {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        // ORDERING: each armed flag is an independent on/off latch and the
        // call counter only tickets the fault schedule; no load below
        // synchronizes-with any other memory, so Relaxed suffices — arming
        // takes effect "on the next call", not at a synchronized instant.
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        if self.latency_armed.load(Ordering::Relaxed)
            && self.scheduled(call, self.cfg.sleep_every, 0x1a7e)
        {
            std::thread::sleep(self.cfg.sleep_for);
        }
        if self.panic_armed.load(Ordering::Relaxed)
            && self.scheduled(call, self.cfg.panic_every, 0xdead)
        {
            panic!("injected fault: scorer panic at call {call}");
        }
        if self.nan_armed.load(Ordering::Relaxed) && self.is_nan_pair(user, item) {
            return f32::NAN;
        }
        self.inner.score(user, item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Unit;
    impl Scorer for Unit {
        fn score(&self, user: UserId, item: ItemId) -> f32 {
            (user as f32) + (item as f32) / 1024.0
        }
    }

    #[test]
    fn disarmed_scorer_is_transparent() {
        let f = FaultScorer::new(Unit, FaultConfig::default());
        for u in 0..20 {
            for i in 0..20 {
                assert_eq!(f.score(u, i).to_bits(), Unit.score(u, i).to_bits());
            }
        }
        assert_eq!(f.calls(), 400);
    }

    #[test]
    fn nan_subset_is_pure_in_user_item() {
        let a = FaultScorer::new(Unit, FaultConfig::default());
        let b = FaultScorer::new(Unit, FaultConfig::default());
        a.arm(Fault::Nan, true);
        b.arm(Fault::Nan, true);
        let mut nans = 0;
        // Different call orders, identical verdicts.
        for u in 0..32u32 {
            for i in 0..32u32 {
                let sa = a.score(u, i);
                let sb = b.score(31 - u, 31 - i); // b visits in reverse
                assert_eq!(sa.is_nan(), a.is_nan_pair(u, i));
                assert_eq!(sb.is_nan(), b.is_nan_pair(31 - u, 31 - i));
                if sa.is_nan() {
                    nans += 1;
                }
            }
        }
        // ~10% of 1024 pairs; generous band.
        assert!(nans > 30 && nans < 300, "nan count {nans} out of band");
        // And the two instances agree pair-for-pair.
        for u in 0..32u32 {
            for i in 0..32u32 {
                assert_eq!(a.is_nan_pair(u, i), b.is_nan_pair(u, i));
            }
        }
    }

    #[test]
    fn panic_schedule_fires_at_the_configured_rate() {
        let f = FaultScorer::new(
            Unit,
            FaultConfig {
                panic_every: 50,
                ..FaultConfig::default()
            },
        );
        f.arm(Fault::Panic, true);
        let mut panics = 0;
        for u in 0..10u32 {
            for i in 0..100u32 {
                if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f.score(u, i))).is_err()
                {
                    panics += 1;
                }
            }
        }
        // 1000 calls at one-per-50: exactly one hit per full period.
        assert_eq!(panics, 20);
    }
}
