//! The total-order ranking comparator every retrieval path shares.
//!
//! `f32` is only partially ordered (NaN compares to nothing), so ranking
//! raw scores with `partial_cmp(..).unwrap_or(Equal)` — what
//! `MultiFacetModel::recommend` did before this crate existed — silently
//! breaks sort transitivity the moment a scorer emits NaN: `sort_by` may
//! then produce *any* permutation, including different ones for the same
//! input on different code paths. Retrieval instead ranks by
//! [`rank_cmp`], which is total, antisymmetric and transitive over every
//! `(item, score)` pair, NaN included.

use mars_data::ItemId;
use std::cmp::Ordering;

/// Ranking comparator: `Less` means `a` ranks strictly before (is a better
/// recommendation than) `b`. Sorting a candidate list ascending under this
/// comparator yields the response order.
///
/// The order, from best to worst:
///
/// 1. Real (non-NaN) scores, descending. `-0.0` and `+0.0` compare equal
///    (IEEE equality), so they fall through to the id tie-break.
/// 2. Equal real scores: ascending item id — the deterministic tie-break.
/// 3. NaN scores rank after every real score (even `-∞`), regardless of
///    the NaN's sign or payload; among themselves NaN-scored items order
///    by ascending item id.
///
/// This is a **total order** as long as ids are distinct within one
/// candidate set, and deterministic even with duplicates (equal ids imply
/// bit-equal scores under the [`Scorer`](mars_metrics::Scorer) purity
/// contract, so `Equal` elements are indistinguishable).
#[inline]
pub fn rank_cmp(a: (ItemId, f32), b: (ItemId, f32)) -> Ordering {
    match (a.1.is_nan(), b.1.is_nan()) {
        // Descending score; the unwrap cannot fail — neither side is NaN.
        (false, false) => b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)),
        (true, true) => a.0.cmp(&b.0),
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn higher_score_ranks_first() {
        assert_eq!(rank_cmp((5, 2.0), (1, 1.0)), Ordering::Less);
        assert_eq!(rank_cmp((1, 1.0), (5, 2.0)), Ordering::Greater);
        assert_eq!(rank_cmp((0, f32::INFINITY), (1, f32::MAX)), Ordering::Less);
    }

    #[test]
    fn ties_break_by_ascending_item_id() {
        assert_eq!(rank_cmp((3, 1.0), (7, 1.0)), Ordering::Less);
        assert_eq!(rank_cmp((7, 1.0), (3, 1.0)), Ordering::Greater);
        assert_eq!(rank_cmp((4, 1.0), (4, 1.0)), Ordering::Equal);
        // Signed zeros are IEEE-equal: the id decides.
        assert_eq!(rank_cmp((2, -0.0), (9, 0.0)), Ordering::Less);
        assert_eq!(rank_cmp((9, 0.0), (2, -0.0)), Ordering::Greater);
    }

    #[test]
    fn nan_ranks_after_everything_real() {
        assert_eq!(
            rank_cmp((0, f32::NAN), (9, f32::NEG_INFINITY)),
            Ordering::Greater
        );
        assert_eq!(
            rank_cmp((9, f32::NEG_INFINITY), (0, f32::NAN)),
            Ordering::Less
        );
        // Sign and payload of the NaN are irrelevant; ids order NaNs.
        assert_eq!(rank_cmp((1, -f32::NAN), (2, f32::NAN)), Ordering::Less);
        assert_eq!(rank_cmp((2, f32::NAN), (1, -f32::NAN)), Ordering::Greater);
    }

    #[test]
    fn total_order_on_a_hostile_score_set() {
        // Sorting under rank_cmp must be a permutation-stable total order
        // even with NaN / ±∞ / ±0 mixed in: sort twice from different
        // starting permutations and require identical results.
        let scores = [
            1.0,
            f32::NAN,
            -0.0,
            0.0,
            f32::NEG_INFINITY,
            f32::INFINITY,
            -f32::NAN,
            1.0,
        ];
        let mut a: Vec<(ItemId, f32)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as ItemId, s))
            .collect();
        let mut b: Vec<(ItemId, f32)> = a.iter().rev().copied().collect();
        a.sort_by(|&x, &y| rank_cmp(x, y));
        b.sort_by(|&x, &y| rank_cmp(x, y));
        let bits = |v: &[(ItemId, f32)]| -> Vec<(ItemId, u32)> {
            v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
        };
        assert_eq!(bits(&a), bits(&b));
        let order: Vec<ItemId> = a.iter().map(|&(i, _)| i).collect();
        // +∞, then the two 1.0s by id, then ±0 by id, then -∞, then NaNs by id.
        assert_eq!(order, vec![5, 0, 7, 2, 3, 4, 1, 6]);
    }
}
