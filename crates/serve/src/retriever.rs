//! The retrieval engine: chunked catalogue scan → bounded-heap selection,
//! single-query and batched.

use crate::index::{IndexEmbeddings, IvfConfig, IvfIndex, IvfMode, IvfScratch};
use crate::query::{RecQuery, RecResponse};
use crate::topk;
use mars_data::ItemId;
use mars_metrics::Scorer;
use mars_runtime::{chunk_ranges, WorkerPool};
use std::sync::Arc;

/// Default scan-chunk size. Large enough to amortize the per-call user
/// setup a [`Scorer::score_block`] override hoists (Θ softmax, facet
/// gather, norms), small enough that a chunk's ids + scores stay cache
/// resident. Any value produces bit-identical results (see the crate
/// docs); this only tunes throughput.
pub const DEFAULT_CHUNK_ITEMS: usize = 256;

/// Reusable buffers for one retrieval thread. Capacities persist across
/// queries, so a serving loop that keeps its scratch reaches a steady
/// state with **zero allocations per request** (via
/// [`Retriever::retrieve_ranked_into`]; the `RecResponse`-returning
/// variants allocate only the response vector).
#[derive(Default)]
pub struct RetrievalScratch {
    /// Current chunk's candidate ids, post seen-filter.
    pub(crate) ids: Vec<ItemId>,
    /// Their scores (`score_block` output).
    pub(crate) scores: Vec<f32>,
    /// The bounded top-k heap.
    pub(crate) heap: Vec<(ItemId, f32)>,
    /// Buffers for the opt-in IVF probe path (unused by the exact scan).
    pub(crate) ivf: IvfScratch,
}

impl RetrievalScratch {
    /// Empty scratch; buffers grow to steady-state capacity on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Runs one query against `model` over a catalogue of `catalog_items`
/// items, scanning in chunks of `chunk_items`, and writes the ranked
/// result into `out` (cleared first, best item first).
///
/// This free function is the whole single-query engine; [`Retriever`]
/// wraps it with a shared model snapshot, and
/// `MultiFacetModel::recommend` delegates here with a borrowed model.
/// Steady-state cost: no allocation (given warm `scratch`/`out`), one
/// [`Scorer::score_block`] call per chunk, one `rank_cmp` comparison per
/// surviving candidate plus O(log k) per top-k entry, and a final
/// O(k·log k) ordering pass — never a catalogue-sized sort.
pub fn rank_into<S: Scorer + ?Sized>(
    model: &S,
    catalog_items: usize,
    chunk_items: usize,
    query: &RecQuery<'_>,
    scratch: &mut RetrievalScratch,
    out: &mut Vec<(ItemId, f32)>,
) {
    debug_assert!(
        query.seen.windows(2).all(|w| w[0] <= w[1]),
        "RecQuery.seen must be sorted ascending"
    );
    out.clear();
    scratch.heap.clear();
    let k = query.k;
    if k == 0 || catalog_items == 0 {
        return;
    }
    let chunk = chunk_items.max(1);
    let survives = |v: ItemId| query.seen.binary_search(&v).is_err();

    // One closure scores the staged chunk and offers it to the heap; the
    // two scan modes below only differ in how they stage `scratch.ids`.
    let score_chunk = |ids: &[ItemId], scores: &mut Vec<f32>, heap: &mut Vec<(ItemId, f32)>| {
        if ids.is_empty() {
            return;
        }
        model.score_block(query.user, ids, scores);
        for (&v, &s) in ids.iter().zip(scores.iter()) {
            topk::offer(heap, k, (v, s));
        }
    };

    match query.candidates {
        // Catalogue scan: contiguous id ranges, seen-filtered.
        None => {
            let mut start = 0usize;
            while start < catalog_items {
                let end = (start + chunk).min(catalog_items);
                scratch.ids.clear();
                scratch
                    .ids
                    .extend((start as ItemId..end as ItemId).filter(|&v| survives(v)));
                score_chunk(&scratch.ids, &mut scratch.scores, &mut scratch.heap);
                start = end;
            }
        }
        // Restricted scan: the caller's candidate list, in caller order
        // (order cannot matter — the ranking is a total order over ids).
        Some(cands) => {
            for chunk_slice in cands.chunks(chunk) {
                scratch.ids.clear();
                scratch.ids.extend(chunk_slice.iter().copied().filter(|&v| {
                    debug_assert!(
                        (v as usize) < catalog_items,
                        "candidate {v} outside the catalogue"
                    );
                    survives(v)
                }));
                score_chunk(&scratch.ids, &mut scratch.scores, &mut scratch.heap);
            }
        }
    }

    topk::drain_ranked(&mut scratch.heap);
    out.extend_from_slice(&scratch.heap);
}

/// Top-k retrieval over an `Arc`-shared frozen model snapshot.
///
/// Cloning a `Retriever` clones the `Arc`, not the model — every serving
/// thread can hold its own handle to one set of parameters. Training
/// happens elsewhere; to deploy a new snapshot, build a new `Retriever`
/// and swap it in.
///
/// ```
/// use mars_serve::{RecQuery, Retriever};
/// use mars_data::{ItemId, UserId};
/// use mars_metrics::Scorer;
///
/// struct Popularity;
/// impl Scorer for Popularity {
///     fn score(&self, _u: UserId, item: ItemId) -> f32 { -(item as f32) }
/// }
///
/// let r = Retriever::new(Popularity, 100);
/// let seen = [0, 1];
/// let resp = r.retrieve(&RecQuery::top_k(7, 3).excluding(&seen));
/// assert_eq!(resp.items(), vec![2, 3, 4]); // best unseen under the scorer
/// ```
pub struct Retriever<S: ?Sized> {
    model: Arc<S>,
    catalog_items: usize,
    chunk_items: usize,
    ivf: Option<IvfHandle<S>>,
}

/// An attached IVF index plus the monomorphized probe entry point.
///
/// [`Retriever::with_index`] requires `S: IndexEmbeddings`, but the
/// retrieval surface is generic over plain `S: Scorer` — storing the
/// search routine as a `fn` pointer captured at attach time lets the
/// `Scorer`-bounded paths route through the index without widening their
/// bounds (and keeps `Clone` a cheap `Arc` + pointer copy).
struct IvfHandle<S: ?Sized> {
    index: Arc<IvfIndex>,
    /// Cells probed per facet — initialized from the index's build-time
    /// value, overridable per retriever ([`Retriever::with_probe`]) so
    /// several retrievers can share one index at different fidelity.
    nprobe: usize,
    /// Probe mode, same per-retriever override discipline as `nprobe`.
    mode: IvfMode,
    search: IvfSearchFn<S>,
}

/// The monomorphized probe routine an [`IvfHandle`] stores: the arguments
/// of [`Retriever::retrieve_ranked_into`] plus the index, the handle's
/// `nprobe`/`mode` overrides, and the chunk size.
type IvfSearchFn<S> = fn(
    &S,
    &IvfIndex,
    usize,
    IvfMode,
    usize,
    &RecQuery<'_>,
    &mut RetrievalScratch,
    &mut Vec<(ItemId, f32)>,
);

impl<S: ?Sized> Clone for IvfHandle<S> {
    fn clone(&self) -> Self {
        Self {
            index: Arc::clone(&self.index),
            nprobe: self.nprobe,
            mode: self.mode,
            search: self.search,
        }
    }
}

// Manual impl: `#[derive(Clone)]` would demand `S: Clone`, but only the
// handle is cloned.
impl<S: ?Sized> Clone for Retriever<S> {
    fn clone(&self) -> Self {
        Self {
            model: Arc::clone(&self.model),
            catalog_items: self.catalog_items,
            chunk_items: self.chunk_items,
            ivf: self.ivf.clone(),
        }
    }
}

impl<S: Scorer> Retriever<S> {
    /// Takes ownership of `model` as the served snapshot.
    pub fn new(model: S, catalog_items: usize) -> Self {
        Self::from_arc(Arc::new(model), catalog_items)
    }
}

impl<S: Scorer + ?Sized> Retriever<S> {
    /// Serves an already-shared snapshot (e.g. one also held by an
    /// evaluation thread).
    pub fn from_arc(model: Arc<S>, catalog_items: usize) -> Self {
        Self {
            model,
            catalog_items,
            chunk_items: DEFAULT_CHUNK_ITEMS,
            ivf: None,
        }
    }

    /// Overrides the scan-chunk size (min 1). Results are bit-identical
    /// at any value; this tunes throughput only.
    pub fn with_chunk_items(mut self, chunk_items: usize) -> Self {
        self.chunk_items = chunk_items.max(1);
        self
    }

    /// The served model snapshot.
    pub fn model(&self) -> &Arc<S> {
        &self.model
    }

    /// Catalogue size the retriever scans.
    pub fn catalog_items(&self) -> usize {
        self.catalog_items
    }

    /// Scan-chunk size in use.
    pub fn chunk_items(&self) -> usize {
        self.chunk_items
    }

    /// One query, fresh buffers — the convenience entry point.
    pub fn retrieve(&self, query: &RecQuery<'_>) -> RecResponse {
        self.retrieve_with(query, &mut RetrievalScratch::new())
    }

    /// One query with caller-held scratch (steady state: the response
    /// vector is the only allocation).
    pub fn retrieve_with(
        &self,
        query: &RecQuery<'_>,
        scratch: &mut RetrievalScratch,
    ) -> RecResponse {
        let mut ranked = Vec::new();
        self.retrieve_ranked_into(query, scratch, &mut ranked);
        RecResponse {
            user: query.user,
            ranked,
            // A direct retrieval computes exactly what was asked; only the
            // service's degradation ladder ever flips this.
            degraded: false,
        }
    }

    /// One query, fully allocation-free in steady state: the ranked list
    /// is written into `out` (cleared first), whose capacity — like the
    /// scratch buffers' — survives across requests.
    pub fn retrieve_ranked_into(
        &self,
        query: &RecQuery<'_>,
        scratch: &mut RetrievalScratch,
        out: &mut Vec<(ItemId, f32)>,
    ) {
        // Catalogue queries route through the attached IVF index, if any;
        // candidate-restricted queries always take the exact path (the
        // shortlist is already sublinear).
        if query.candidates.is_none() {
            if let Some(h) = &self.ivf {
                (h.search)(
                    self.model.as_ref(),
                    &h.index,
                    h.nprobe,
                    h.mode,
                    self.chunk_items,
                    query,
                    scratch,
                    out,
                );
                return;
            }
        }
        rank_into(
            self.model.as_ref(),
            self.catalog_items,
            self.chunk_items,
            query,
            scratch,
            out,
        );
    }

    /// The attached IVF index, if any.
    pub fn index(&self) -> Option<&Arc<IvfIndex>> {
        self.ivf.as_ref().map(|h| &h.index)
    }

    /// Overrides the probe fidelity of the attached index **for this
    /// retriever only** (`nprobe` min 1; no-op without an index). The
    /// index stores are shared untouched — this is how a degradation
    /// ladder stacks several fidelity rungs over one index build.
    pub fn with_probe(mut self, nprobe: usize, mode: IvfMode) -> Self {
        if let Some(h) = &mut self.ivf {
            h.nprobe = nprobe.max(1);
            h.mode = mode;
        }
        self
    }

    /// The `(nprobe, mode)` this retriever probes with, if it has an index.
    pub fn probe(&self) -> Option<(usize, IvfMode)> {
        self.ivf.as_ref().map(|h| (h.nprobe, h.mode))
    }

    /// Detaches any IVF index: back to the exact full scan.
    pub fn without_index(mut self) -> Self {
        self.ivf = None;
        self
    }
}

impl<S: IndexEmbeddings + ?Sized> Retriever<S> {
    /// Builds an IVF index over the served snapshot and routes every
    /// catalogue query through it (see [`crate::index`] for the recall /
    /// determinism trade-offs; the exact scan remains the default for
    /// retrievers that never call this).
    pub fn with_index(self, cfg: IvfConfig) -> Self {
        let index = IvfIndex::build(self.model.as_ref(), self.catalog_items, cfg);
        self.with_prebuilt_index(Arc::new(index))
    }

    /// Attaches an already-built index (e.g. one shared across retrievers,
    /// or re-tuned via [`IvfIndex::with_nprobe`]).
    ///
    /// # Panics
    /// If the index was built over a different catalogue size.
    pub fn with_prebuilt_index(mut self, index: Arc<IvfIndex>) -> Self {
        assert_eq!(
            index.items(),
            self.catalog_items,
            "IVF index built for a different catalogue"
        );
        self.ivf = Some(IvfHandle {
            nprobe: index.nprobe(),
            mode: index.mode(),
            index,
            search: crate::index::ivf_search::<S>,
        });
        self
    }
}

impl<S: Scorer + Sync + Send + ?Sized> Retriever<S> {
    /// Serves a batch of queries fanned across `pool`, one response per
    /// query in query order.
    ///
    /// Queries shard positionally ([`chunk_ranges`]) and each is served
    /// independently with its worker's own scratch, so — per the
    /// established shard-order-merge contract — the returned responses
    /// are **bit-identical at any worker count** to serving the queries
    /// one by one ([`Retriever::retrieve`]).
    pub fn retrieve_batch(&self, queries: &[RecQuery<'_>], pool: &WorkerPool) -> Vec<RecResponse> {
        struct Shard {
            range: std::ops::Range<usize>,
            scratch: RetrievalScratch,
            out: Vec<RecResponse>,
        }
        let mut shards: Vec<Shard> = chunk_ranges(queries.len(), pool.workers())
            .into_iter()
            .map(|range| Shard {
                out: Vec::with_capacity(range.len()),
                scratch: RetrievalScratch::new(),
                range,
            })
            .collect();
        pool.scatter(&mut shards, |_, sh| {
            sh.out.clear();
            for i in sh.range.clone() {
                sh.out
                    .push(self.retrieve_with(&queries[i], &mut sh.scratch));
            }
        });
        // Shards are contiguous in-order query ranges: shard order is
        // query order.
        let mut out = Vec::with_capacity(queries.len());
        for sh in shards {
            out.extend(sh.out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::full_sort_top_k;
    use mars_data::UserId;

    /// Structureless deterministic scorer (same scheme as the evaluator's
    /// protocol tests) — any scoring discrepancy moves some rank.
    struct Hashing;
    impl Scorer for Hashing {
        fn score(&self, user: UserId, item: ItemId) -> f32 {
            let mut h = (user as u64) << 32 | item as u64;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            (h % 10_000) as f32 / 10_000.0
        }
    }

    fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u32)> {
        v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
    }

    #[test]
    fn retrieve_matches_full_sort_reference() {
        let r = Retriever::new(Hashing, 137);
        let seen = [3, 4, 50, 136];
        for k in [1usize, 10, 137, 500] {
            let q = RecQuery::top_k(5, k).excluding(&seen);
            let got = r.retrieve(&q);
            let expect = full_sort_top_k(&Hashing, 137, &q);
            assert_eq!(bits(&got.ranked), bits(&expect), "k = {k}");
            assert_eq!(got.user, 5);
        }
    }

    #[test]
    fn chunk_size_cannot_change_the_result() {
        let seen = [7, 8, 9, 60];
        let q = RecQuery::top_k(2, 12).excluding(&seen);
        let reference = Retriever::new(Hashing, 101).retrieve(&q);
        for chunk in [1usize, 2, 13, 100, 101, 4096] {
            let r = Retriever::new(Hashing, 101).with_chunk_items(chunk);
            assert_eq!(
                bits(&r.retrieve(&q).ranked),
                bits(&reference.ranked),
                "chunk = {chunk}"
            );
        }
    }

    #[test]
    fn candidate_restriction_scores_only_the_shortlist() {
        let r = Retriever::new(Hashing, 1000);
        let cands = [900, 3, 77, 501, 77];
        let resp = r.retrieve(&RecQuery::top_k(1, 10).among(&cands));
        // Every returned item comes from the shortlist (duplicates and
        // all), ranked by the total order.
        assert_eq!(resp.len(), 5);
        for &(v, _) in &resp.ranked {
            assert!(cands.contains(&v));
        }
        let expect = full_sort_top_k(&Hashing, 1000, &RecQuery::top_k(1, 10).among(&cands));
        assert_eq!(bits(&resp.ranked), bits(&expect));
    }

    #[test]
    fn seen_filter_applies_to_candidate_lists_too() {
        let r = Retriever::new(Hashing, 100);
        let cands = [1, 2, 3, 4];
        let seen = [2, 3];
        let resp = r.retrieve(&RecQuery::top_k(0, 10).among(&cands).excluding(&seen));
        let ids: Vec<ItemId> = resp.items();
        assert_eq!(ids.len(), 2);
        assert!(ids.contains(&1) && ids.contains(&4));
    }

    #[test]
    fn degenerate_queries_return_empty() {
        let r = Retriever::new(Hashing, 10);
        assert!(r.retrieve(&RecQuery::top_k(0, 0)).is_empty());
        let all: Vec<ItemId> = (0..10).collect();
        assert!(r
            .retrieve(&RecQuery::top_k(0, 5).excluding(&all))
            .is_empty());
        assert!(r.retrieve(&RecQuery::top_k(0, 5).among(&[])).is_empty());
        let empty_catalog = Retriever::new(Hashing, 0);
        assert!(empty_catalog.retrieve(&RecQuery::top_k(0, 5)).is_empty());
    }

    #[test]
    fn scratch_reuse_is_invisible() {
        let r = Retriever::new(Hashing, 64);
        let mut scratch = RetrievalScratch::new();
        let fresh: Vec<RecResponse> = (0..8).map(|u| r.retrieve(&RecQuery::top_k(u, 6))).collect();
        for (u, expect) in fresh.iter().enumerate() {
            let got = r.retrieve_with(&RecQuery::top_k(u as UserId, 6), &mut scratch);
            assert_eq!(bits(&got.ranked), bits(&expect.ranked));
        }
    }

    #[test]
    fn batched_retrieval_is_bit_identical_at_every_worker_count() {
        let r = Retriever::new(Hashing, 230);
        let seen: Vec<ItemId> = (0..230).filter(|v| v % 7 == 0).collect();
        let queries: Vec<RecQuery<'_>> = (0..33)
            .map(|u| RecQuery::top_k(u, 10).excluding(&seen))
            .collect();
        let reference: Vec<RecResponse> = queries.iter().map(|q| r.retrieve(q)).collect();
        for workers in 1..=8 {
            let got = r.retrieve_batch(&queries, &WorkerPool::new(workers));
            assert_eq!(got.len(), reference.len());
            for (g, e) in got.iter().zip(&reference) {
                assert_eq!(g.user, e.user);
                assert_eq!(
                    bits(&g.ranked),
                    bits(&e.ranked),
                    "diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn retriever_clone_shares_the_snapshot() {
        let r = Retriever::new(Hashing, 50).with_chunk_items(7);
        let c = r.clone();
        assert!(Arc::ptr_eq(r.model(), c.model()));
        assert_eq!(c.catalog_items(), 50);
        assert_eq!(c.chunk_items(), 7);
        let q = RecQuery::top_k(1, 5);
        assert_eq!(bits(&r.retrieve(&q).ranked), bits(&c.retrieve(&q).ranked));
    }
}
