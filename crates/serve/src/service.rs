//! The online service layer: a bounded request queue, a dispatcher that
//! coalesces concurrent queries into micro-batches, and an atomic
//! snapshot-swap handle for publishing freshly trained models while
//! serving.
//!
//! [`Retriever`] is a synchronous library call over a snapshot frozen at
//! construction. [`RecService`] turns it into a system: callers on any
//! thread submit a [`RecRequest`] and block on a stack-resident
//! [`OneShotSlot`] (park/unpark — no allocation per request beyond the
//! request's own item lists); a single dispatcher thread drains the
//! bounded MPSC queue, coalescing whatever is waiting — up to
//! [`ServiceConfig::max_batch`] requests or [`ServiceConfig::max_wait`]
//! of extra latency — into one [`Retriever::retrieve_batch`] fan-out
//! across a `mars-runtime` [`WorkerPool`], then completes every caller
//! through its slot.
//!
//! ## Determinism contract
//!
//! Coalescing is **invisible in the responses**: the ranked list a caller
//! receives is bit-identical to calling [`Retriever::retrieve`] directly
//! against the same snapshot, for any `max_batch`, any `max_wait`, any
//! worker count, and any arrival interleaving. This rides two contracts
//! already proven bitwise by the property tests: [`Scorer`]'s
//! block/many/single agreement and [`Retriever::retrieve_batch`]'s
//! shard-order merge (each query served independently with its own
//! scratch). Batching changes *when* a response is computed, never *what*
//! it contains.
//!
//! ## Snapshot-coherence contract
//!
//! A snapshot is one [`Retriever`] — model **and** any attached IVF index
//! behind a single `Arc` — published atomically through a
//! [`SnapshotCell`]. The dispatcher resolves the cell **once per
//! micro-batch** and serves the whole batch against that one `Arc`, so
//! every response is computed against exactly one coherent snapshot:
//! a trainer can [`RecService::publish`] epoch N+1 while epoch N serves,
//! and no response ever mixes the two (the hot-swap stress test tags
//! snapshots and checks every response matches exactly one tag). The
//! read path is lock-free in steady state — one atomic version check per
//! batch; the mutex is touched only when a publish actually happened.
//!
//! ## Liveness
//!
//! Every accepted request is answered. [`Submission`]'s destructor
//! completes the caller with [`ServiceError::Stopped`] on any path where
//! the dispatcher did not — queue teardown, dispatcher panic (a scorer
//! panicking mid-batch unwinds the dispatcher; queued and in-flight
//! callers all get `Stopped`, and later submissions fail fast). Dropping
//! the service disconnects the queue and joins the dispatcher, which
//! serves everything already queued before exiting.
//!
//! [`Scorer`]: mars_metrics::Scorer

use crate::query::{RecQuery, RecResponse};
use crate::retriever::Retriever;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::{OneShotSlot, WorkerPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// An owned [`RecQuery`]: the same fields behind `Arc`s, so a request can
/// cross the queue without borrowing from the submitter's frame (and so
/// resubmitting or fanning out a request is a refcount bump, not a copy).
#[derive(Clone, Debug)]
pub struct RecRequest {
    /// The user to recommend for.
    pub user: UserId,
    /// How many items to return.
    pub k: usize,
    /// Items to exclude, sorted ascending (the [`RecQuery`] contract).
    pub seen: Arc<[ItemId]>,
    /// Optional candidate restriction (see [`RecQuery::among`]).
    pub candidates: Option<Arc<[ItemId]>>,
}

impl RecRequest {
    /// A catalogue-wide request with no exclusions.
    pub fn top_k(user: UserId, k: usize) -> Self {
        Self {
            user,
            k,
            seen: Arc::from([] as [ItemId; 0]),
            candidates: None,
        }
    }

    /// Excludes `seen` (sorted ascending) from the results.
    pub fn excluding(mut self, seen: impl Into<Arc<[ItemId]>>) -> Self {
        let seen = seen.into();
        debug_assert!(
            seen.windows(2).all(|w| w[0] <= w[1]),
            "RecRequest::excluding requires a sorted seen list"
        );
        self.seen = seen;
        self
    }

    /// Restricts scoring to `candidates` (in place of the full catalogue).
    pub fn among(mut self, candidates: impl Into<Arc<[ItemId]>>) -> Self {
        self.candidates = Some(candidates.into());
        self
    }

    /// The borrowed view the retrieval engine consumes — also the bridge
    /// for computing a direct [`Retriever::retrieve`] reference answer in
    /// tests and benches.
    pub fn as_query(&self) -> RecQuery<'_> {
        let mut q = RecQuery::top_k(self.user, self.k).excluding(&self.seen);
        if let Some(c) = &self.candidates {
            q = q.among(c);
        }
        q
    }
}

/// Why a request was not served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded queue was full ([`RecService::try_retrieve`] only —
    /// the blocking [`RecService::retrieve`] waits for space instead).
    Overloaded,
    /// The service shut down (or its dispatcher died) before the request
    /// was served.
    Stopped,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "request queue full"),
            ServiceError::Stopped => write!(f, "service stopped before the request was served"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One caller's response, as completed through its one-shot slot.
type Outcome = Result<RecResponse, ServiceError>;

/// Service tuning knobs. The defaults favour latency: tiny coalescing
/// window, batch bounded well below the queue depth.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Bounded queue depth; a full queue back-pressures blocking
    /// submitters and rejects [`RecService::try_retrieve`] (min 1).
    pub queue_depth: usize,
    /// Most requests coalesced into one fan-out (min 1).
    pub max_batch: usize,
    /// How long the dispatcher waits for the batch to fill once the first
    /// request of a batch is in hand. Zero = drain whatever is already
    /// queued and go (no added latency).
    pub max_wait: Duration,
    /// Worker threads for the fan-out pool (`0` = all cores, the
    /// `resolve_threads` convention).
    pub threads: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_depth: 1024,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            threads: 0,
        }
    }
}

/// The atomic snapshot-swap handle: a mutexed `Arc<Retriever>` slot plus
/// a lock-free version counter, so readers pay one atomic load per check
/// and take the lock only when a publish actually happened.
///
/// The version counter is bumped *after* the slot swap, both under the
/// lock; a reader that sees version `v` and then loads the slot therefore
/// gets snapshot `v` or newer — never older, never torn.
pub struct SnapshotCell<S: ?Sized> {
    slot: Mutex<Arc<Retriever<S>>>,
    version: AtomicU64,
}

impl<S: ?Sized> SnapshotCell<S> {
    /// A cell serving `retriever` as snapshot version 0.
    pub fn new(retriever: Retriever<S>) -> Self {
        Self {
            slot: Mutex::new(Arc::new(retriever)),
            version: AtomicU64::new(0),
        }
    }

    /// Atomically replaces the served snapshot and returns the new
    /// version. The old snapshot stays alive until the last in-flight
    /// batch holding its `Arc` completes.
    pub fn publish(&self, retriever: Retriever<S>) -> u64 {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Arc::new(retriever);
        let v = self.version.load(Ordering::Relaxed) + 1;
        self.version.store(v, Ordering::Release);
        v
    }

    /// The current snapshot (a refcount bump under the lock).
    pub fn load(&self) -> Arc<Retriever<S>> {
        Arc::clone(
            &self
                .slot
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// The current version (0 = the construction snapshot). Lock-free.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// A reader's cached view of a [`SnapshotCell`]: re-resolves the `Arc`
/// only when the version counter moved, so the steady-state cost of
/// "which snapshot do I serve?" is one atomic load.
pub struct SnapshotReader<S: ?Sized> {
    cell: Arc<SnapshotCell<S>>,
    cached: Arc<Retriever<S>>,
    version: u64,
}

impl<S: ?Sized> SnapshotReader<S> {
    /// A reader over `cell`, pre-resolved to its current snapshot.
    pub fn new(cell: &Arc<SnapshotCell<S>>) -> Self {
        // Version BEFORE load: a publish racing between the two reads can
        // only make the cache look stale (one redundant reload later),
        // never look fresh while actually stale.
        let version = cell.version();
        let cached = cell.load();
        Self {
            cell: Arc::clone(cell),
            cached,
            version,
        }
    }

    /// The snapshot to serve right now — refreshed iff a publish landed
    /// since the last call.
    pub fn current(&mut self) -> &Arc<Retriever<S>> {
        let v = self.cell.version();
        if v != self.version {
            self.version = v;
            self.cached = self.cell.load();
        }
        &self.cached
    }

    /// Version of the currently cached snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// One queued request: the payload plus a raw pointer to the submitter's
/// stack-resident completion slot.
struct Submission {
    req: RecRequest,
    slot: *const OneShotSlot<Outcome>,
    done: bool,
}

// SAFETY: the slot pointer stays valid for the Submission's whole life —
// the submitting thread blocks in `OneShotSlot::wait` inside the same
// frame until the slot is filled, and every path that consumes a
// Submission fills it exactly once (`complete`, or `Drop` as backstop).
// The only Submission that crosses no thread is the send-failure return,
// which the submitter itself defuses.
unsafe impl Send for Submission {}

impl Submission {
    /// Completes the caller. Consumes the submission so the destructor
    /// backstop cannot double-fill.
    fn complete(mut self, outcome: Outcome) {
        self.done = true;
        // SAFETY: see the `Send` impl — the submitter is parked on this
        // slot, and this is the single fill.
        unsafe { (*self.slot).fill(outcome) };
    }
}

impl Drop for Submission {
    fn drop(&mut self) {
        // Liveness backstop: a submission dropped unserved (queue torn
        // down, dispatcher unwinding mid-batch) must still wake its
        // caller.
        if !self.done {
            self.done = true;
            // SAFETY: as in `complete`.
            unsafe { (*self.slot).fill(Err(ServiceError::Stopped)) };
        }
    }
}

/// The service front-end (see the module docs). Shared across client
/// threads behind an `Arc`; dropping the last handle shuts the service
/// down gracefully (queued requests are still served).
pub struct RecService<S: Scorer + Send + Sync + 'static> {
    /// `Some` for the service's whole life; taken in `Drop` to disconnect
    /// the queue before joining the dispatcher.
    tx: Option<SyncSender<Submission>>,
    cell: Arc<SnapshotCell<S>>,
    dispatcher: Option<JoinHandle<()>>,
    config: ServiceConfig,
}

impl<S: Scorer + Send + Sync + 'static> RecService<S> {
    /// Starts a service over `retriever` (snapshot version 0), spawning
    /// the dispatcher thread and its worker pool.
    pub fn start(retriever: Retriever<S>, config: ServiceConfig) -> Self {
        let cell = Arc::new(SnapshotCell::new(retriever));
        let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let dispatcher_cell = Arc::clone(&cell);
        let dispatcher = thread::Builder::new()
            .name("mars-serve-dispatch".to_string())
            .spawn(move || dispatch_loop(rx, dispatcher_cell, config))
            .expect("failed to spawn mars-serve dispatcher");
        Self {
            tx: Some(tx),
            cell,
            dispatcher: Some(dispatcher),
            config,
        }
    }

    /// Starts with [`ServiceConfig::default`].
    pub fn with_defaults(retriever: Retriever<S>) -> Self {
        Self::start(retriever, ServiceConfig::default())
    }

    /// Submits a request and blocks until its response is computed —
    /// waiting for queue space if the service is saturated. Errors only
    /// if the service stops before serving it.
    pub fn retrieve(&self, req: &RecRequest) -> Result<RecResponse, ServiceError> {
        let slot = OneShotSlot::new();
        let sub = Submission {
            req: req.clone(),
            slot: &slot,
            done: false,
        };
        let tx = self.tx.as_ref().expect("queue alive until Drop");
        match tx.send(sub) {
            Ok(()) => slot.wait(),
            Err(mpsc::SendError(mut sub)) => {
                // Defuse the backstop: the slot must not be filled once
                // this frame returns.
                sub.done = true;
                Err(ServiceError::Stopped)
            }
        }
    }

    /// Like [`RecService::retrieve`], but rejects immediately with
    /// [`ServiceError::Overloaded`] when the queue is full instead of
    /// back-pressuring the caller (load-shedding mode). An accepted
    /// request still blocks until its response arrives.
    pub fn try_retrieve(&self, req: &RecRequest) -> Result<RecResponse, ServiceError> {
        let slot = OneShotSlot::new();
        let sub = Submission {
            req: req.clone(),
            slot: &slot,
            done: false,
        };
        let tx = self.tx.as_ref().expect("queue alive until Drop");
        match tx.try_send(sub) {
            Ok(()) => slot.wait(),
            Err(TrySendError::Full(mut sub)) => {
                sub.done = true;
                Err(ServiceError::Overloaded)
            }
            Err(TrySendError::Disconnected(mut sub)) => {
                sub.done = true;
                Err(ServiceError::Stopped)
            }
        }
    }

    /// Atomically publishes a new snapshot; returns its version. Requests
    /// already coalesced into a batch finish on the old snapshot; every
    /// batch formed after the publish serves the new one.
    pub fn publish(&self, retriever: Retriever<S>) -> u64 {
        self.cell.publish(retriever)
    }

    /// The currently served snapshot.
    pub fn snapshot(&self) -> Arc<Retriever<S>> {
        self.cell.load()
    }

    /// The current snapshot version (0 = the one passed to `start`).
    pub fn snapshot_version(&self) -> u64 {
        self.cell.version()
    }

    /// The shared swap handle — hand this to a trainer thread so it can
    /// publish without holding the service itself.
    pub fn snapshot_cell(&self) -> &Arc<SnapshotCell<S>> {
        &self.cell
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

impl<S: Scorer + Send + Sync + 'static> Drop for RecService<S> {
    fn drop(&mut self) {
        // Disconnect the queue; the dispatcher serves what is already
        // buffered, then sees the hang-up and exits.
        drop(self.tx.take());
        if let Some(handle) = self.dispatcher.take() {
            // A dispatcher that died of a scorer panic already completed
            // every caller via the Submission backstop; nothing to re-raise.
            let _ = handle.join();
        }
    }
}

/// The dispatcher: block for the first request, coalesce up to
/// `max_batch` / `max_wait`, resolve the snapshot once, fan out, complete
/// every caller. Exits when every `RecService` sender is gone.
fn dispatch_loop<S: Scorer + Send + Sync + 'static>(
    rx: Receiver<Submission>,
    cell: Arc<SnapshotCell<S>>,
    config: ServiceConfig,
) {
    let pool = WorkerPool::with_threads(config.threads);
    let mut reader = SnapshotReader::new(&cell);
    let max_batch = config.max_batch.max(1);
    let mut batch: Vec<Submission> = Vec::with_capacity(max_batch);

    loop {
        // Idle: nothing queued, so the first request defines the batch's
        // arrival instant.
        match rx.recv() {
            Ok(sub) => batch.push(sub),
            Err(_) => return, // all senders gone
        }
        // Coalesce. With a zero window, take only what already queued up
        // behind the first request; otherwise wait out the window for the
        // batch to fill.
        if config.max_wait.is_zero() {
            while batch.len() < max_batch {
                match rx.try_recv() {
                    Ok(sub) => batch.push(sub),
                    Err(_) => break,
                }
            }
        } else {
            let deadline = Instant::now() + config.max_wait;
            while batch.len() < max_batch {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match rx.recv_timeout(deadline - now) {
                    Ok(sub) => batch.push(sub),
                    Err(_) => break, // timeout or disconnect; serve what we have
                }
            }
        }
        serve_batch(reader.current(), &pool, &mut batch);
    }
}

/// Serves one micro-batch against one coherent snapshot `Arc` and
/// completes every submitter. If the scorer panics, the unwind drops
/// `batch`'s submissions, whose destructors complete the callers with
/// [`ServiceError::Stopped`].
fn serve_batch<S: Scorer + Send + Sync>(
    snapshot: &Arc<Retriever<S>>,
    pool: &WorkerPool,
    batch: &mut Vec<Submission>,
) {
    let queries: Vec<RecQuery<'_>> = batch.iter().map(|s| s.req.as_query()).collect();
    let responses = snapshot.retrieve_batch(&queries, pool);
    drop(queries);
    debug_assert_eq!(responses.len(), batch.len());
    for (sub, resp) in batch.drain(..).zip(responses) {
        sub.complete(Ok(resp));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Condvar;

    /// The retriever tests' structureless deterministic scorer.
    struct Hashing;
    impl Scorer for Hashing {
        fn score(&self, user: UserId, item: ItemId) -> f32 {
            let mut h = (user as u64) << 32 | item as u64;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            (h % 10_000) as f32 / 10_000.0
        }
    }

    fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u32)> {
        v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
    }

    #[test]
    fn service_matches_direct_retrieval() {
        let reference = Retriever::new(Hashing, 200);
        let service = RecService::start(
            Retriever::new(Hashing, 200),
            ServiceConfig {
                queue_depth: 8,
                max_batch: 4,
                max_wait: Duration::from_micros(50),
                threads: 2,
            },
        );
        let seen: Vec<ItemId> = (0..200).filter(|v| v % 9 == 0).collect();
        for u in 0..40u32 {
            let req = RecRequest::top_k(u, 7).excluding(&seen[..]);
            let got = service.retrieve(&req).expect("service alive");
            let expect = reference.retrieve(&req.as_query());
            assert_eq!(got.user, u);
            assert_eq!(bits(&got.ranked), bits(&expect.ranked), "user {u}");
        }
    }

    #[test]
    fn candidate_requests_ride_the_queue_too() {
        let reference = Retriever::new(Hashing, 500);
        let service = RecService::with_defaults(Retriever::new(Hashing, 500));
        let cands: Vec<ItemId> = vec![400, 3, 77, 251, 77];
        let req = RecRequest::top_k(9, 3).among(&cands[..]);
        let got = service.retrieve(&req).unwrap();
        let expect = reference.retrieve(&req.as_query());
        assert_eq!(bits(&got.ranked), bits(&expect.ranked));
    }

    #[test]
    fn publish_switches_the_snapshot_and_bumps_the_version() {
        struct Negate;
        impl Scorer for Negate {
            fn score(&self, user: UserId, item: ItemId) -> f32 {
                -Hashing.score(user, item)
            }
        }
        // Same scorer type is required by the service generics; wrap both
        // behind an enum instead.
        enum Either {
            A,
            B,
        }
        impl Scorer for Either {
            fn score(&self, user: UserId, item: ItemId) -> f32 {
                match self {
                    Either::A => Hashing.score(user, item),
                    Either::B => Negate.score(user, item),
                }
            }
        }
        let service = RecService::with_defaults(Retriever::new(Either::A, 64));
        assert_eq!(service.snapshot_version(), 0);
        let req = RecRequest::top_k(3, 5);
        let before = service.retrieve(&req).unwrap();
        assert_eq!(service.publish(Retriever::new(Either::B, 64)), 1);
        assert_eq!(service.snapshot_version(), 1);
        let after = service.retrieve(&req).unwrap();
        let expect_a = Retriever::new(Either::A, 64).retrieve(&req.as_query());
        let expect_b = Retriever::new(Either::B, 64).retrieve(&req.as_query());
        assert_eq!(bits(&before.ranked), bits(&expect_a.ranked));
        assert_eq!(bits(&after.ranked), bits(&expect_b.ranked));
        assert_ne!(bits(&before.ranked), bits(&after.ranked));
    }

    /// A scorer whose first score call signals arrival and then blocks
    /// until the gate opens — lets a test hold the dispatcher mid-batch.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
        entered: AtomicUsize,
    }
    struct Blocking(Arc<Gate>);
    impl Scorer for Blocking {
        fn score(&self, _user: UserId, item: ItemId) -> f32 {
            self.0.entered.fetch_add(1, Ordering::SeqCst);
            let mut open = self.0.open.lock().unwrap();
            while !*open {
                open = self.0.cv.wait(open).unwrap();
            }
            item as f32
        }
    }

    #[test]
    fn try_retrieve_sheds_load_when_the_queue_is_full() {
        let gate = Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicUsize::new(0),
        });
        let service = Arc::new(RecService::start(
            Retriever::new(Blocking(Arc::clone(&gate)), 4),
            ServiceConfig {
                queue_depth: 1,
                max_batch: 1,
                max_wait: Duration::ZERO,
                threads: 1,
            },
        ));

        // Request A: dequeued by the dispatcher, then stuck in `score`.
        let a = {
            let service = Arc::clone(&service);
            thread::spawn(move || service.retrieve(&RecRequest::top_k(0, 2)))
        };
        while gate.entered.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }

        // Probes: with the dispatcher stuck and queue depth 1, one probe
        // can occupy the queue slot (it then blocks awaiting its
        // response), and the next must shed with `Overloaded`. A probe
        // that doesn't report within the timeout is the queued one; keep
        // spawning until one reports the rejection.
        let mut queued = Vec::new();
        let rejected = loop {
            let service = Arc::clone(&service);
            let (tx, rx) = mpsc::channel();
            let probe = thread::spawn(move || {
                let r = service.try_retrieve(&RecRequest::top_k(1, 2));
                let _ = tx.send(r.is_err());
                r
            });
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(true) => break probe, // rejected — inspect after join
                Ok(false) => unreachable!("probe served while the dispatcher was blocked"),
                Err(_) => queued.push(probe), // took the queue slot, now waiting
            }
        };
        assert_eq!(
            rejected.join().unwrap(),
            Err(ServiceError::Overloaded),
            "shed probe must see Overloaded"
        );

        // Open the gate: A and every queued probe complete normally.
        *gate.open.lock().unwrap() = true;
        gate.cv.notify_all();
        let ra = a.join().unwrap().unwrap();
        assert_eq!(ra.len(), 2);
        for probe in queued {
            // A slow reporter may itself have been rejected; what no
            // accepted probe may see is `Stopped` or a hang.
            match probe.join().unwrap() {
                Ok(resp) => assert_eq!(resp.len(), 2),
                Err(e) => assert_eq!(e, ServiceError::Overloaded),
            }
        }
    }

    #[test]
    fn scorer_panic_stops_the_service_not_the_callers() {
        struct Exploding;
        impl Scorer for Exploding {
            fn score(&self, _user: UserId, _item: ItemId) -> f32 {
                panic!("scorer exploded");
            }
        }
        let service = RecService::start(
            Retriever::new(Exploding, 8),
            ServiceConfig {
                queue_depth: 4,
                max_batch: 4,
                max_wait: Duration::ZERO,
                threads: 1,
            },
        );
        // The in-flight caller is completed by the Submission backstop…
        assert_eq!(
            service.retrieve(&RecRequest::top_k(0, 3)),
            Err(ServiceError::Stopped)
        );
        // …and later callers fail fast (disconnected queue) or are
        // drained unserved — either way, Stopped, never a hang.
        assert_eq!(
            service.retrieve(&RecRequest::top_k(1, 3)),
            Err(ServiceError::Stopped)
        );
    }

    #[test]
    fn snapshot_reader_refreshes_only_on_publish() {
        let cell = Arc::new(SnapshotCell::new(Retriever::new(Hashing, 16)));
        let mut reader = SnapshotReader::new(&cell);
        let first = Arc::clone(reader.current());
        assert!(Arc::ptr_eq(reader.current(), &first));
        assert_eq!(reader.version(), 0);
        cell.publish(Retriever::new(Hashing, 16));
        let second = Arc::clone(reader.current());
        assert!(!Arc::ptr_eq(&second, &first));
        assert_eq!(reader.version(), 1);
        assert!(Arc::ptr_eq(reader.current(), &second));
    }

    #[test]
    fn zero_wait_single_batch_config_works() {
        let service = RecService::start(
            Retriever::new(Hashing, 50),
            ServiceConfig {
                queue_depth: 1,
                max_batch: 1,
                max_wait: Duration::ZERO,
                threads: 1,
            },
        );
        let reference = Retriever::new(Hashing, 50);
        for u in 0..10u32 {
            let req = RecRequest::top_k(u, 5);
            let got = service.retrieve(&req).unwrap();
            assert_eq!(
                bits(&got.ranked),
                bits(&reference.retrieve(&req.as_query()).ranked)
            );
        }
    }
}
