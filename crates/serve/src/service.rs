//! The online service layer: a bounded request queue, a dispatcher that
//! coalesces concurrent queries into micro-batches, an atomic
//! snapshot-swap handle for publishing freshly trained models while
//! serving — and the fault-tolerance layer that makes the speed
//! trustworthy: per-request deadlines, a graceful-degradation ladder,
//! and a supervised dispatcher that survives scorer panics.
//!
//! [`Retriever`] is a synchronous library call over a snapshot frozen at
//! construction. [`RecService`] turns it into a system: callers on any
//! thread submit a [`RecRequest`] and block on a stack-resident
//! [`OneShotSlot`] (park/unpark — no allocation per request beyond the
//! request's own item lists); a single dispatcher thread drains the
//! bounded MPSC queue, coalescing whatever is waiting — up to
//! [`ServiceConfig::max_batch`] requests or [`ServiceConfig::max_wait`]
//! of extra latency — into one [`Retriever::retrieve_batch`] fan-out
//! across a `mars-runtime` [`WorkerPool`], then completes every caller
//! through its slot.
//!
//! ## Determinism contract
//!
//! Coalescing is **invisible in the responses**: the ranked list a caller
//! receives is bit-identical to calling [`Retriever::retrieve`] directly
//! against the same snapshot, for any `max_batch`, any `max_wait`, any
//! worker count, and any arrival interleaving. This rides two contracts
//! already proven bitwise by the property tests: [`Scorer`]'s
//! block/many/single agreement and [`Retriever::retrieve_batch`]'s
//! shard-order merge (each query served independently with its own
//! scratch). Batching changes *when* a response is computed, never *what*
//! it contains. Under overload the degradation ladder (below) may serve a
//! **reduced-fidelity** answer instead — but then the response says so
//! (`RecResponse::degraded`), and non-degraded responses keep the full
//! bit-identity guarantee.
//!
//! ## Snapshot-coherence contract
//!
//! A snapshot is one [`ServingSnapshot`] — the model, any attached IVF
//! index, and the fidelity rungs of its degradation ladder, all behind a
//! single `Arc` — published atomically through a [`SnapshotCell`]. The
//! dispatcher resolves the cell **once per micro-batch** and serves the
//! whole batch against that one `Arc`, so every response is computed
//! against exactly one coherent snapshot: a trainer can
//! [`RecService::publish`] epoch N+1 while epoch N serves, and no
//! response ever mixes the two (the hot-swap stress test tags snapshots
//! and checks every response matches exactly one tag). The read path is
//! lock-free in steady state — one atomic version check per batch; the
//! mutex is touched only when a publish actually happened.
//!
//! ## Deadlines
//!
//! A request may carry a latency budget ([`RecRequest::within`], default
//! [`ServiceConfig::default_deadline`]). The dispatcher checks deadlines
//! **at dequeue time**: a request whose budget already expired while
//! queued is completed with [`ServiceError::DeadlineExceeded`] instead of
//! burning scan work on an answer nobody is waiting for — the mechanism
//! that keeps an overloaded queue from collapsing into serving only stale
//! work. An accepted request still always blocks until the dispatcher
//! completes it (the stack-slot protocol requires it); the deadline bounds
//! the *work spent*, and the park interval, not the wait itself.
//!
//! ## Graceful degradation
//!
//! A [`ServingSnapshot`] can carry a **ladder** of retrieval rungs over
//! the same model — typically exact scan → IVF `ExactRescore` → `Coarse`
//! with shrinking `nprobe` ([`ServingSnapshot::ivf_ladder`]). A hysteresis
//! controller watches queue depth and recent batch latency
//! ([`DegradeConfig`]) and steps the serving rung down under sustained
//! pressure, back up when it clears. Responses served from rung > 0 carry
//! `degraded = true`. Single-rung snapshots never degrade.
//!
//! ## Supervision
//!
//! Micro-batch execution runs under `catch_unwind`: a scorer panic fails
//! only that batch's callers, each completed with the typed
//! [`ServiceError::Internal`], and the supervisor restarts the dispatch
//! loop (with a fresh worker pool) under a bounded restart budget
//! ([`ServiceConfig::restart_budget`], replenished by healthy progress).
//! Only an exhausted budget — repeated faults with no healthy batch in
//! between — tears the service down, completing everything still queued
//! with [`ServiceError::Stopped`].
//!
//! ## Liveness
//!
//! Every accepted request is answered. [`Submission`]'s destructor
//! completes the caller with [`ServiceError::Stopped`] on any path where
//! the dispatcher did not — queue teardown, or an unwind that escapes
//! even the supervisor. Dropping the service disconnects the queue and
//! joins the dispatcher, which serves everything already queued before
//! exiting.
//!
//! [`Scorer`]: mars_metrics::Scorer

use crate::index::{IndexEmbeddings, IvfConfig, IvfMode};
use crate::query::{RecQuery, RecResponse};
use crate::retriever::Retriever;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::{OneShotSlot, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// An owned [`RecQuery`]: the same fields behind `Arc`s, so a request can
/// cross the queue without borrowing from the submitter's frame (and so
/// resubmitting or fanning out a request is a refcount bump, not a copy).
#[derive(Clone, Debug)]
pub struct RecRequest {
    /// The user to recommend for.
    pub user: UserId,
    /// How many items to return.
    pub k: usize,
    /// Items to exclude, sorted ascending (the [`RecQuery`] contract).
    pub seen: Arc<[ItemId]>,
    /// Optional candidate restriction (see [`RecQuery::among`]).
    pub candidates: Option<Arc<[ItemId]>>,
    /// Per-request latency budget. `None` falls back to
    /// [`ServiceConfig::default_deadline`]; `Some` overrides it. A request
    /// still queued when its budget expires is dropped at dequeue with
    /// [`ServiceError::DeadlineExceeded`].
    pub budget: Option<Duration>,
}

impl RecRequest {
    /// A catalogue-wide request with no exclusions.
    pub fn top_k(user: UserId, k: usize) -> Self {
        Self {
            user,
            k,
            seen: Arc::from([] as [ItemId; 0]),
            candidates: None,
            budget: None,
        }
    }

    /// Excludes `seen` (sorted ascending) from the results.
    pub fn excluding(mut self, seen: impl Into<Arc<[ItemId]>>) -> Self {
        let seen = seen.into();
        debug_assert!(
            seen.windows(2).all(|w| w[0] <= w[1]),
            "RecRequest::excluding requires a sorted seen list"
        );
        self.seen = seen;
        self
    }

    /// Restricts scoring to `candidates` (in place of the full catalogue).
    pub fn among(mut self, candidates: impl Into<Arc<[ItemId]>>) -> Self {
        self.candidates = Some(candidates.into());
        self
    }

    /// Sets this request's latency budget (see the `budget` field).
    pub fn within(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// The borrowed view the retrieval engine consumes — also the bridge
    /// for computing a direct [`Retriever::retrieve`] reference answer in
    /// tests and benches.
    pub fn as_query(&self) -> RecQuery<'_> {
        let mut q = RecQuery::top_k(self.user, self.k).excluding(&self.seen);
        if let Some(c) = &self.candidates {
            q = q.among(c);
        }
        q
    }
}

/// Why a request was not served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The bounded queue was full ([`RecService::try_retrieve`] only —
    /// the blocking [`RecService::retrieve`] waits for space instead).
    Overloaded,
    /// The request's latency budget expired while it was still queued;
    /// the dispatcher dropped it at dequeue instead of serving it late.
    DeadlineExceeded,
    /// The micro-batch this request was coalesced into hit an internal
    /// fault (a scorer panic). The service itself keeps running — the
    /// supervisor restarts the dispatch loop — so retrying is reasonable.
    Internal,
    /// The service shut down (or exhausted its restart budget) before the
    /// request was served.
    Stopped,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "request queue full"),
            ServiceError::DeadlineExceeded => {
                write!(f, "deadline expired before the request was dequeued")
            }
            ServiceError::Internal => write!(f, "internal fault while serving the batch"),
            ServiceError::Stopped => write!(f, "service stopped before the request was served"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One caller's response, as completed through its one-shot slot.
type Outcome = Result<RecResponse, ServiceError>;

/// Hysteresis thresholds for the degradation ladder. The controller steps
/// the serving rung **down** (cheaper, less exact) after
/// `step_down_after` consecutive pressured batches, and **up** after
/// `step_up_after` consecutive clear ones; between `low_backlog` and
/// `high_backlog` it holds — that band is the hysteresis that prevents
/// rung flapping at a load boundary.
#[derive(Clone, Copy, Debug)]
pub struct DegradeConfig {
    /// Queue depth at/above which a batch counts as pressured
    /// (`0` disables the backlog trigger).
    pub high_backlog: usize,
    /// Queue depth at/below which a batch counts as clear.
    pub low_backlog: usize,
    /// Optional latency trigger: pressured when the EWMA of per-request
    /// batch latency exceeds this.
    pub high_latency: Option<Duration>,
    /// Consecutive pressured batches before stepping one rung down.
    pub step_down_after: u32,
    /// Consecutive clear batches before stepping one rung up.
    pub step_up_after: u32,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        Self {
            high_backlog: 512,
            low_backlog: 32,
            high_latency: None,
            step_down_after: 2,
            step_up_after: 16,
        }
    }
}

/// Service tuning knobs. The defaults favour latency: tiny coalescing
/// window, batch bounded well below the queue depth, no deadline, a small
/// restart budget.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Bounded queue depth; a full queue back-pressures blocking
    /// submitters and rejects [`RecService::try_retrieve`] (min 1).
    pub queue_depth: usize,
    /// Most requests coalesced into one fan-out (min 1).
    pub max_batch: usize,
    /// How long the dispatcher waits for the batch to fill once the first
    /// request of a batch is in hand. Zero = drain whatever is already
    /// queued and go (no added latency).
    pub max_wait: Duration,
    /// Worker threads for the fan-out pool (`0` = all cores, the
    /// `resolve_threads` convention).
    pub threads: usize,
    /// Latency budget applied to requests that don't set their own
    /// ([`RecRequest::within`]). `None` = no deadline.
    pub default_deadline: Option<Duration>,
    /// Consecutive dispatcher faults tolerated without intervening
    /// healthy progress before the service gives up and drains with
    /// [`ServiceError::Stopped`]. Any healthy batch refills the budget.
    pub restart_budget: u32,
    /// Degradation-ladder hysteresis (only meaningful when the published
    /// [`ServingSnapshot`] has more than one rung).
    pub degrade: DegradeConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_depth: 1024,
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            threads: 0,
            default_deadline: None,
            restart_budget: 2,
            degrade: DegradeConfig::default(),
        }
    }
}

/// What the service serves: one model snapshot exposed as a ladder of
/// retrieval **rungs**, rung 0 the full-fidelity answer and each further
/// rung a cheaper approximation over the *same* frozen parameters (shared
/// `Arc`s — a ladder costs one model and at most one index build). The
/// degradation controller picks the rung; single-rung snapshots
/// ([`ServingSnapshot::single`], or any plain [`Retriever`] via `From`)
/// never degrade.
pub struct ServingSnapshot<S: ?Sized> {
    rungs: Vec<Retriever<S>>,
}

// Manual impl: `#[derive(Clone)]` would demand `S: Clone`, but rungs
// clone by `Arc`.
impl<S: ?Sized> Clone for ServingSnapshot<S> {
    fn clone(&self) -> Self {
        Self {
            rungs: self.rungs.clone(),
        }
    }
}

impl<S: ?Sized> ServingSnapshot<S> {
    /// A one-rung snapshot: always served at full fidelity.
    pub fn single(retriever: Retriever<S>) -> Self {
        Self {
            rungs: vec![retriever],
        }
    }

    /// An explicit ladder, rung 0 (full fidelity) first, each further
    /// rung cheaper. Panics on an empty ladder — a snapshot must be able
    /// to serve.
    pub fn ladder(rungs: Vec<Retriever<S>>) -> Self {
        assert!(
            !rungs.is_empty(),
            "a ServingSnapshot needs at least one rung"
        );
        Self { rungs }
    }

    /// The full-fidelity rung.
    pub fn full(&self) -> &Retriever<S> {
        &self.rungs[0]
    }

    /// Rung `i`, clamped to the deepest available.
    pub fn rung(&self, i: usize) -> &Retriever<S> {
        &self.rungs[i.min(self.rungs.len() - 1)]
    }

    /// Number of rungs (≥ 1).
    pub fn depth(&self) -> usize {
        self.rungs.len()
    }
}

impl<S: ?Sized> From<Retriever<S>> for ServingSnapshot<S> {
    fn from(retriever: Retriever<S>) -> Self {
        Self::single(retriever)
    }
}

impl<S: IndexEmbeddings + ?Sized> ServingSnapshot<S> {
    /// The canonical degradation ladder over one IVF index build:
    /// exact scan → IVF `ExactRescore` at `cfg.nprobe` → `Coarse` at
    /// `cfg.nprobe`, then halving `nprobe` down to 1. All rungs share the
    /// model `Arc` and one index `Arc`; only the probe fidelity differs.
    pub fn ivf_ladder(retriever: Retriever<S>, cfg: IvfConfig) -> Self {
        let base = cfg.nprobe.max(1);
        let indexed = retriever.clone().with_index(cfg);
        let mut rungs = vec![retriever.without_index()];
        rungs.push(indexed.clone().with_probe(base, IvfMode::ExactRescore));
        let mut np = base;
        loop {
            rungs.push(
                indexed
                    .clone()
                    .with_probe(np, IvfMode::Coarse { refine: 2 }),
            );
            if np <= 1 {
                break;
            }
            np /= 2;
        }
        Self { rungs }
    }
}

/// The atomic snapshot-swap handle: a mutexed `Arc<ServingSnapshot>` slot
/// plus a lock-free version counter, so readers pay one atomic load per
/// check and take the lock only when a publish actually happened.
///
/// The version counter is bumped *after* the slot swap, both under the
/// lock; a reader that sees version `v` and then loads the slot therefore
/// gets snapshot `v` or newer — never older, never torn.
pub struct SnapshotCell<S: ?Sized> {
    slot: Mutex<Arc<ServingSnapshot<S>>>,
    version: AtomicU64,
}

impl<S: ?Sized> SnapshotCell<S> {
    /// A cell serving `snapshot` as version 0. Accepts a bare
    /// [`Retriever`] (single rung) or a [`ServingSnapshot`] ladder.
    pub fn new(snapshot: impl Into<ServingSnapshot<S>>) -> Self {
        Self {
            slot: Mutex::new(Arc::new(snapshot.into())),
            version: AtomicU64::new(0),
        }
    }

    /// Atomically replaces the served snapshot and returns the new
    /// version. The old snapshot stays alive until the last in-flight
    /// batch holding its `Arc` completes.
    pub fn publish(&self, snapshot: impl Into<ServingSnapshot<S>>) -> u64 {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *slot = Arc::new(snapshot.into());
        // ORDERING: version is written only under the slot mutex, so the
        // Relaxed read cannot race another writer; the Release store below
        // pairs with the Acquire load in `version()`.
        let v = self.version.load(Ordering::Relaxed) + 1;
        self.version.store(v, Ordering::Release);
        v
    }

    /// The current snapshot (a refcount bump under the lock).
    pub fn load(&self) -> Arc<ServingSnapshot<S>> {
        Arc::clone(
            &self
                .slot
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        )
    }

    /// The current version (0 = the construction snapshot). Lock-free.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// A reader's cached view of a [`SnapshotCell`]: re-resolves the `Arc`
/// only when the version counter moved, so the steady-state cost of
/// "which snapshot do I serve?" is one atomic load.
pub struct SnapshotReader<S: ?Sized> {
    cell: Arc<SnapshotCell<S>>,
    cached: Arc<ServingSnapshot<S>>,
    version: u64,
}

impl<S: ?Sized> SnapshotReader<S> {
    /// A reader over `cell`, pre-resolved to its current snapshot.
    pub fn new(cell: &Arc<SnapshotCell<S>>) -> Self {
        // Version BEFORE load: a publish racing between the two reads can
        // only make the cache look stale (one redundant reload later),
        // never look fresh while actually stale.
        let version = cell.version();
        let cached = cell.load();
        Self {
            cell: Arc::clone(cell),
            cached,
            version,
        }
    }

    /// The snapshot to serve right now — refreshed iff a publish landed
    /// since the last call.
    pub fn current(&mut self) -> &Arc<ServingSnapshot<S>> {
        let v = self.cell.version();
        if v != self.version {
            self.version = v;
            self.cached = self.cell.load();
        }
        &self.cached
    }

    /// Version of the currently cached snapshot.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Monotonic fault/health counters of a running service, sampled by
/// [`RecService::stats`]. All counts are since `start`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted onto the queue.
    pub submitted: u64,
    /// [`RecService::try_retrieve`] rejections on a full queue.
    pub shed: u64,
    /// Requests dropped at dequeue with an expired deadline.
    pub deadline_dropped: u64,
    /// Responses served from a degraded rung (rung > 0).
    pub degraded_served: u64,
    /// Micro-batches that faulted (scorer panic), failing their callers
    /// with [`ServiceError::Internal`].
    pub batch_faults: u64,
    /// Dispatch-loop restarts performed by the supervisor.
    pub dispatcher_restarts: u64,
    /// Micro-batches served to completion.
    pub healthy_batches: u64,
    /// The ladder rung the controller is currently serving from.
    pub current_rung: u64,
    /// Requests currently queued (instantaneous, not monotonic).
    pub backlog: u64,
}

/// The shared atomic counters behind [`ServiceStats`].
#[derive(Default)]
struct StatsCounters {
    submitted: AtomicU64,
    shed: AtomicU64,
    deadline_dropped: AtomicU64,
    degraded_served: AtomicU64,
    batch_faults: AtomicU64,
    dispatcher_restarts: AtomicU64,
    healthy_batches: AtomicU64,
    current_rung: AtomicU64,
}

/// One queued request: the payload, its absolute deadline (if any), and a
/// raw pointer to the submitter's stack-resident completion slot.
struct Submission {
    req: RecRequest,
    deadline: Option<Instant>,
    slot: *const OneShotSlot<Outcome>,
    done: bool,
}

// SAFETY: the slot pointer stays valid for the Submission's whole life —
// the submitting thread blocks in `OneShotSlot::wait_bounded` inside the
// same frame until the slot is filled (a deadline bounds its park
// interval, never the wait itself), and every path that consumes a
// Submission fills it exactly once (`complete`, or `Drop` as backstop).
// The only Submission that crosses no thread is the send-failure return,
// which the submitter itself defuses.
unsafe impl Send for Submission {}

impl Submission {
    /// Completes the caller. Consumes the submission so the destructor
    /// backstop cannot double-fill.
    fn complete(mut self, outcome: Outcome) {
        self.done = true;
        // SAFETY: see the `Send` impl — the submitter is parked on this
        // slot, and this is the single fill.
        unsafe { (*self.slot).fill(outcome) };
    }

    /// Whether the deadline expired as of `now`.
    fn expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

impl Drop for Submission {
    fn drop(&mut self) {
        // Liveness backstop: a submission dropped unserved (queue torn
        // down, an unwind that escaped the supervisor) must still wake
        // its caller.
        if !self.done {
            self.done = true;
            // SAFETY: as in `complete`.
            unsafe { (*self.slot).fill(Err(ServiceError::Stopped)) };
        }
    }
}

/// The service front-end (see the module docs). Shared across client
/// threads behind an `Arc`; dropping the last handle shuts the service
/// down gracefully (queued requests are still served).
pub struct RecService<S: Scorer + Send + Sync + 'static> {
    /// `Some` for the service's whole life; taken in `Drop` to disconnect
    /// the queue before joining the dispatcher.
    tx: Option<SyncSender<Submission>>,
    cell: Arc<SnapshotCell<S>>,
    dispatcher: Option<JoinHandle<()>>,
    config: ServiceConfig,
    stats: Arc<StatsCounters>,
    /// Queue depth mirror (std's mpsc exposes no len): incremented by
    /// submitters *before* send, decremented by the dispatcher per
    /// dequeue and by submitters on send failure — so it never undercounts
    /// what the dispatcher is yet to see.
    backlog: Arc<AtomicUsize>,
}

impl<S: Scorer + Send + Sync + 'static> RecService<S> {
    /// Starts a service over `snapshot` (version 0) — a bare
    /// [`Retriever`] or a [`ServingSnapshot`] ladder — spawning the
    /// supervised dispatcher thread and its worker pool.
    pub fn start(snapshot: impl Into<ServingSnapshot<S>>, config: ServiceConfig) -> Self {
        let cell = Arc::new(SnapshotCell::new(snapshot));
        let (tx, rx) = mpsc::sync_channel(config.queue_depth.max(1));
        let stats = Arc::new(StatsCounters::default());
        let backlog = Arc::new(AtomicUsize::new(0));
        let dispatcher_cell = Arc::clone(&cell);
        let dispatcher_stats = Arc::clone(&stats);
        let dispatcher_backlog = Arc::clone(&backlog);
        let dispatcher = thread::Builder::new()
            .name("mars-serve-dispatch".to_string())
            .spawn(move || {
                supervisor_loop(
                    rx,
                    dispatcher_cell,
                    config,
                    dispatcher_stats,
                    dispatcher_backlog,
                )
            })
            // Startup-time resource exhaustion, before any request exists
            // to fail typed — a panic here is the right surface.
            .expect("failed to spawn mars-serve dispatcher");
        Self {
            tx: Some(tx),
            cell,
            dispatcher: Some(dispatcher),
            config,
            stats,
            backlog,
        }
    }

    /// Starts with [`ServiceConfig::default`].
    pub fn with_defaults(snapshot: impl Into<ServingSnapshot<S>>) -> Self {
        Self::start(snapshot, ServiceConfig::default())
    }

    /// The absolute deadline a request submitted now would carry.
    fn deadline_for(&self, req: &RecRequest) -> Option<Instant> {
        req.budget
            .or(self.config.default_deadline)
            .map(|d| Instant::now() + d)
    }

    /// Submits a request and blocks until its response is computed —
    /// waiting for queue space if the service is saturated. An expired
    /// deadline surfaces as [`ServiceError::DeadlineExceeded`]; a batch
    /// fault as [`ServiceError::Internal`]; a stopped service as
    /// [`ServiceError::Stopped`].
    pub fn retrieve(&self, req: &RecRequest) -> Result<RecResponse, ServiceError> {
        let deadline = self.deadline_for(req);
        let slot = OneShotSlot::new();
        let sub = Submission {
            req: req.clone(),
            deadline,
            slot: &slot,
            done: false,
        };
        // Established invariant, not a request-path failure mode: `tx` is
        // `Some` from construction until `Drop` takes it, and `Drop`
        // requires `&mut self` — no `retrieve` can be running then.
        let tx = self.tx.as_ref().expect("queue alive until Drop");
        // ORDERING: backlog is a pressure gauge and `submitted` a monotone
        // statistic; neither orders any other memory — the OneShotSlot
        // hand-off synchronizes the actual response.
        self.backlog.fetch_add(1, Ordering::Relaxed);
        match tx.send(sub) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                slot.wait_bounded(deadline)
            }
            Err(mpsc::SendError(mut sub)) => {
                self.backlog.fetch_sub(1, Ordering::Relaxed);
                // Defuse the backstop: the slot must not be filled once
                // this frame returns.
                sub.done = true;
                Err(ServiceError::Stopped)
            }
        }
    }

    /// Like [`RecService::retrieve`], but rejects immediately with
    /// [`ServiceError::Overloaded`] when the queue is full instead of
    /// back-pressuring the caller (load-shedding mode). An accepted
    /// request still blocks until its response arrives.
    pub fn try_retrieve(&self, req: &RecRequest) -> Result<RecResponse, ServiceError> {
        let deadline = self.deadline_for(req);
        let slot = OneShotSlot::new();
        let sub = Submission {
            req: req.clone(),
            deadline,
            slot: &slot,
            done: false,
        };
        // Same invariant as in `retrieve`.
        let tx = self.tx.as_ref().expect("queue alive until Drop");
        // ORDERING: same backlog/statistics counters as `retrieve` —
        // pressure heuristics and monotone stats, no cross-variable
        // ordering required.
        self.backlog.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(sub) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                slot.wait_bounded(deadline)
            }
            Err(TrySendError::Full(mut sub)) => {
                self.backlog.fetch_sub(1, Ordering::Relaxed);
                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                sub.done = true;
                Err(ServiceError::Overloaded)
            }
            Err(TrySendError::Disconnected(mut sub)) => {
                self.backlog.fetch_sub(1, Ordering::Relaxed);
                sub.done = true;
                Err(ServiceError::Stopped)
            }
        }
    }

    /// Atomically publishes a new snapshot; returns its version. Requests
    /// already coalesced into a batch finish on the old snapshot; every
    /// batch formed after the publish serves the new one.
    pub fn publish(&self, snapshot: impl Into<ServingSnapshot<S>>) -> u64 {
        self.cell.publish(snapshot)
    }

    /// The currently served snapshot.
    pub fn snapshot(&self) -> Arc<ServingSnapshot<S>> {
        self.cell.load()
    }

    /// The current snapshot version (0 = the one passed to `start`).
    pub fn snapshot_version(&self) -> u64 {
        self.cell.version()
    }

    /// The shared swap handle — hand this to a trainer thread so it can
    /// publish without holding the service itself.
    pub fn snapshot_cell(&self) -> &Arc<SnapshotCell<S>> {
        &self.cell
    }

    /// The configuration the service was started with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// A consistent-enough sample of the service counters (each counter
    /// is individually atomic; the set is not a snapshot of one instant).
    pub fn stats(&self) -> ServiceStats {
        let c = &self.stats;
        ServiceStats {
            // ORDERING: every field is an independently-atomic statistic; the
            // doc above already disclaims instant-consistency of the set.
            submitted: c.submitted.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            deadline_dropped: c.deadline_dropped.load(Ordering::Relaxed),
            degraded_served: c.degraded_served.load(Ordering::Relaxed),
            batch_faults: c.batch_faults.load(Ordering::Relaxed),
            dispatcher_restarts: c.dispatcher_restarts.load(Ordering::Relaxed),
            healthy_batches: c.healthy_batches.load(Ordering::Relaxed),
            current_rung: c.current_rung.load(Ordering::Relaxed),
            backlog: self.backlog.load(Ordering::Relaxed) as u64,
        }
    }
}

impl<S: Scorer + Send + Sync + 'static> Drop for RecService<S> {
    fn drop(&mut self) {
        // Disconnect the queue; the dispatcher serves what is already
        // buffered, then sees the hang-up and exits.
        drop(self.tx.take());
        if let Some(handle) = self.dispatcher.take() {
            // A dispatcher that died already completed every caller via
            // the Submission backstop; nothing to re-raise.
            let _ = handle.join();
        }
    }
}

/// How one incarnation of the dispatch loop ended.
enum DispatchExit {
    /// Every sender hung up: normal shutdown.
    Disconnected,
    /// A micro-batch faulted (scorer panic). Its callers were completed
    /// with [`ServiceError::Internal`]; the supervisor decides whether to
    /// restart.
    Faulted,
}

/// The hysteresis controller of the degradation ladder (see
/// [`DegradeConfig`]). Owned by the supervisor so the chosen rung
/// survives dispatcher restarts.
struct DegradeController {
    rung: usize,
    pressure_run: u32,
    clear_run: u32,
    /// EWMA of per-request batch latency, ns. 0 = no sample yet.
    ewma_ns: f64,
}

impl DegradeController {
    fn new() -> Self {
        Self {
            rung: 0,
            pressure_run: 0,
            clear_run: 0,
            ewma_ns: 0.0,
        }
    }

    /// Folds one served batch into the controller state.
    fn observe(&mut self, cfg: &DegradeConfig, backlog: usize, per_req_ns: f64, max_rung: usize) {
        self.ewma_ns = if self.ewma_ns == 0.0 {
            per_req_ns
        } else {
            0.2 * per_req_ns + 0.8 * self.ewma_ns
        };
        let lat_hot = cfg
            .high_latency
            .is_some_and(|d| self.ewma_ns > d.as_nanos() as f64);
        let pressured = (cfg.high_backlog > 0 && backlog >= cfg.high_backlog) || lat_hot;
        let clear = backlog <= cfg.low_backlog && !lat_hot;
        if pressured {
            self.clear_run = 0;
            self.pressure_run += 1;
            if self.pressure_run >= cfg.step_down_after.max(1) && self.rung < max_rung {
                self.rung += 1;
                self.pressure_run = 0;
            }
        } else if clear {
            self.pressure_run = 0;
            self.clear_run += 1;
            if self.clear_run >= cfg.step_up_after.max(1) && self.rung > 0 {
                self.rung -= 1;
                self.clear_run = 0;
            }
        } else {
            // The hysteresis band: hold the rung, reset both runs.
            self.pressure_run = 0;
            self.clear_run = 0;
        }
    }
}

/// The supervisor: runs [`dispatch_loop`] incarnations, restarting after
/// faults under the bounded budget (replenished by healthy progress).
/// When the budget runs dry, drains the queue with
/// [`ServiceError::Stopped`] until every sender hangs up.
fn supervisor_loop<S: Scorer + Send + Sync + 'static>(
    rx: Receiver<Submission>,
    cell: Arc<SnapshotCell<S>>,
    config: ServiceConfig,
    stats: Arc<StatsCounters>,
    backlog: Arc<AtomicUsize>,
) {
    let mut budget = config.restart_budget;
    let mut controller = DegradeController::new();
    loop {
        // ORDERING: healthy_batches / dispatcher_restarts are monotone
        // stats (the supervisor compares healthy_batches against its own
        // earlier read — same thread) and backlog is a pressure gauge;
        // caller completion is ordered by the Submission slot, not these.
        let healthy_before = stats.healthy_batches.load(Ordering::Relaxed);
        // AssertUnwindSafe: on unwind the dispatch state (receiver,
        // controller counters, stats) is either dropped or merely stale —
        // every queued caller is protected by the Submission backstop,
        // and the restarted loop rebuilds its pool and reader from
        // scratch.
        let exit = catch_unwind(AssertUnwindSafe(|| {
            dispatch_loop(&rx, &cell, &config, &stats, &backlog, &mut controller)
        }))
        .unwrap_or(DispatchExit::Faulted);
        match exit {
            DispatchExit::Disconnected => return,
            DispatchExit::Faulted => {
                stats.dispatcher_restarts.fetch_add(1, Ordering::Relaxed);
                if stats.healthy_batches.load(Ordering::Relaxed) > healthy_before {
                    // The incarnation made healthy progress before
                    // faulting: an intermittent fault, not a death loop.
                    budget = config.restart_budget;
                }
                if budget == 0 {
                    break;
                }
                budget -= 1;
            }
        }
    }
    // Restart budget exhausted: the scorer is faulting faster than it
    // serves. Fail everything still queued (and everything that arrives
    // until the senders notice) instead of looping on panics.
    while let Ok(sub) = rx.recv() {
        backlog.fetch_sub(1, Ordering::Relaxed);
        sub.complete(Err(ServiceError::Stopped));
    }
}

/// One incarnation of the dispatcher: block for the first request,
/// coalesce up to `max_batch` / `max_wait`, drop what is already past
/// deadline, resolve the snapshot and ladder rung once, fan out under
/// `catch_unwind`, complete every caller.
fn dispatch_loop<S: Scorer + Send + Sync + 'static>(
    rx: &Receiver<Submission>,
    cell: &Arc<SnapshotCell<S>>,
    config: &ServiceConfig,
    stats: &StatsCounters,
    backlog: &AtomicUsize,
    controller: &mut DegradeController,
) -> DispatchExit {
    let pool = WorkerPool::with_threads(config.threads);
    let mut reader = SnapshotReader::new(cell);
    let max_batch = config.max_batch.max(1);
    let mut batch: Vec<Submission> = Vec::with_capacity(max_batch);
    let mut live: Vec<Submission> = Vec::with_capacity(max_batch);

    loop {
        // Idle: nothing queued, so the first request defines the batch's
        // arrival instant.
        match rx.recv() {
            Ok(sub) => {
                // ORDERING: backlog is a pressure gauge read by the degrade
                // controller as a heuristic; the channel itself synchronizes the
                // submission hand-off, so Relaxed suffices.
                backlog.fetch_sub(1, Ordering::Relaxed);
                batch.push(sub);
            }
            Err(_) => return DispatchExit::Disconnected, // all senders gone
        }
        // Coalesce. With a zero window, take only what already queued up
        // behind the first request; otherwise wait out the window for the
        // batch to fill.
        if config.max_wait.is_zero() {
            while batch.len() < max_batch {
                match rx.try_recv() {
                    Ok(sub) => {
                        // ORDERING: backlog is a pressure gauge read by the degrade
                        // controller as a heuristic; the channel itself synchronizes the
                        // submission hand-off, so Relaxed suffices.
                        backlog.fetch_sub(1, Ordering::Relaxed);
                        batch.push(sub);
                    }
                    Err(_) => break,
                }
            }
        } else {
            let window = Instant::now() + config.max_wait;
            while batch.len() < max_batch {
                let now = Instant::now();
                if now >= window {
                    break;
                }
                match rx.recv_timeout(window - now) {
                    Ok(sub) => {
                        // ORDERING: backlog is a pressure gauge read by the degrade
                        // controller as a heuristic; the channel itself synchronizes the
                        // submission hand-off, so Relaxed suffices.
                        backlog.fetch_sub(1, Ordering::Relaxed);
                        batch.push(sub);
                    }
                    Err(_) => break, // timeout or disconnect; serve what we have
                }
            }
        }

        // Deadline triage at dequeue: anything already expired gets the
        // typed error now instead of a late answer nobody awaits.
        let now = Instant::now();
        for sub in batch.drain(..) {
            if sub.expired(now) {
                // ORDERING: monotone statistic; the typed error delivery is
                // ordered by the Submission slot.
                stats.deadline_dropped.fetch_add(1, Ordering::Relaxed);
                sub.complete(Err(ServiceError::DeadlineExceeded));
            } else {
                live.push(sub);
            }
        }
        std::mem::swap(&mut batch, &mut live);
        if batch.is_empty() {
            continue;
        }

        // One snapshot, one rung, for the whole batch.
        let snapshot = Arc::clone(reader.current());
        let rung_idx = controller.rung.min(snapshot.depth() - 1);
        // ORDERING: rung gauge exported via `stats()`; observers need no
        // ordering against the batch it describes.
        stats.current_rung.store(rung_idx as u64, Ordering::Relaxed);
        let degraded = rung_idx > 0;
        let n = batch.len() as u64;
        let t0 = Instant::now();
        // AssertUnwindSafe: on unwind, `batch` still owns every
        // uncompleted Submission (completion happens only below, after
        // the compute succeeded), and the fault path consumes them with a
        // typed error.
        let served = catch_unwind(AssertUnwindSafe(|| {
            compute_batch(snapshot.rung(rung_idx), &pool, &batch)
        }));
        match served {
            Ok(responses) => {
                // Stats and controller BEFORE completing the callers, so
                // a caller that reads `stats()` right after its response
                // arrives sees its own batch accounted for.
                // ORDERING: monotone stats plus the backlog pressure gauge; the
                // caller-visible hand-off is ordered by OneShotSlot completion,
                // not by these counters.
                stats.healthy_batches.fetch_add(1, Ordering::Relaxed);
                if degraded {
                    stats.degraded_served.fetch_add(n, Ordering::Relaxed);
                }
                let per_req_ns = t0.elapsed().as_nanos() as f64 / n as f64;
                controller.observe(
                    &config.degrade,
                    backlog.load(Ordering::Relaxed),
                    per_req_ns,
                    snapshot.depth() - 1,
                );
                debug_assert_eq!(responses.len(), batch.len());
                for (sub, mut resp) in batch.drain(..).zip(responses) {
                    resp.degraded = degraded;
                    sub.complete(Ok(resp));
                }
            }
            Err(_) => {
                // A scorer panic: fail exactly this batch's callers, each
                // with the typed Internal (not the blunt Drop-backstop
                // Stopped), and hand control back to the supervisor.
                // ORDERING: monotone statistic; the Internal errors below are
                // delivered through the synchronizing Submission slot.
                stats.batch_faults.fetch_add(1, Ordering::Relaxed);
                for sub in batch.drain(..) {
                    sub.complete(Err(ServiceError::Internal));
                }
                return DispatchExit::Faulted;
            }
        }
    }
}

/// Computes one micro-batch against one rung of one coherent snapshot.
/// Completes nobody — the caller completes on success, so scorer panics
/// propagate to its `catch_unwind` with `batch` fully intact.
fn compute_batch<S: Scorer + Send + Sync + ?Sized>(
    rung: &Retriever<S>,
    pool: &WorkerPool,
    batch: &[Submission],
) -> Vec<RecResponse> {
    let queries: Vec<RecQuery<'_>> = batch.iter().map(|s| s.req.as_query()).collect();
    rung.retrieve_batch(&queries, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Condvar;

    /// The retriever tests' structureless deterministic scorer.
    struct Hashing;
    impl Scorer for Hashing {
        fn score(&self, user: UserId, item: ItemId) -> f32 {
            let mut h = (user as u64) << 32 | item as u64;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            (h % 10_000) as f32 / 10_000.0
        }
    }

    fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u32)> {
        v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
    }

    #[test]
    fn service_matches_direct_retrieval() {
        let reference = Retriever::new(Hashing, 200);
        let service = RecService::start(
            Retriever::new(Hashing, 200),
            ServiceConfig {
                queue_depth: 8,
                max_batch: 4,
                max_wait: Duration::from_micros(50),
                threads: 2,
                ..ServiceConfig::default()
            },
        );
        let seen: Vec<ItemId> = (0..200).filter(|v| v % 9 == 0).collect();
        for u in 0..40u32 {
            let req = RecRequest::top_k(u, 7).excluding(&seen[..]);
            let got = service.retrieve(&req).expect("service alive");
            let expect = reference.retrieve(&req.as_query());
            assert_eq!(got.user, u);
            assert!(!got.degraded, "single-rung snapshot can never degrade");
            assert_eq!(bits(&got.ranked), bits(&expect.ranked), "user {u}");
        }
        let s = service.stats();
        assert_eq!(s.submitted, 40);
        assert_eq!(s.deadline_dropped, 0);
        assert_eq!(s.batch_faults, 0);
        assert_eq!(s.backlog, 0);
    }

    #[test]
    fn candidate_requests_ride_the_queue_too() {
        let reference = Retriever::new(Hashing, 500);
        let service = RecService::with_defaults(Retriever::new(Hashing, 500));
        let cands: Vec<ItemId> = vec![400, 3, 77, 251, 77];
        let req = RecRequest::top_k(9, 3).among(&cands[..]);
        let got = service.retrieve(&req).unwrap();
        let expect = reference.retrieve(&req.as_query());
        assert_eq!(bits(&got.ranked), bits(&expect.ranked));
    }

    #[test]
    fn publish_switches_the_snapshot_and_bumps_the_version() {
        struct Negate;
        impl Scorer for Negate {
            fn score(&self, user: UserId, item: ItemId) -> f32 {
                -Hashing.score(user, item)
            }
        }
        // Same scorer type is required by the service generics; wrap both
        // behind an enum instead.
        enum Either {
            A,
            B,
        }
        impl Scorer for Either {
            fn score(&self, user: UserId, item: ItemId) -> f32 {
                match self {
                    Either::A => Hashing.score(user, item),
                    Either::B => Negate.score(user, item),
                }
            }
        }
        let service = RecService::with_defaults(Retriever::new(Either::A, 64));
        assert_eq!(service.snapshot_version(), 0);
        let req = RecRequest::top_k(3, 5);
        let before = service.retrieve(&req).unwrap();
        assert_eq!(service.publish(Retriever::new(Either::B, 64)), 1);
        assert_eq!(service.snapshot_version(), 1);
        let after = service.retrieve(&req).unwrap();
        let expect_a = Retriever::new(Either::A, 64).retrieve(&req.as_query());
        let expect_b = Retriever::new(Either::B, 64).retrieve(&req.as_query());
        assert_eq!(bits(&before.ranked), bits(&expect_a.ranked));
        assert_eq!(bits(&after.ranked), bits(&expect_b.ranked));
        assert_ne!(bits(&before.ranked), bits(&after.ranked));
    }

    /// A scorer whose first score call signals arrival and then blocks
    /// until the gate opens — lets a test hold the dispatcher mid-batch.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
        entered: AtomicUsize,
    }
    struct Blocking(Arc<Gate>);
    impl Scorer for Blocking {
        fn score(&self, _user: UserId, item: ItemId) -> f32 {
            self.0.entered.fetch_add(1, Ordering::SeqCst);
            let mut open = self.0.open.lock().unwrap();
            while !*open {
                open = self.0.cv.wait(open).unwrap();
            }
            item as f32
        }
    }

    #[test]
    fn try_retrieve_sheds_load_when_the_queue_is_full() {
        let gate = Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicUsize::new(0),
        });
        let service = Arc::new(RecService::start(
            Retriever::new(Blocking(Arc::clone(&gate)), 4),
            ServiceConfig {
                queue_depth: 1,
                max_batch: 1,
                max_wait: Duration::ZERO,
                threads: 1,
                ..ServiceConfig::default()
            },
        ));

        // Request A: dequeued by the dispatcher, then stuck in `score`.
        let a = {
            let service = Arc::clone(&service);
            thread::spawn(move || service.retrieve(&RecRequest::top_k(0, 2)))
        };
        while gate.entered.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }

        // Probes: with the dispatcher stuck and queue depth 1, one probe
        // can occupy the queue slot (it then blocks awaiting its
        // response), and the next must shed with `Overloaded`. A probe
        // that doesn't report within the timeout is the queued one; keep
        // spawning until one reports the rejection.
        let mut queued = Vec::new();
        let rejected = loop {
            let service = Arc::clone(&service);
            let (tx, rx) = mpsc::channel();
            let probe = thread::spawn(move || {
                let r = service.try_retrieve(&RecRequest::top_k(1, 2));
                let _ = tx.send(r.is_err());
                r
            });
            match rx.recv_timeout(Duration::from_millis(200)) {
                Ok(true) => break probe, // rejected — inspect after join
                Ok(false) => unreachable!("probe served while the dispatcher was blocked"),
                Err(_) => queued.push(probe), // took the queue slot, now waiting
            }
        };
        assert_eq!(
            rejected.join().unwrap(),
            Err(ServiceError::Overloaded),
            "shed probe must see Overloaded"
        );
        assert!(service.stats().shed >= 1, "shed must be counted");

        // Open the gate: A and every queued probe complete normally.
        *gate.open.lock().unwrap() = true;
        gate.cv.notify_all();
        let ra = a.join().unwrap().unwrap();
        assert_eq!(ra.len(), 2);
        for probe in queued {
            // A slow reporter may itself have been rejected; what no
            // accepted probe may see is `Stopped` or a hang.
            match probe.join().unwrap() {
                Ok(resp) => assert_eq!(resp.len(), 2),
                Err(e) => assert_eq!(e, ServiceError::Overloaded),
            }
        }
    }

    #[test]
    fn scorer_panic_fails_the_batch_typed_then_stops_on_exhausted_budget() {
        struct Exploding;
        impl Scorer for Exploding {
            fn score(&self, _user: UserId, _item: ItemId) -> f32 {
                panic!("scorer exploded");
            }
        }
        let service = RecService::start(
            Retriever::new(Exploding, 8),
            ServiceConfig {
                queue_depth: 4,
                max_batch: 1,
                max_wait: Duration::ZERO,
                threads: 1,
                restart_budget: 1,
                ..ServiceConfig::default()
            },
        );
        // Fault 1: the batch's caller gets the typed Internal, and the
        // supervisor restarts (budget 1 → 0).
        assert_eq!(
            service.retrieve(&RecRequest::top_k(0, 3)),
            Err(ServiceError::Internal)
        );
        // Fault 2: typed again, but the budget is now exhausted with no
        // healthy progress in between → terminal drain.
        assert_eq!(
            service.retrieve(&RecRequest::top_k(1, 3)),
            Err(ServiceError::Internal)
        );
        // Everything after the exhausted budget fails fast with Stopped —
        // never a hang.
        assert_eq!(
            service.retrieve(&RecRequest::top_k(2, 3)),
            Err(ServiceError::Stopped)
        );
        let s = service.stats();
        assert_eq!(s.batch_faults, 2);
        assert_eq!(s.dispatcher_restarts, 2);
        assert_eq!(s.healthy_batches, 0);
    }

    #[test]
    fn restart_budget_replenishes_on_healthy_progress() {
        /// Panics on user 99, serves everyone else.
        struct Selective;
        impl Scorer for Selective {
            fn score(&self, user: UserId, item: ItemId) -> f32 {
                assert_ne!(user, 99, "poison user");
                Hashing.score(user, item)
            }
        }
        let service = RecService::start(
            Retriever::new(Selective, 16),
            ServiceConfig {
                queue_depth: 4,
                max_batch: 1,
                max_wait: Duration::ZERO,
                threads: 1,
                restart_budget: 1,
                ..ServiceConfig::default()
            },
        );
        // Alternate fault / healthy far past the raw budget: healthy
        // progress refills it each time, so the service stays live.
        for round in 0..4 {
            assert_eq!(
                service.retrieve(&RecRequest::top_k(99, 3)),
                Err(ServiceError::Internal),
                "round {round}"
            );
            let ok = service
                .retrieve(&RecRequest::top_k(round, 3))
                .expect("service must stay live across intermittent faults");
            assert_eq!(ok.user, round);
        }
        let s = service.stats();
        assert_eq!(s.batch_faults, 4);
        assert_eq!(s.dispatcher_restarts, 4);
        assert_eq!(s.healthy_batches, 4);
    }

    #[test]
    fn queued_requests_past_deadline_are_dropped_at_dequeue() {
        let gate = Arc::new(Gate {
            open: Mutex::new(false),
            cv: Condvar::new(),
            entered: AtomicUsize::new(0),
        });
        let service = Arc::new(RecService::start(
            Retriever::new(Blocking(Arc::clone(&gate)), 4),
            ServiceConfig {
                queue_depth: 4,
                max_batch: 1,
                max_wait: Duration::ZERO,
                threads: 1,
                ..ServiceConfig::default()
            },
        ));

        // A: no deadline; holds the dispatcher inside `score`.
        let a = {
            let service = Arc::clone(&service);
            thread::spawn(move || service.retrieve(&RecRequest::top_k(0, 2)))
        };
        while gate.entered.load(Ordering::SeqCst) == 0 {
            thread::yield_now();
        }
        // B: tiny budget, queued behind the stuck A — guaranteed to
        // expire before the dispatcher dequeues it.
        let b = {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                service.retrieve(&RecRequest::top_k(1, 2).within(Duration::from_millis(1)))
            })
        };
        thread::sleep(Duration::from_millis(20));
        *gate.open.lock().unwrap() = true;
        gate.cv.notify_all();

        assert_eq!(a.join().unwrap().unwrap().len(), 2);
        assert_eq!(b.join().unwrap(), Err(ServiceError::DeadlineExceeded));
        let s = service.stats();
        assert_eq!(s.deadline_dropped, 1);
        assert_eq!(s.backlog, 0);
    }

    #[test]
    fn ladder_degrades_under_backlog_and_recovers() {
        // A ladder whose rungs are *distinguishable*: rung 1 serves the
        // same scores through a restricted-but-equal retriever; we detect
        // degradation via the response flag and the stats, not by score
        // drift (the scorer is the same).
        let r = Retriever::new(Hashing, 64);
        let snapshot = ServingSnapshot::ladder(vec![r.clone(), r]);
        let service = Arc::new(RecService::start(
            snapshot,
            ServiceConfig {
                queue_depth: 64,
                max_batch: 1,
                max_wait: Duration::ZERO,
                threads: 1,
                degrade: DegradeConfig {
                    high_backlog: 3,
                    low_backlog: 0,
                    high_latency: None,
                    step_down_after: 1,
                    step_up_after: 2,
                },
                ..ServiceConfig::default()
            },
        ));
        // Flood from several threads so a backlog actually builds.
        let degraded_seen = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let service = Arc::clone(&service);
                let degraded_seen = Arc::clone(&degraded_seen);
                thread::spawn(move || {
                    for i in 0..200u32 {
                        let resp = service
                            .retrieve(&RecRequest::top_k((t * 200 + i) % 50, 5))
                            .expect("service alive");
                        if resp.degraded {
                            // ORDERING: test tally; the joins below order the final read.
                            degraded_seen.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = service.stats();
        assert_eq!(
            s.degraded_served as usize,
            // ORDERING: writer threads were joined above; this Relaxed
            // load is the only remaining access.
            degraded_seen.load(Ordering::Relaxed)
        );
        // Quiet traffic steps the ladder back up to full fidelity.
        for _ in 0..8 {
            let resp = service.retrieve(&RecRequest::top_k(1, 5)).unwrap();
            thread::sleep(Duration::from_millis(1));
            let _ = resp;
        }
        assert_eq!(service.stats().current_rung, 0, "ladder must recover");
        let final_resp = service.retrieve(&RecRequest::top_k(1, 5)).unwrap();
        assert!(!final_resp.degraded);
    }

    #[test]
    fn snapshot_reader_refreshes_only_on_publish() {
        let cell = Arc::new(SnapshotCell::new(Retriever::new(Hashing, 16)));
        let mut reader = SnapshotReader::new(&cell);
        let first = Arc::clone(reader.current());
        assert!(Arc::ptr_eq(reader.current(), &first));
        assert_eq!(reader.version(), 0);
        cell.publish(Retriever::new(Hashing, 16));
        let second = Arc::clone(reader.current());
        assert!(!Arc::ptr_eq(&second, &first));
        assert_eq!(reader.version(), 1);
        assert!(Arc::ptr_eq(reader.current(), &second));
    }

    #[test]
    fn zero_wait_single_batch_config_works() {
        let service = RecService::start(
            Retriever::new(Hashing, 50),
            ServiceConfig {
                queue_depth: 1,
                max_batch: 1,
                max_wait: Duration::ZERO,
                threads: 1,
                ..ServiceConfig::default()
            },
        );
        let reference = Retriever::new(Hashing, 50);
        for u in 0..10u32 {
            let req = RecRequest::top_k(u, 5);
            let got = service.retrieve(&req).unwrap();
            assert_eq!(
                bits(&got.ranked),
                bits(&reference.retrieve(&req.as_query()).ranked)
            );
        }
    }
}
