//! Opt-in IVF (inverted-file) index: sublinear approximate retrieval.
//!
//! The exact engine ([`crate::rank_into`]) scores the *whole* catalogue per
//! query — O(n·K·D) no matter how large the catalogue grows. This module
//! trades a bounded amount of recall for sublinear scans: item embeddings
//! are partitioned **per facet** into `c ≈ √n` cells with
//! `mars-tensor::kmeans` (k-means++ seeded from a `CounterRng` — the cell
//! layout is a pure function of `(embeddings, IvfConfig)`), each cell's
//! vectors are stored as one contiguous block, and a query only scans the
//! blocks of the `nprobe` cells whose centroids rank best per facet —
//! `nprobe/c` of the catalogue instead of all of it.
//!
//! ## The two probe modes
//!
//! * [`IvfMode::ExactRescore`] (default) — the index is a **candidate
//!   selector**: the union of the probed cells' members (deduplicated with
//!   an epoch-stamp, seen-filtered) is scored through the model's own
//!   [`Scorer::score_block`] and the shared bounded heap. Returned scores
//!   are the model's scores, bit-identical to what the exact scan assigns
//!   those items; only *membership* of the top k is approximate. At
//!   `nprobe == cells` every item is a candidate (each facet's cells
//!   partition the catalogue), so the result is **bit-identical to the
//!   exact scan** — the equivalence tests pin this.
//! * [`IvfMode::Coarse`] — cell blocks are scored directly with the
//!   `mars-tensor::simd` row kernels (`f32`, or int8 with one scale per
//!   `(facet, cell)` block via [`CellStore::Int8`]), accumulating
//!   `Σ_f w_f · m(q_f, x_f)` across facets. With `refine > 0` the top
//!   `k·refine` coarse candidates are exactly rescored, so final scores
//!   are again the model's own.
//!
//! ## What stays inside the determinism contract
//!
//! Queries through the index remain deterministic: cell ranking and the
//! final ordering use [`rank_cmp`]'s total order, so hostile scores
//! (NaN/±∞/ties) degrade exactly as in the exact engine — NaN ranks last,
//! never panics or reorders. The exact scan stays the default; the index
//! is opt-in per [`crate::Retriever`] via
//! [`Retriever::with_index`](crate::Retriever::with_index), and
//! candidate-restricted queries ([`RecQuery::among`](crate::RecQuery))
//! always bypass it (the shortlist is already sublinear).

use crate::order::rank_cmp;
use crate::query::RecQuery;
use crate::retriever::RetrievalScratch;
use crate::topk;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_tensor::{kmeans, rows, simd, Matrix};

/// Geometry of the per-facet coarse similarity `m(q, x)` — the metric the
/// index ranks centroids and (in [`IvfMode::Coarse`]) items under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexMetric {
    /// `m(q, x) = q·x` (MARS: cosine over pre-normalized index vectors).
    InnerProduct,
    /// `m(q, x) = −‖q−x‖²` (MAR's Euclidean facets).
    NegSquaredL2,
}

/// How cell blocks are stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CellStore {
    /// Full-precision rows — coarse scores are plain f32 kernel output.
    #[default]
    F32,
    /// One `i8` code per component with a single scale per `(facet, cell)`
    /// block (`scale = max|x| / 127`): 4× smaller blocks, scanned by the
    /// exact-across-tiers `mars-tensor::simd` int8 kernels.
    Int8,
}

/// How probed cells turn into a ranked answer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum IvfMode {
    /// Probed cells only *select candidates*; the model's own
    /// [`Scorer::score_block`] assigns every returned score.
    #[default]
    ExactRescore,
    /// Rank by the coarse block scores. `refine == 0` returns them as-is;
    /// `refine ≥ 1` exactly rescores the top `k·refine` coarse candidates.
    Coarse {
        /// Exact-rescore multiplier (0 disables the rescore pass).
        refine: usize,
    },
}

/// Build- and probe-time configuration of an [`IvfIndex`].
#[derive(Clone, Copy, Debug)]
pub struct IvfConfig {
    /// Cells per facet; `0` ⇒ `⌈√n⌉` (the classic IVF operating point).
    pub cells: usize,
    /// Cells probed per facet per query (≥ 1; `cells` ⇒ exhaustive).
    pub nprobe: usize,
    /// Lloyd iteration cap for the per-facet k-means (≥ 1).
    pub max_iters: usize,
    /// Rows the k-means trains on: catalogues larger than this are
    /// deterministically strided down to `train_sample` rows before
    /// clustering (every item is still assigned to a cell). `0` ⇒ train on
    /// everything.
    pub train_sample: usize,
    /// Seed of the k-means++ seeding stream; facet `f` clusters under
    /// `seed + f` so facets decorrelate.
    pub seed: u64,
    pub store: CellStore,
    pub mode: IvfMode,
}

impl Default for IvfConfig {
    fn default() -> Self {
        Self {
            cells: 0,
            nprobe: 8,
            max_iters: 10,
            train_sample: 32_768,
            seed: 0,
            store: CellStore::F32,
            mode: IvfMode::ExactRescore,
        }
    }
}

/// What a model must expose for the index to embed its items: per-facet
/// vectors on both sides plus a facet weight, such that
/// `Σ_f w_f · m(q_f, x_f)` (with `m` = [`IndexMetric`]) approximates —
/// ideally equals — [`Scorer::score`]. MARS models expose *normalized*
/// facet embeddings under [`IndexMetric::InnerProduct`] (cosine becomes a
/// dot product), MAR models raw facets under [`IndexMetric::NegSquaredL2`].
///
/// The vectors must be pure functions of the frozen model — the index is a
/// snapshot; rebuild it when parameters change.
pub trait IndexEmbeddings: Scorer {
    /// Facet count K of the index layout.
    fn num_index_facets(&self) -> usize;
    /// Per-facet vector dimension D.
    fn index_dim(&self) -> usize;
    /// Coarse similarity the facet spaces use.
    fn index_metric(&self) -> IndexMetric;
    /// Writes item `v`'s facet-`f` index vector into `out` (length D).
    fn item_index_vector(&self, v: ItemId, f: usize, out: &mut [f32]);
    /// Writes the query-side facet-`f` vector for `user` into `out` and
    /// returns its weight `w_f` in the coarse score.
    fn query_index_vector(&self, user: UserId, f: usize, out: &mut [f32]) -> f32;
}

/// One facet's partition: centroids, cell membership (CSR layout), and the
/// cell-blocked vector store.
#[derive(Clone, Debug)]
struct FacetIndex {
    /// `cells × dim`, row-major.
    centroids: Vec<f32>,
    /// CSR offsets into `cell_items` / the store (`cells + 1` entries).
    cell_start: Vec<usize>,
    /// Item ids grouped by cell, ascending id within each cell.
    cell_items: Vec<ItemId>,
    store: FacetStore,
}

#[derive(Clone, Debug)]
enum FacetStore {
    /// `n × dim` rows in `cell_items` order.
    F32(Vec<f32>),
    /// Same layout quantized: `codes[j·D..]` is row `j`, `scales[c]` the
    /// shared dequantization scale of cell `c`'s block.
    Int8 { codes: Vec<i8>, scales: Vec<f32> },
}

impl FacetIndex {
    #[inline]
    fn cells(&self) -> usize {
        self.cell_start.len() - 1
    }

    #[inline]
    fn cell_bounds(&self, c: usize) -> (usize, usize) {
        (self.cell_start[c], self.cell_start[c + 1])
    }

    /// Ranks every centroid against `q` under `metric` into `crank`
    /// (best first, [`rank_cmp`]'s total order — NaN centroids rank last)
    /// and returns how many cells to probe.
    fn rank_cells(
        &self,
        metric: IndexMetric,
        q: &[f32],
        nprobe: usize,
        cscores: &mut Vec<f32>,
        crank: &mut Vec<(ItemId, f32)>,
    ) -> usize {
        let cells = self.cells();
        cscores.resize(cells, 0.0);
        match metric {
            IndexMetric::InnerProduct => simd::dot_one_rows(q, &self.centroids, cscores),
            IndexMetric::NegSquaredL2 => {
                simd::dist_sq_one_rows(q, &self.centroids, cscores);
                for s in cscores.iter_mut() {
                    *s = -*s;
                }
            }
        }
        crank.clear();
        crank.extend(cscores.iter().enumerate().map(|(c, &s)| (c as ItemId, s)));
        crank.sort_unstable_by(|&a, &b| rank_cmp(a, b));
        nprobe.min(cells)
    }
}

/// The per-facet clustered index over one frozen model snapshot.
///
/// Build once per snapshot with [`IvfIndex::build`]; probe-time knobs
/// (`nprobe`, `mode`) can be re-tuned on a built index without
/// re-clustering ([`IvfIndex::with_nprobe`], [`IvfIndex::with_mode`]) —
/// the benchmark's nprobe sweep shares one build.
#[derive(Clone, Debug)]
pub struct IvfIndex {
    facets: usize,
    dim: usize,
    items: usize,
    metric: IndexMetric,
    nprobe: usize,
    mode: IvfMode,
    per_facet: Vec<FacetIndex>,
}

impl IvfIndex {
    /// Clusters `model`'s item index vectors into a per-facet IVF layout.
    ///
    /// Deterministic: the cell layout is a pure function of the embeddings
    /// and `cfg` (k-means++ seeding is counter-keyed on `cfg.seed + f`, the
    /// training subsample is a fixed stride, and within-cell item order is
    /// ascending id). Non-finite embedding values never panic — they can
    /// only make the affected cells rank like any other hostile score.
    ///
    /// # Panics
    /// If `catalog_items == 0` or the model reports zero facets/dim.
    pub fn build<S: IndexEmbeddings + ?Sized>(
        model: &S,
        catalog_items: usize,
        cfg: IvfConfig,
    ) -> Self {
        let n = catalog_items;
        let facets = model.num_index_facets();
        let dim = model.index_dim();
        assert!(n > 0, "IVF index needs a non-empty catalogue");
        assert!(facets > 0 && dim > 0, "IVF index needs facets ≥ 1, dim ≥ 1");

        let train_n = if cfg.train_sample > 0 {
            n.min(cfg.train_sample)
        } else {
            n
        };
        let cells = if cfg.cells == 0 {
            ((n as f64).sqrt().ceil() as usize).max(1)
        } else {
            cfg.cells
        }
        .min(train_n);

        let per_facet = (0..facets)
            .map(|f| {
                // Gather this facet's item vectors into one flat n × D buffer.
                let mut all = vec![0.0f32; n * dim];
                for v in 0..n {
                    model.item_index_vector(v as ItemId, f, rows::row_mut(&mut all, dim, v));
                }

                // Cluster (on a deterministic stride subsample when the
                // catalogue is large), then assign *every* item.
                let train = if train_n < n {
                    let mut buf = Vec::with_capacity(train_n * dim);
                    for i in 0..train_n {
                        buf.extend_from_slice(rows::row(&all, dim, i * n / train_n));
                    }
                    Matrix::from_vec(train_n, dim, buf)
                } else {
                    Matrix::from_vec(n, dim, all.clone())
                };
                let km = kmeans::kmeans(
                    &train,
                    cells,
                    cfg.max_iters.max(1),
                    cfg.seed.wrapping_add(f as u64),
                );

                let mut dists = vec![0.0f32; cells];
                let mut assign = vec![0usize; n];
                for (v, a) in assign.iter_mut().enumerate() {
                    rows::dist_sq_one_rows(
                        rows::row(&all, dim, v),
                        km.centroids.as_slice(),
                        &mut dists,
                    );
                    // Keep-first argmin: NaN distances never win, all-NaN
                    // rows land in cell 0 — degraded placement, no panic.
                    let mut best = 0;
                    let mut best_d = f32::INFINITY;
                    for (c, &d) in dists.iter().enumerate() {
                        if d < best_d {
                            best_d = d;
                            best = c;
                        }
                    }
                    *a = best;
                }

                // CSR membership, counting-sorted so each cell lists its
                // items in ascending id order.
                let mut cell_start = vec![0usize; cells + 1];
                for &c in &assign {
                    cell_start[c + 1] += 1;
                }
                for c in 0..cells {
                    cell_start[c + 1] += cell_start[c];
                }
                let mut next = cell_start[..cells].to_vec();
                let mut cell_items = vec![0 as ItemId; n];
                for (v, &c) in assign.iter().enumerate() {
                    cell_items[next[c]] = v as ItemId;
                    next[c] += 1;
                }

                // Re-lay the vectors into contiguous cell blocks.
                let store = match cfg.store {
                    CellStore::F32 => {
                        let mut data = vec![0.0f32; n * dim];
                        for (j, &v) in cell_items.iter().enumerate() {
                            rows::row_mut(&mut data, dim, j)
                                .copy_from_slice(rows::row(&all, dim, v as usize));
                        }
                        FacetStore::F32(data)
                    }
                    CellStore::Int8 => {
                        let mut codes = vec![0i8; n * dim];
                        let mut scales = vec![0.0f32; cells];
                        for c in 0..cells {
                            let (s0, e0) = (cell_start[c], cell_start[c + 1]);
                            let max_abs = cell_items[s0..e0]
                                .iter()
                                .flat_map(|&v| rows::row(&all, dim, v as usize))
                                .fold(0.0f32, |a, &x| a.max(x.abs()));
                            let scale = max_abs / 127.0;
                            scales[c] = scale;
                            if scale > 0.0 && scale.is_finite() {
                                for (j, &v) in cell_items[s0..e0].iter().enumerate() {
                                    let src = rows::row(&all, dim, v as usize);
                                    let dst = &mut codes[(s0 + j) * dim..(s0 + j + 1) * dim];
                                    for (q, &x) in dst.iter_mut().zip(src) {
                                        // Saturating float→int cast clamps
                                        // (and maps NaN to 0).
                                        *q = (x / scale).round() as i8;
                                    }
                                }
                            }
                        }
                        FacetStore::Int8 { codes, scales }
                    }
                };

                FacetIndex {
                    centroids: km.centroids.as_slice().to_vec(),
                    cell_start,
                    cell_items,
                    store,
                }
            })
            .collect();

        Self {
            facets,
            dim,
            items: n,
            metric: model.index_metric(),
            nprobe: cfg.nprobe.max(1),
            mode: cfg.mode,
            per_facet,
        }
    }

    /// Re-tunes the probe width without re-clustering.
    pub fn with_nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe.max(1);
        self
    }

    /// Re-tunes the probe mode without re-clustering.
    pub fn with_mode(mut self, mode: IvfMode) -> Self {
        self.mode = mode;
        self
    }

    /// Cells per facet.
    pub fn cells(&self) -> usize {
        self.per_facet[0].cells()
    }

    /// Cells probed per facet per query.
    pub fn nprobe(&self) -> usize {
        self.nprobe
    }

    /// Probe mode in use.
    pub fn mode(&self) -> IvfMode {
        self.mode
    }

    /// Facet count of the layout.
    pub fn facets(&self) -> usize {
        self.facets
    }

    /// Per-facet vector dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Catalogue size the index was built over.
    pub fn items(&self) -> usize {
        self.items
    }
}

/// Reusable buffers for the IVF probe path, embedded in
/// [`RetrievalScratch`] — steady-state IVF queries allocate nothing.
#[derive(Default)]
pub struct IvfScratch {
    /// Query-side facet vector (D).
    q: Vec<f32>,
    /// Quantized query (int8 stores).
    qcodes: Vec<i8>,
    /// Centroid scores (cells).
    cscores: Vec<f32>,
    /// Cells ranked best-first.
    crank: Vec<(ItemId, f32)>,
    /// Int8 kernel output for one cell block.
    iscores: Vec<i32>,
    /// F32 kernel output for one cell block.
    fscores: Vec<f32>,
    /// Epoch stamps (catalogue-sized) — `stamp[v] == epoch` ⇔ item `v`
    /// was touched by the current query.
    stamp: Vec<u64>,
    epoch: u64,
    /// Coarse score accumulator (catalogue-sized, epoch-validated).
    acc: Vec<f32>,
    /// Items touched by the current query.
    touched: Vec<ItemId>,
    /// Candidate list handed to the exact rescore.
    cand: Vec<ItemId>,
}

impl IvfScratch {
    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.acc.resize(n, 0.0);
        }
        self.epoch += 1;
        self.touched.clear();
        self.cand.clear();
    }
}

/// Serves one query through the index. Monomorphized per scorer and stored
/// as a plain `fn` pointer inside the [`Retriever`](crate::Retriever), so
/// the generic `S: Scorer` retrieval surface can route through it without
/// widening its own bounds.
///
/// `nprobe` / `mode` are parameters (not read off the index) so several
/// retrievers — e.g. the rungs of a serving degradation ladder — can probe
/// one shared index at different fidelity without cloning its stores.
#[allow(clippy::too_many_arguments)]
pub(crate) fn ivf_search<S: IndexEmbeddings + ?Sized>(
    model: &S,
    index: &IvfIndex,
    nprobe: usize,
    mode: IvfMode,
    chunk_items: usize,
    query: &RecQuery<'_>,
    scratch: &mut RetrievalScratch,
    out: &mut Vec<(ItemId, f32)>,
) {
    debug_assert!(
        query.candidates.is_none(),
        "candidate-restricted queries bypass the index"
    );
    debug_assert_eq!(index.dim, model.index_dim(), "index/model dim drift");
    out.clear();
    let k = query.k;
    let n = index.items;
    if k == 0 || n == 0 {
        return;
    }
    let RetrievalScratch {
        ids: _,
        scores,
        heap,
        ivf,
    } = scratch;
    heap.clear();
    ivf.begin(n);
    ivf.q.resize(index.dim, 0.0);
    let chunk = chunk_items.max(1);
    let survives = |v: ItemId| query.seen.binary_search(&v).is_err();

    match mode {
        IvfMode::ExactRescore => {
            // Union of probed cells across facets, deduped by epoch stamp.
            for f in 0..index.facets {
                let _w = model.query_index_vector(query.user, f, &mut ivf.q);
                let fx = &index.per_facet[f];
                let probe = fx.rank_cells(
                    index.metric,
                    &ivf.q,
                    nprobe,
                    &mut ivf.cscores,
                    &mut ivf.crank,
                );
                for &(c, _) in ivf.crank.iter().take(probe) {
                    let (s0, e0) = fx.cell_bounds(c as usize);
                    for &v in &fx.cell_items[s0..e0] {
                        let vi = v as usize;
                        if ivf.stamp[vi] != ivf.epoch {
                            ivf.stamp[vi] = ivf.epoch;
                            if survives(v) {
                                ivf.cand.push(v);
                            }
                        }
                    }
                }
            }
            rescore(model, query.user, k, chunk, &ivf.cand, scores, heap);
        }
        IvfMode::Coarse { refine } => {
            for f in 0..index.facets {
                let w = model.query_index_vector(query.user, f, &mut ivf.q);
                let fx = &index.per_facet[f];
                let probe = fx.rank_cells(
                    index.metric,
                    &ivf.q,
                    nprobe,
                    &mut ivf.cscores,
                    &mut ivf.crank,
                );
                match &fx.store {
                    FacetStore::F32(data) => {
                        for &(c, _) in ivf.crank.iter().take(probe) {
                            let (s0, e0) = fx.cell_bounds(c as usize);
                            if s0 == e0 {
                                continue;
                            }
                            let block = &data[s0 * index.dim..e0 * index.dim];
                            ivf.fscores.resize(e0 - s0, 0.0);
                            match index.metric {
                                IndexMetric::InnerProduct => {
                                    simd::dot_one_rows(&ivf.q, block, &mut ivf.fscores)
                                }
                                IndexMetric::NegSquaredL2 => {
                                    simd::dist_sq_one_rows(&ivf.q, block, &mut ivf.fscores);
                                    for s in ivf.fscores.iter_mut() {
                                        *s = -*s;
                                    }
                                }
                            }
                            for (j, &v) in fx.cell_items[s0..e0].iter().enumerate() {
                                accumulate(
                                    &mut ivf.stamp,
                                    &mut ivf.acc,
                                    &mut ivf.touched,
                                    ivf.epoch,
                                    v,
                                    w * ivf.fscores[j],
                                );
                            }
                        }
                    }
                    FacetStore::Int8 { codes, scales } => match index.metric {
                        IndexMetric::InnerProduct => {
                            // One query quantization per facet: scale by the
                            // query's own max-abs, score = s_q·s_cell·⟨codes⟩.
                            let sq = ivf.q.iter().fold(0.0f32, |a, &x| a.max(x.abs())) / 127.0;
                            ivf.qcodes.clear();
                            if sq > 0.0 && sq.is_finite() {
                                ivf.qcodes
                                    .extend(ivf.q.iter().map(|&x| (x / sq).round() as i8));
                            } else {
                                ivf.qcodes.resize(index.dim, 0);
                            }
                            for &(c, _) in ivf.crank.iter().take(probe) {
                                let (s0, e0) = fx.cell_bounds(c as usize);
                                if s0 == e0 {
                                    continue;
                                }
                                let block = &codes[s0 * index.dim..e0 * index.dim];
                                ivf.iscores.resize(e0 - s0, 0);
                                simd::dot_rows_i8(&ivf.qcodes, block, &mut ivf.iscores);
                                let factor = w * sq * scales[c as usize];
                                for (j, &v) in fx.cell_items[s0..e0].iter().enumerate() {
                                    accumulate(
                                        &mut ivf.stamp,
                                        &mut ivf.acc,
                                        &mut ivf.touched,
                                        ivf.epoch,
                                        v,
                                        factor * ivf.iscores[j] as f32,
                                    );
                                }
                            }
                        }
                        IndexMetric::NegSquaredL2 => {
                            // Distances must share one scale, so the query
                            // re-quantizes per block with the *cell's* scale:
                            // ‖q−x‖² ≈ s²·‖⌊q/s⌉ − codes‖².
                            let qn2 = ivf.q.iter().map(|&x| x * x).sum::<f32>();
                            for &(c, _) in ivf.crank.iter().take(probe) {
                                let (s0, e0) = fx.cell_bounds(c as usize);
                                if s0 == e0 {
                                    continue;
                                }
                                let s = scales[c as usize];
                                if !(s > 0.0 && s.is_finite()) {
                                    // All-zero (or degenerate) block: every
                                    // stored vector dequantizes to 0, so the
                                    // distance is ‖q‖² for each member.
                                    for &v in &fx.cell_items[s0..e0] {
                                        accumulate(
                                            &mut ivf.stamp,
                                            &mut ivf.acc,
                                            &mut ivf.touched,
                                            ivf.epoch,
                                            v,
                                            w * -qn2,
                                        );
                                    }
                                    continue;
                                }
                                ivf.qcodes.clear();
                                ivf.qcodes.extend(
                                    ivf.q
                                        .iter()
                                        .map(|&x| (x / s).round().clamp(-127.0, 127.0) as i8),
                                );
                                let block = &codes[s0 * index.dim..e0 * index.dim];
                                ivf.iscores.resize(e0 - s0, 0);
                                simd::dist_sq_rows_i8(&ivf.qcodes, block, &mut ivf.iscores);
                                let factor = w * s * s;
                                for (j, &v) in fx.cell_items[s0..e0].iter().enumerate() {
                                    accumulate(
                                        &mut ivf.stamp,
                                        &mut ivf.acc,
                                        &mut ivf.touched,
                                        ivf.epoch,
                                        v,
                                        factor * -(ivf.iscores[j] as f32),
                                    );
                                }
                            }
                        }
                    },
                }
            }

            // Select under the total order: coarse top-k directly, or a
            // widened shortlist that the model then rescores exactly.
            let k2 = if refine == 0 {
                k
            } else {
                k.saturating_mul(refine).max(k)
            };
            for &v in &ivf.touched {
                if survives(v) {
                    topk::offer(heap, k2, (v, ivf.acc[v as usize]));
                }
            }
            topk::drain_ranked(heap);
            if refine == 0 {
                out.extend_from_slice(heap);
                return;
            }
            ivf.cand.clear();
            ivf.cand.extend(heap.iter().map(|&(v, _)| v));
            heap.clear();
            rescore(model, query.user, k, chunk, &ivf.cand, scores, heap);
        }
    }

    out.extend_from_slice(heap);
}

/// Epoch-validated coarse-score accumulation for item `v`. Takes the
/// scratch fields individually so callers can hold shared borrows of the
/// sibling buffers (`crank`, `iscores`, …) across the call.
#[inline]
fn accumulate(
    stamp: &mut [u64],
    acc: &mut [f32],
    touched: &mut Vec<ItemId>,
    epoch: u64,
    v: ItemId,
    contrib: f32,
) {
    let vi = v as usize;
    if stamp[vi] != epoch {
        stamp[vi] = epoch;
        acc[vi] = 0.0;
        touched.push(v);
    }
    acc[vi] += contrib;
}

/// Chunked exact scoring of an already-filtered candidate list through the
/// model's `score_block` into the bounded heap (same kernel path as the
/// exact engine's `score_chunk`).
fn rescore<S: Scorer + ?Sized>(
    model: &S,
    user: UserId,
    k: usize,
    chunk: usize,
    cand: &[ItemId],
    scores: &mut Vec<f32>,
    heap: &mut Vec<(ItemId, f32)>,
) {
    for ids in cand.chunks(chunk) {
        model.score_block(user, ids, scores);
        for (&v, &s) in ids.iter().zip(scores.iter()) {
            topk::offer(heap, k, (v, s));
        }
    }
    topk::drain_ranked(heap);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RecQuery;
    use crate::retriever::Retriever;
    use crate::topk::full_sort_top_k;
    use mars_data::synthetic::clustered_points;
    use mars_tensor::ops;

    /// Minimal multi-facet embedding scorer: `score = Σ_f w_f · m(u_f, v_f)`
    /// computed with the same `ops` kernels the coarse path dispatches to.
    struct ToyEmb {
        facets: usize,
        dim: usize,
        metric: IndexMetric,
        items: Vec<f32>,   // n × facets × dim
        users: Vec<f32>,   // u × facets × dim
        weights: Vec<f32>, // facets
    }

    impl ToyEmb {
        fn item(&self, v: ItemId, f: usize) -> &[f32] {
            let start = (v as usize * self.facets + f) * self.dim;
            &self.items[start..start + self.dim]
        }
        fn user(&self, u: UserId, f: usize) -> &[f32] {
            let start = (u as usize * self.facets + f) * self.dim;
            &self.users[start..start + self.dim]
        }
        fn num_items(&self) -> usize {
            self.items.len() / (self.facets * self.dim)
        }

        /// `n` items / `u` users of clustered vectors per facet.
        fn clustered(
            metric: IndexMetric,
            n: usize,
            users: usize,
            facets: usize,
            dim: usize,
        ) -> Self {
            let mut items = vec![0.0; n * facets * dim];
            let mut ubuf = vec![0.0; users * facets * dim];
            for f in 0..facets {
                let (pts, _) = clustered_points(n, dim, 8, 0.15, 100 + f as u64);
                for v in 0..n {
                    let dst = (v * facets + f) * dim;
                    items[dst..dst + dim].copy_from_slice(&pts[v * dim..(v + 1) * dim]);
                }
                // Users sit exactly on item vectors: queries land inside
                // clusters, like a trained user embedding would.
                for u in 0..users {
                    let src = (u * 37 % n) * dim;
                    let dst = (u * facets + f) * dim;
                    ubuf[dst..dst + dim].copy_from_slice(&pts[src..src + dim]);
                }
            }
            Self {
                facets,
                dim,
                metric,
                items,
                users: ubuf,
                weights: (0..facets).map(|f| 1.0 / (f + 1) as f32).collect(),
            }
        }
    }

    impl Scorer for ToyEmb {
        fn score(&self, u: UserId, v: ItemId) -> f32 {
            let mut s = 0.0;
            for f in 0..self.facets {
                let m = match self.metric {
                    IndexMetric::InnerProduct => ops::dot(self.user(u, f), self.item(v, f)),
                    IndexMetric::NegSquaredL2 => -ops::dist_sq(self.user(u, f), self.item(v, f)),
                };
                s += self.weights[f] * m;
            }
            s
        }
    }

    impl IndexEmbeddings for ToyEmb {
        fn num_index_facets(&self) -> usize {
            self.facets
        }
        fn index_dim(&self) -> usize {
            self.dim
        }
        fn index_metric(&self) -> IndexMetric {
            self.metric
        }
        fn item_index_vector(&self, v: ItemId, f: usize, out: &mut [f32]) {
            out.copy_from_slice(self.item(v, f));
        }
        fn query_index_vector(&self, user: UserId, f: usize, out: &mut [f32]) -> f32 {
            out.copy_from_slice(self.user(user, f));
            self.weights[f]
        }
    }

    fn bits(v: &[(ItemId, f32)]) -> Vec<(ItemId, u32)> {
        v.iter().map(|&(i, s)| (i, s.to_bits())).collect()
    }

    #[test]
    fn full_probe_exact_rescore_is_bit_identical_to_exact_scan() {
        for metric in [IndexMetric::InnerProduct, IndexMetric::NegSquaredL2] {
            let model = ToyEmb::clustered(metric, 300, 4, 2, 4);
            let n = model.num_items();
            let exact = Retriever::new(model, n);
            let cells = 10;
            let indexed = exact.clone().with_index(IvfConfig {
                cells,
                nprobe: cells, // exhaustive probe ⇒ every item is a candidate
                ..IvfConfig::default()
            });
            let seen = [3, 4, 50, 299];
            for u in 0..4 {
                for k in [1usize, 7, 50, 400] {
                    let q = RecQuery::top_k(u, k).excluding(&seen);
                    assert_eq!(
                        bits(&indexed.retrieve(&q).ranked),
                        bits(&exact.retrieve(&q).ranked),
                        "{metric:?} u={u} k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn partial_probe_is_a_ranked_subset_with_high_recall() {
        let model = ToyEmb::clustered(IndexMetric::NegSquaredL2, 400, 6, 1, 4);
        let n = model.num_items();
        let k = 10;
        let r = Retriever::new(model, n).with_index(IvfConfig {
            cells: 8,
            nprobe: 2,
            ..IvfConfig::default()
        });
        let mut total = 0usize;
        let mut hit = 0usize;
        for u in 0..6 {
            let q = RecQuery::top_k(u, k);
            let got = r.retrieve(&q);
            assert!(got.len() <= k);
            for w in got.ranked.windows(2) {
                assert_ne!(
                    rank_cmp(w[1], w[0]),
                    std::cmp::Ordering::Less,
                    "order broken"
                );
            }
            let truth = full_sort_top_k(r.model().as_ref(), n, &q);
            total += truth.len();
            hit += truth
                .iter()
                .filter(|(v, _)| got.ranked.iter().any(|&(g, _)| g == *v))
                .count();
        }
        let recall = hit as f64 / total as f64;
        // Queries sit on cluster members and neighbors live in the query's
        // cell, so 2-of-8 probes must recover nearly everything.
        assert!(recall >= 0.9, "recall {recall}");
    }

    #[test]
    fn coarse_with_covering_refine_recovers_the_exact_answer() {
        // refine·k ≥ n ⇒ the rescore pass sees every touched item, so even a
        // deliberately lossy (int8) coarse ranking returns the exact top-k.
        for store in [CellStore::F32, CellStore::Int8] {
            for metric in [IndexMetric::InnerProduct, IndexMetric::NegSquaredL2] {
                let model = ToyEmb::clustered(metric, 60, 3, 2, 5);
                let n = model.num_items();
                let exact = Retriever::new(model, n);
                let indexed = exact.clone().with_index(IvfConfig {
                    cells: 6,
                    nprobe: 6,
                    store,
                    mode: IvfMode::Coarse { refine: 12 },
                    ..IvfConfig::default()
                });
                for u in 0..3 {
                    let q = RecQuery::top_k(u, 5).excluding(&[2, 9]);
                    assert_eq!(
                        bits(&indexed.retrieve(&q).ranked),
                        bits(&exact.retrieve(&q).ranked),
                        "{store:?} {metric:?} u={u}"
                    );
                }
            }
        }
    }

    #[test]
    fn coarse_without_refine_returns_ranked_unseen_items() {
        for store in [CellStore::F32, CellStore::Int8] {
            let model = ToyEmb::clustered(IndexMetric::InnerProduct, 200, 2, 2, 4);
            let n = model.num_items();
            let seen: Vec<ItemId> = (0..200).filter(|v| v % 3 == 0).collect();
            let r = Retriever::new(model, n).with_index(IvfConfig {
                cells: 8,
                nprobe: 3,
                store,
                mode: IvfMode::Coarse { refine: 0 },
                ..IvfConfig::default()
            });
            let got = r.retrieve(&RecQuery::top_k(1, 15).excluding(&seen));
            assert!(!got.is_empty() && got.len() <= 15);
            for w in got.ranked.windows(2) {
                assert_ne!(rank_cmp(w[1], w[0]), std::cmp::Ordering::Less);
            }
            assert!(got.items().iter().all(|v| seen.binary_search(v).is_err()));
        }
    }

    #[test]
    fn int8_coarse_scan_keeps_high_recall_against_f32() {
        // Quantization noise (one scale per cell block) must not wreck the
        // coarse ranking: with a modest refine the int8 path matches the
        // exact top-k on clustered data.
        let model = ToyEmb::clustered(IndexMetric::NegSquaredL2, 500, 6, 1, 8);
        let n = model.num_items();
        let r = Retriever::new(model, n).with_index(IvfConfig {
            cells: 8,
            nprobe: 8,
            store: CellStore::Int8,
            mode: IvfMode::Coarse { refine: 4 },
            ..IvfConfig::default()
        });
        let k = 10;
        let mut hit = 0;
        let mut total = 0;
        for u in 0..6 {
            let q = RecQuery::top_k(u, k);
            let got = r.retrieve(&q);
            let truth = full_sort_top_k(r.model().as_ref(), n, &q);
            total += truth.len();
            hit += truth
                .iter()
                .filter(|(v, _)| got.ranked.iter().any(|&(g, _)| g == *v))
                .count();
        }
        assert!(hit as f64 / total as f64 >= 0.9, "recall {hit}/{total}");
    }

    #[test]
    fn hostile_embeddings_never_panic_and_keep_the_total_order() {
        // NaN / ±∞ vectors and weights flow through build, cell ranking,
        // both stores and all modes without panicking; the result is still
        // rank_cmp-ordered and seen-filtered.
        let n = 64;
        let (facets, dim) = (2, 3);
        let mut model = ToyEmb::clustered(IndexMetric::InnerProduct, n, 2, facets, dim);
        for (i, x) in model.items.iter_mut().enumerate() {
            match i % 11 {
                0 => *x = f32::NAN,
                1 => *x = f32::INFINITY,
                2 => *x = f32::NEG_INFINITY,
                _ => {}
            }
        }
        model.users[0] = f32::NAN;
        model.weights[1] = f32::NAN;
        let seen = [1, 5, 8];
        for store in [CellStore::F32, CellStore::Int8] {
            for mode in [
                IvfMode::ExactRescore,
                IvfMode::Coarse { refine: 0 },
                IvfMode::Coarse { refine: 3 },
            ] {
                let r = Retriever::new(
                    ToyEmb {
                        facets,
                        dim,
                        metric: model.metric,
                        items: model.items.clone(),
                        users: model.users.clone(),
                        weights: model.weights.clone(),
                    },
                    n,
                )
                .with_index(IvfConfig {
                    cells: 5,
                    nprobe: 3,
                    store,
                    mode,
                    ..IvfConfig::default()
                });
                for u in 0..2 {
                    let got = r.retrieve(&RecQuery::top_k(u, 9).excluding(&seen));
                    assert!(got.len() <= 9);
                    for w in got.ranked.windows(2) {
                        assert_ne!(rank_cmp(w[1], w[0]), std::cmp::Ordering::Less);
                    }
                    assert!(got.items().iter().all(|v| seen.binary_search(v).is_err()));
                }
            }
        }
    }

    #[test]
    fn probe_knobs_can_be_retuned_without_rebuilding() {
        let model = ToyEmb::clustered(IndexMetric::NegSquaredL2, 120, 1, 1, 4);
        let n = model.num_items();
        let index = IvfIndex::build(
            &model,
            n,
            IvfConfig {
                cells: 10,
                ..IvfConfig::default()
            },
        );
        assert_eq!(index.cells(), 10);
        assert_eq!(index.items(), n);
        let exact = Retriever::new(model, n);
        let full = exact
            .clone()
            .with_prebuilt_index(std::sync::Arc::new(index.clone().with_nprobe(10)));
        let q = RecQuery::top_k(0, 7);
        assert_eq!(
            bits(&full.retrieve(&q).ranked),
            bits(&exact.retrieve(&q).ranked)
        );
        let narrow = exact
            .clone()
            .with_prebuilt_index(std::sync::Arc::new(index.with_nprobe(1)));
        assert!(narrow.retrieve(&q).len() <= 7);
    }

    #[test]
    #[should_panic(expected = "non-empty catalogue")]
    fn empty_catalogue_cannot_be_indexed() {
        let model = ToyEmb::clustered(IndexMetric::InnerProduct, 4, 1, 1, 2);
        let _ = IvfIndex::build(&model, 0, IvfConfig::default());
    }
}
