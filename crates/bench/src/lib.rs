//! # mars-bench
//!
//! Experiment harness regenerating every table and figure of the MARS paper
//! (see DESIGN.md's per-experiment index). The library holds the shared
//! plumbing — model zoo, dataset cache, table printing, a tiny `--flag
//! value` argument parser — and each binary in `src/bin/` is one
//! table/figure:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `table1` | Table I — dataset statistics |
//! | `table2` | Table II — overall comparison, 10 models × 6 datasets |
//! | `table3` | Table III — embedding-dimension sweep on Ciao |
//! | `table4` | Table IV — K sweep of CML/MAR/MARS on 4 datasets |
//! | `fig5`   | Figure 5 — λ_pull sweep |
//! | `fig6`   | Figure 6 — λ_facet sweep |
//! | `fig7`   | Figure 7 — item-embedding visualisation (CSV + separation stats) |
//! | `table5` | Table V — top categories per facet space |
//! | `table6` | Table VI — example user profiles |
//! | `ablation` | §III-C component ablation (margins, sampling, optimizer, losses) |
//!
//! Criterion microbenches live in `benches/`.

// This crate is part of the deterministic numeric core: no unsafe
// anywhere (the vetted unsafe surface lives in mars-tensor::simd
// and mars-runtime; see `cargo run -p mars-audit -- check`).
#![forbid(unsafe_code)]
use mars_baselines::{
    bpr::Bpr, cml::Cml, lrml::Lrml, metricf::MetricF, neumf::NeuMf, nmf::Nmf, sml::Sml,
    transcf::TransCf, BaselineConfig, BaselineKind, ImplicitRecommender,
};
use mars_core::{MarsConfig, Trainer};
use mars_data::dataset::Dataset;
use mars_data::profiles::{Profile, Scale};
use mars_data::SyntheticDataset;
use mars_metrics::{RankingEvaluator, Report, Scorer};

/// Which model to run — baselines by kind, MAR/MARS by config.
#[derive(Clone, Debug)]
pub enum ModelSpec {
    Baseline(BaselineKind, BaselineConfig),
    MultiFacet(MarsConfig),
}

impl ModelSpec {
    /// Display name for tables.
    pub fn name(&self) -> String {
        match self {
            ModelSpec::Baseline(kind, _) => kind.name().to_string(),
            ModelSpec::MultiFacet(cfg) => match cfg.geometry {
                mars_core::Geometry::Spherical => "MARS".to_string(),
                mars_core::Geometry::Euclidean => "MAR".to_string(),
            },
        }
    }

    /// A baseline spec with harness-default budgets for `dim`.
    pub fn baseline(kind: BaselineKind, dim: usize, epochs: usize, seed: u64) -> Self {
        let mut cfg = BaselineConfig {
            dim,
            epochs,
            seed,
            ..BaselineConfig::default()
        };
        // NeuMF's BCE tower prefers a gentler rate than the hinge models.
        if kind == BaselineKind::NeuMf {
            cfg.lr = 0.02;
        }
        ModelSpec::Baseline(kind, cfg)
    }

    /// A baseline spec following the paper's per-model conventions: NMF's
    /// latent-factor count equals the number of metric spaces K (§V-A3:
    /// "The number of latent factors is set to the same as the number of
    /// metric spaces in our proposed models"); everything else uses `dim`.
    pub fn baseline_paper(
        kind: BaselineKind,
        dim: usize,
        k: usize,
        epochs: usize,
        seed: u64,
    ) -> Self {
        let dim = if kind == BaselineKind::Nmf { k } else { dim };
        Self::baseline(kind, dim, epochs, seed)
    }

    /// MAR spec with harness budgets.
    pub fn mar(k: usize, dim: usize, epochs: usize, seed: u64) -> Self {
        let mut cfg = MarsConfig::mar(k, dim);
        cfg.epochs = epochs;
        cfg.seed = seed;
        ModelSpec::MultiFacet(cfg)
    }

    /// MARS spec with harness budgets.
    pub fn mars(k: usize, dim: usize, epochs: usize, seed: u64) -> Self {
        let mut cfg = MarsConfig::mars(k, dim);
        cfg.epochs = epochs;
        cfg.seed = seed;
        ModelSpec::MultiFacet(cfg)
    }

    /// Per-dataset tuned MAR spec — the paper tunes lr (and K, D, λ's) per
    /// dataset by grid search on the dev split (§V-A4); these are the
    /// dev-selected optima of the `tune` binary at small scale with K=4.
    pub fn tuned_mar(profile: Profile, dim: usize, seed: u64) -> Self {
        let (k, lr, epochs) = match profile {
            Profile::Delicious => (4, 0.05, 30),
            Profile::Lastfm => (4, 0.1, 30),
            Profile::Ciao => (4, 0.05, 30),
            Profile::BookX => (4, 0.1, 30),
            Profile::Ml1m => (4, 0.02, 60),
            Profile::Ml20m => (3, 0.02, 60),
        };
        let mut cfg = MarsConfig::mar(k, dim);
        cfg.lr = lr;
        cfg.epochs = epochs;
        cfg.seed = seed;
        ModelSpec::MultiFacet(cfg)
    }

    /// Per-dataset tuned MARS spec (see [`ModelSpec::tuned_mar`]).
    pub fn tuned_mars(profile: Profile, dim: usize, seed: u64) -> Self {
        let (k, lr, epochs) = match profile {
            Profile::Delicious => (4, 0.05, 30),
            Profile::Lastfm => (4, 0.1, 30),
            Profile::Ciao => (4, 0.1, 30),
            Profile::BookX => (4, 0.05, 30),
            Profile::Ml1m => (3, 0.05, 60),
            Profile::Ml20m => (3, 0.05, 60),
        };
        let mut cfg = MarsConfig::mars(k, dim);
        cfg.lr = lr;
        cfg.epochs = epochs;
        cfg.seed = seed;
        ModelSpec::MultiFacet(cfg)
    }
}

/// Trains the spec on the dataset and evaluates with the paper protocol.
pub fn run_model(spec: &ModelSpec, data: &Dataset) -> Report {
    let ev = RankingEvaluator::paper();
    match spec {
        ModelSpec::Baseline(kind, cfg) => {
            let n = data.num_users();
            let m = data.num_items();
            macro_rules! run {
                ($ty:ident) => {{
                    let mut model = $ty::new(cfg.clone(), n, m);
                    model.fit(data);
                    ev.evaluate(&model, data)
                }};
            }
            match kind {
                BaselineKind::Bpr => run!(Bpr),
                BaselineKind::Nmf => run!(Nmf),
                BaselineKind::NeuMf => run!(NeuMf),
                BaselineKind::Cml => run!(Cml),
                BaselineKind::MetricF => run!(MetricF),
                BaselineKind::TransCf => run!(TransCf),
                BaselineKind::Lrml => run!(Lrml),
                BaselineKind::Sml => run!(Sml),
            }
        }
        ModelSpec::MultiFacet(cfg) => {
            let out = Trainer::new(cfg.clone()).fit(data);
            ev.evaluate(&out.model, data)
        }
    }
}

/// Trains a multi-facet model and returns it (for the analysis binaries).
pub fn train_multifacet(cfg: MarsConfig, data: &Dataset) -> mars_core::MultiFacetModel {
    Trainer::new(cfg).fit(data).model
}

/// Evaluates any scorer with the paper protocol (exposed for benches).
/// `Sync` because the batched evaluator may fan users out across the
/// worker pool.
pub fn evaluate<S: Scorer + Sync>(model: &S, data: &Dataset) -> Report {
    RankingEvaluator::paper().evaluate(model, data)
}

// ---------------------------------------------------------------------------
// Dataset handling
// ---------------------------------------------------------------------------

/// Generates (or returns cached) stand-in datasets for the named profiles.
pub fn datasets(profiles: &[Profile], scale: Scale) -> Vec<SyntheticDataset> {
    profiles.iter().map(|p| p.generate(scale)).collect()
}

// ---------------------------------------------------------------------------
// Table formatting
// ---------------------------------------------------------------------------

/// Prints a fixed-width text table to stdout (one locked writer — the
/// perf-book I/O guidance; these tables are the binaries' entire output).
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let _ = writeln!(out, "\n== {title} ==");
    let header_line: Vec<String> = headers
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:<w$}"))
        .collect();
    let _ = writeln!(out, "{}", header_line.join("  "));
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
    let _ = writeln!(out, "{}", "-".repeat(total));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
    }
}

/// Formats a metric to the paper's 4-decimal convention.
pub fn fmt_metric(v: f32) -> String {
    format!("{v:.4}")
}

/// Relative improvement `(a − b)/b` as a percentage string.
pub fn fmt_improvement(a: f32, b: f32) -> String {
    if b <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.2}%", (a - b) / b * 100.0)
}

// ---------------------------------------------------------------------------
// Argument parsing (tiny, dependency-free)
// ---------------------------------------------------------------------------

/// Parses `--key value` pairs from `std::env::args`.
#[derive(Clone, Debug, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Reads the process arguments.
    pub fn from_env() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not an Iterator collection
    pub fn from_iter<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut pairs = Vec::new();
        let mut iter = args.into_iter().peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = if iter.peek().map(|v| !v.starts_with("--")).unwrap_or(false) {
                    iter.next().unwrap()
                } else {
                    "true".to_string()
                };
                pairs.push((key.to_string(), value));
            }
        }
        Self { pairs }
    }

    /// String value of a flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Parsed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Scale flag (`--scale paper|small`, default small).
    pub fn scale(&self) -> Scale {
        match self.get("scale") {
            Some("paper") => Scale::Paper,
            _ => Scale::Small,
        }
    }

    /// Dataset list (`--datasets ciao,bookx`), default = given fallback.
    pub fn profiles(&self, default: &[Profile]) -> Vec<Profile> {
        match self.get("datasets") {
            None => default.to_vec(),
            Some(spec) => spec
                .split(',')
                .filter_map(|s| {
                    let p = Profile::parse(s.trim());
                    if p.is_none() {
                        eprintln!("warning: unknown dataset '{s}' skipped");
                    }
                    p
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// BENCH_*.json artifacts
// ---------------------------------------------------------------------------

/// One `BENCH_*.json` artifact under construction.
///
/// Every artifact recorded by the workspace's `harness = false` benches
/// opens with the same schema header — `bench`, `threads_detected`,
/// `smoke_mode`, then an optional `note` — so tooling reading the
/// workspace root can key on any artifact uniformly. The bench-specific
/// body (parameters, then a result array) is appended through
/// [`BenchArtifact::body`]; the final body line must not end with a comma.
/// [`BenchArtifact::finish`] closes the object and writes the file —
/// except in smoke mode, where a check run proves the harness but must
/// not overwrite recorded numbers with throwaway ones.
pub struct BenchArtifact {
    json: String,
    file: &'static str,
    threads: usize,
    smoke: bool,
}

impl BenchArtifact {
    /// Reads a bench's `*_BENCH_SMOKE` env toggle (set to `1` in CI).
    pub fn smoke_from_env(var: &str) -> bool {
        std::env::var(var).is_ok_and(|v| v == "1")
    }

    /// Opens `file` (workspace-root relative, e.g. `"BENCH_serving.json"`)
    /// with the shared schema header.
    pub fn open(bench: &str, file: &'static str, smoke: bool) -> Self {
        use std::fmt::Write as _;
        let threads = mars_runtime::resolve_threads(0);
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"bench\": \"{bench}\",");
        let _ = writeln!(json, "  \"threads_detected\": {threads},");
        let _ = writeln!(json, "  \"smoke_mode\": {smoke},");
        Self {
            json,
            file,
            threads,
            smoke,
        }
    }

    /// Worker threads the header recorded (`mars_runtime::resolve_threads`).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the artifact is in smoke (check) mode.
    pub fn smoke(&self) -> bool {
        self.smoke
    }

    /// Appends the shared `note` header field. Call before body fields.
    pub fn note(&mut self, note: &str) {
        use std::fmt::Write as _;
        let _ = writeln!(self.json, "  \"note\": \"{note}\",");
    }

    /// The JSON buffer; benches `writeln!` body fields and rows into it.
    pub fn body(&mut self) -> &mut String {
        &mut self.json
    }

    /// Closes the object and writes the artifact to the workspace root
    /// (skipped in smoke mode). Prints the outcome either way.
    pub fn finish(mut self) {
        self.json.push_str("}\n");
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let path = std::path::Path::new(path).join(self.file);
        if self.smoke {
            println!("\nsmoke mode: skipped writing {}", path.display());
        } else {
            std::fs::write(&path, &self.json)
                .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            println!("\nwrote {}", path.display());
        }
    }
}

/// Latency percentiles over one variant's recorded samples, in the shared
/// artifact schema: every bench that records per-request latencies emits
/// the same `p50_ns`/`p99_ns`/`p999_ns`/`max_ns` fields through
/// [`LatencyPercentiles::json_fields`] instead of hand-rolling histograms.
///
/// Percentiles use the nearest-rank definition (`⌈q·n⌉`-th smallest): no
/// interpolation, so a reported value is always a latency that actually
/// occurred.
#[derive(Clone, Copy, Debug)]
pub struct LatencyPercentiles {
    /// Median latency in nanoseconds.
    pub p50_ns: f64,
    /// 99th percentile.
    pub p99_ns: f64,
    /// 99.9th percentile.
    pub p999_ns: f64,
    /// Worst observed sample.
    pub max_ns: f64,
    /// Number of samples summarized.
    pub samples: usize,
}

impl LatencyPercentiles {
    /// Summarizes `samples_ns` (sorted in place; `f64::total_cmp`, so NaN
    /// poisoning sorts last instead of breaking the order).
    ///
    /// # Panics
    /// If `samples_ns` is empty.
    pub fn from_ns(samples_ns: &mut [f64]) -> Self {
        assert!(
            !samples_ns.is_empty(),
            "LatencyPercentiles over zero samples"
        );
        samples_ns.sort_by(f64::total_cmp);
        let n = samples_ns.len();
        let pick = |q: f64| samples_ns[((q * n as f64).ceil() as usize).max(1).min(n) - 1];
        Self {
            p50_ns: pick(0.50),
            p99_ns: pick(0.99),
            p999_ns: pick(0.999),
            max_ns: samples_ns[n - 1],
            samples: n,
        }
    }

    /// The shared JSON fields (no surrounding braces), for embedding in a
    /// bench's per-variant result row.
    pub fn json_fields(&self) -> String {
        format!(
            "\"p50_ns\": {:.0}, \"p99_ns\": {:.0}, \"p999_ns\": {:.0}, \"max_ns\": {:.0}",
            self.p50_ns, self.p99_ns, self.p999_ns, self.max_ns
        )
    }
}

/// Harness-default training budget per scale: generous enough for the
/// ordering between models to stabilize, small enough for the whole Table II
/// run to finish in minutes.
pub fn default_epochs(scale: Scale) -> usize {
    match scale {
        Scale::Paper => 30,
        Scale::Small => 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_pairs_and_flags() {
        let a = Args::from_iter(
            ["--scale", "paper", "--k", "4", "--verbose"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.get("scale"), Some("paper"));
        assert_eq!(a.get_or("k", 0usize), 4);
        assert_eq!(a.get("verbose"), Some("true"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.scale(), Scale::Paper);
    }

    #[test]
    fn args_default_scale_is_small() {
        let a = Args::from_iter(std::iter::empty());
        assert_eq!(a.scale(), Scale::Small);
    }

    #[test]
    fn args_profiles_parses_lists() {
        let a = Args::from_iter(["--datasets", "ciao,bookx"].iter().map(|s| s.to_string()));
        let p = a.profiles(&Profile::ALL);
        assert_eq!(p, vec![Profile::Ciao, Profile::BookX]);
        let b = Args::from_iter(std::iter::empty());
        assert_eq!(b.profiles(&[Profile::Ciao]), vec![Profile::Ciao]);
    }

    #[test]
    fn bench_artifact_header_schema_and_smoke_skip() {
        let mut art = BenchArtifact::open("unit_test", "BENCH_unit_test.json", true);
        assert!(art.smoke());
        assert!(art.threads() >= 1);
        art.note("a note");
        art.body().push_str("  \"x\": 1\n");
        let json = art.body().clone();
        assert!(json.starts_with("{\n  \"bench\": \"unit_test\",\n  \"threads_detected\": "));
        assert!(json.contains("\"smoke_mode\": true,\n  \"note\": \"a note\",\n"));
        // Smoke mode proves the harness without touching the artifact.
        art.finish();
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_unit_test.json");
        assert!(!std::path::Path::new(path).exists());
    }

    #[test]
    fn latency_percentiles_nearest_rank() {
        // 1..=1000 ns: nearest-rank percentiles are exact ranks.
        let mut samples: Vec<f64> = (1..=1000).rev().map(|v| v as f64).collect();
        let p = LatencyPercentiles::from_ns(&mut samples);
        assert_eq!(p.p50_ns, 500.0);
        assert_eq!(p.p99_ns, 990.0);
        assert_eq!(p.p999_ns, 999.0);
        assert_eq!(p.max_ns, 1000.0);
        assert_eq!(p.samples, 1000);
        // Tiny sample counts clamp to real samples (never out of range).
        let mut tiny = vec![7.0, 3.0];
        let t = LatencyPercentiles::from_ns(&mut tiny);
        assert_eq!(t.p50_ns, 3.0);
        assert_eq!(t.p99_ns, 7.0);
        assert_eq!(t.p999_ns, 7.0);
        assert_eq!(t.max_ns, 7.0);
        let json = t.json_fields();
        assert!(json.contains("\"p50_ns\": 3"));
        assert!(json.contains("\"max_ns\": 7"));
        assert!(!json.contains('{'));
    }

    #[test]
    fn improvement_formatting() {
        assert_eq!(fmt_improvement(0.12, 0.10), "+20.00%");
        assert_eq!(fmt_improvement(0.10, 0.0), "n/a");
    }

    #[test]
    fn end_to_end_smoke_baseline_vs_mars() {
        // Smallest possible end-to-end: one tiny dataset, one baseline, one
        // MARS run, all through the public harness API.
        let data = mars_data::SyntheticDataset::generate(
            "harness-smoke",
            &mars_data::SyntheticConfig {
                num_users: 50,
                num_items: 40,
                num_interactions: 900,
                num_categories: 3,
                seed: 5,
                ..Default::default()
            },
        );
        let bpr = run_model(
            &ModelSpec::baseline(BaselineKind::Bpr, 8, 3, 1),
            &data.dataset,
        );
        let mars = run_model(&ModelSpec::mars(2, 8, 3, 1), &data.dataset);
        assert!(bpr.cases > 0 && mars.cases > 0);
        assert!(bpr.hr_at(10) >= 0.0 && mars.hr_at(10) >= 0.0);
    }
}
