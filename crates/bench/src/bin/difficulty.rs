//! Difficult-user study — the controlled experiment the paper's conclusion
//! lists as future work: "closely study the behavior of MARS regarding the
//! so-called difficult users and items in controlled experiments (such as
//! with users and items grouped based on the number of interactions)".
//!
//! ```text
//! cargo run -p mars-bench --release --bin difficulty \
//!     [-- --scale small --datasets ciao --edges 10,20,40]
//! ```
//!
//! Trains CML / MAR / MARS and reports nDCG@10 per user-degree bucket. The
//! spherical constraint's purpose (§IV) is to stop the model from wasting
//! capacity by parking *difficult* (low-degree) users on the sphere surface
//! — so the prediction is that MARS's edge over MAR concentrates in the
//! low-degree buckets.

use mars_bench::{datasets, default_epochs, fmt_metric, print_table, Args, ModelSpec};
use mars_core::{MarsConfig, Trainer};
use mars_data::profiles::Profile;
use mars_metrics::RankingEvaluator;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let profiles = args.profiles(&[Profile::Ciao]);
    let dim = args.get_or("dim", 32usize);
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);
    let edges: Vec<usize> = args
        .get("edges")
        .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![10, 20, 40]);
    let ev = RankingEvaluator::paper();

    for (profile, data) in profiles.iter().zip(datasets(&profiles, scale)) {
        let d = &data.dataset;
        eprintln!("[difficulty] {}...", d.name);

        let mut cml_cfg = MarsConfig::cml_like(dim);
        cml_cfg.epochs = epochs;
        cml_cfg.seed = seed;
        let cml = Trainer::new(cml_cfg).fit(d).model;
        let mar = match ModelSpec::tuned_mar(*profile, dim, seed) {
            ModelSpec::MultiFacet(cfg) => Trainer::new(cfg).fit(d).model,
            _ => unreachable!(),
        };
        let mars = match ModelSpec::tuned_mars(*profile, dim, seed) {
            ModelSpec::MultiFacet(cfg) => Trainer::new(cfg).fit(d).model,
            _ => unreachable!(),
        };

        let cml_groups = ev.evaluate_by_user_degree(&cml, d, &edges);
        let mar_groups = ev.evaluate_by_user_degree(&mar, d, &edges);
        let mars_groups = ev.evaluate_by_user_degree(&mars, d, &edges);

        let mut rows = Vec::new();
        for i in 0..cml_groups.len() {
            let (label, cml_r) = &cml_groups[i];
            let mar_r = &mar_groups[i].1;
            let mars_r = &mars_groups[i].1;
            if cml_r.cases == 0 {
                continue;
            }
            rows.push(vec![
                label.clone(),
                cml_r.cases.to_string(),
                fmt_metric(cml_r.ndcg_at(10)),
                fmt_metric(mar_r.ndcg_at(10)),
                fmt_metric(mars_r.ndcg_at(10)),
            ]);
        }
        print_table(
            &format!("Difficult-user study — {} ({scale:?})", d.name),
            &["user degree", "#users", "CML", "MAR", "MARS"],
            &rows,
        );
    }
    println!(
        "\nPrediction from §IV: the MARS-over-MAR gap is largest in the low-degree\n\
         (difficult-user) buckets, where the strict sphere constraint prevents\n\
         trivial norm-based fitting."
    );
}
