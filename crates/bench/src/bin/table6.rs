//! Table VI — example user profiles modeled by MARS.
//!
//! ```text
//! cargo run -p mars-bench --release --bin table6 [-- --scale small --users 2]
//! ```
//!
//! Trains MARS on the Ciao stand-in, picks the most active users, and prints
//! their learned facet weights θ_u next to their interacted categories —
//! the paper's "Bob / Mary" case study.

use mars_bench::{datasets, default_epochs, print_table, train_multifacet, Args};
use mars_core::analysis::user_profile;
use mars_core::MarsConfig;
use mars_data::profiles::Profile;
use mars_data::UserId;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let dim = args.get_or("dim", 32usize);
    let k = args.get_or("k", 4usize);
    let num_users = args.get_or("users", 2usize);
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);

    let data = &datasets(&[Profile::Ciao], scale)[0].dataset;
    let mut cfg = MarsConfig::mars(k, dim);
    cfg.epochs = epochs;
    cfg.seed = seed;
    eprintln!("[table6] training MARS(K={k}, D={dim})...");
    let model = train_multifacet(cfg, data);

    // Most-active users make the most legible profiles (as in the paper).
    let mut users: Vec<UserId> = (0..data.num_users() as UserId).collect();
    users.sort_by_key(|&u| std::cmp::Reverse(data.train.user_degree(u)));
    users.truncate(num_users);

    let mut rows = Vec::new();
    for &u in &users {
        let p = user_profile(&model, data, u);
        for (facet, &theta) in p.theta.iter().enumerate() {
            let cats: Vec<String> = p
                .category_counts
                .iter()
                .take(3)
                .map(|(c, n)| format!("category-{c}: {n}"))
                .collect();
            rows.push(vec![
                if facet == 0 {
                    format!("user-{u}")
                } else {
                    String::new()
                },
                format!("k={}", facet + 1),
                format!("{theta:.2}"),
                if facet == 0 {
                    cats.join("; ")
                } else {
                    String::new()
                },
            ]);
        }
    }
    print_table(
        &format!("Table VI — example user profiles ({scale:?})"),
        &["User", "Facet", "θ_u^k", "Interacted categories: count"],
        &rows,
    );
    println!(
        "\nPaper shape to check: θ_u concentrates on few facets per user, and\n\
         different users weight different facets."
    );
}
