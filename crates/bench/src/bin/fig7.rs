//! Figure 7 — item-embedding visualisations: CML vs MAR vs MARS.
//!
//! ```text
//! cargo run -p mars-bench --release --bin fig7 \
//!     [-- --scale small --out bench_out]
//! ```
//!
//! Trains the three models on the Ciao stand-in, PCA-projects the item
//! embeddings of every facet space to 2-D, writes one CSV per panel
//! (`fig7_<model>_k<facet>.csv` with `item,x,y,category` rows, ready for any
//! plotting tool), and prints the quantitative claim behind the figure: the
//! inter/intra-category distance ratio per space (higher = better-organized
//! categories — paper: MARS > MAR > CML).

use mars_bench::{datasets, default_epochs, fmt_metric, print_table, Args};
use mars_core::analysis::{facet_alignment_matrix, facet_item_matrix, separation_stats};
use mars_core::{MarsConfig, Trainer};
use mars_data::profiles::Profile;
use mars_tensor::Pca;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let dim = args.get_or("dim", 32usize);
    let k = args.get_or("k", 4usize);
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);
    let out_dir = PathBuf::from(args.get("out").unwrap_or("bench_out"));
    fs::create_dir_all(&out_dir).expect("cannot create output directory");

    let data = &datasets(&[Profile::Ciao], scale)[0].dataset;
    eprintln!(
        "[fig7] Ciao stand-in: {} items, {} categories",
        data.num_items(),
        data.num_categories
    );

    let mut cml_cfg = MarsConfig::cml_like(dim);
    cml_cfg.epochs = epochs;
    cml_cfg.seed = seed;
    let mut mar_cfg = MarsConfig::mar(k, dim);
    mar_cfg.epochs = epochs;
    mar_cfg.seed = seed;
    let mut mars_cfg = MarsConfig::mars(k, dim);
    mars_cfg.epochs = epochs;
    mars_cfg.seed = seed;

    let mut rows = Vec::new();
    for (label, cfg) in [("CML", cml_cfg), ("MAR", mar_cfg), ("MARS", mars_cfg)] {
        eprintln!("[fig7] training {label}...");
        let model = Trainer::new(cfg.clone()).fit(data).model;
        for facet in 0..cfg.facets {
            let emb = facet_item_matrix(&model, facet);
            let stats = separation_stats(&emb, &data.item_categories, 1);
            // 2-D PCA projection + CSV dump.
            let pca = Pca::fit(&emb, 2, 60);
            let proj = pca.transform(&emb);
            let path = out_dir.join(format!("fig7_{}_k{}.csv", label.to_lowercase(), facet));
            let mut f = std::io::BufWriter::new(fs::File::create(&path).unwrap());
            writeln!(f, "item,x,y,category").unwrap();
            for v in 0..proj.rows() {
                let cat = data.item_categories[v].first().copied().unwrap_or(u16::MAX);
                writeln!(f, "{v},{},{},{cat}", proj.get(v, 0), proj.get(v, 1)).unwrap();
            }
            rows.push(vec![
                label.to_string(),
                facet.to_string(),
                fmt_metric(stats.intra),
                fmt_metric(stats.inter),
                format!("{:.3}", stats.ratio()),
                path.display().to_string(),
            ]);
        }
    }
    print_table(
        &format!("Figure 7 — category separation per embedding space ({scale:?})"),
        &[
            "Model",
            "Facet",
            "intra-dist",
            "inter-dist",
            "inter/intra",
            "CSV",
        ],
        &rows,
    );

    // Facet-alignment matrix for MARS: which generative facet does each
    // learned space capture? (Rows: learned facets; columns: the label
    // groups the generator planted.)
    let latent = Profile::Ciao.latent_config(scale);
    let mut mars_cfg2 = MarsConfig::mars(k, dim);
    mars_cfg2.epochs = epochs;
    mars_cfg2.seed = seed;
    let mars_model = Trainer::new(mars_cfg2).fit(data).model;
    let align = facet_alignment_matrix(
        &mars_model,
        data,
        latent.facets,
        latent.clusters_per_facet,
        1,
    );
    let mut align_rows = Vec::new();
    for r in 0..align.rows() {
        let mut row = vec![format!("learned k={r}")];
        for c in 0..align.cols() {
            row.push(format!("{:.3}", align.get(r, c)));
        }
        align_rows.push(row);
    }
    let group_headers: Vec<String> = (0..align.cols()).map(|g| format!("planted f{g}")).collect();
    let mut headers: Vec<&str> = vec!["MARS space"];
    headers.extend(group_headers.iter().map(|s| s.as_str()));
    print_table(
        "Facet alignment (separation ratio of each learned space under each planted facet's labels)",
        &headers,
        &align_rows,
    );

    println!(
        "\nPaper shape to check: inter/intra ratio increases CML → MAR → MARS\n\
         (better-organized categories); CSVs plot the 2-D panels of Figure 7;\n\
         in the alignment matrix different learned spaces peak on different\n\
         planted facets."
    );
}
