//! Table IV — nDCG@10 of CML / MAR / MARS over the number of facet spaces K.
//!
//! ```text
//! cargo run -p mars-bench --release --bin table4 \
//!     [-- --scale small --datasets delicious,lastfm,ciao,bookx --kmax 6]
//! ```
//!
//! CML is the fixed single-space reference (the paper's `MarsConfig::cml_like`
//! row); MAR and MARS sweep K = 1..=kmax. Imp1 = MAR over CML, Imp2 = MARS
//! over CML, Imp3 = MARS over MAR — the paper's three improvement columns.

use mars_bench::{datasets, default_epochs, fmt_improvement, fmt_metric, print_table, Args};
use mars_core::{MarsConfig, Trainer};
use mars_data::profiles::Profile;
use mars_metrics::RankingEvaluator;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let profiles = args.profiles(&Profile::ABLATION);
    let dim = args.get_or("dim", 32usize);
    let kmax = args.get_or("kmax", 6usize);
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);
    let ev = RankingEvaluator::paper();

    for data in datasets(&profiles, scale) {
        let d = &data.dataset;
        eprintln!("[table4] {}...", d.name);

        // CML reference (K=1 single Euclidean space, fixed margin).
        let mut cml_cfg = MarsConfig::cml_like(dim);
        cml_cfg.epochs = epochs;
        cml_cfg.seed = seed;
        let cml = ev
            .evaluate(&Trainer::new(cml_cfg).fit(d).model, d)
            .ndcg_at(10);

        let mut rows = Vec::new();
        for k in 1..=kmax {
            let mut mar_cfg = MarsConfig::mar(k, dim);
            mar_cfg.epochs = epochs;
            mar_cfg.seed = seed;
            let mar = ev
                .evaluate(&Trainer::new(mar_cfg).fit(d).model, d)
                .ndcg_at(10);
            let mut mars_cfg = MarsConfig::mars(k, dim);
            mars_cfg.epochs = epochs;
            mars_cfg.seed = seed;
            let mars = ev
                .evaluate(&Trainer::new(mars_cfg).fit(d).model, d)
                .ndcg_at(10);
            rows.push(vec![
                format!("K={k}"),
                fmt_metric(cml),
                fmt_metric(mar),
                fmt_metric(mars),
                fmt_improvement(mar, cml),
                fmt_improvement(mars, cml),
                fmt_improvement(mars, mar),
            ]);
            eprintln!("[table4]   K={k}: CML {cml:.4} MAR {mar:.4} MARS {mars:.4}");
        }
        print_table(
            &format!("Table IV — nDCG@10 vs K on {} ({scale:?})", d.name),
            &["K spaces", "CML", "MAR", "MARS", "Imp1.", "Imp2.", "Imp3."],
            &rows,
        );
    }
    println!(
        "\nPaper shape to check: MAR/MARS > CML for all K; gains grow then saturate\n\
         (optimum usually K=3 or 4); MARS > MAR throughout (Imp3 positive)."
    );
}
