//! Table II — overall performance comparison.
//!
//! ```text
//! cargo run -p mars-bench --release --bin table2 \
//!     [-- --scale small --datasets delicious,ciao --dim 32 --k 4 --epochs 15]
//! ```
//!
//! Trains the eight baselines plus MAR and MARS on each dataset and prints
//! HR@{10,20} / nDCG@{10,20} with the paper's `Imp1.` (MAR over best
//! baseline) and `Imp2.` (MARS over best baseline) columns.

use mars_baselines::BaselineKind;
use mars_bench::{
    datasets, default_epochs, fmt_improvement, fmt_metric, print_table, run_model, Args, ModelSpec,
};
use mars_data::profiles::Profile;
use mars_metrics::Report;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let profiles = args.profiles(&Profile::ALL);
    let dim = args.get_or("dim", 32usize);
    let k = args.get_or("k", 4usize);
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);

    for (profile, data) in profiles.iter().zip(datasets(&profiles, scale)) {
        let d = &data.dataset;
        eprintln!(
            "[table2] {} — {} users × {} items, {} train interactions",
            d.name,
            d.num_users(),
            d.num_items(),
            d.train.num_interactions()
        );

        let mut specs: Vec<ModelSpec> = BaselineKind::ALL
            .iter()
            .map(|&kind| ModelSpec::baseline_paper(kind, dim, k, epochs, seed))
            .collect();
        // MAR/MARS use the per-dataset tuned settings (the paper's grid
        // search protocol); `--k` overrides only apply to the baselines'
        // NMF convention.
        specs.push(ModelSpec::tuned_mar(*profile, dim, seed));
        specs.push(ModelSpec::tuned_mars(*profile, dim, seed));

        let mut reports: Vec<(String, Report)> = Vec::new();
        for spec in &specs {
            let name = spec.name();
            eprintln!("[table2]   training {name}...");
            let report = run_model(spec, d);
            reports.push((name, report));
        }

        // Best baseline per metric (first 8 entries are the baselines).
        let best_baseline = |f: &dyn Fn(&Report) -> f32| -> f32 {
            reports[..8]
                .iter()
                .map(|(_, r)| f(r))
                .fold(f32::NEG_INFINITY, f32::max)
        };
        type MetricFn = Box<dyn Fn(&Report) -> f32>;
        let metrics: [(&str, MetricFn); 4] = [
            ("HR@10", Box::new(|r: &Report| r.hr_at(10))),
            ("HR@20", Box::new(|r: &Report| r.hr_at(20))),
            ("nDCG@10", Box::new(|r: &Report| r.ndcg_at(10))),
            ("nDCG@20", Box::new(|r: &Report| r.ndcg_at(20))),
        ];

        let mut rows = Vec::new();
        for (metric_name, f) in &metrics {
            let mut row = vec![metric_name.to_string()];
            for (_, r) in &reports {
                row.push(fmt_metric(f(r)));
            }
            let best = best_baseline(&**f);
            let mar = f(&reports[8].1);
            let mars = f(&reports[9].1);
            row.push(fmt_improvement(mar, best));
            row.push(fmt_improvement(mars, best));
            rows.push(row);
        }

        let mut headers: Vec<&str> = vec!["Metric"];
        let names: Vec<String> = reports.iter().map(|(n, _)| n.clone()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        headers.push("Imp1.");
        headers.push("Imp2.");
        print_table(
            &format!("Table II — {} ({scale:?})", d.name),
            &headers,
            &rows,
        );
    }
    println!("\nImp1. = MAR vs best baseline; Imp2. = MARS vs best baseline (paper's convention).");
}
