//! Table III — performance under different embedding dimensions (Ciao).
//!
//! ```text
//! cargo run -p mars-bench --release --bin table3 \
//!     [-- --scale small --epochs 15 --dims 16,32,64,128]
//! ```
//!
//! Paper setting: TransCF and SML sweep the single-space dimension d while
//! MARS sweeps the *per-facet* dimension with K=4 (total dimension d×k).
//! The paper's claim: multiple spaces beat one big space at equal total
//! dimension, and the single-space models overfit at the largest d while
//! MARS keeps improving.

use mars_baselines::BaselineKind;
use mars_bench::{datasets, default_epochs, fmt_metric, print_table, run_model, Args, ModelSpec};
use mars_data::profiles::Profile;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);
    let k = args.get_or("k", 4usize);
    let dims: Vec<usize> = args
        .get("dims")
        .map(|s| s.split(',').filter_map(|d| d.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![16, 32, 64, 128]);

    let data = &datasets(&[Profile::Ciao], scale)[0].dataset;
    eprintln!(
        "[table3] Ciao stand-in: {} users × {} items",
        data.num_users(),
        data.num_items()
    );

    let mut rows = Vec::new();
    for &kind in &[BaselineKind::TransCf, BaselineKind::Sml] {
        for &d in &dims {
            eprintln!("[table3] {} d={d}...", kind.name());
            let r = run_model(&ModelSpec::baseline(kind, d, epochs, seed), data);
            rows.push(vec![
                kind.name().to_string(),
                fmt_metric(r.hr_at(10)),
                fmt_metric(r.hr_at(20)),
                fmt_metric(r.ndcg_at(10)),
                fmt_metric(r.ndcg_at(20)),
                d.to_string(),
                "1".to_string(),
            ]);
        }
    }
    for &d in &dims {
        // MARS per-facet dimension d/k keeps the total comparable to the
        // single-space rows (paper: d×k total for MARS). Uses the
        // dev-tuned Ciao learning rate like Table II.
        let per_facet = (d / k).max(4);
        eprintln!("[table3] MARS d={per_facet} k={k}...");
        let spec = match ModelSpec::tuned_mars(Profile::Ciao, per_facet, seed) {
            ModelSpec::MultiFacet(mut cfg) => {
                cfg.facets = k;
                cfg.epochs = epochs;
                ModelSpec::MultiFacet(cfg)
            }
            other => other,
        };
        let r = run_model(&spec, data);
        rows.push(vec![
            "MARS".to_string(),
            fmt_metric(r.hr_at(10)),
            fmt_metric(r.hr_at(20)),
            fmt_metric(r.ndcg_at(10)),
            fmt_metric(r.ndcg_at(20)),
            per_facet.to_string(),
            k.to_string(),
        ]);
    }
    print_table(
        &format!("Table III — embedding-dimension sweep on Ciao ({scale:?})"),
        &["Model", "HR@10", "HR@20", "nDCG@10", "nDCG@20", "d", "k"],
        &rows,
    );
    println!(
        "\nPaper shape to check: MARS rows beat TransCF/SML rows at comparable total\n\
         dimension d×k, and single-space models plateau or dip at the largest d."
    );
}
