//! Hyperparameter grid search for MAR / MARS (the paper tunes lr, K, D and
//! the λ's per dataset via grid search on the dev set — §V-A4; this binary
//! is that loop).
//!
//! ```text
//! cargo run -p mars-bench --release --bin tune -- \
//!     --datasets ciao --model mars --k 4 --dim 32 \
//!     --lrs 0.05,0.1,0.2 --epoch-grid 15,30,60 [--direct true]
//! ```
//!
//! Reports dev-set nDCG@10 for every grid point and the test-set metrics of
//! the dev-best configuration (the protocol that avoids test leakage).

use mars_bench::{datasets, fmt_metric, print_table, Args};
use mars_core::{FacetParam, MarsConfig, OptimKind, Trainer};
use mars_data::profiles::Profile;
use mars_metrics::{EvalConfig, RankingEvaluator};

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let profiles = args.profiles(&[Profile::Ciao]);
    let dim = args.get_or("dim", 32usize);
    let k = args.get_or("k", 4usize);
    let seed = args.get_or("seed", 7u64);
    let model_kind = args.get("model").unwrap_or("mars").to_string();
    let lrs: Vec<f32> = args
        .get("lrs")
        .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![0.05, 0.1, 0.2]);
    let epoch_grid: Vec<usize> = args
        .get("epoch-grid")
        .map(|s| s.split(',').filter_map(|v| v.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![15, 30, 60]);

    let dev_eval = RankingEvaluator::new(EvalConfig {
        num_negatives: 100,
        cutoffs: vec![10],
        seed: 777,
        // The sweep re-evaluates the small dev split once per config; keep
        // it serial rather than spinning a worker pool per call (the
        // trainer's own dev eval makes the same choice).
        threads: 1,
    });
    let test_eval = RankingEvaluator::paper();

    for data in datasets(&profiles, scale) {
        let d = &data.dataset;
        let mut rows = Vec::new();
        let mut best: Option<(f32, MarsConfig)> = None;
        for &lr in &lrs {
            for &epochs in &epoch_grid {
                let mut cfg = match model_kind.as_str() {
                    "mar" => MarsConfig::mar(k, dim),
                    "cml" => MarsConfig::cml_like(dim),
                    _ => MarsConfig::mars(k, dim),
                };
                if args.get("direct") == Some("true") {
                    cfg.parameterization = FacetParam::Direct;
                }
                if args.get("plain-rsgd") == Some("true") {
                    cfg.optimizer = OptimKind::Riemannian;
                }
                cfg.lr = lr;
                cfg.theta_lr = args.get_or("theta-lr", cfg.theta_lr);
                cfg.lambda_pull = args.get_or("lambda-pull", cfg.lambda_pull);
                cfg.lambda_facet = args.get_or("lambda-facet", cfg.lambda_facet);
                cfg.epochs = epochs;
                cfg.seed = seed;
                let model = Trainer::new(cfg.clone()).fit(d).model;
                let dev = dev_eval.evaluate_dev(&model, d).ndcg_at(10);
                eprintln!(
                    "[tune] {} lr={lr} epochs={epochs}: dev nDCG@10 {dev:.4}",
                    d.name
                );
                rows.push(vec![format!("{lr}"), epochs.to_string(), fmt_metric(dev)]);
                if best.as_ref().map(|(b, _)| dev > *b).unwrap_or(true) {
                    best = Some((dev, cfg));
                }
            }
        }
        print_table(
            &format!("tune {} on {} ({scale:?})", model_kind, d.name),
            &["lr", "epochs", "dev nDCG@10"],
            &rows,
        );
        if let Some((dev, cfg)) = best {
            let model = Trainer::new(cfg.clone()).fit(d).model;
            let test = test_eval.evaluate(&model, d);
            println!(
                "\nBest on dev (nDCG@10 {dev:.4}): lr={} epochs={} → test HR@10 {:.4} \
                 nDCG@10 {:.4}",
                cfg.lr,
                cfg.epochs,
                test.hr_at(10),
                test.ndcg_at(10)
            );
        }
    }
}
