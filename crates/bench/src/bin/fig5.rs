//! Figure 5 — MARS nDCG vs λ_pull, against the best baseline.
//!
//! ```text
//! cargo run -p mars-bench --release --bin fig5 \
//!     [-- --scale small --datasets delicious,lastfm,ciao,bookx]
//! ```
//!
//! Sweeps the pull-loss weight λ_pull over the paper's grid
//! {0, 0.001, 0.01, 0.1, 1} and prints nDCG@10 / nDCG@20 per value plus a
//! best-baseline reference (TransCF and SML — the paper's usual runners-up —
//! whichever scores higher).

use mars_baselines::BaselineKind;
use mars_bench::{datasets, default_epochs, fmt_metric, print_table, run_model, Args, ModelSpec};
use mars_core::{MarsConfig, Trainer};
use mars_data::profiles::Profile;
use mars_metrics::RankingEvaluator;

const LAMBDAS: [f32; 5] = [0.0, 0.001, 0.01, 0.1, 1.0];

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let profiles = args.profiles(&Profile::ABLATION);
    let dim = args.get_or("dim", 32usize);
    let k = args.get_or("k", 4usize);
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);
    let ev = RankingEvaluator::paper();

    for data in datasets(&profiles, scale) {
        let d = &data.dataset;
        eprintln!("[fig5] {}...", d.name);
        // Best-baseline reference line.
        let base = [BaselineKind::TransCf, BaselineKind::Sml]
            .iter()
            .map(|&kind| run_model(&ModelSpec::baseline(kind, dim, epochs, seed), d))
            .max_by(|a, b| a.ndcg_at(10).total_cmp(&b.ndcg_at(10)))
            .unwrap();

        let mut rows = Vec::new();
        for &lambda in &LAMBDAS {
            let mut cfg = MarsConfig::mars(k, dim);
            cfg.lambda_pull = lambda;
            cfg.epochs = epochs;
            cfg.seed = seed;
            let r = ev.evaluate(&Trainer::new(cfg).fit(d).model, d);
            eprintln!("[fig5]   λ_pull={lambda}: nDCG@10 {:.4}", r.ndcg_at(10));
            rows.push(vec![
                format!("{lambda}"),
                fmt_metric(r.ndcg_at(10)),
                fmt_metric(r.ndcg_at(20)),
            ]);
        }
        rows.push(vec![
            "best baseline".to_string(),
            fmt_metric(base.ndcg_at(10)),
            fmt_metric(base.ndcg_at(20)),
        ]);
        print_table(
            &format!("Figure 5 — MARS vs λ_pull on {} ({scale:?})", d.name),
            &["λ_pull", "nDCG@10", "nDCG@20"],
            &rows,
        );
    }
    println!(
        "\nPaper shape to check: performance peaks at a dataset-dependent λ_pull\n\
         (0.001–0.1) and every sweep point beats the best-baseline row."
    );
}
