//! Table V — top categories with proportions in each facet space of MARS.
//!
//! ```text
//! cargo run -p mars-bench --release --bin table5 [-- --scale small --top 5]
//! ```
//!
//! Trains MARS on the Ciao stand-in and prints, per facet space, the top-N
//! ground-truth categories among the items that space claims (the synthetic
//! generator's planted categories play the role of Ciao's category labels).

use mars_bench::{datasets, default_epochs, print_table, train_multifacet, Args};
use mars_core::analysis::category_proportions;
use mars_core::MarsConfig;
use mars_data::profiles::Profile;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let dim = args.get_or("dim", 32usize);
    let k = args.get_or("k", 4usize);
    let top = args.get_or("top", 5usize);
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);

    let data = &datasets(&[Profile::Ciao], scale)[0].dataset;
    let mut cfg = MarsConfig::mars(k, dim);
    cfg.epochs = epochs;
    cfg.seed = seed;
    eprintln!("[table5] training MARS(K={k}, D={dim})...");
    let model = train_multifacet(cfg, data);

    let props = category_proportions(&model, data, top);
    let mut rows = Vec::new();
    for (facet, shares) in props.iter().enumerate() {
        for (rank, s) in shares.iter().enumerate() {
            rows.push(vec![
                if rank == 0 {
                    format!("k={}", facet + 1)
                } else {
                    String::new()
                },
                format!("category-{}", s.category),
                format!("{:.2}", s.proportion * 100.0),
            ]);
        }
    }
    print_table(
        &format!("Table V — top-{top} categories per facet space ({scale:?})"),
        &["Facet", "Category", "Prop (%)"],
        &rows,
    );
    println!(
        "\nPaper shape to check: each facet space concentrates on a different\n\
         subset of categories (the paper manually labels these as user\n\
         stereotypes, e.g. 'Internet celebrity', 'software engineer')."
    );
}
