//! Component ablation for the design choices of §III-C / §IV.
//!
//! ```text
//! cargo run -p mars-bench --release --bin ablation \
//!     [-- --scale small --datasets ciao --dim 32 --k 4]
//! ```
//!
//! Starting from the full MARS configuration, toggles one component at a
//! time:
//!
//! * adaptive margin (Eq. 7, distinct-two-hop) → fixed 0.5 / clamped-sum
//! * explorative sampling (Eq. 10) → uniform users
//! * pull loss (Eq. 9) → off
//! * facet-separating loss (Eq. 6/12) → off
//! * calibrated RSGD (Eq. 21) → plain RSGD (Eq. 20) → projected SGD
//! * uniform negatives → popularity-smoothed negatives
//!
//! This is the controlled-components experiment DESIGN.md commits to beyond
//! the paper's tables.

use mars_bench::{datasets, default_epochs, fmt_improvement, fmt_metric, print_table, Args};
use mars_core::{MarsConfig, NegativeSampling, OptimKind, Trainer, UserSampling};
use mars_data::margin::MarginMode;
use mars_data::profiles::Profile;
use mars_metrics::RankingEvaluator;

fn main() {
    let args = Args::from_env();
    let scale = args.scale();
    let profiles = args.profiles(&[Profile::Ciao]);
    let dim = args.get_or("dim", 32usize);
    let k = args.get_or("k", 4usize);
    let epochs = args.get_or("epochs", default_epochs(scale));
    let seed = args.get_or("seed", 7u64);
    let ev = RankingEvaluator::paper();

    for data in datasets(&profiles, scale) {
        let d = &data.dataset;
        eprintln!("[ablation] {}...", d.name);
        let mut base = MarsConfig::mars(k, dim);
        base.epochs = epochs;
        base.seed = seed;

        let variants: Vec<(&str, MarsConfig)> = vec![
            ("full MARS", base.clone()),
            ("fixed margin 0.5", {
                let mut c = base.clone();
                c.margin = MarginMode::Fixed(0.5);
                c
            }),
            ("clamped-sum margin (Eq.7 verbatim)", {
                let mut c = base.clone();
                c.margin = MarginMode::ClampedSum;
                c
            }),
            ("uniform user sampling", {
                let mut c = base.clone();
                c.user_sampling = UserSampling::Uniform;
                c
            }),
            ("no pull loss (λ_pull=0)", {
                let mut c = base.clone();
                c.lambda_pull = 0.0;
                c
            }),
            ("no facet loss (λ_facet=0)", {
                let mut c = base.clone();
                c.lambda_facet = 0.0;
                c
            }),
            ("plain RSGD (Eq.20)", {
                let mut c = base.clone();
                c.optimizer = OptimKind::Riemannian;
                c
            }),
            ("projected SGD on sphere", {
                let mut c = base.clone();
                c.optimizer = OptimKind::Sgd;
                c
            }),
            ("popularity negatives", {
                let mut c = base.clone();
                c.negative_sampling = NegativeSampling::Popularity;
                c
            }),
        ];

        let mut rows = Vec::new();
        let mut full_ndcg = 0.0f32;
        for (label, cfg) in variants {
            let r = ev.evaluate(&Trainer::new(cfg).fit(d).model, d);
            let ndcg = r.ndcg_at(10);
            if label == "full MARS" {
                full_ndcg = ndcg;
            }
            eprintln!("[ablation]   {label}: nDCG@10 {ndcg:.4}");
            rows.push(vec![
                label.to_string(),
                fmt_metric(r.hr_at(10)),
                fmt_metric(ndcg),
                if label == "full MARS" {
                    "—".to_string()
                } else {
                    fmt_improvement(ndcg, full_ndcg)
                },
            ]);
        }
        print_table(
            &format!("Component ablation — {} ({scale:?})", d.name),
            &["Variant", "HR@10", "nDCG@10", "Δ vs full"],
            &rows,
        );
    }
    println!("\nNegative Δ values confirm the corresponding component contributes.");
}
