//! ANN retrieval bench: the exact catalogue scan vs the IVF clustered
//! index (`mars_serve::index`) on an ANN-scale synthetic catalogue, swept
//! over `nprobe`.
//!
//! Run with `cargo bench --bench ann`. A ≥100k-item clustered embedding
//! catalogue (`mars_data::synthetic::clustered_points`) is injected into a
//! direct-parameterization MARS model, ground truth is the exact
//! retriever's top-k, and each `(variant, nprobe)` cell reports latency
//! plus recall@k against that truth. Results are printed as a table and
//! written to `BENCH_ann.json` at the workspace root (same schema header
//! as the other BENCH artifacts). Set `ANN_BENCH_SMOKE=1` (CI) to run a
//! shrunken catalogue in check mode without overwriting the artifact.
//!
//! Latency is single-query, single-thread (the per-request serving path);
//! the speedup column is work saved per query, so it carries over to any
//! core count — batched fan-out multiplies both sides equally.

use mars_bench::BenchArtifact;
use mars_core::model::Params;
use mars_core::{MarsConfig, MultiFacetModel};
use mars_data::synthetic::clustered_points;
use mars_data::{ItemId, UserId};
use mars_serve::{CellStore, IvfConfig, IvfIndex, IvfMode, RecQuery, RetrievalScratch, Retriever};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Facets × per-facet dim of the served model (the workspace default dim).
const FACETS: usize = 2;
const DIM: usize = 32;
/// Items returned per query — recall@10, the paper's headline cutoff.
const K: usize = 10;

struct Row {
    variant: &'static str,
    nprobe: usize,
    ns_per_query: f64,
    recall: f64,
}

fn best_ns(reps: usize, mut pass: impl FnMut()) -> f64 {
    pass(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        pass();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// Mean |got ∩ truth| / k over all queries, by item id.
fn recall_at_k(got: &[Vec<ItemId>], truth: &[Vec<ItemId>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (g, t) in got.iter().zip(truth) {
        hit += g.iter().filter(|v| t.contains(v)).count();
        total += t.len();
    }
    hit as f64 / total.max(1) as f64
}

fn main() {
    let smoke = BenchArtifact::smoke_from_env("ANN_BENCH_SMOKE");
    let (n, clusters, queries, reps) = if smoke {
        (12_000usize, 64usize, 8usize, 1usize)
    } else {
        (120_000, 512, 64, 5)
    };
    let cells = if smoke { 64 } else { 256 };

    // A direct-parameterization spherical model whose entity blocks are
    // overwritten with a planted-cluster point cloud: each item's K×D
    // entity block is one (K·D)-dim clustered point, so the cluster
    // structure survives in every facet subspace. Users sit on anchor
    // items — their exact top-k is the anchor plus co-cluster neighbours,
    // which is precisely the workload an IVF probe has to get right.
    let mut cfg = MarsConfig::mars(FACETS, DIM);
    cfg.seed = 42;
    let mut model = MultiFacetModel::new(cfg, queries, n);
    let (points, _labels) = clustered_points(n, FACETS * DIM, clusters, 0.2, 42);
    let anchors: Vec<usize> = (0..queries).map(|u| (u * 9_973 + 101) % n).collect();
    match model.params_mut() {
        Params::Direct {
            user_facets,
            item_facets,
        } => {
            item_facets.as_mut_slice().copy_from_slice(&points);
            let block = FACETS * DIM;
            for (u, &a) in anchors.iter().enumerate() {
                user_facets.as_mut_slice()[u * block..(u + 1) * block]
                    .copy_from_slice(&points[a * block..(a + 1) * block]);
            }
        }
        Params::Factored { .. } => unreachable!("MARS config is direct-parameterized"),
    }

    println!(
        "ann: {n} items × {FACETS} facets × dim {DIM} ({clusters} planted clusters), \
         {cells} cells, top-{K}, {queries} queries, best of {reps}{}",
        if smoke { " [smoke]" } else { "" }
    );

    let exact = Retriever::new(model, n);
    let qs: Vec<RecQuery<'_>> = (0..queries)
        .map(|u| RecQuery::top_k(u as UserId, K))
        .collect();

    // Ground truth + exact-scan baseline latency.
    let truth: Vec<Vec<ItemId>> = qs.iter().map(|q| exact.retrieve(q).items()).collect();
    let exact_ns = {
        let mut scratch = RetrievalScratch::new();
        let mut out = Vec::new();
        best_ns(reps, || {
            for q in &qs {
                exact.retrieve_ranked_into(q, &mut scratch, &mut out);
                black_box(out.len());
            }
        }) / queries as f64
    };
    let mut rows = vec![Row {
        variant: "exact_scan",
        nprobe: 0,
        ns_per_query: exact_ns,
        recall: 1.0,
    }];

    // One clustering per store; the nprobe/mode sweep retunes the built
    // index (`with_nprobe`/`with_mode`) instead of re-running k-means.
    let base_cfg = IvfConfig {
        cells,
        train_sample: 32_768,
        seed: 42,
        ..IvfConfig::default()
    };
    let build = |store: CellStore| -> (Arc<IvfIndex>, f64) {
        let t = Instant::now();
        let idx = IvfIndex::build(exact.model().as_ref(), n, IvfConfig { store, ..base_cfg });
        (Arc::new(idx), t.elapsed().as_secs_f64() * 1e3)
    };
    let (idx_f32, build_f32_ms) = build(CellStore::F32);
    let (idx_i8, build_i8_ms) = build(CellStore::Int8);
    println!("index build: f32 {build_f32_ms:.0} ms, int8 {build_i8_ms:.0} ms");

    // Sweep: candidate selection + exact rescore on the f32 store (the
    // default, bit-exact-at-full-probe mode) and the quantized coarse scan
    // with a small exact refine on the int8 store.
    let variants: [(&'static str, &Arc<IvfIndex>, IvfMode); 2] = [
        ("ivf_exact_rescore_f32", &idx_f32, IvfMode::ExactRescore),
        (
            "ivf_coarse_int8_refine4",
            &idx_i8,
            IvfMode::Coarse { refine: 4 },
        ),
    ];
    let nprobes: &[usize] = if smoke {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    for (name, idx, mode) in variants {
        for &nprobe in nprobes {
            let tuned = Arc::new((**idx).clone().with_nprobe(nprobe).with_mode(mode));
            let r = exact.clone().with_prebuilt_index(tuned);
            let got: Vec<Vec<ItemId>> = qs.iter().map(|q| r.retrieve(q).items()).collect();
            let ns = {
                let mut scratch = RetrievalScratch::new();
                let mut out = Vec::new();
                best_ns(reps, || {
                    for q in &qs {
                        r.retrieve_ranked_into(q, &mut scratch, &mut out);
                        black_box(out.len());
                    }
                }) / queries as f64
            };
            rows.push(Row {
                variant: name,
                nprobe,
                ns_per_query: ns,
                recall: recall_at_k(&got, &truth),
            });
        }
    }

    let mut art = BenchArtifact::open("ann_retrieval", "BENCH_ann.json", smoke);
    art.note(
        "latency is single-query single-thread; speedup is per-query work \
         saved, independent of core count",
    );
    let json = art.body();
    let _ = writeln!(json, "  \"catalog_items\": {n},");
    let _ = writeln!(json, "  \"facets\": {FACETS},");
    let _ = writeln!(json, "  \"dim\": {DIM},");
    let _ = writeln!(json, "  \"planted_clusters\": {clusters},");
    let _ = writeln!(json, "  \"cells\": {cells},");
    let _ = writeln!(json, "  \"k\": {K},");
    let _ = writeln!(json, "  \"queries\": {queries},");
    let _ = writeln!(json, "  \"build_ms_f32\": {build_f32_ms:.0},");
    let _ = writeln!(json, "  \"build_ms_int8\": {build_i8_ms:.0},");
    json.push_str("  \"variants\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let speedup = exact_ns / r.ns_per_query;
        println!(
            "{:<24} nprobe={:<3} {:>10.0} ns/query  ({:>6.2}x vs exact, recall@{K} {:.3})",
            r.variant, r.nprobe, r.ns_per_query, speedup, r.recall
        );
        let _ = writeln!(
            json,
            "    {{\"variant\": \"{}\", \"nprobe\": {}, \"ns_per_query\": {:.0}, \
             \"speedup_vs_exact\": {:.2}, \"recall_at_{K}\": {:.4}}}{}",
            r.variant,
            r.nprobe,
            r.ns_per_query,
            speedup,
            r.recall,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n");

    // Headline: the best speedup among sweep points that kept recall ≥ 0.95.
    if let Some(best) = rows
        .iter()
        .skip(1)
        .filter(|r| r.recall >= 0.95)
        .max_by(|a, b| (exact_ns / a.ns_per_query).total_cmp(&(exact_ns / b.ns_per_query)))
    {
        println!(
            "best at recall ≥ 0.95: {} nprobe={} — {:.2}x over exact",
            best.variant,
            best.nprobe,
            exact_ns / best.ns_per_query
        );
    } else {
        println!("no sweep point reached recall ≥ 0.95");
    }
    art.finish();
}
