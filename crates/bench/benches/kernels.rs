//! Kernel microbench: the PR 2 scalar kernels vs the portable lane-chunked
//! tier vs the AVX2/FMA tier of `mars_tensor::simd`, per kernel and dim.
//!
//! Run with `cargo bench --bench kernels`. Results are printed as a table
//! and written to `BENCH_kernels.json` at the workspace root (same shape as
//! the other BENCH artifacts) so the speedup is recorded alongside the code
//! that produced it. Set `KERNEL_BENCH_SMOKE=1` (CI) to run the same
//! measurement loop in check mode — a fraction of the repetitions, enough
//! to prove the harness and every tier still run.
//!
//! This is a custom `harness = false` bench (not criterion): the JSON
//! artifact is the point, and each measurement is a simple best-of-N over a
//! row-kernel pass big enough to dwarf timer overhead.

use mars_bench::BenchArtifact;
use mars_tensor::simd::{self, portable, scalar};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Rows per kernel pass — enough work that one pass is microseconds, small
/// enough that all buffers stay cache-resident (the training regime).
const ROWS: usize = 1024;

/// Measured dims: one sub-lane, the workspace default (dim 32, the
/// acceptance dim), and a larger embedding.
const DIMS: [usize; 3] = [8, 32, 64];

fn filled(len: usize, salt: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            (x % 4096) as f32 / 2048.0 - 1.0
        })
        .collect()
}

/// Best-of-`reps` wall time of one `pass` call, in nanoseconds.
fn best_ns(reps: usize, mut pass: impl FnMut()) -> f64 {
    // Warm-up.
    pass();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        pass();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

struct Tier {
    name: &'static str,
    ns: f64,
}

struct KernelResult {
    kernel: &'static str,
    dim: usize,
    tiers: Vec<Tier>,
}

fn main() {
    let smoke = BenchArtifact::smoke_from_env("KERNEL_BENCH_SMOKE");
    let reps = if smoke { 5 } else { 400 };
    let inner = if smoke { 4 } else { 64 };
    println!(
        "active path: {:?} ({} rows/pass, {} passes/measure, best of {reps})",
        simd::active_path(),
        ROWS,
        inner
    );

    let mut results: Vec<KernelResult> = Vec::new();
    for dim in DIMS {
        let a = filled(ROWS * dim, 1);
        let b = filled(ROWS * dim, 2);
        let x = filled(dim, 3);
        let alpha = filled(ROWS, 4);
        let mut out = vec![0.0f32; ROWS];
        let mut y = filled(ROWS * dim, 5);

        // One entry per kernel: (name, scalar pass, portable pass, avx2 pass).
        // Each pass runs `inner` full ROWS-sized kernel calls.
        macro_rules! kernel {
            ($name:literal, $body:expr) => {{
                let mut run = $body;
                let mut tiers = Vec::new();
                for tier in ["scalar", "portable", "avx2"] {
                    if tier == "avx2" {
                        #[cfg(target_arch = "x86_64")]
                        if !simd::avx2::available() {
                            continue;
                        }
                        #[cfg(not(target_arch = "x86_64"))]
                        continue;
                    }
                    let ns = best_ns(reps, || {
                        for _ in 0..inner {
                            run(tier);
                        }
                    });
                    tiers.push(Tier {
                        name: match tier {
                            "scalar" => "scalar",
                            "portable" => "portable",
                            _ => "avx2",
                        },
                        ns: ns / inner as f64,
                    });
                }
                results.push(KernelResult {
                    kernel: $name,
                    dim,
                    tiers,
                });
            }};
        }

        kernel!("dot_rows", |tier: &str| {
            match tier {
                "scalar" => scalar::dot_rows(black_box(&a), black_box(&b), dim, &mut out),
                "portable" => portable::dot_rows(black_box(&a), black_box(&b), dim, &mut out),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the avx2 tier is skipped above unless
                // `avx2::available()`; slice lengths match the kernel contract.
                _ => unsafe { simd::avx2::dot_rows(black_box(&a), black_box(&b), dim, &mut out) },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!(),
            }
            black_box(&mut out);
        });

        kernel!("dist_sq_rows", |tier: &str| {
            match tier {
                "scalar" => scalar::dist_sq_rows(black_box(&a), black_box(&b), dim, &mut out),
                "portable" => portable::dist_sq_rows(black_box(&a), black_box(&b), dim, &mut out),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the avx2 tier is skipped above unless
                // `avx2::available()`; slice lengths match the kernel contract.
                _ => unsafe {
                    simd::avx2::dist_sq_rows(black_box(&a), black_box(&b), dim, &mut out)
                },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!(),
            }
            black_box(&mut out);
        });

        kernel!("dot_one_rows", |tier: &str| {
            match tier {
                // The scalar tier has no one-vs-rows form; per-row scalar
                // dot is the PR 2 equivalent.
                "scalar" => {
                    for (r, o) in out.iter_mut().enumerate() {
                        *o = scalar::dot(black_box(&x), &b[r * dim..(r + 1) * dim]);
                    }
                }
                "portable" => portable::dot_one_rows(black_box(&x), black_box(&b), &mut out),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the avx2 tier is skipped above unless
                // `avx2::available()`; slice lengths match the kernel contract.
                _ => unsafe { simd::avx2::dot_one_rows(black_box(&x), black_box(&b), &mut out) },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!(),
            }
            black_box(&mut out);
        });

        kernel!("axpy_rows", |tier: &str| {
            match tier {
                "scalar" => scalar::axpy_rows(black_box(&alpha), black_box(&a), &mut y, dim),
                "portable" => portable::axpy_rows(black_box(&alpha), black_box(&a), &mut y, dim),
                #[cfg(target_arch = "x86_64")]
                // SAFETY: the avx2 tier is skipped above unless
                // `avx2::available()`; slice lengths match the kernel contract.
                _ => unsafe {
                    simd::avx2::axpy_rows(black_box(&alpha), black_box(&a), &mut y, dim)
                },
                #[cfg(not(target_arch = "x86_64"))]
                _ => unreachable!(),
            }
            black_box(&mut y);
        });
    }

    // Table + JSON.
    let mut art = BenchArtifact::open("kernel_microbench", "BENCH_kernels.json", smoke);
    let json = art.body();
    let _ = writeln!(json, "  \"rows_per_pass\": {ROWS},");
    let _ = writeln!(json, "  \"active_path\": \"{:?}\",", simd::active_path());
    json.push_str("  \"kernels\": [\n");
    for (idx, r) in results.iter().enumerate() {
        let scalar_ns = r
            .tiers
            .iter()
            .find(|t| t.name == "scalar")
            .map(|t| t.ns)
            .unwrap_or(f64::NAN);
        print!("{:<14} dim={:<3}", r.kernel, r.dim);
        let mut fields = String::new();
        for t in &r.tiers {
            let speedup = scalar_ns / t.ns;
            print!("  {}: {:>9.0} ns ({:>5.2}x)", t.name, t.ns, speedup);
            let _ = write!(fields, ", \"{}_ns\": {:.0}", t.name, t.ns);
            if t.name != "scalar" {
                let _ = write!(fields, ", \"speedup_{}_vs_scalar\": {:.2}", t.name, speedup);
            }
        }
        println!();
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"dim\": {}, \"rows\": {}{}}}{}",
            r.kernel,
            r.dim,
            ROWS,
            fields,
            if idx + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n");
    art.finish();
}
