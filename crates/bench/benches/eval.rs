//! Microbench: the full ranking-evaluation protocol (leave-one-out with 100
//! sampled negatives) over a trained MARS model — the harness's per-model
//! fixed cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mars_bench::evaluate;
use mars_core::{MarsConfig, Trainer};
use mars_data::profiles::{Profile, Scale};

fn bench_evaluation(c: &mut Criterion) {
    let data = Profile::Delicious.generate(Scale::Small);
    let mut cfg = MarsConfig::mars(4, 32);
    cfg.epochs = 2;
    let model = Trainer::new(cfg).fit(&data.dataset).model;

    let mut group = c.benchmark_group("evaluation");
    group.sample_size(10);
    group.bench_function("paper_protocol_full_testset", |b| {
        b.iter(|| black_box(evaluate(&model, &data.dataset).hr_at(10)))
    });
    group.finish();
}

criterion_group!(benches, bench_evaluation);
criterion_main!(benches);
