//! Training-throughput bench: the seed's per-triplet reference path vs the
//! batched engine vs the batched engine with user-sharded threads, on the
//! synthetic multi-facet dataset.
//!
//! Run with `cargo bench --bench training`. Results are printed as a table
//! and written to `BENCH_training.json` at the workspace root so the
//! speedup is recorded alongside the code that produced it.
//!
//! This is a custom `harness = false` bench (not criterion): one
//! measurement *is* a full multi-epoch training run, and the JSON artifact
//! is the point.

use mars_bench::BenchArtifact;
use mars_core::{BatchMode, MarsConfig, Trainer};
use mars_data::{SyntheticConfig, SyntheticDataset};
use std::fmt::Write as _;
use std::time::Instant;

struct Variant {
    name: &'static str,
    mode: BatchMode,
    /// `0` = all available cores.
    threads: usize,
}

struct Measurement {
    name: &'static str,
    threads: usize,
    seconds: f64,
    triplets_per_sec: f64,
}

fn main() {
    let smoke = BenchArtifact::smoke_from_env("TRAINING_BENCH_SMOKE");
    // Item catalogue deliberately smaller than the batch so popular rows
    // repeat within a batch — the regime the accumulate/apply engine is
    // built for (and the regime real recommendation data is in: Table I's
    // datasets are long-tailed with heavy head items).
    let data = SyntheticDataset::generate(
        "bench-training",
        &SyntheticConfig {
            num_users: 300,
            num_items: 150,
            num_interactions: 9_000,
            num_categories: 4,
            seed: 7,
            ..Default::default()
        },
    );

    let mut base = MarsConfig::mars(4, 32);
    base.epochs = if smoke { 1 } else { 2 };
    base.batch_size = 1024;
    base.seed = 7;
    let triplets_per_run =
        (base.epochs * data.dataset.train.num_interactions() * base.negatives_per_positive) as f64;

    let variants = [
        Variant {
            name: "per_triplet",
            mode: BatchMode::PerTriplet,
            threads: 1,
        },
        Variant {
            name: "batched",
            mode: BatchMode::Batched,
            threads: 1,
        },
        Variant {
            name: "batched_parallel",
            mode: BatchMode::Batched,
            threads: 0,
        },
    ];

    let mut results = Vec::new();
    for v in &variants {
        let mut cfg = base.clone();
        cfg.batch_mode = v.mode;
        cfg.threads = v.threads;
        let effective_threads = mars_optim::resolve_threads(v.threads);
        // Warm-up run (page in the dataset, JIT the branch predictors),
        // then best-of-two measured runs.
        let _ = Trainer::new(cfg.clone()).fit(&data.dataset);
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t = Instant::now();
            let out = Trainer::new(cfg.clone()).fit(&data.dataset);
            let dt = t.elapsed().as_secs_f64();
            assert!(
                out.model.check_norm_invariant(1e-3),
                "{}: invariant violated",
                v.name
            );
            best = best.min(dt);
        }
        let m = Measurement {
            name: v.name,
            threads: effective_threads,
            seconds: best,
            triplets_per_sec: triplets_per_run / best,
        };
        println!(
            "{:<18} threads={:<2} {:>8.3}s  {:>12.0} triplets/s",
            m.name, m.threads, m.seconds, m.triplets_per_sec
        );
        results.push(m);
    }

    let baseline = results[0].seconds;
    // The header's thread count gives context for the per-variant thread
    // counts below (the `*_parallel` variant uses exactly that many).
    let mut art = BenchArtifact::open("training_throughput", "BENCH_training.json", smoke);
    let json = art.body();
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"users\": 300, \"items\": 150, \"interactions\": {}}},",
        data.dataset.train.num_interactions()
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"model\": \"MARS\", \"facets\": 4, \"dim\": 32, \"epochs\": {}, \"batch_size\": {}}},",
        base.epochs, base.batch_size
    );
    json.push_str("  \"variants\": [\n");
    for (i, m) in results.iter().enumerate() {
        // Be honest when the "parallel" variant could not actually shard:
        // on a 1-core machine it degenerates to the serial batched path and
        // its speedup must not be read as evidence for threading.
        let note = if m.name == "batched_parallel" && m.threads <= 1 {
            ", \"note\": \"only 1 core available; parallel path degenerated to serial batched\""
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"seconds\": {:.4}, \"triplets_per_sec\": {:.0}, \"speedup_vs_per_triplet\": {:.2}{}}}{}",
            m.name,
            m.threads,
            m.seconds,
            m.triplets_per_sec,
            baseline / m.seconds,
            note,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n");
    art.finish();
    for m in &results[1..] {
        println!(
            "speedup {} vs per_triplet: {:.2}x",
            m.name,
            baseline / m.seconds
        );
    }
}
