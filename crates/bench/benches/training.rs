//! Microbench: per-triplet training cost across model families — the
//! paper's "runtimes of both MAR and MARS are in the same scale with most
//! metric learning baselines" claim, measured as triplet-update cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_core::{MarsConfig, MultiFacetModel, Scratch};
use mars_data::batch::Triplet;

fn bench_triplet_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("triplet_update");
    let t = Triplet {
        user: 3,
        positive: 11,
        negative: 57,
    };
    for (label, cfg) in [
        ("cml_like_D128", MarsConfig::cml_like(128)),
        ("mar_K4_D32", MarsConfig::mar(4, 32)),
        ("mars_K4_D32", MarsConfig::mars(4, 32)),
        ("mars_K6_D64", MarsConfig::mars(6, 64)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            let mut model = MultiFacetModel::new(cfg.clone(), 100, 100);
            let mut scratch = Scratch::new(cfg.facets, cfg.dim);
            b.iter(|| {
                black_box(model.train_triplet(black_box(t), 0.5, 0.05, &mut scratch))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triplet_updates);
criterion_main!(benches);
