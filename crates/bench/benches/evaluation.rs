//! Evaluation-throughput bench: the seed's sequential one-pair-at-a-time
//! ranking protocol vs the batched engine (pre-drawn negatives + fused
//! `score_block`) vs batched + worker-pool parallelism, on a trained MARS
//! model.
//!
//! Run with `cargo bench --bench evaluation`. Results are printed as a
//! table and written to `BENCH_eval.json` at the workspace root (same shape
//! as `BENCH_training.json`) so the speedup is recorded alongside the code
//! that produced it.
//!
//! All three variants are asserted to produce the *same* `Report` — the
//! batched engine's bit-identity guarantee — so the numbers compare equal
//! work, not approximations.

use mars_bench::BenchArtifact;
use mars_core::{MarsConfig, Trainer};
use mars_data::{SyntheticConfig, SyntheticDataset};
use mars_metrics::{EvalConfig, RankingEvaluator, Report};
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let smoke = BenchArtifact::smoke_from_env("EVAL_BENCH_SMOKE");
    // Catalogue sized so evaluation — not training — dominates: thousands
    // of leave-one-out cases, each ranking the held-out item against 100
    // sampled negatives (the paper's §V-A2 protocol).
    let data = SyntheticDataset::generate(
        "bench-evaluation",
        &SyntheticConfig {
            num_users: 6_000,
            num_items: 1_500,
            num_interactions: 60_000,
            num_categories: 4,
            seed: 11,
            ..Default::default()
        },
    );

    let mut cfg = MarsConfig::mars(4, 32);
    cfg.epochs = 1;
    cfg.batch_size = 1024;
    cfg.seed = 11;
    let model = Trainer::new(cfg).fit(&data.dataset).model;
    let pairs = data.dataset.test.len();
    let threads_detected = mars_runtime::resolve_threads(0);

    let eval_cfg = |threads: usize| EvalConfig {
        num_negatives: 100,
        cutoffs: vec![10, 20],
        seed: 2021,
        threads,
    };

    struct Measurement {
        name: &'static str,
        threads: usize,
        seconds: f64,
        pairs_per_sec: f64,
        report: Report,
    }

    type Variant<'a> = (&'static str, usize, Box<dyn Fn() -> Report + 'a>);
    let variants: Vec<Variant<'_>> = vec![
        (
            "sequential",
            1,
            Box::new(|| {
                RankingEvaluator::new(eval_cfg(1)).evaluate_pairs_sequential(
                    &model,
                    &data.dataset,
                    &data.dataset.test,
                )
            }),
        ),
        (
            "batched",
            1,
            Box::new(|| RankingEvaluator::new(eval_cfg(1)).evaluate(&model, &data.dataset)),
        ),
        (
            "batched_parallel",
            threads_detected,
            Box::new(|| RankingEvaluator::new(eval_cfg(0)).evaluate(&model, &data.dataset)),
        ),
    ];

    let mut results: Vec<Measurement> = Vec::new();
    for (name, threads, run) in &variants {
        // Warm-up, then best-of-three measured runs (one in smoke mode).
        let report = run();
        let mut best = f64::INFINITY;
        for _ in 0..if smoke { 1 } else { 3 } {
            let t = Instant::now();
            let r = run();
            best = best.min(t.elapsed().as_secs_f64());
            assert_eq!(r, report, "{name}: evaluation must be reproducible");
        }
        let m = Measurement {
            name,
            threads: *threads,
            seconds: best,
            pairs_per_sec: report.cases as f64 / best,
            report,
        };
        println!(
            "{:<18} threads={:<2} {:>8.3}s  {:>10.0} pairs/s  (HR@10 {:.4}, {} cases)",
            m.name,
            m.threads,
            m.seconds,
            m.pairs_per_sec,
            m.report.hr_at(10),
            m.report.cases
        );
        results.push(m);
    }

    // The engines must agree exactly — the bench compares identical work.
    for m in &results[1..] {
        assert_eq!(
            m.report, results[0].report,
            "{}: batched engine diverged from the sequential protocol",
            m.name
        );
    }

    let baseline = results[0].seconds;
    let mut art = BenchArtifact::open("evaluation_throughput", "BENCH_eval.json", smoke);
    let json = art.body();
    let _ = writeln!(
        json,
        "  \"dataset\": {{\"users\": 6000, \"items\": 1500, \"test_pairs\": {pairs}}},"
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"model\": \"MARS\", \"facets\": 4, \"dim\": 32, \"num_negatives\": 100, \"cutoffs\": [10, 20]}},"
    );
    json.push_str("  \"variants\": [\n");
    for (i, m) in results.iter().enumerate() {
        // Be honest when the "parallel" variant could not actually fan out:
        // on a 1-core machine it degenerates to the serial batched engine.
        let note = if m.name == "batched_parallel" && m.threads <= 1 {
            ", \"note\": \"only 1 core available; parallel path degenerated to serial batched\""
        } else {
            ""
        };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"threads\": {}, \"seconds\": {:.4}, \"pairs_per_sec\": {:.0}, \"speedup_vs_sequential\": {:.2}{}}}{}",
            m.name,
            m.threads,
            m.seconds,
            m.pairs_per_sec,
            baseline / m.seconds,
            note,
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n");
    art.finish();
    for m in &results[1..] {
        println!(
            "speedup {} vs sequential: {:.2}x",
            m.name,
            baseline / m.seconds
        );
    }
}
