//! Traffic-simulation bench for the `mars-serve` service layer: open-loop
//! Poisson-ish arrivals against a live [`RecService`], sweeping offered
//! load and the micro-batching knobs, recording throughput and
//! p50/p99/p999 latency.
//!
//! Run with `cargo bench --bench service`. Results are printed as a table
//! and written to `BENCH_service.json` at the workspace root (same shape
//! as the other BENCH artifacts). Set `SERVICE_BENCH_SMOKE=1` (CI) to run
//! the same measurement loop in check mode — a fraction of the requests,
//! enough to prove the harness and every load/batching combination,
//! without overwriting the recorded artifact.
//!
//! Methodology: arrival times are a fixed schedule drawn once per combo
//! from `CounterRng` (exponential inter-arrival gaps at the offered
//! rate), replayed by a small pool of client threads in round-robin.
//! Latency is measured from a request's **scheduled arrival** to its
//! response — so queueing delay from an overloaded service (or a client
//! thread still blocked on its previous request) counts against the
//! tail, which is what an open-loop load test is for. Offered loads are
//! set relative to the calibrated single-thread exact-scan capacity, so
//! the sweep brackets saturation on any machine.

use mars_bench::{BenchArtifact, LatencyPercentiles};
use mars_core::{MarsConfig, MultiFacetModel};
use mars_data::ItemId;
use mars_runtime::CounterRng;
use mars_serve::{
    DegradeConfig, IvfConfig, RecRequest, RecService, RetrievalScratch, Retriever, ServiceConfig,
    ServiceError, ServingSnapshot,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Catalogue size of the served snapshot (the serving bench's scale).
const CATALOG: usize = 4_000;
const USERS: usize = 512;
/// Items returned per query.
const K: usize = 10;
/// Seen-history length per user.
const SEEN: usize = 40;
/// Client threads replaying the arrival schedule.
const CLIENTS: usize = 8;

/// Offered load as a fraction of the calibrated single-thread capacity:
/// comfortable, near-saturation, and past it.
const LOADS: [f64; 3] = [0.5, 0.8, 1.1];

struct BatchConfig {
    name: &'static str,
    max_batch: usize,
    max_wait: Duration,
    /// Guarded mode: load-shedding submits (`try_retrieve`), a per-request
    /// deadline, and an IVF degradation ladder behind the snapshot — the
    /// fault-tolerance layer under the same open-loop traffic.
    guarded: bool,
}

struct Row {
    config: &'static str,
    max_batch: usize,
    max_wait_us: u64,
    load: f64,
    offered_qps: f64,
    achieved_qps: f64,
    requests: usize,
    served: usize,
    shed: u64,
    deadline_dropped: u64,
    degraded_served: u64,
    lat: LatencyPercentiles,
}

/// Uniform tick in [0, 1) — 53 mantissa bits of one counter draw.
fn u01(rng: &mut CounterRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Sleep-then-spin until `deadline` (sleep undershoots by a safety
/// margin, the spin closes the gap — scheduler wakeup jitter otherwise
/// dwarfs sub-millisecond inter-arrival gaps).
fn wait_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > Duration::from_micros(800) {
            thread::sleep(remaining - Duration::from_micros(500));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Replays `schedule` against `service` with round-robin clients; returns
/// (achieved qps over served requests, per-served-request latencies in ns,
/// served count). Unguarded mode blocks (`retrieve`, every request must
/// serve); guarded mode sheds (`try_retrieve`) and tolerates the typed
/// rejections — those resolve the caller but record no latency.
fn run_open_loop(
    service: &RecService<MultiFacetModel>,
    requests: &[RecRequest],
    schedule: &[Duration],
    guarded: bool,
) -> (f64, Vec<f64>, usize) {
    let n = requests.len();
    let start = Instant::now() + Duration::from_millis(5); // line up the clients
    let mut results: Vec<(Vec<f64>, Instant)> = Vec::new();
    thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(n / CLIENTS + 1);
                    let mut last = start;
                    for i in (c..n).step_by(CLIENTS) {
                        let arrival = start + schedule[i];
                        wait_until(arrival);
                        let outcome = if guarded {
                            service.try_retrieve(&requests[i])
                        } else {
                            service.retrieve(&requests[i])
                        };
                        let done = Instant::now();
                        match outcome {
                            Ok(resp) => {
                                black_box(resp.len());
                                lat.push(done.saturating_duration_since(arrival).as_nanos() as f64);
                            }
                            Err(ServiceError::Overloaded | ServiceError::DeadlineExceeded)
                                if guarded => {} // typed rejection: counted via stats
                            Err(e) => panic!("open loop hit unexpected error {e:?}"),
                        }
                        last = done;
                    }
                    (lat, last)
                })
            })
            .collect();
        for h in handles {
            results.push(h.join().expect("client panicked"));
        }
    });
    let last_done = results.iter().map(|(_, t)| *t).max().unwrap_or(start);
    let wall = last_done.saturating_duration_since(start).as_secs_f64();
    let latencies: Vec<f64> = results.into_iter().flat_map(|(l, _)| l).collect();
    let served = latencies.len();
    let achieved = served as f64 / wall.max(1e-9);
    (achieved, latencies, served)
}

fn main() {
    let smoke = BenchArtifact::smoke_from_env("SERVICE_BENCH_SMOKE");
    let requests_per_combo = if smoke { 120 } else { 4_000 };
    let threads = mars_runtime::resolve_threads(0);

    // An untrained MARS snapshot scores exactly like a trained one.
    let model = MultiFacetModel::new(MarsConfig::mars(4, 32), USERS, CATALOG);
    println!(
        "service: catalogue {CATALOG} items, K=4 facets × dim 32, top-{K}, \
         {SEEN} seen/user, {CLIENTS} clients, {requests_per_combo} requests/combo; \
         {threads} threads detected"
    );

    // Per-user sorted seen histories and the request pool.
    let seen: Vec<Arc<[ItemId]>> = (0..USERS)
        .map(|u| {
            (0..SEEN)
                .map(|i| ((u * 131 + i * 97) % CATALOG) as ItemId)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
                .into()
        })
        .collect();
    let requests: Vec<RecRequest> = (0..requests_per_combo)
        .map(|i| {
            let u = i * 13 % USERS;
            RecRequest::top_k(u as u32, K).excluding(Arc::clone(&seen[u]))
        })
        .collect();

    // Calibrate the single-thread exact-scan capacity (the direct-call
    // path the service wraps): best-of pass over a query sample.
    let retriever = Retriever::new(model, CATALOG);
    let base_ns = {
        let mut scratch = RetrievalScratch::new();
        let mut out = Vec::new();
        let sample = &requests[..requests.len().min(64)];
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t = Instant::now();
            for req in sample {
                retriever.retrieve_ranked_into(&req.as_query(), &mut scratch, &mut out);
                black_box(out.len());
            }
            best = best.min(t.elapsed().as_nanos() as f64 / sample.len() as f64);
        }
        best
    };
    let base_qps = 1e9 / base_ns;
    println!(
        "calibration: {base_ns:.0} ns/query single-thread exact scan \
         ({base_qps:.0} qps capacity)"
    );

    let configs = [
        BatchConfig {
            name: "no_batching",
            max_batch: 1,
            max_wait: Duration::ZERO,
            guarded: false,
        },
        BatchConfig {
            name: "batch32_wait200us",
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            guarded: false,
        },
        // The fault-tolerance layer under the same traffic: load-shedding
        // submits, a 10 ms deadline, and an IVF degradation ladder. At the
        // 1.1x overload point this is where the shed / deadline-drop /
        // degraded counts in the artifact come from.
        BatchConfig {
            name: "guarded_batch32",
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            guarded: true,
        },
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (ci, cfg) in configs.iter().enumerate() {
        for (li, &load) in LOADS.iter().enumerate() {
            let offered_qps = base_qps * load;
            // One fixed arrival schedule per combo, exponential gaps.
            let mut rng = CounterRng::keyed(0x5E21, (ci * LOADS.len() + li) as u64);
            let mut at = 0.0f64; // seconds
            let schedule: Vec<Duration> = (0..requests_per_combo)
                .map(|_| {
                    let gap = -(1.0 - u01(&mut rng)).ln() / offered_qps;
                    at += gap;
                    Duration::from_secs_f64(at)
                })
                .collect();
            // Guarded mode runs a small admission queue: with CLIENTS
            // blocking callers, backlog is bounded by the client count, so
            // shed/degrade thresholds must sit inside that range to ever
            // engage — a deep queue would just absorb the whole open loop.
            let service_config = ServiceConfig {
                queue_depth: if cfg.guarded { CLIENTS / 2 } else { 1024 },
                max_batch: cfg.max_batch,
                max_wait: cfg.max_wait,
                threads: 0,
                default_deadline: cfg.guarded.then(|| Duration::from_millis(2)),
                degrade: DegradeConfig {
                    high_backlog: CLIENTS / 2,
                    low_backlog: 1,
                    step_down_after: 2,
                    step_up_after: 8,
                    ..DegradeConfig::default()
                },
                ..ServiceConfig::default()
            };
            let service = if cfg.guarded {
                RecService::start(
                    ServingSnapshot::ivf_ladder(retriever.clone(), IvfConfig::default()),
                    service_config,
                )
            } else {
                RecService::start(retriever.clone(), service_config)
            };
            let (achieved_qps, mut latencies, served) =
                run_open_loop(&service, &requests, &schedule, cfg.guarded);
            let stats = service.stats();
            let lat = LatencyPercentiles::from_ns(&mut latencies);
            println!(
                "{:<18} load {:>3.1}x  offered {:>7.0} qps  achieved {:>7.0} qps  \
                 p50 {:>9.0} ns  p99 {:>10.0} ns  p999 {:>10.0} ns  \
                 shed {:>4}  ddl {:>4}  degr {:>4}",
                cfg.name,
                load,
                offered_qps,
                achieved_qps,
                lat.p50_ns,
                lat.p99_ns,
                lat.p999_ns,
                stats.shed,
                stats.deadline_dropped,
                stats.degraded_served
            );
            rows.push(Row {
                config: cfg.name,
                max_batch: cfg.max_batch,
                max_wait_us: cfg.max_wait.as_micros() as u64,
                load,
                offered_qps,
                achieved_qps,
                requests: requests_per_combo,
                served,
                shed: stats.shed,
                deadline_dropped: stats.deadline_dropped,
                degraded_served: stats.degraded_served,
                lat,
            });
        }
    }

    let mut art = BenchArtifact::open("service", "BENCH_service.json", smoke);
    if threads == 1 {
        art.note(
            "1-core machine: clients, dispatcher, and the fan-out pool share \
             one core, so micro-batching cannot add parallel speedup here — \
             it only amortizes dispatch; the batching win materializes on \
             multicore",
        );
    }
    let json = art.body();
    let _ = writeln!(json, "  \"catalog_items\": {CATALOG},");
    let _ = writeln!(json, "  \"k\": {K},");
    let _ = writeln!(json, "  \"seen_per_user\": {SEEN},");
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"requests_per_combo\": {requests_per_combo},");
    let _ = writeln!(json, "  \"base_single_thread_ns_per_query\": {base_ns:.0},");
    json.push_str("  \"results\": [\n");
    for (idx, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"config\": \"{}\", \"max_batch\": {}, \"max_wait_us\": {}, \
             \"offered_load\": {:.2}, \"offered_qps\": {:.0}, \"achieved_qps\": {:.0}, \
             \"requests\": {}, \"served\": {}, \"shed\": {}, \"deadline_dropped\": {}, \
             \"degraded_served\": {}, {}}}{}",
            r.config,
            r.max_batch,
            r.max_wait_us,
            r.load,
            r.offered_qps,
            r.achieved_qps,
            r.requests,
            r.served,
            r.shed,
            r.deadline_dropped,
            r.degraded_served,
            r.lat.json_fields(),
            if idx + 1 < rows.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n");
    art.finish();
}
