//! Microbench: the similarity kernels that dominate training and
//! evaluation — facet-specific Euclidean and cosine similarity, and the
//! full cross-facet score as K and D grow.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_core::{MarsConfig, MultiFacetModel};
use mars_metrics::Scorer;
use mars_tensor::ops;

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    for d in [32usize, 128, 512] {
        let a: Vec<f32> = (0..d).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..d).map(|i| (i as f32 * 0.11).cos()).collect();
        group.bench_with_input(BenchmarkId::new("dot", d), &d, |bench, _| {
            bench.iter(|| ops::dot(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("dist_sq", d), &d, |bench, _| {
            bench.iter(|| ops::dist_sq(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("cosine", d), &d, |bench, _| {
            bench.iter(|| ops::cosine(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

fn bench_cross_facet_score(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_facet_score");
    for (k, d) in [(1usize, 128usize), (4, 32), (4, 128), (6, 64)] {
        let mars = MultiFacetModel::new(MarsConfig::mars(k, d), 200, 200);
        group.bench_with_input(
            BenchmarkId::new("mars_direct", format!("K{k}_D{d}")),
            &(k, d),
            |bench, _| bench.iter(|| mars.score(black_box(7), black_box(42))),
        );
        let mar = MultiFacetModel::new(MarsConfig::mar(k, d), 200, 200);
        group.bench_with_input(
            BenchmarkId::new("mar_factored", format!("K{k}_D{d}")),
            &(k, d),
            |bench, _| bench.iter(|| mar.score(black_box(7), black_box(42))),
        );
    }
    group.finish();
}

fn bench_score_many(c: &mut Criterion) {
    // The evaluator's inner loop: 1 user × 101 candidates.
    let mut group = c.benchmark_group("score_many_101");
    let items: Vec<u32> = (0..101).collect();
    for (k, d) in [(4usize, 32usize), (4, 128)] {
        let model = MultiFacetModel::new(MarsConfig::mars(k, d), 200, 200);
        let mut out = Vec::new();
        group.bench_with_input(
            BenchmarkId::new("mars", format!("K{k}_D{d}")),
            &(k, d),
            |bench, _| {
                bench.iter(|| {
                    model.score_many(black_box(3), black_box(&items), &mut out);
                    out.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_cross_facet_score,
    bench_score_many
);
criterion_main!(benches);
