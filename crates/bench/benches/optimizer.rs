//! Microbench: optimizer step cost — plain SGD vs Riemannian SGD (Eq. 20)
//! vs calibrated Riemannian SGD (Eq. 21).
//!
//! The paper claims Eq. 21 "does not introduce significantly more
//! computations" than Eq. 20; this bench quantifies that claim on this
//! implementation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mars_optim::{CalibratedRiemannianSgd, Optimizer, RiemannianSgd, Sgd};
use mars_tensor::ops;

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimizer_step");
    for d in [32usize, 128, 512] {
        let grad: Vec<f32> = (0..d).map(|i| ((i * 37) as f32 * 0.01).sin()).collect();
        let mut unit: Vec<f32> = (0..d).map(|i| ((i * 13) as f32 * 0.02).cos()).collect();
        ops::normalize(&mut unit);

        group.bench_with_input(BenchmarkId::new("sgd", d), &d, |bench, _| {
            let opt = Sgd::with_max_norm(0.01, 1.0);
            bench.iter_batched(
                || unit.clone(),
                |mut x| {
                    opt.step(&mut x, black_box(&grad));
                    x
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("rsgd_exp", d), &d, |bench, _| {
            let opt = RiemannianSgd::new(0.01);
            bench.iter_batched(
                || unit.clone(),
                |mut x| {
                    opt.step(&mut x, black_box(&grad));
                    x
                },
                criterion::BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("rsgd_calibrated", d), &d, |bench, _| {
            let opt = CalibratedRiemannianSgd::new(0.01);
            bench.iter_batched(
                || unit.clone(),
                |mut x| {
                    opt.step(&mut x, black_box(&grad));
                    x
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
