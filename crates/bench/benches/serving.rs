//! Serving bench: single-query retrieval latency (bounded-heap select vs
//! the full-sort reference) and batched multi-user throughput (serial vs
//! fanned across the worker pool) over a catalogue-scale MARS model.
//!
//! Run with `cargo bench --bench serving`. Results are printed as a table
//! and written to `BENCH_serving.json` at the workspace root (same shape
//! as the other BENCH artifacts). Set `SERVING_BENCH_SMOKE=1` (CI) to run
//! the same measurement loop in check mode — a fraction of the
//! repetitions, enough to prove the harness and every variant still run,
//! without overwriting the recorded artifact.
//!
//! This is a custom `harness = false` bench (not criterion): the JSON
//! artifact is the point. `full_sort_top_k` is the pre-serve
//! `MultiFacetModel::recommend` algorithm, kept in `mars-serve` as the
//! A/B baseline the way the evaluator keeps its sequential protocol.

use mars_bench::BenchArtifact;
use mars_core::{MarsConfig, MultiFacetModel};
use mars_data::{ItemId, UserId};
use mars_runtime::WorkerPool;
use mars_serve::{full_sort_top_k, RecQuery, RetrievalScratch, Retriever};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Catalogue size of the served snapshot — big enough that the
/// O(n·log n) sort vs O(n + k·log n) select gap is visible.
const CATALOG: usize = 4_000;
const USERS: usize = 512;
/// Items returned per query (a typical recommendation carousel).
const K: usize = 10;
/// Seen-history length per user (filtered out before scoring).
const SEEN: usize = 40;
/// Queries measured per pass.
const QUERIES_PER_PASS: usize = 64;

fn best_ns(reps: usize, mut pass: impl FnMut() -> usize) -> (f64, usize) {
    let mut served = pass(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        served = pass();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    (best, served)
}

struct Variant {
    name: &'static str,
    ns_per_query: f64,
    served: usize,
}

fn main() {
    let smoke = BenchArtifact::smoke_from_env("SERVING_BENCH_SMOKE");
    let reps = if smoke { 2 } else { 40 };
    let threads = mars_runtime::resolve_threads(0);

    // An untrained MARS snapshot scores exactly like a trained one — the
    // arithmetic is the same; only the values differ.
    let model = MultiFacetModel::new(MarsConfig::mars(4, 32), USERS, CATALOG);
    println!(
        "serving: catalogue {CATALOG} items, K=4 facets × dim 32, top-{K}, \
         {SEEN} seen/user, {QUERIES_PER_PASS} queries/pass, best of {reps}; \
         {threads} threads detected"
    );

    // Per-user sorted seen histories (synthetic, deterministic).
    let seen: Vec<Vec<ItemId>> = (0..USERS)
        .map(|u| {
            (0..SEEN)
                .map(|i| ((u * 131 + i * 97) % CATALOG) as ItemId)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect()
        })
        .collect();
    let queries: Vec<RecQuery<'_>> = (0..QUERIES_PER_PASS)
        .map(|i| {
            let u = (i * 13 % USERS) as UserId;
            RecQuery::top_k(u, K).excluding(&seen[u as usize])
        })
        .collect();

    let retriever = Retriever::new(model, CATALOG);
    let mut variants: Vec<Variant> = Vec::new();

    // 1. Full-sort reference: materialize + score + sort the catalogue.
    {
        let model = retriever.model().as_ref();
        let (ns, n) = best_ns(reps, || {
            for q in &queries {
                black_box(full_sort_top_k(model, CATALOG, q));
            }
            queries.len()
        });
        variants.push(Variant {
            name: "full_sort",
            ns_per_query: ns / QUERIES_PER_PASS as f64,
            served: n,
        });
    }

    // 2. Bounded-heap select with reused scratch (the steady-state
    //    single-query serving path: zero allocations per request).
    {
        let mut scratch = RetrievalScratch::new();
        let mut out = Vec::new();
        let (ns, n) = best_ns(reps, || {
            for q in &queries {
                retriever.retrieve_ranked_into(q, &mut scratch, &mut out);
                black_box(out.len());
            }
            queries.len()
        });
        variants.push(Variant {
            name: "heap_select",
            ns_per_query: ns / QUERIES_PER_PASS as f64,
            served: n,
        });
    }

    // 3 & 4. Batched retrieval: one worker vs the full pool (bit-identical
    //        responses — only the wall clock may differ).
    {
        let pool = WorkerPool::new(1);
        let (ns, n) = best_ns(reps, || {
            black_box(retriever.retrieve_batch(&queries, &pool)).len()
        });
        variants.push(Variant {
            name: "batched_serial",
            ns_per_query: ns / QUERIES_PER_PASS as f64,
            served: n,
        });
    }
    {
        let pool = WorkerPool::with_threads(0);
        let (ns, n) = best_ns(reps, || {
            black_box(retriever.retrieve_batch(&queries, &pool)).len()
        });
        variants.push(Variant {
            name: "batched_pool",
            ns_per_query: ns / QUERIES_PER_PASS as f64,
            served: n,
        });
    }

    // Table + JSON. Single-query variants compare against the full sort;
    // the pooled batch compares against the serial batch.
    let sort_base = variants[0].ns_per_query;
    let serial_base = variants
        .iter()
        .find(|v| v.name == "batched_serial")
        .map(|v| v.ns_per_query)
        .unwrap_or(f64::NAN);
    let mut art = BenchArtifact::open("serving", "BENCH_serving.json", smoke);
    if threads == 1 {
        art.note(
            "1-core machine: the pooled batch degenerates to serial \
             execution; its speedup materializes on multicore",
        );
    }
    let json = art.body();
    let _ = writeln!(json, "  \"catalog_items\": {CATALOG},");
    let _ = writeln!(json, "  \"k\": {K},");
    let _ = writeln!(json, "  \"seen_per_user\": {SEEN},");
    let _ = writeln!(json, "  \"queries_per_pass\": {QUERIES_PER_PASS},");
    json.push_str("  \"variants\": [\n");
    for (idx, v) in variants.iter().enumerate() {
        let reference = if v.name.starts_with("batched") {
            serial_base
        } else {
            sort_base
        };
        let speedup = reference / v.ns_per_query;
        println!(
            "{:<16} {:>12.0} ns/query  ({:>5.2}x vs reference, {} queries/pass)",
            v.name, v.ns_per_query, speedup, v.served
        );
        let _ = writeln!(
            json,
            "    {{\"variant\": \"{}\", \"ns_per_query\": {:.0}, \
             \"speedup_vs_reference\": {:.2}}}{}",
            v.name,
            v.ns_per_query,
            speedup,
            if idx + 1 < variants.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n");
    art.finish();
}
