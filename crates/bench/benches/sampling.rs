//! Sampling-pipeline bench: the PR ≤ 3 serial `StdRng` batcher versus the
//! PR 4 counter-keyed batcher — serial, pool-parallel, and overlapped
//! behind a prefetch thread — plus the underlying sampler microbenches.
//!
//! Run with `cargo bench --bench sampling`. Results are printed as a table
//! and written to `BENCH_sampling.json` at the workspace root (same shape
//! as the other BENCH artifacts). Set `SAMPLING_BENCH_SMOKE=1` (CI) to run
//! the same measurement loop in check mode — a fraction of the repetitions,
//! enough to prove the harness and every variant still run, without
//! overwriting the recorded artifact.
//!
//! This is a custom `harness = false` bench (not criterion): the JSON
//! artifact is the point. The serial-`StdRng` baseline is an inline replica
//! of the pre-PR 4 `TripletBatcher::next_batch` draw loop (the code itself
//! was deleted), kept here the way the kernel bench keeps the scalar tier.
//!
//! The `train_no_prefetch` variant additionally *attributes* its pass:
//! sample ns vs (simulated) train ns per batch, written to the artifact as
//! `sampling_phase` — so future PRs can see where the bottleneck sits
//! without re-deriving it from variant deltas. Like the engines, the bench
//! installs the vectorized splitmix64 fill kernel up front; the counter
//! variants measure the shipped configuration.

use mars_bench::BenchArtifact;
use mars_data::batch::{FillMode, TripletBatcher, TripletStream};
use mars_data::profiles::{Profile, Scale};
use mars_data::sampler::{
    sample_positive, NegativeSampler, PopularityNegativeSampler, UniformNegativeSampler,
    UserSampler,
};
use mars_data::Interactions;
use mars_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Triplets per batch — the paper's training batch size.
const BATCH: usize = 1000;
/// Batches per measured pass (one pass ≈ a training epoch's sampling).
const BATCHES_PER_PASS: u64 = 20;
/// Simulated per-batch gradient work for the overlap measurement, in
/// triplet-batch scoring passes (approximates a cheap model's update cost).
const TRAIN_SPIN_PER_TRIPLET: usize = 40;

fn best_ns(reps: usize, mut pass: impl FnMut() -> usize) -> (f64, usize) {
    let mut drawn = pass(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        drawn = pass();
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    (best, drawn)
}

/// The pre-PR 4 reference: every triplet from one sequential `StdRng`
/// stream, with the old skip-and-redraw loop, materialized into a reused
/// batch buffer — the deleted `next_batch` returned a `Vec` of triplets,
/// so the replica must pay for building one, like the counter variants do.
fn serial_stdrng_pass(
    x: &Interactions,
    sampler: &UserSampler,
    rng: &mut StdRng,
    batch: &mut Vec<(u32, u32, u32)>,
) -> usize {
    let neg = UniformNegativeSampler;
    let mut drawn = 0usize;
    for _ in 0..BATCHES_PER_PASS {
        batch.clear();
        let mut attempts = 0usize;
        while batch.len() < BATCH && attempts < BATCH * 64 {
            attempts += 1;
            let u = sampler.sample(rng);
            let vp = sample_positive(x, u, rng);
            if let Some(vq) = neg.sample_negative(x, u, rng) {
                batch.push((u, vp, vq));
            }
        }
        drawn += black_box(&*batch).len();
    }
    drawn
}

/// Busy work standing in for one batch of gradient updates (the overlap
/// scenario needs *something* on the caller while the prefetch thread
/// draws).
fn fake_train(batch_len: usize) -> f32 {
    let mut acc = 0f32;
    for i in 0..batch_len * TRAIN_SPIN_PER_TRIPLET {
        acc += black_box(i as f32).sqrt();
    }
    acc
}

struct Variant {
    name: &'static str,
    ns_per_pass: f64,
    triplets: usize,
}

fn main() {
    // Same fill path the engines run: vectorized splitmix64 blocks.
    mars_tensor::simd::install_rng_kernel();
    let smoke = BenchArtifact::smoke_from_env("SAMPLING_BENCH_SMOKE");
    let reps = if smoke { 2 } else { 60 };
    let threads = mars_runtime::resolve_threads(0);
    let data = Profile::Ciao.generate(Scale::Small);
    let x = &data.dataset.train;
    println!(
        "sampling pipeline: {} users × {} items, {} interactions; batch {BATCH}, \
         {BATCHES_PER_PASS} batches/pass, best of {reps}; {threads} threads detected",
        x.num_users(),
        x.num_items(),
        x.num_interactions()
    );

    let make_batcher = || {
        TripletBatcher::new(
            UserSampler::explorative(x, 0.8),
            UniformNegativeSampler,
            BATCH,
            42,
        )
    };
    let mut variants: Vec<Variant> = Vec::new();

    // Untimed global warm-up: variants run in sequence, so without it the
    // first one is measured on a cold, boost-clocked core and the rest at
    // steady-state — an ordering bias larger than the effects this bench
    // exists to resolve.
    {
        let sampler = UserSampler::explorative(x, 0.8);
        let mut rng = StdRng::seed_from_u64(43);
        let mut batch = Vec::new();
        let spins = if smoke { 1 } else { 40 };
        for _ in 0..spins {
            black_box(serial_stdrng_pass(x, &sampler, &mut rng, &mut batch));
        }
    }

    // 1. The deleted serial StdRng stream (reference).
    {
        let sampler = UserSampler::explorative(x, 0.8);
        let mut rng = StdRng::seed_from_u64(43);
        let mut batch = Vec::new();
        let (ns, n) = best_ns(reps, || {
            serial_stdrng_pass(x, &sampler, &mut rng, &mut batch)
        });
        variants.push(Variant {
            name: "serial_stdrng",
            ns_per_pass: ns,
            triplets: n,
        });
    }

    // 2. Counter-keyed, serial fill.
    {
        let mut b = make_batcher();
        let mut next = 0u64;
        let (ns, n) = best_ns(reps, || {
            let mut drawn = 0;
            for _ in 0..BATCHES_PER_PASS {
                drawn += b.fill(x, next).len();
                next += 1;
            }
            drawn
        });
        variants.push(Variant {
            name: "counter_serial",
            ns_per_pass: ns,
            triplets: n,
        });
    }

    // 3. Counter-keyed serial fill with the popularity-smoothed negative
    // sampler (alias draw + exact complement fallback — PR 7 dropped the
    // old uniform fallback). Compared against the uniform counter fill:
    // the gap is the price of popularity-biased negatives.
    {
        let mut b = TripletBatcher::new(
            UserSampler::explorative(x, 0.8),
            PopularityNegativeSampler::new(x, 0.75),
            BATCH,
            42,
        );
        let mut next = 0u64;
        let (ns, n) = best_ns(reps, || {
            let mut drawn = 0;
            for _ in 0..BATCHES_PER_PASS {
                drawn += b.fill(x, next).len();
                next += 1;
            }
            drawn
        });
        variants.push(Variant {
            name: "popularity_serial",
            ns_per_pass: ns,
            triplets: n,
        });
    }

    // 4. Counter-keyed, slot ranges fanned across the pool.
    {
        let pool = WorkerPool::with_threads(0);
        let mut b = make_batcher();
        let mut next = 0u64;
        let (ns, n) = best_ns(reps, || {
            let mut drawn = 0;
            for _ in 0..BATCHES_PER_PASS {
                drawn += b.fill_parallel(x, &pool, next).len();
                next += 1;
            }
            drawn
        });
        variants.push(Variant {
            name: "counter_parallel",
            ns_per_pass: ns,
            triplets: n,
        });
    }

    // 5 & 6. Sampling + simulated training, without and with the prefetch
    // overlap (the end-to-end view: prefetch hides the fill behind the
    // gradient work). The no-prefetch pass times the two phases separately
    // to attribute cost (the per-batch `Instant` reads are ~ns against a
    // ~100µs batch).
    let mut sampling_phase = (f64::NAN, f64::NAN); // (sample, train) ns/batch
    {
        let mut b = make_batcher();
        let mut next = 0u64;
        let mut pass = |sample_ns: &mut f64, train_ns: &mut f64| {
            let mut drawn = 0usize;
            for _ in 0..BATCHES_PER_PASS {
                let t = Instant::now();
                let batch = b.fill(x, next).len();
                *sample_ns += t.elapsed().as_nanos() as f64;
                next += 1;
                let t = Instant::now();
                black_box(fake_train(batch));
                *train_ns += t.elapsed().as_nanos() as f64;
                drawn += batch;
            }
            drawn
        };
        let (mut s, mut t) = (0f64, 0f64);
        let mut drawn = pass(&mut s, &mut t); // warm-up
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let (mut s, mut t) = (0f64, 0f64);
            drawn = pass(&mut s, &mut t);
            if s + t < best {
                best = s + t;
                sampling_phase = (s / BATCHES_PER_PASS as f64, t / BATCHES_PER_PASS as f64);
            }
        }
        variants.push(Variant {
            name: "train_no_prefetch",
            ns_per_pass: best,
            triplets: drawn,
        });
    }
    {
        std::thread::scope(|scope| {
            let mut stream = TripletStream::spawn(scope, x, make_batcher(), FillMode::Prefetch);
            let (ns, n) = best_ns(reps, || {
                let mut drawn = 0;
                for _ in 0..BATCHES_PER_PASS {
                    let batch = stream.next_batch().len();
                    black_box(fake_train(batch));
                    drawn += batch;
                }
                drawn
            });
            variants.push(Variant {
                name: "train_prefetch",
                ns_per_pass: ns,
                triplets: n,
            });
        });
    }

    // Table + JSON.
    let base = variants[0].ns_per_pass;
    let overlap_base = variants
        .iter()
        .find(|v| v.name == "train_no_prefetch")
        .map(|v| v.ns_per_pass)
        .unwrap_or(f64::NAN);
    let counter_base = variants
        .iter()
        .find(|v| v.name == "counter_serial")
        .map(|v| v.ns_per_pass)
        .unwrap_or(f64::NAN);
    let mut art = BenchArtifact::open("sampling_pipeline", "BENCH_sampling.json", smoke);
    if threads == 1 {
        art.note(
            "1-core machine: the pool-parallel fill degenerates to serial execution, \
             and FillMode::Prefetch degrades to the inline serial fill (train_prefetch \
             measures the degraded path, so it should track train_no_prefetch); the \
             overlap speedups materialize on multicore",
        );
    }
    let json = art.body();
    let _ = writeln!(json, "  \"batch_size\": {BATCH},");
    let _ = writeln!(json, "  \"batches_per_pass\": {BATCHES_PER_PASS},");
    let (sample_ns, train_ns) = sampling_phase;
    let _ = writeln!(
        json,
        "  \"sampling_phase\": {{\"sample_ns_per_batch\": {:.0}, \"train_ns_per_batch\": {:.0}, \
         \"sampling_share\": {:.3}}},",
        sample_ns,
        train_ns,
        sample_ns / (sample_ns + train_ns)
    );
    println!(
        "train_no_prefetch attribution: {:.0} ns sampling + {:.0} ns training per batch \
         ({:.1}% sampling)",
        sample_ns,
        train_ns,
        100.0 * sample_ns / (sample_ns + train_ns)
    );
    json.push_str("  \"variants\": [\n");
    for (idx, v) in variants.iter().enumerate() {
        // Fill-only variants compare against the StdRng fill; the
        // popularity fill (a different sampler, not a faster path)
        // compares against the uniform counter fill; the two train-loop
        // variants compare against each other.
        let reference = if v.name.starts_with("train") {
            overlap_base
        } else if v.name == "popularity_serial" {
            counter_base
        } else {
            base
        };
        let speedup = reference / v.ns_per_pass;
        println!(
            "{:<18} {:>12.0} ns/pass  ({:>5.2}x vs reference, {} triplets/pass)",
            v.name, v.ns_per_pass, speedup, v.triplets
        );
        let _ = writeln!(
            json,
            "    {{\"variant\": \"{}\", \"ns_per_pass\": {:.0}, \"triplets_per_pass\": {}, \
             \"speedup_vs_reference\": {:.2}}}{}",
            v.name,
            v.ns_per_pass,
            v.triplets,
            speedup,
            if idx + 1 < variants.len() { "," } else { "" }
        );
    }
    json.push_str("  ]\n");
    art.finish();
}
