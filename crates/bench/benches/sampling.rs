//! Microbench: sampler throughput — uniform vs explorative user sampling
//! (Eq. 10) and uniform vs popularity-smoothed negative sampling, plus the
//! end-to-end triplet batcher.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mars_data::batch::TripletBatcher;
use mars_data::profiles::{Profile, Scale};
use mars_data::sampler::{
    NegativeSampler, PopularityNegativeSampler, UniformNegativeSampler, UserSampler,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_samplers(c: &mut Criterion) {
    let data = Profile::Ciao.generate(Scale::Small);
    let x = &data.dataset.train;
    let mut group = c.benchmark_group("samplers");

    let uniform_users = UserSampler::uniform(x);
    group.bench_function("user_uniform", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(uniform_users.sample(&mut rng)))
    });

    let explorative = UserSampler::explorative(x, 0.8);
    group.bench_function("user_explorative_eq10", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(explorative.sample(&mut rng)))
    });

    group.bench_function("negative_uniform", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let s = UniformNegativeSampler;
        b.iter(|| black_box(s.sample_negative(x, 0, &mut rng)))
    });

    let pop = PopularityNegativeSampler::new(x, 0.75);
    group.bench_function("negative_popularity", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| black_box(pop.sample_negative(x, 0, &mut rng)))
    });

    group.bench_function("triplet_batch_1000", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        let mut batcher = TripletBatcher::new(
            UserSampler::explorative(x, 0.8),
            UniformNegativeSampler,
            1000,
        );
        b.iter(|| batcher.next_batch(x, &mut rng).len())
    });

    group.finish();
}

criterion_group!(benches, bench_samplers);
criterion_main!(benches);
