//! LRML — Latent Relational Metric Learning (Tay et al., WWW 2018).
//!
//! Augments metric learning with a memory module that *induces* a latent
//! relation vector per user-item pair:
//!
//! ```text
//! s      = (u ⊙ v) K        (attention logits over M memory slots, K: m×d)
//! a      = softmax(s)
//! r_uv   = Σ_i a_i · M_i    (the induced relation, M: m×d)
//! score  = −‖u + r_uv − v‖²
//! ```
//!
//! trained with the pairwise hinge `[λ + d(u,i)² − d(u,j)²]₊`. The gradient
//! flows through the attention into the keys `K`, memories `M`, and both
//! embeddings (the `u ⊙ v` product couples them) — all derived by hand
//! below and covered by the crate's improvement tests.

use crate::common::{BaselineConfig, ImplicitRecommender};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::TripletBatcher;
use mars_data::dataset::Dataset;
use mars_data::sampler::{UniformNegativeSampler, UserSampler};
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_tensor::{init, nonlin, ops, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of memory slots (the original paper uses 20–25; rankings are
/// insensitive in a wide band).
const MEMORY_SLOTS: usize = 10;

/// Latent relational metric learning.
pub struct Lrml {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
    /// Attention keys, `slots × dim`.
    keys: Matrix,
    /// Memory slots, `slots × dim`.
    memory: Matrix,
}

/// Forward-pass intermediates reused by the backward pass.
struct RelationState {
    attention: Vec<f32>,
    relation: Vec<f32>,
    /// `u ⊙ v`.
    had: Vec<f32>,
}

impl Lrml {
    /// Creates an (untrained) model.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut user = EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale);
        let mut item = EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale);
        user.clip_rows_to_unit_ball();
        item.clip_rows_to_unit_ball();
        let keys = init::xavier_matrix(&mut rng, MEMORY_SLOTS, cfg.dim);
        let memory = init::xavier_matrix(&mut rng, MEMORY_SLOTS, cfg.dim);
        Self {
            cfg,
            user,
            item,
            keys,
            memory,
        }
    }

    /// Computes the induced relation for a pair.
    fn relation(&self, u: usize, v: usize) -> RelationState {
        let d = self.cfg.dim;
        let had: Vec<f32> = self
            .user
            .row(u)
            .iter()
            .zip(self.item.row(v))
            .map(|(a, b)| a * b)
            .collect();
        let mut logits = vec![0.0; MEMORY_SLOTS];
        self.keys.matvec(&had, &mut logits);
        let attention = nonlin::softmax_vec(&logits);
        let mut relation = vec![0.0; d];
        for (i, &a) in attention.iter().enumerate() {
            ops::axpy(a, self.memory.row(i), &mut relation);
        }
        RelationState {
            attention,
            relation,
            had,
        }
    }

    /// Translated squared distance and the state needed for its gradient.
    fn dist_sq_with_state(&self, u: usize, v: usize) -> (f32, RelationState) {
        let st = self.relation(u, v);
        let uu = self.user.row(u);
        let vv = self.item.row(v);
        let mut s = 0.0;
        for d in 0..self.cfg.dim {
            let diff = uu[d] + st.relation[d] - vv[d];
            s += diff * diff;
        }
        (s, st)
    }

    /// Applies the gradient of `sign · d(u,v)²` (sign = +1 for the positive
    /// pair, −1 for the negative) to every parameter.
    fn apply_pair_grad(&mut self, u: usize, v: usize, st: &RelationState, sign: f32) {
        let dim = self.cfg.dim;
        let lr = self.cfg.lr;
        // diff = u + r − v ; ∂d²/∂(·) = 2·diff·∂(·)
        let mut diff = vec![0.0; dim];
        for d in 0..dim {
            diff[d] = self.user.row(u)[d] + st.relation[d] - self.item.row(v)[d];
        }
        // ∂L/∂r = 2·sign·diff.
        let mut d_rel = diff.clone();
        ops::scale(&mut d_rel, 2.0 * sign);

        // Memory: ∂L/∂M_i = a_i · d_rel. Attention logits: ds_i = d_rel·M_i.
        let mut d_logits_upstream = vec![0.0; MEMORY_SLOTS];
        for i in 0..MEMORY_SLOTS {
            d_logits_upstream[i] = ops::dot(&d_rel, self.memory.row(i));
        }
        let mut d_logits = vec![0.0; MEMORY_SLOTS];
        nonlin::softmax_backward(&st.attention, &d_logits_upstream, &mut d_logits);

        // ∂L/∂had = Kᵀ d_logits.
        let mut d_had = vec![0.0; dim];
        self.keys.matvec_t(&d_logits, &mut d_had);

        // Parameter updates (order: reads before writes of the same rows).
        // u: direct distance term + through had (had = u ⊙ v).
        for d in 0..dim {
            let du = 2.0 * sign * diff[d] + d_had[d] * self.item.row(v)[d];
            let dv = -2.0 * sign * diff[d] + d_had[d] * self.user.row(u)[d];
            self.user.row_mut(u)[d] -= lr * du;
            self.item.row_mut(v)[d] -= lr * dv;
        }
        for i in 0..MEMORY_SLOTS {
            ops::axpy(-lr * st.attention[i], &d_rel, self.memory.row_mut(i));
            ops::axpy(-lr * d_logits[i], &st.had, self.keys.row_mut(i));
        }
        ops::clip_to_unit_ball(self.user.row_mut(u));
        ops::clip_to_unit_ball(self.item.row_mut(v));
    }
}

impl Scorer for Lrml {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        -self.dist_sq_with_state(user as usize, item as usize).0
    }
}

impl ImplicitRecommender for Lrml {
    fn fit(&mut self, data: &Dataset) {
        let x = &data.train;
        if x.num_interactions() == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut batcher = TripletBatcher::new(
            UserSampler::uniform(x),
            UniformNegativeSampler,
            self.cfg.batch_size,
        );
        let batches = batcher.batches_per_epoch(x);
        for _ in 0..self.cfg.epochs {
            for _ in 0..batches {
                let batch: Vec<_> = batcher.next_batch(x, &mut rng).to_vec();
                for t in batch {
                    let u = t.user as usize;
                    let i = t.positive as usize;
                    let j = t.negative as usize;
                    let (d_pos, st_pos) = self.dist_sq_with_state(u, i);
                    let (d_neg, st_neg) = self.dist_sq_with_state(u, j);
                    if self.cfg.margin + d_pos - d_neg <= 0.0 {
                        continue;
                    }
                    self.apply_pair_grad(u, i, &st_pos, 1.0);
                    self.apply_pair_grad(u, j, &st_neg, -1.0);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "LRML"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            Lrml::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn attention_is_distribution() {
        let data = tiny_dataset();
        let m = Lrml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let st = m.relation(0, 0);
        let sum: f32 = st.attention.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(st.relation.len(), 8);
    }

    #[test]
    fn relation_is_convex_combination_of_memory() {
        // ‖r‖ ≤ max_i ‖M_i‖ because the attention is a distribution.
        let data = tiny_dataset();
        let m = Lrml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let st = m.relation(1, 2);
        let max_mem = (0..MEMORY_SLOTS)
            .map(|i| ops::norm(m.memory.row(i)))
            .fold(0.0f32, f32::max);
        assert!(ops::norm(&st.relation) <= max_mem + 1e-5);
    }

    #[test]
    fn hinge_step_reduces_pair_gap() {
        let data = tiny_dataset();
        let mut m = Lrml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let (u, i, j) = (0usize, 0usize, 40usize);
        let gap_before = {
            let (p, _) = m.dist_sq_with_state(u, i);
            let (n, _) = m.dist_sq_with_state(u, j);
            p - n
        };
        for _ in 0..30 {
            let (p, sp) = m.dist_sq_with_state(u, i);
            let (n, sn) = m.dist_sq_with_state(u, j);
            if m.cfg.margin + p - n <= 0.0 {
                break;
            }
            m.apply_pair_grad(u, i, &sp, 1.0);
            m.apply_pair_grad(u, j, &sn, -1.0);
        }
        let gap_after = {
            let (p, _) = m.dist_sq_with_state(u, i);
            let (n, _) = m.dist_sq_with_state(u, j);
            p - n
        };
        assert!(gap_after < gap_before, "{gap_before} → {gap_after}");
    }
}
