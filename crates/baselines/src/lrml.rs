//! LRML — Latent Relational Metric Learning (Tay et al., WWW 2018).
//!
//! Augments metric learning with a memory module that *induces* a latent
//! relation vector per user-item pair:
//!
//! ```text
//! s      = (u ⊙ v) K        (attention logits over M memory slots, K: m×d)
//! a      = softmax(s)
//! r_uv   = Σ_i a_i · M_i    (the induced relation, M: m×d)
//! score  = −‖u + r_uv − v‖²
//! ```
//!
//! trained with the pairwise hinge `[λ + d(u,i)² − d(u,j)²]₊`. The gradient
//! flows through the attention into the keys `K`, memories `M`, and both
//! embeddings (the `u ⊙ v` product couples them) — all derived by hand
//! below and covered by the crate's improvement tests.
//!
//! Runs on the shared triplet engine ([`fit_triplets`]): the user/item row
//! gradients of both hinge pairs ride
//! [`TripletUpdate::triplet_update`] (computed against the frozen
//! parameters, the user row accumulating both pairs' contributions), and
//! the per-step memory-attention state — the relation memory `M` and
//! attention keys `K` — rides the [`TripletUpdate::side_update`] hook,
//! which the engine calls once per triplet in original batch order. LRML
//! thereby inherits the counter-keyed sampling pipeline, the worker pool
//! and the prefetch overlap like every other pairwise baseline.

use crate::common::{fit_triplets, BaselineConfig, ImplicitRecommender, TripletUpdate};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::Triplet;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::rng::seeds;
use mars_tensor::{init, nonlin, ops, Matrix};
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::SeedableRng;

/// Number of memory slots (the original paper uses 20–25; rankings are
/// insensitive in a wide band).
const MEMORY_SLOTS: usize = 10;

/// Latent relational metric learning.
pub struct Lrml {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
    /// Attention keys, `slots × dim`.
    keys: Matrix,
    /// Memory slots, `slots × dim`.
    memory: Matrix,
}

/// Forward-pass intermediates reused by the backward pass.
struct RelationState {
    attention: Vec<f32>,
    relation: Vec<f32>,
    /// `u ⊙ v`.
    had: Vec<f32>,
}

impl Lrml {
    /// Creates an (untrained) model.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(seeds::model_init(cfg.seed)); // audit:allow(determinism) — seeded: pure function of the seed
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut user = EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale);
        let mut item = EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale);
        user.clip_rows_to_unit_ball();
        item.clip_rows_to_unit_ball();
        let keys = init::xavier_matrix(&mut rng, MEMORY_SLOTS, cfg.dim);
        let memory = init::xavier_matrix(&mut rng, MEMORY_SLOTS, cfg.dim);
        Self {
            cfg,
            user,
            item,
            keys,
            memory,
        }
    }

    /// Computes the induced relation for a pair.
    fn relation(&self, u: usize, v: usize) -> RelationState {
        let d = self.cfg.dim;
        let had: Vec<f32> = self
            .user
            .row(u)
            .iter()
            .zip(self.item.row(v))
            .map(|(a, b)| a * b)
            .collect();
        let mut logits = vec![0.0; MEMORY_SLOTS];
        self.keys.matvec(&had, &mut logits);
        let attention = nonlin::softmax_vec(&logits);
        let mut relation = vec![0.0; d];
        for (i, &a) in attention.iter().enumerate() {
            ops::axpy(a, self.memory.row(i), &mut relation);
        }
        RelationState {
            attention,
            relation,
            had,
        }
    }

    /// Translated squared distance and the state needed for its gradient.
    fn dist_sq_with_state(&self, u: usize, v: usize) -> (f32, RelationState) {
        let st = self.relation(u, v);
        let uu = self.user.row(u);
        let vv = self.item.row(v);
        let mut s = 0.0;
        for d in 0..self.cfg.dim {
            let diff = uu[d] + st.relation[d] - vv[d];
            s += diff * diff;
        }
        (s, st)
    }

    /// Backward pass of `sign · d(u,v)²` through the relation module up to
    /// the attention logits: `∂L/∂r` and `∂L/∂s` (`diff` is `u + r − v`
    /// against the current parameters).
    fn relation_backward(&self, diff: &[f32], st: &RelationState, sign: f32) -> RelationGrads {
        // ∂L/∂r = 2·sign·diff.
        let mut d_rel = diff.to_vec();
        ops::scale(&mut d_rel, 2.0 * sign);
        // Memory: ∂L/∂M_i = a_i · d_rel. Attention logits: ds_i = d_rel·M_i.
        let mut d_logits_upstream = vec![0.0; MEMORY_SLOTS];
        for i in 0..MEMORY_SLOTS {
            d_logits_upstream[i] = ops::dot(&d_rel, self.memory.row(i));
        }
        let mut d_logits = vec![0.0; MEMORY_SLOTS];
        nonlin::softmax_backward(&st.attention, &d_logits_upstream, &mut d_logits);
        RelationGrads { d_rel, d_logits }
    }

    /// `diff = u + r − v` against the current parameters.
    fn pair_diff(&self, u: usize, v: usize, st: &RelationState) -> Vec<f32> {
        let dim = self.cfg.dim;
        let mut diff = vec![0.0; dim];
        for d in 0..dim {
            diff[d] = self.user.row(u)[d] + st.relation[d] - self.item.row(v)[d];
        }
        diff
    }

    /// Accumulates (`+=`) the *descent* gradients of `sign · d(u,v)²` on
    /// the user and item rows into `gu` / `gv`: the direct distance term
    /// plus the path through the attention input `had = u ⊙ v`.
    fn accumulate_row_grads(
        &self,
        u: usize,
        v: usize,
        st: &RelationState,
        sign: f32,
        gu: &mut [f32],
        gv: &mut [f32],
    ) {
        let dim = self.cfg.dim;
        let diff = self.pair_diff(u, v, st);
        let grads = self.relation_backward(&diff, st, sign);
        // ∂L/∂had = Kᵀ d_logits.
        let mut d_had = vec![0.0; dim];
        self.keys.matvec_t(&grads.d_logits, &mut d_had);
        for d in 0..dim {
            gu[d] += 2.0 * sign * diff[d] + d_had[d] * self.item.row(v)[d];
            gv[d] += -2.0 * sign * diff[d] + d_had[d] * self.user.row(u)[d];
        }
    }

    /// One SGD step of `sign · d(u,v)²` on the memory-attention state (the
    /// relation memory `M` and the attention keys `K`) — the side-parameter
    /// half of the pair gradient, leaving the embedding rows untouched.
    fn apply_side_grad(&mut self, u: usize, v: usize, st: &RelationState, sign: f32) {
        let diff = self.pair_diff(u, v, st);
        let grads = self.relation_backward(&diff, st, sign);
        let lr = self.cfg.lr;
        for i in 0..MEMORY_SLOTS {
            ops::axpy(-lr * st.attention[i], &grads.d_rel, self.memory.row_mut(i));
            ops::axpy(-lr * grads.d_logits[i], &st.had, self.keys.row_mut(i));
        }
    }

    /// Applies the full gradient of `sign · d(u,v)²` (sign = +1 for the
    /// positive pair, −1 for the negative) to every parameter — the
    /// reference per-pair step the engine hooks decompose; kept for the
    /// gradient tests.
    #[cfg(test)]
    fn apply_pair_grad(&mut self, u: usize, v: usize, st: &RelationState, sign: f32) {
        let dim = self.cfg.dim;
        let (mut gu, mut gv) = (vec![0.0; dim], vec![0.0; dim]);
        self.accumulate_row_grads(u, v, st, sign, &mut gu, &mut gv);
        // Side first: it reads the rows the gradients were computed against.
        self.apply_side_grad(u, v, st, sign);
        let lr = self.cfg.lr;
        ops::axpy(-lr, &gu, self.user.row_mut(u));
        ops::axpy(-lr, &gv, self.item.row_mut(v));
        ops::clip_to_unit_ball(self.user.row_mut(u));
        ops::clip_to_unit_ball(self.item.row_mut(v));
    }
}

/// Relation-module gradients shared by the row and side updates.
struct RelationGrads {
    /// `∂L/∂r` (through the translated distance).
    d_rel: Vec<f32>,
    /// `∂L/∂s` (through the attention softmax).
    d_logits: Vec<f32>,
}

impl Scorer for Lrml {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        -self.dist_sq_with_state(user as usize, item as usize).0
    }
}

impl TripletUpdate for Lrml {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn triplet_update(&self, t: Triplet, up: &mut [f32], ui: &mut [f32], uj: &mut [f32]) -> bool {
        let (u, i, j) = (t.user as usize, t.positive as usize, t.negative as usize);
        let (d_pos, st_pos) = self.dist_sq_with_state(u, i);
        let (d_neg, st_neg) = self.dist_sq_with_state(u, j);
        if self.cfg.margin + d_pos - d_neg <= 0.0 {
            return false;
        }
        up.fill(0.0);
        ui.fill(0.0);
        uj.fill(0.0);
        // Descent gradients of both hinge pairs against the frozen
        // parameters; the user row takes both pairs' contributions…
        self.accumulate_row_grads(u, i, &st_pos, 1.0, up, ui);
        self.accumulate_row_grads(u, j, &st_neg, -1.0, up, uj);
        // …and the engine applies `row += lr · upd`, so negate into the
        // ascent convention.
        for d in 0..self.cfg.dim {
            up[d] = -up[d];
            ui[d] = -ui[d];
            uj[d] = -uj[d];
        }
        true
    }

    fn side_update(&mut self, t: Triplet) {
        let (u, i, j) = (t.user as usize, t.positive as usize, t.negative as usize);
        // Recomputed against the current memory/keys (which cascade within
        // a batch) and the frozen rows — same recompute-in-batch-order
        // pattern as SML's margins; the hinge may therefore gate slightly
        // differently from `triplet_update`'s frozen-state decision. The
        // forward/backward duplication with `triplet_update` cannot be
        // cached away: in the sharded engine that hook runs shard-ordered
        // on pool workers against `&self`, while this one runs later, in
        // batch order, against memory/keys other triplets may already have
        // moved — there is no per-triplet channel that preserves both the
        // determinism contract and the cascade semantics.
        let (d_pos, st_pos) = self.dist_sq_with_state(u, i);
        let (d_neg, st_neg) = self.dist_sq_with_state(u, j);
        if self.cfg.margin + d_pos - d_neg <= 0.0 {
            return;
        }
        self.apply_side_grad(u, i, &st_pos, 1.0);
        self.apply_side_grad(u, j, &st_neg, -1.0);
    }

    fn apply_user(&mut self, u: usize, lr: f32, upd: &[f32]) {
        let row = self.user.row_mut(u);
        ops::axpy(lr, upd, row);
        ops::clip_to_unit_ball(row);
    }

    fn apply_item(&mut self, v: usize, lr: f32, upd: &[f32]) {
        let row = self.item.row_mut(v);
        ops::axpy(lr, upd, row);
        ops::clip_to_unit_ball(row);
    }
}

impl ImplicitRecommender for Lrml {
    fn fit(&mut self, data: &Dataset) {
        let cfg = self.cfg.clone();
        fit_triplets(self, data, &cfg);
    }

    fn name(&self) -> &'static str {
        "LRML"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            Lrml::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn per_triplet_engine_mode_also_learns() {
        // LRML rides the shared engine now; the reference per-sample
        // scheduling must train too.
        let data = tiny_dataset();
        let cfg = BaselineConfig {
            batch_mode: mars_optim::BatchMode::PerTriplet,
            ..BaselineConfig::quick(16)
        };
        improves_over_untrained(
            || Lrml::new(cfg.clone(), data.num_users(), data.num_items()),
            &data,
        );
    }

    #[test]
    fn sharded_training_is_deterministic() {
        let data = tiny_dataset();
        let cfg = BaselineConfig {
            threads: 3,
            epochs: 2,
            ..BaselineConfig::quick(8)
        };
        let run = || {
            let mut m = Lrml::new(cfg.clone(), data.num_users(), data.num_items());
            m.fit(&data);
            let mut scores = Vec::new();
            for u in 0..data.num_users() as u32 {
                for v in 0..data.num_items() as u32 {
                    scores.push(m.score(u, v).to_bits());
                }
            }
            scores
        };
        assert_eq!(run(), run(), "sharded LRML training not deterministic");
    }

    #[test]
    fn attention_is_distribution() {
        let data = tiny_dataset();
        let m = Lrml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let st = m.relation(0, 0);
        let sum: f32 = st.attention.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(st.relation.len(), 8);
    }

    #[test]
    fn relation_is_convex_combination_of_memory() {
        // ‖r‖ ≤ max_i ‖M_i‖ because the attention is a distribution.
        let data = tiny_dataset();
        let m = Lrml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let st = m.relation(1, 2);
        let max_mem = (0..MEMORY_SLOTS)
            .map(|i| ops::norm(m.memory.row(i)))
            .fold(0.0f32, f32::max);
        assert!(ops::norm(&st.relation) <= max_mem + 1e-5);
    }

    #[test]
    fn hinge_step_reduces_pair_gap() {
        let data = tiny_dataset();
        let mut m = Lrml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let (u, i, j) = (0usize, 0usize, 40usize);
        let gap_before = {
            let (p, _) = m.dist_sq_with_state(u, i);
            let (n, _) = m.dist_sq_with_state(u, j);
            p - n
        };
        for _ in 0..30 {
            let (p, sp) = m.dist_sq_with_state(u, i);
            let (n, sn) = m.dist_sq_with_state(u, j);
            if m.cfg.margin + p - n <= 0.0 {
                break;
            }
            m.apply_pair_grad(u, i, &sp, 1.0);
            m.apply_pair_grad(u, j, &sn, -1.0);
        }
        let gap_after = {
            let (p, _) = m.dist_sq_with_state(u, i);
            let (n, _) = m.dist_sq_with_state(u, j);
            p - n
        };
        assert!(gap_after < gap_before, "{gap_before} → {gap_after}");
    }
}
