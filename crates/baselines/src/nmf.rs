//! Non-negative matrix factorization (Lee & Seung, Nature 1999).
//!
//! Factorizes the binary implicit matrix `X ≈ W Hᵀ` with non-negative
//! factors via the classic multiplicative updates for the Frobenius
//! objective:
//!
//! ```text
//! W ← W ⊙ (X H) ⊘ (W HᵀH + ε)
//! H ← H ⊙ (Xᵀ W) ⊘ (H WᵀW + ε)
//! ```
//!
//! The numerators only touch observed entries (X is sparse), so an update
//! costs `O(nnz·d + (N+M)·d²)`. The paper uses NMF both as a baseline and to
//! initialize facet structure; the factor count is set to the embedding
//! dimension of the comparison.

use crate::common::{BaselineConfig, ImplicitRecommender};
use mars_core::embedding::EmbeddingTable;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::rng::seeds;
use mars_tensor::{ops, Matrix};
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::{Rng, SeedableRng};

const EPS: f32 = 1e-9;

/// NMF with multiplicative updates.
pub struct Nmf {
    cfg: BaselineConfig,
    w: EmbeddingTable,
    h: EmbeddingTable,
}

impl Nmf {
    /// Creates a model with non-negative random factors.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(seeds::model_init(cfg.seed)); // audit:allow(determinism) — seeded: pure function of the seed
        let mut w = EmbeddingTable::zeros(num_users, cfg.dim);
        let mut h = EmbeddingTable::zeros(num_items, cfg.dim);
        for v in w.as_mut_slice().iter_mut().chain(h.as_mut_slice()) {
            *v = rng.gen_range(0.01..1.0);
        }
        Self { cfg, w, h }
    }

    /// Reconstruction error `‖X − WHᵀ‖²_F` over observed + a same-sized
    /// sample of unobserved entries would be expensive; for tests we expose
    /// the exact Frobenius error on small data.
    pub fn frobenius_error(&self, data: &Dataset) -> f64 {
        let mut err = 0.0f64;
        for u in 0..data.num_users() {
            for v in 0..data.num_items() {
                let x = if data.train.contains(u as UserId, v as ItemId) {
                    1.0
                } else {
                    0.0
                };
                let p = ops::dot(self.w.row(u), self.h.row(v));
                err += ((x - p) as f64).powi(2);
            }
        }
        err
    }

    /// All factors non-negative (the defining invariant).
    pub fn is_nonnegative(&self) -> bool {
        self.w.as_slice().iter().all(|&v| v >= 0.0) && self.h.as_slice().iter().all(|&v| v >= 0.0)
    }
}

impl Scorer for Nmf {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        ops::dot(self.w.row(user as usize), self.h.row(item as usize))
    }
}

impl ImplicitRecommender for Nmf {
    fn fit(&mut self, data: &Dataset) {
        let x = &data.train;
        let n = data.num_users();
        let m = data.num_items();
        let d = self.cfg.dim;
        if x.num_interactions() == 0 {
            return;
        }
        for _ in 0..self.cfg.epochs {
            // ---- W update -------------------------------------------------
            // Gram = HᵀH (d×d).
            let mut gram = Matrix::zeros(d, d);
            for v in 0..m {
                gram.ger(1.0, self.h.row(v), self.h.row(v));
            }
            let mut numer = vec![0.0f32; d];
            let mut denom = vec![0.0f32; d];
            for u in 0..n {
                numer.fill(0.0);
                for &v in x.items_of(u as UserId) {
                    ops::axpy(1.0, self.h.row(v as usize), &mut numer);
                }
                gram.matvec(self.w.row(u), &mut denom);
                let row = self.w.row_mut(u);
                for i in 0..d {
                    row[i] *= numer[i] / (denom[i] + EPS);
                }
            }
            // ---- H update -------------------------------------------------
            let mut gram = Matrix::zeros(d, d);
            for u in 0..n {
                gram.ger(1.0, self.w.row(u), self.w.row(u));
            }
            for v in 0..m {
                numer.fill(0.0);
                for &u in x.users_of(v as ItemId) {
                    ops::axpy(1.0, self.w.row(u as usize), &mut numer);
                }
                gram.matvec(self.h.row(v), &mut denom);
                let row = self.h.row_mut(v);
                for i in 0..d {
                    row[i] *= numer[i] / (denom[i] + EPS);
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "NMF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            Nmf::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn multiplicative_updates_monotonically_decrease_error() {
        let data = tiny_dataset();
        let mut m = Nmf::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let mut prev = m.frobenius_error(&data);
        for _ in 0..5 {
            let mut one = BaselineConfig::quick(8);
            one.epochs = 1;
            // Re-use fit for a single epoch by temporarily swapping config.
            let saved = std::mem::replace(&mut m.cfg, one);
            m.fit(&data);
            m.cfg = saved;
            let err = m.frobenius_error(&data);
            assert!(
                err <= prev * (1.0 + 1e-6),
                "error increased: {prev} → {err}"
            );
            prev = err;
        }
    }

    #[test]
    fn factors_stay_nonnegative() {
        let data = tiny_dataset();
        let mut m = Nmf::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.is_nonnegative());
    }
}
