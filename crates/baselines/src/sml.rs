//! SML — Symmetric Metric Learning with adaptive margins
//! (Li et al., AAAI 2020).
//!
//! Two symmetric hinge losses — the usual user-centric one and an
//! *item-centric* one that pushes the negative item away from the positive
//! item — with **learnable** margins per user and per item:
//!
//! ```text
//! L =  Σ [d(u,i)² + m_u − d(u,j)²]₊          (user-centric)
//!    + λ Σ [d(u,i)² + m_i − d(i,j)²]₊        (item-centric)
//!    − γ (mean(m_u) + mean(m_i))             (margin reward)
//! ```
//!
//! Margins are clamped to `[0.05, 1]`; the reward term keeps them from
//! collapsing to the floor. Embeddings live in the unit ball.
//!
//! Runs on the shared batch/accumulate triplet engine
//! (`common::fit_triplets`) like BPR / CML / TransCF: the embedding-row
//! updates ride [`TripletUpdate::triplet_update`] (both hinges evaluated
//! against the frozen parameters, their row contributions summed), and the
//! learnable margins ride the [`TripletUpdate::side_update`] hook, which
//! the engine calls once per triplet in batch order. SML thereby inherits
//! the worker pool and the vectorized kernels.

use crate::common::{fit_triplets, BaselineConfig, ImplicitRecommender, TripletUpdate};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::Triplet;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::rng::seeds;
use mars_tensor::ops;
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::SeedableRng;

/// Weight of the item-centric loss.
const LAMBDA_ITEM: f32 = 0.5;
/// Margin reward coefficient γ.
const GAMMA_MARGIN: f32 = 0.03;
/// Margin clamp range.
const MARGIN_MIN: f32 = 0.05;
const MARGIN_MAX: f32 = 1.0;

/// Symmetric metric learning.
pub struct Sml {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
    user_margin: Vec<f32>,
    item_margin: Vec<f32>,
}

impl Sml {
    /// Creates an (untrained) model with margins at the config value.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(seeds::model_init(cfg.seed)); // audit:allow(determinism) — seeded: pure function of the seed
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut user = EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale);
        let mut item = EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale);
        user.clip_rows_to_unit_ball();
        item.clip_rows_to_unit_ball();
        let m0 = cfg.margin.clamp(MARGIN_MIN, MARGIN_MAX);
        Self {
            user_margin: vec![m0; num_users],
            item_margin: vec![m0; num_items],
            cfg,
            user,
            item,
        }
    }

    /// Current margins (tests / diagnostics).
    pub fn margins(&self) -> (&[f32], &[f32]) {
        (&self.user_margin, &self.item_margin)
    }

    /// The two hinge activity flags of a triplet against the current
    /// parameters (user-centric, item-centric).
    #[inline]
    fn activities(&self, t: Triplet) -> (bool, bool) {
        let u = self.user.row(t.user as usize);
        let i = self.item.row(t.positive as usize);
        let j = self.item.row(t.negative as usize);
        let d_ui = ops::dist_sq(u, i);
        let d_uj = ops::dist_sq(u, j);
        let d_ij = ops::dist_sq(i, j);
        (
            d_ui + self.user_margin[t.user as usize] - d_uj > 0.0,
            d_ui + self.item_margin[t.positive as usize] - d_ij > 0.0,
        )
    }
}

impl Scorer for Sml {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        -ops::dist_sq(self.user.row(user as usize), self.item.row(item as usize))
    }

    fn score_block(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        crate::common::fused_score_block(
            crate::common::BlockKernel::NegDistSq,
            self.user.row(user as usize),
            self.item.as_slice(),
            self.cfg.dim,
            items,
            out,
        );
    }
}

impl TripletUpdate for Sml {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn triplet_update(&self, t: Triplet, up: &mut [f32], ui: &mut [f32], uj: &mut [f32]) -> bool {
        let (user_active, item_active) = self.activities(t);
        if !user_active && !item_active {
            return false;
        }
        let u = self.user.row(t.user as usize);
        let i = self.item.row(t.positive as usize);
        let j = self.item.row(t.negative as usize);
        // Ascent updates (the engine applies `row += lr · upd`): the
        // descent direction of each active hinge, negated. User-centric
        // (d_ui² + m_u − d_uj²): ∂/∂u = 2(j−i)·…, see the derivation in
        // the loss docs; item-centric weighted by λ.
        for d in 0..self.cfg.dim {
            let (uu, ii, jj) = (u[d], i[d], j[d]);
            let mut gu = 0.0;
            let mut gi = 0.0;
            let mut gj = 0.0;
            if user_active {
                gu -= 2.0 * (jj - ii);
                gi -= 2.0 * (ii - uu);
                gj -= 2.0 * (uu - jj);
            }
            if item_active {
                let w = LAMBDA_ITEM * 2.0;
                gi -= w * ((ii - uu) - (ii - jj));
                gu -= w * (uu - ii);
                gj -= w * (ii - jj);
            }
            up[d] = gu;
            ui[d] = gi;
            uj[d] = gj;
        }
        true
    }

    fn side_update(&mut self, t: Triplet) {
        // Hinge gradient on an active margin is +1; the reward −γ pushes
        // margins up always. Activities are recomputed against the current
        // (frozen within a batch) rows and the *current* margins, so margin
        // updates cascade across a user's repeated triplets like the
        // reference per-sample loop. The distances this recomputes match
        // `triplet_update`'s, but the flags need not: the margins may have
        // moved since — and the engine runs this hook in batch order on the
        // caller while `triplet_update` ran sharded on the pool, so there
        // is no per-triplet channel to reuse the distances through.
        let (user_active, item_active) = self.activities(t);
        let lr = self.cfg.lr;
        let mu = &mut self.user_margin[t.user as usize];
        *mu -= lr * (if user_active { 1.0 } else { 0.0 } - GAMMA_MARGIN);
        *mu = mu.clamp(MARGIN_MIN, MARGIN_MAX);
        let mi = &mut self.item_margin[t.positive as usize];
        *mi -= lr * LAMBDA_ITEM * (if item_active { 1.0 } else { 0.0 }) - lr * GAMMA_MARGIN;
        *mi = mi.clamp(MARGIN_MIN, MARGIN_MAX);
    }

    fn apply_user(&mut self, u: usize, lr: f32, upd: &[f32]) {
        let row = self.user.row_mut(u);
        ops::axpy(lr, upd, row);
        ops::clip_to_unit_ball(row);
    }

    fn apply_item(&mut self, v: usize, lr: f32, upd: &[f32]) {
        let row = self.item.row_mut(v);
        ops::axpy(lr, upd, row);
        ops::clip_to_unit_ball(row);
    }
}

impl ImplicitRecommender for Sml {
    fn fit(&mut self, data: &Dataset) {
        let cfg = self.cfg.clone();
        fit_triplets(self, data, &cfg);
    }

    fn name(&self) -> &'static str {
        "SML"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};
    use mars_optim::BatchMode;

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            Sml::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn per_triplet_engine_mode_also_learns() {
        // SML rides the shared engine now; the reference per-sample
        // scheduling must train too.
        let data = tiny_dataset();
        let cfg = BaselineConfig {
            batch_mode: BatchMode::PerTriplet,
            ..BaselineConfig::quick(16)
        };
        improves_over_untrained(
            || Sml::new(cfg.clone(), data.num_users(), data.num_items()),
            &data,
        );
    }

    #[test]
    fn sharded_training_is_deterministic_and_learns() {
        let data = tiny_dataset();
        let cfg = BaselineConfig {
            threads: 4,
            ..BaselineConfig::quick(16)
        };
        improves_over_untrained(
            || Sml::new(cfg.clone(), data.num_users(), data.num_items()),
            &data,
        );
        let run = || {
            let mut m = Sml::new(cfg.clone(), data.num_users(), data.num_items());
            m.fit(&data);
            let mut scores = Vec::new();
            for u in 0..data.num_users() as u32 {
                for v in 0..data.num_items() as u32 {
                    scores.push(m.score(u, v).to_bits());
                }
            }
            (scores, m.margins().0.to_vec(), m.margins().1.to_vec())
        };
        assert_eq!(run(), run(), "sharded SML training not deterministic");
    }

    #[test]
    fn margins_stay_in_range_and_adapt() {
        let data = tiny_dataset();
        let mut m = Sml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let before = m.margins().0.to_vec();
        m.fit(&data);
        let (user_m, item_m) = m.margins();
        assert!(user_m
            .iter()
            .all(|&v| (MARGIN_MIN..=MARGIN_MAX).contains(&v)));
        assert!(item_m
            .iter()
            .all(|&v| (MARGIN_MIN..=MARGIN_MAX).contains(&v)));
        // At least some margins moved away from the initial value.
        let moved = user_m
            .iter()
            .zip(&before)
            .filter(|(a, b)| (*a - *b).abs() > 1e-4)
            .count();
        assert!(moved > 0, "margins never adapted");
    }

    #[test]
    fn ball_constraint_holds() {
        let data = tiny_dataset();
        let mut m = Sml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.user.max_row_norm() <= 1.0 + 1e-5);
        assert!(m.item.max_row_norm() <= 1.0 + 1e-5);
    }

    #[test]
    fn score_block_is_bit_identical_to_score_many() {
        let data = tiny_dataset();
        let mut m = Sml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        let items: Vec<u32> = (0..data.num_items() as u32).rev().collect();
        let (mut many, mut block) = (Vec::new(), Vec::new());
        for u in 0..data.num_users() as u32 {
            m.score_many(u, &items, &mut many);
            m.score_block(u, &items, &mut block);
            assert_eq!(
                many.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                block.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "user {u} diverged"
            );
            // The full Scorer contract: `score` must agree bitwise too (the
            // sequential protocol scores positives through it).
            for (idx, &v) in items.iter().enumerate() {
                assert_eq!(m.score(u, v).to_bits(), block[idx].to_bits());
            }
        }
    }
}
