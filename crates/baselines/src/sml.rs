//! SML — Symmetric Metric Learning with adaptive margins
//! (Li et al., AAAI 2020).
//!
//! Two symmetric hinge losses — the usual user-centric one and an
//! *item-centric* one that pushes the negative item away from the positive
//! item — with **learnable** margins per user and per item:
//!
//! ```text
//! L =  Σ [d(u,i)² + m_u − d(u,j)²]₊          (user-centric)
//!    + λ Σ [d(u,i)² + m_i − d(i,j)²]₊        (item-centric)
//!    − γ (mean(m_u) + mean(m_i))             (margin reward)
//! ```
//!
//! Margins are clamped to `[0.05, 1]`; the reward term keeps them from
//! collapsing to the floor. Embeddings live in the unit ball.

use crate::common::{BaselineConfig, ImplicitRecommender};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::TripletBatcher;
use mars_data::dataset::Dataset;
use mars_data::sampler::{UniformNegativeSampler, UserSampler};
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_tensor::ops;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Weight of the item-centric loss.
const LAMBDA_ITEM: f32 = 0.5;
/// Margin reward coefficient γ.
const GAMMA_MARGIN: f32 = 0.03;
/// Margin clamp range.
const MARGIN_MIN: f32 = 0.05;
const MARGIN_MAX: f32 = 1.0;

/// Symmetric metric learning.
pub struct Sml {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
    user_margin: Vec<f32>,
    item_margin: Vec<f32>,
}

impl Sml {
    /// Creates an (untrained) model with margins at the config value.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut user = EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale);
        let mut item = EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale);
        user.clip_rows_to_unit_ball();
        item.clip_rows_to_unit_ball();
        let m0 = cfg.margin.clamp(MARGIN_MIN, MARGIN_MAX);
        Self {
            user_margin: vec![m0; num_users],
            item_margin: vec![m0; num_items],
            cfg,
            user,
            item,
        }
    }

    /// Current margins (tests / diagnostics).
    pub fn margins(&self) -> (&[f32], &[f32]) {
        (&self.user_margin, &self.item_margin)
    }
}

impl Scorer for Sml {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        -ops::dist_sq(self.user.row(user as usize), self.item.row(item as usize))
    }

    fn score_block(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        crate::common::fused_score_block(
            crate::common::BlockKernel::NegDistSq,
            self.user.row(user as usize),
            self.item.as_slice(),
            self.cfg.dim,
            items,
            out,
        );
    }
}

impl ImplicitRecommender for Sml {
    fn fit(&mut self, data: &Dataset) {
        let x = &data.train;
        if x.num_interactions() == 0 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut batcher = TripletBatcher::new(
            UserSampler::uniform(x),
            UniformNegativeSampler,
            self.cfg.batch_size,
        );
        let batches = batcher.batches_per_epoch(x);
        let lr = self.cfg.lr;
        let dim = self.cfg.dim;
        for _ in 0..self.cfg.epochs {
            for _ in 0..batches {
                let batch: Vec<_> = batcher.next_batch(x, &mut rng).to_vec();
                for t in batch {
                    let u = t.user as usize;
                    let i = t.positive as usize;
                    let j = t.negative as usize;
                    let d_ui = ops::dist_sq(self.user.row(u), self.item.row(i));
                    let d_uj = ops::dist_sq(self.user.row(u), self.item.row(j));
                    let d_ij = ops::dist_sq(self.item.row(i), self.item.row(j));

                    let user_active = d_ui + self.user_margin[u] - d_uj > 0.0;
                    let item_active = d_ui + self.item_margin[i] - d_ij > 0.0;

                    if user_active {
                        for d in 0..dim {
                            let uu = self.user.row(u)[d];
                            let ii = self.item.row(i)[d];
                            let jj = self.item.row(j)[d];
                            // ∂(d_ui² − d_uj²)/∂u = 2(jj − ii) etc.
                            self.user.row_mut(u)[d] -= lr * 2.0 * (jj - ii);
                            self.item.row_mut(i)[d] -= lr * 2.0 * (ii - uu);
                            self.item.row_mut(j)[d] -= lr * 2.0 * (uu - jj);
                        }
                    }
                    if item_active {
                        for d in 0..dim {
                            let uu = self.user.row(u)[d];
                            let ii = self.item.row(i)[d];
                            let jj = self.item.row(j)[d];
                            // L_i = d(u,i)² + m_i − d(i,j)²
                            // ∂/∂i = 2(i−u) − 2(i−j); ∂/∂u = 2(u−i);
                            // ∂/∂j = 2(j−i)... sign: −d(i,j)² ⇒ +2(i−j) on j? derive:
                            // ∂(−d_ij²)/∂j = −2(j−i)·... d_ij² = ‖i−j‖²,
                            // ∂/∂j = −2(i−j); with LAMBDA weight.
                            let w = lr * LAMBDA_ITEM * 2.0;
                            self.item.row_mut(i)[d] -= w * ((ii - uu) - (ii - jj));
                            self.user.row_mut(u)[d] -= w * (uu - ii);
                            self.item.row_mut(j)[d] -= w * (ii - jj);
                        }
                    }
                    // Margin updates: hinge gradient is +1 on the margin if
                    // active; the reward −γ pushes margins up always.
                    let mu = &mut self.user_margin[u];
                    *mu -= lr * (if user_active { 1.0 } else { 0.0 } - GAMMA_MARGIN);
                    *mu = mu.clamp(MARGIN_MIN, MARGIN_MAX);
                    let mi = &mut self.item_margin[i];
                    *mi -= lr * LAMBDA_ITEM * (if item_active { 1.0 } else { 0.0 })
                        - lr * GAMMA_MARGIN;
                    *mi = mi.clamp(MARGIN_MIN, MARGIN_MAX);

                    ops::clip_to_unit_ball(self.user.row_mut(u));
                    ops::clip_to_unit_ball(self.item.row_mut(i));
                    ops::clip_to_unit_ball(self.item.row_mut(j));
                }
            }
        }
    }

    fn name(&self) -> &'static str {
        "SML"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            Sml::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn margins_stay_in_range_and_adapt() {
        let data = tiny_dataset();
        let mut m = Sml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let before = m.margins().0.to_vec();
        m.fit(&data);
        let (user_m, item_m) = m.margins();
        assert!(user_m
            .iter()
            .all(|&v| (MARGIN_MIN..=MARGIN_MAX).contains(&v)));
        assert!(item_m
            .iter()
            .all(|&v| (MARGIN_MIN..=MARGIN_MAX).contains(&v)));
        // At least some margins moved away from the initial value.
        let moved = user_m
            .iter()
            .zip(&before)
            .filter(|(a, b)| (*a - *b).abs() > 1e-4)
            .count();
        assert!(moved > 0, "margins never adapted");
    }

    #[test]
    fn ball_constraint_holds() {
        let data = tiny_dataset();
        let mut m = Sml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.user.max_row_norm() <= 1.0 + 1e-5);
        assert!(m.item.max_row_norm() <= 1.0 + 1e-5);
    }

    #[test]
    fn score_block_is_bit_identical_to_score_many() {
        let data = tiny_dataset();
        let mut m = Sml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        let items: Vec<u32> = (0..data.num_items() as u32).rev().collect();
        let (mut many, mut block) = (Vec::new(), Vec::new());
        for u in 0..data.num_users() as u32 {
            m.score_many(u, &items, &mut many);
            m.score_block(u, &items, &mut block);
            assert_eq!(
                many.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                block.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "user {u} diverged"
            );
            // The full Scorer contract: `score` must agree bitwise too (the
            // sequential protocol scores positives through it).
            for (idx, &v) in items.iter().enumerate() {
                assert_eq!(m.score(u, v).to_bits(), block[idx].to_bits());
            }
        }
    }
}
