//! # mars-baselines
//!
//! From-scratch implementations of the eight baselines the paper compares
//! against (§V-A3), all exposing the same [`mars_metrics::Scorer`] interface
//! so the benchmark harness evaluates everything under one protocol:
//!
//! | Model | Family | Reference |
//! |---|---|---|
//! | [`bpr::Bpr`] | MF, pairwise log-sigmoid | Rendle et al., UAI'09 |
//! | [`nmf::Nmf`] | MF, non-negative multiplicative updates | Lee & Seung, Nature'99 |
//! | [`neumf::NeuMf`] | neural CF (GMF + MLP tower) | He et al., WWW'17 |
//! | [`cml::Cml`] | metric learning, hinge + unit ball | Hsieh et al., WWW'17 |
//! | [`metricf::MetricF`] | metric learning, distance regression | Zhang et al., 2018 |
//! | [`transcf::TransCf`] | metric learning, neighbourhood translations | Park et al., ICDM'18 |
//! | [`lrml::Lrml`] | metric learning, memory-attention relations | Tay et al., WWW'18 |
//! | [`sml::Sml`] | metric learning, symmetric + learnable margins | Li et al., AAAI'20 |
//!
//! The implementations follow the cited papers' objectives, with manual
//! gradients over the `mars-tensor` substrate (a small dense-layer module
//! in [`nn`] backs the neural models). Hyperparameters default to sensible
//! mid-range values; the harness tunes the few that matter per dataset.

// Indexed loops over parallel slices are deliberate in the numeric code
// (the math reads as subscripts); the lint is relaxed workspace-wide in
// the root Cargo.toml `[workspace.lints]` table.
//
// This crate is part of the deterministic numeric core: no unsafe
// anywhere (the vetted unsafe surface lives in mars-tensor::simd
// and mars-runtime; see `cargo run -p mars-audit -- check`).
#![forbid(unsafe_code)]

pub mod bpr;
pub mod cml;
pub mod common;
pub mod lrml;
pub mod metricf;
pub mod neumf;
pub mod nmf;
pub mod nn;
pub mod sml;
pub mod transcf;

pub use common::{fit_triplets, BaselineConfig, ImplicitRecommender, TripletUpdate};

/// Every baseline by name, for harness iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    Bpr,
    Nmf,
    NeuMf,
    Cml,
    MetricF,
    TransCf,
    Lrml,
    Sml,
}

impl BaselineKind {
    /// All baselines in the paper's Table II column order.
    pub const ALL: [BaselineKind; 8] = [
        BaselineKind::Bpr,
        BaselineKind::Nmf,
        BaselineKind::NeuMf,
        BaselineKind::Cml,
        BaselineKind::MetricF,
        BaselineKind::TransCf,
        BaselineKind::Lrml,
        BaselineKind::Sml,
    ];

    /// Display name as in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::Bpr => "BPR",
            BaselineKind::Nmf => "NMF",
            BaselineKind::NeuMf => "NeuMF",
            BaselineKind::Cml => "CML",
            BaselineKind::MetricF => "MetricF",
            BaselineKind::TransCf => "TransCF",
            BaselineKind::Lrml => "LRML",
            BaselineKind::Sml => "SML",
        }
    }
}
