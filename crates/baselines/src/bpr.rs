//! BPR-MF (Rendle et al., UAI 2009).
//!
//! Matrix factorization trained with the Bayesian personalized ranking
//! criterion: for triplets `(u, i, j)` with `i` observed and `j` not,
//! maximize `ln σ(x̂_ui − x̂_uj)` with `x̂_uv = p_u · q_v`, plus L2
//! regularization. Per-sample SGD as in the reference implementation.
//!
//! No bias terms: the MARS paper specifies "matrix factorization as the
//! prediction component" (`x̂ = p·q`), matching the DeepRec implementation
//! it cites for this baseline.

use crate::common::{BaselineConfig, ImplicitRecommender};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::TripletBatcher;
use mars_data::dataset::Dataset;
use mars_data::sampler::{UniformNegativeSampler, UserSampler};
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_tensor::{nonlin, ops};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// BPR matrix factorization.
pub struct Bpr {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
    fitted: bool,
}

impl Bpr {
    /// Creates an (untrained) model for the catalogue sizes.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        Self {
            user: EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale),
            item: EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale),
            cfg,
            fitted: false,
        }
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }
}

impl Scorer for Bpr {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        ops::dot(self.user.row(user as usize), self.item.row(item as usize))
    }
}

impl ImplicitRecommender for Bpr {
    fn fit(&mut self, data: &Dataset) {
        let x = &data.train;
        if x.num_interactions() == 0 {
            self.fitted = true;
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut batcher = TripletBatcher::new(
            UserSampler::uniform(x),
            UniformNegativeSampler,
            self.cfg.batch_size,
        );
        let batches = batcher.batches_per_epoch(x);
        let lr = self.cfg.lr;
        let reg = self.cfg.reg;
        for _ in 0..self.cfg.epochs {
            for _ in 0..batches {
                let batch: Vec<_> = batcher.next_batch(x, &mut rng).to_vec();
                for t in batch {
                    let u = t.user as usize;
                    let i = t.positive as usize;
                    let j = t.negative as usize;
                    let x_uij = self.score(t.user, t.positive) - self.score(t.user, t.negative);
                    // d/dx [−ln σ(x)] = −σ(−x)
                    let coeff = nonlin::sigmoid(-x_uij);
                    // Manual three-way update (p_u, q_i, q_j share p_u).
                    for d in 0..self.cfg.dim {
                        let pu = self.user.row(u)[d];
                        let qi = self.item.row(i)[d];
                        let qj = self.item.row(j)[d];
                        self.user.row_mut(u)[d] += lr * (coeff * (qi - qj) - reg * pu);
                        self.item.row_mut(i)[d] += lr * (coeff * pu - reg * qi);
                        self.item.row_mut(j)[d] += lr * (-coeff * pu - reg * qj);
                    }
                }
            }
        }
        self.fitted = true;
    }

    fn name(&self) -> &'static str {
        "BPR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || Bpr::new(BaselineConfig::quick(16), data.num_users(), data.num_items());
        improves_over_untrained(make, &data);
    }

    #[test]
    fn scores_are_finite() {
        let data = tiny_dataset();
        let mut m = Bpr::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.is_fitted());
        for u in 0..data.num_users() as u32 {
            for v in 0..data.num_items() as u32 {
                assert!(m.score(u, v).is_finite());
            }
        }
    }

    #[test]
    fn empty_data_is_noop() {
        let data = mars_data::Dataset::leave_one_out("e", 3, 3, &vec![vec![]; 3], vec![], 0);
        let mut m = Bpr::new(BaselineConfig::quick(4), 3, 3);
        m.fit(&data);
        assert!(m.is_fitted());
    }
}
