//! BPR-MF (Rendle et al., UAI 2009).
//!
//! Matrix factorization trained with the Bayesian personalized ranking
//! criterion: for triplets `(u, i, j)` with `i` observed and `j` not,
//! maximize `ln σ(x̂_ui − x̂_uj)` with `x̂_uv = p_u · q_v`, plus L2
//! regularization. Runs on the shared batch/accumulate triplet engine
//! (`common::fit_triplets`); the reference per-sample SGD stays selectable
//! via [`mars_optim::BatchMode::PerTriplet`].
//!
//! No bias terms: the MARS paper specifies "matrix factorization as the
//! prediction component" (`x̂ = p·q`), matching the DeepRec implementation
//! it cites for this baseline.

use crate::common::{fit_triplets, BaselineConfig, ImplicitRecommender, TripletUpdate};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::Triplet;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::rng::seeds;
use mars_tensor::{nonlin, ops};
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::SeedableRng;

/// BPR matrix factorization.
pub struct Bpr {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
    fitted: bool,
}

impl Bpr {
    /// Creates an (untrained) model for the catalogue sizes.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(seeds::model_init(cfg.seed)); // audit:allow(determinism) — seeded: pure function of the seed
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        Self {
            user: EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale),
            item: EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale),
            cfg,
            fitted: false,
        }
    }

    /// Whether `fit` has been called.
    pub fn is_fitted(&self) -> bool {
        self.fitted
    }
}

impl Scorer for Bpr {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        ops::dot(self.user.row(user as usize), self.item.row(item as usize))
    }

    fn score_block(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        crate::common::fused_score_block(
            crate::common::BlockKernel::Dot,
            self.user.row(user as usize),
            self.item.as_slice(),
            self.cfg.dim,
            items,
            out,
        );
    }
}

impl TripletUpdate for Bpr {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn triplet_update(&self, t: Triplet, up: &mut [f32], ui: &mut [f32], uj: &mut [f32]) -> bool {
        let u = self.user.row(t.user as usize);
        let qi = self.item.row(t.positive as usize);
        let qj = self.item.row(t.negative as usize);
        let x_uij = ops::dot(u, qi) - ops::dot(u, qj);
        // d/dx [−ln σ(x)] = −σ(−x)
        let coeff = nonlin::sigmoid(-x_uij);
        let reg = self.cfg.reg;
        // Ascent updates (p_u, q_i, q_j share p_u), evaluated at the frozen
        // parameters.
        for d in 0..self.cfg.dim {
            up[d] = coeff * (qi[d] - qj[d]) - reg * u[d];
            ui[d] = coeff * u[d] - reg * qi[d];
            uj[d] = -coeff * u[d] - reg * qj[d];
        }
        true
    }

    fn apply_user(&mut self, u: usize, lr: f32, upd: &[f32]) {
        ops::axpy(lr, upd, self.user.row_mut(u));
    }

    fn apply_item(&mut self, v: usize, lr: f32, upd: &[f32]) {
        ops::axpy(lr, upd, self.item.row_mut(v));
    }
}

impl ImplicitRecommender for Bpr {
    fn fit(&mut self, data: &Dataset) {
        let cfg = self.cfg.clone();
        fit_triplets(self, data, &cfg);
        self.fitted = true;
    }

    fn name(&self) -> &'static str {
        "BPR"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            Bpr::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn scores_are_finite() {
        let data = tiny_dataset();
        let mut m = Bpr::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.is_fitted());
        for u in 0..data.num_users() as u32 {
            for v in 0..data.num_items() as u32 {
                assert!(m.score(u, v).is_finite());
            }
        }
    }

    #[test]
    fn empty_data_is_noop() {
        let data = mars_data::Dataset::leave_one_out("e", 3, 3, &vec![vec![]; 3], vec![], 0);
        let mut m = Bpr::new(BaselineConfig::quick(4), 3, 3);
        m.fit(&data);
        assert!(m.is_fitted());
    }

    #[test]
    fn score_block_is_bit_identical_to_score_many() {
        let data = tiny_dataset();
        let mut m = Bpr::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        let items: Vec<u32> = (0..data.num_items() as u32).rev().collect();
        let (mut many, mut block) = (Vec::new(), Vec::new());
        for u in 0..data.num_users() as u32 {
            m.score_many(u, &items, &mut many);
            m.score_block(u, &items, &mut block);
            assert_eq!(
                many.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                block.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "user {u} diverged"
            );
            // The full Scorer contract: `score` must agree bitwise too (the
            // sequential protocol scores positives through it).
            for (idx, &v) in items.iter().enumerate() {
                assert_eq!(m.score(u, v).to_bits(), block[idx].to_bits());
            }
        }
    }
}
