//! TransCF — Collaborative Translational Metric Learning
//! (Park et al., ICDM 2018).
//!
//! Borrowing the translation idea from knowledge-graph embedding: instead
//! of pulling `u` directly onto `v`, TransCF learns a *relation vector*
//! `r_uv` built from neighbourhood information and scores
//! `−‖u + r_uv − v‖²`. Following the original construction,
//!
//! ```text
//! r_uv = n_u^I ⊙ n_v^U
//! n_u^I = mean of embeddings of items u interacted with
//! n_v^U = mean of embeddings of users who interacted with v
//! ```
//!
//! trained with the hinge `[m + d(u,i)² − d(u,j)²]₊` and unit-ball
//! constraints. The neighbourhood means are recomputed at the start of each
//! epoch and treated as constants within it — the standard "lazy
//! neighbourhood" approximation that keeps an epoch `O(nnz·d)`; gradients
//! flow to `u`, `i`, `j` directly and to the neighbourhood *sources*
//! through the elementwise product.
//!
//! Runs on the shared batch/accumulate triplet engine
//! (`common::fit_triplets`) like BPR and CML: the per-epoch neighbourhood
//! refresh plugs into [`TripletUpdate::begin_epoch`], and within an epoch
//! the caches are frozen, so the per-triplet updates factor cleanly into
//! the engine's frozen-parameter accumulate phase.

use crate::common::{fit_triplets, BaselineConfig, ImplicitRecommender, TripletUpdate};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::Triplet;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::rng::seeds;
use mars_tensor::ops;
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::SeedableRng;

/// TransCF with lazy neighbourhood caches.
pub struct TransCf {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
    /// Cached `n_u^I` per user (refreshed each epoch).
    user_nbr: EmbeddingTable,
    /// Cached `n_v^U` per item.
    item_nbr: EmbeddingTable,
}

impl TransCf {
    /// Creates an (untrained) model.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(seeds::model_init(cfg.seed)); // audit:allow(determinism) — seeded: pure function of the seed
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut user = EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale);
        let mut item = EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale);
        user.clip_rows_to_unit_ball();
        item.clip_rows_to_unit_ball();
        let user_nbr = EmbeddingTable::zeros(num_users, cfg.dim);
        let item_nbr = EmbeddingTable::zeros(num_items, cfg.dim);
        Self {
            cfg,
            user,
            item,
            user_nbr,
            item_nbr,
        }
    }

    /// Refreshes both neighbourhood caches from the current embeddings.
    fn refresh_neighbourhoods(&mut self, data: &Dataset) {
        let x = &data.train;
        for u in 0..x.num_users() {
            let row = self.user_nbr.row_mut(u);
            row.fill(0.0);
            let items = x.items_of(u as UserId);
            if items.is_empty() {
                continue;
            }
            for &v in items {
                ops::axpy(1.0, self.item.row(v as usize), row);
            }
            ops::scale(row, 1.0 / items.len() as f32);
        }
        for v in 0..x.num_items() {
            let row = self.item_nbr.row_mut(v);
            row.fill(0.0);
            let users = x.users_of(v as ItemId);
            if users.is_empty() {
                continue;
            }
            for &u in users {
                ops::axpy(1.0, self.user.row(u as usize), row);
            }
            ops::scale(row, 1.0 / users.len() as f32);
        }
    }

    /// Squared translated distance `‖u + r_uv − v‖²`.
    fn translated_dist_sq(&self, u: usize, v: usize) -> f32 {
        let uu = self.user.row(u);
        let vv = self.item.row(v);
        let nu = self.user_nbr.row(u);
        let nv = self.item_nbr.row(v);
        let mut s = 0.0;
        for d in 0..self.cfg.dim {
            let r = nu[d] * nv[d];
            let diff = uu[d] + r - vv[d];
            s += diff * diff;
        }
        s
    }
}

impl TripletUpdate for TransCf {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn begin_epoch(&mut self, data: &Dataset) {
        // Lazy-neighbourhood approximation: caches are rebuilt once per
        // epoch and frozen within it.
        self.refresh_neighbourhoods(data);
    }

    fn triplet_update(&self, t: Triplet, up: &mut [f32], ui: &mut [f32], uj: &mut [f32]) -> bool {
        let u = t.user as usize;
        let i = t.positive as usize;
        let j = t.negative as usize;
        let d_pos = self.translated_dist_sq(u, i);
        let d_neg = self.translated_dist_sq(u, j);
        if self.cfg.margin + d_pos - d_neg <= 0.0 {
            return false; // hinge inactive
        }
        let uu = self.user.row(u);
        let ii = self.item.row(i);
        let jj = self.item.row(j);
        let nu = self.user_nbr.row(u);
        let ni = self.item_nbr.row(i);
        let nj = self.item_nbr.row(j);
        for d in 0..self.cfg.dim {
            // diff_p = u + nu·ni − i ; diff_n = u + nu·nj − j
            let diff_p = uu[d] + nu[d] * ni[d] - ii[d];
            let diff_n = uu[d] + nu[d] * nj[d] - jj[d];
            // Ascent updates (−gradient of the hinge), applied as
            // `row += lr · upd`: ∂/∂u (d_pos² − d_neg²) = 2(diff_p − diff_n).
            up[d] = -2.0 * (diff_p - diff_n);
            ui[d] = 2.0 * diff_p;
            uj[d] = -2.0 * diff_n;
        }
        true
    }

    fn apply_user(&mut self, u: usize, lr: f32, upd: &[f32]) {
        let row = self.user.row_mut(u);
        ops::axpy(lr, upd, row);
        ops::clip_to_unit_ball(row);
    }

    fn apply_item(&mut self, v: usize, lr: f32, upd: &[f32]) {
        let row = self.item.row_mut(v);
        ops::axpy(lr, upd, row);
        ops::clip_to_unit_ball(row);
    }
}

impl Scorer for TransCf {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        -self.translated_dist_sq(user as usize, item as usize)
    }
}

impl ImplicitRecommender for TransCf {
    fn fit(&mut self, data: &Dataset) {
        let cfg = self.cfg.clone();
        fit_triplets(self, data, &cfg);
        // Final refresh so scoring uses neighbourhoods consistent with the
        // final embeddings (also covers the empty-train early return).
        self.refresh_neighbourhoods(data);
    }

    fn name(&self) -> &'static str {
        "TransCF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{self, improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            TransCf::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn neighbourhoods_are_means() {
        let data = tiny_dataset();
        let mut m = TransCf::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.refresh_neighbourhoods(&data);
        // Pick a user with items and verify the cache by hand.
        let u = (0..data.num_users() as u32)
            .find(|&u| !data.train.items_of(u).is_empty())
            .unwrap();
        let items = data.train.items_of(u);
        let mut expect = vec![0.0; 8];
        for &v in items {
            ops::axpy(
                1.0 / items.len() as f32,
                m.item.row(v as usize),
                &mut expect,
            );
        }
        for (a, b) in m.user_nbr.row(u as usize).iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn cold_entities_have_zero_translation() {
        // A user with no interactions gets n_u = 0 ⇒ r_uv = 0 ⇒ the score
        // degrades gracefully to plain CML distance.
        let data =
            mars_data::Dataset::leave_one_out("cold", 2, 3, &[vec![0, 1, 2], vec![]], vec![], 0);
        let mut m = TransCf::new(BaselineConfig::quick(4), 2, 3);
        m.refresh_neighbourhoods(&data);
        assert!(m.user_nbr.row(1).iter().all(|&v| v == 0.0));
        let plain = -ops::dist_sq(m.user.row(1), m.item.row(2));
        assert!((m.score(1, 2) - plain).abs() < 1e-6);
    }

    #[test]
    fn ball_constraint_holds() {
        let data = tiny_dataset();
        let mut m = TransCf::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.user.max_row_norm() <= 1.0 + 1e-5);
        assert!(m.item.max_row_norm() <= 1.0 + 1e-5);
    }

    #[test]
    fn both_engine_modes_learn_and_are_deterministic() {
        // TransCF rides the shared triplet engine: the reference per-triplet
        // path and the batched path must both train a working model, and
        // each must reproduce exactly for a fixed seed and thread count.
        use mars_optim::BatchMode;
        let data = tiny_dataset();
        for (mode, threads) in [
            (BatchMode::PerTriplet, 1usize),
            (BatchMode::Batched, 1),
            (BatchMode::Batched, 3),
        ] {
            let cfg = BaselineConfig {
                batch_mode: mode,
                threads,
                ..BaselineConfig::quick(16)
            };
            tests_support::improves_over_untrained(
                || TransCf::new(cfg.clone(), data.num_users(), data.num_items()),
                &data,
            );
            let run = || {
                let mut m = TransCf::new(cfg.clone(), data.num_users(), data.num_items());
                m.fit(&data);
                (0..data.num_users() as u32)
                    .map(|u| m.score(u, 0))
                    .collect::<Vec<f32>>()
            };
            assert_eq!(
                run(),
                run(),
                "mode {mode:?} threads {threads} not deterministic"
            );
        }
    }
}
