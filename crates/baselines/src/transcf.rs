//! TransCF — Collaborative Translational Metric Learning
//! (Park et al., ICDM 2018).
//!
//! Borrowing the translation idea from knowledge-graph embedding: instead
//! of pulling `u` directly onto `v`, TransCF learns a *relation vector*
//! `r_uv` built from neighbourhood information and scores
//! `−‖u + r_uv − v‖²`. Following the original construction,
//!
//! ```text
//! r_uv = n_u^I ⊙ n_v^U
//! n_u^I = mean of embeddings of items u interacted with
//! n_v^U = mean of embeddings of users who interacted with v
//! ```
//!
//! trained with the hinge `[m + d(u,i)² − d(u,j)²]₊` and unit-ball
//! constraints. The neighbourhood means are recomputed at the start of each
//! epoch and treated as constants within it — the standard "lazy
//! neighbourhood" approximation that keeps an epoch `O(nnz·d)`; gradients
//! flow to `u`, `i`, `j` directly and to the neighbourhood *sources*
//! through the elementwise product.

use crate::common::{BaselineConfig, ImplicitRecommender};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::TripletBatcher;
use mars_data::dataset::Dataset;
use mars_data::sampler::{UniformNegativeSampler, UserSampler};
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_tensor::ops;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// TransCF with lazy neighbourhood caches.
pub struct TransCf {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
    /// Cached `n_u^I` per user (refreshed each epoch).
    user_nbr: EmbeddingTable,
    /// Cached `n_v^U` per item.
    item_nbr: EmbeddingTable,
}

impl TransCf {
    /// Creates an (untrained) model.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut user = EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale);
        let mut item = EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale);
        user.clip_rows_to_unit_ball();
        item.clip_rows_to_unit_ball();
        let user_nbr = EmbeddingTable::zeros(num_users, cfg.dim);
        let item_nbr = EmbeddingTable::zeros(num_items, cfg.dim);
        Self {
            cfg,
            user,
            item,
            user_nbr,
            item_nbr,
        }
    }

    /// Refreshes both neighbourhood caches from the current embeddings.
    fn refresh_neighbourhoods(&mut self, data: &Dataset) {
        let x = &data.train;
        for u in 0..x.num_users() {
            let row = self.user_nbr.row_mut(u);
            row.fill(0.0);
            let items = x.items_of(u as UserId);
            if items.is_empty() {
                continue;
            }
            for &v in items {
                ops::axpy(1.0, self.item.row(v as usize), row);
            }
            ops::scale(row, 1.0 / items.len() as f32);
        }
        for v in 0..x.num_items() {
            let row = self.item_nbr.row_mut(v);
            row.fill(0.0);
            let users = x.users_of(v as ItemId);
            if users.is_empty() {
                continue;
            }
            for &u in users {
                ops::axpy(1.0, self.user.row(u as usize), row);
            }
            ops::scale(row, 1.0 / users.len() as f32);
        }
    }

    /// Squared translated distance `‖u + r_uv − v‖²`.
    fn translated_dist_sq(&self, u: usize, v: usize) -> f32 {
        let uu = self.user.row(u);
        let vv = self.item.row(v);
        let nu = self.user_nbr.row(u);
        let nv = self.item_nbr.row(v);
        let mut s = 0.0;
        for d in 0..self.cfg.dim {
            let r = nu[d] * nv[d];
            let diff = uu[d] + r - vv[d];
            s += diff * diff;
        }
        s
    }

    /// Hinge step on a triplet: descend `[m + d(u,i)² − d(u,j)²]₊`.
    fn step_triplet(&mut self, u: usize, i: usize, j: usize) {
        let d_pos = self.translated_dist_sq(u, i);
        let d_neg = self.translated_dist_sq(u, j);
        if self.cfg.margin + d_pos - d_neg <= 0.0 {
            return;
        }
        let lr = self.cfg.lr;
        let dim = self.cfg.dim;
        for d in 0..dim {
            let uu = self.user.row(u)[d];
            let ii = self.item.row(i)[d];
            let jj = self.item.row(j)[d];
            let nu = self.user_nbr.row(u)[d];
            let ni = self.item_nbr.row(i)[d];
            let nj = self.item_nbr.row(j)[d];
            // diff_p = u + nu·ni − i ; diff_n = u + nu·nj − j
            let diff_p = uu + nu * ni - ii;
            let diff_n = uu + nu * nj - jj;
            // ∂/∂u (d_pos² − d_neg²) = 2(diff_p − diff_n)
            self.user.row_mut(u)[d] -= lr * 2.0 * (diff_p - diff_n);
            self.item.row_mut(i)[d] -= lr * 2.0 * (-diff_p);
            self.item.row_mut(j)[d] -= lr * 2.0 * diff_n;
        }
        ops::clip_to_unit_ball(self.user.row_mut(u));
        ops::clip_to_unit_ball(self.item.row_mut(i));
        ops::clip_to_unit_ball(self.item.row_mut(j));
    }
}

impl Scorer for TransCf {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        -self.translated_dist_sq(user as usize, item as usize)
    }
}

impl ImplicitRecommender for TransCf {
    fn fit(&mut self, data: &Dataset) {
        let x = &data.train;
        if x.num_interactions() == 0 {
            self.refresh_neighbourhoods(data);
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed.wrapping_add(1));
        let mut batcher = TripletBatcher::new(
            UserSampler::uniform(x),
            UniformNegativeSampler,
            self.cfg.batch_size,
        );
        let batches = batcher.batches_per_epoch(x);
        for _ in 0..self.cfg.epochs {
            self.refresh_neighbourhoods(data);
            for _ in 0..batches {
                let batch: Vec<_> = batcher.next_batch(x, &mut rng).to_vec();
                for t in batch {
                    self.step_triplet(t.user as usize, t.positive as usize, t.negative as usize);
                }
            }
        }
        // Final refresh so scoring uses neighbourhoods consistent with the
        // final embeddings.
        self.refresh_neighbourhoods(data);
    }

    fn name(&self) -> &'static str {
        "TransCF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            TransCf::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn neighbourhoods_are_means() {
        let data = tiny_dataset();
        let mut m = TransCf::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.refresh_neighbourhoods(&data);
        // Pick a user with items and verify the cache by hand.
        let u = (0..data.num_users() as u32)
            .find(|&u| !data.train.items_of(u).is_empty())
            .unwrap();
        let items = data.train.items_of(u);
        let mut expect = vec![0.0; 8];
        for &v in items {
            ops::axpy(
                1.0 / items.len() as f32,
                m.item.row(v as usize),
                &mut expect,
            );
        }
        for (a, b) in m.user_nbr.row(u as usize).iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn cold_entities_have_zero_translation() {
        // A user with no interactions gets n_u = 0 ⇒ r_uv = 0 ⇒ the score
        // degrades gracefully to plain CML distance.
        let data =
            mars_data::Dataset::leave_one_out("cold", 2, 3, &[vec![0, 1, 2], vec![]], vec![], 0);
        let mut m = TransCf::new(BaselineConfig::quick(4), 2, 3);
        m.refresh_neighbourhoods(&data);
        assert!(m.user_nbr.row(1).iter().all(|&v| v == 0.0));
        let plain = -ops::dist_sq(m.user.row(1), m.item.row(2));
        assert!((m.score(1, 2) - plain).abs() < 1e-6);
    }

    #[test]
    fn ball_constraint_holds() {
        let data = tiny_dataset();
        let mut m = TransCf::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.user.max_row_norm() <= 1.0 + 1e-5);
        assert!(m.item.max_row_norm() <= 1.0 + 1e-5);
    }
}
