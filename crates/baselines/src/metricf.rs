//! Metric Factorization (Zhang et al., 2018).
//!
//! Converts implicit feedback into target *distances* and regresses the
//! embedding distances onto them pointwise — "only the pulling operation,
//! in contrast to CML" as the MARS paper summarizes it, plus weak pushing
//! via sampled negatives with a large target distance:
//!
//! ```text
//! L = Σ_{(u,v) observed} (‖u−v‖ − 0)²  +  w · Σ_{(u,j) sampled} (‖u−j‖ − d_max)²
//! ```
//!
//! with embeddings kept in the unit ball (`d_max = 2` is the ball
//! diameter). Per-sample SGD; `negatives_per_positive` sampled negatives
//! per observed pair. Runs on the shared pointwise engine
//! ([`fit_pointwise`]): the counter-keyed sampling pipeline draws each
//! slot's positive and negatives (pool-parallel pre-draw or prefetched),
//! and the engine feeds them to [`PointwiseUpdate::pointwise_step`] in the
//! reference per-sample order.

use crate::common::{fit_pointwise, BaselineConfig, ImplicitRecommender, PointwiseUpdate};
use mars_core::embedding::EmbeddingTable;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::rng::seeds;
use mars_tensor::ops;
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::SeedableRng;

/// Weight on the negative (pushing) term relative to the positive term.
const NEGATIVE_WEIGHT: f32 = 0.25;
/// Target distance for negatives: the unit-ball diameter.
const D_MAX: f32 = 2.0;

/// Metric factorization.
pub struct MetricF {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
}

impl MetricF {
    /// Creates an (untrained) model.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(seeds::model_init(cfg.seed)); // audit:allow(determinism) — seeded: pure function of the seed
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut user = EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale);
        let mut item = EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale);
        user.clip_rows_to_unit_ball();
        item.clip_rows_to_unit_ball();
        Self { cfg, user, item }
    }

    /// One SGD step on the squared distance-regression residual for the
    /// pair `(u, v)` with target distance `target` and weight `w`.
    fn step_pair(&mut self, u: usize, v: usize, target: f32, w: f32) {
        let dist = ops::dist(self.user.row(u), self.item.row(v)).max(1e-8);
        // L = w (dist − target)² ⇒ ∂L/∂u = 2w (dist − target)/dist · (u − v)
        let coeff = 2.0 * w * (dist - target) / dist * self.cfg.lr;
        for d in 0..self.cfg.dim {
            let uu = self.user.row(u)[d];
            let vv = self.item.row(v)[d];
            self.user.row_mut(u)[d] -= coeff * (uu - vv);
            self.item.row_mut(v)[d] -= coeff * (vv - uu);
        }
        ops::clip_to_unit_ball(self.user.row_mut(u));
        ops::clip_to_unit_ball(self.item.row_mut(v));
    }
}

impl Scorer for MetricF {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        -ops::dist_sq(self.user.row(user as usize), self.item.row(item as usize))
    }
}

impl PointwiseUpdate for MetricF {
    fn pointwise_step(&mut self, user: usize, item: usize, label: f32) {
        if label > 0.5 {
            // Observed pair: regress the distance onto 0.
            self.step_pair(user, item, 0.0, 1.0);
        } else {
            // Sampled negative: push towards the ball diameter, weakly.
            self.step_pair(user, item, D_MAX, NEGATIVE_WEIGHT);
        }
    }
}

impl ImplicitRecommender for MetricF {
    fn fit(&mut self, data: &Dataset) {
        let cfg = self.cfg.clone();
        fit_pointwise(self, data, &cfg);
    }

    fn name(&self) -> &'static str {
        "MetricF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            MetricF::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn training_widens_positive_negative_distance_gap() {
        // The absolute positive distance can *grow* during training (the
        // d_max-targeted negatives inflate the whole embedding towards the
        // ball boundary); the regression objective's real promise is the
        // relative one: positives end up much closer than negatives.
        let data = tiny_dataset();
        let mut m = MetricF::new(
            BaselineConfig::quick(16),
            data.num_users(),
            data.num_items(),
        );
        let gap = |m: &MetricF| -> f64 {
            let mut pos = 0.0;
            let mut neg = 0.0;
            let mut n = 0;
            for u in 0..data.num_users() as u32 {
                let items = data.train.items_of(u);
                if items.is_empty() {
                    continue;
                }
                let q = (0..data.num_items() as u32)
                    .find(|&v| !data.train.contains(u, v))
                    .unwrap();
                pos += (-m.score(u, items[0])).sqrt() as f64;
                neg += (-m.score(u, q)).sqrt() as f64;
                n += 1;
            }
            (neg - pos) / n as f64
        };
        let before = gap(&m);
        m.fit(&data);
        let after = gap(&m);
        assert!(
            after > before && after > 0.0,
            "distance gap should widen: {before} → {after}"
        );
    }

    #[test]
    fn pointwise_engine_is_deterministic_and_prefetch_invariant() {
        let data = tiny_dataset();
        let run = |prefetch: bool| {
            let cfg = BaselineConfig {
                prefetch,
                epochs: 2,
                ..BaselineConfig::quick(8)
            };
            let mut m = MetricF::new(cfg, data.num_users(), data.num_items());
            m.fit(&data);
            let mut scores = Vec::new();
            for u in 0..data.num_users() as u32 {
                for v in 0..data.num_items() as u32 {
                    scores.push(m.score(u, v).to_bits());
                }
            }
            scores
        };
        assert_eq!(run(true), run(true), "pointwise engine not deterministic");
        assert_eq!(run(true), run(false), "prefetch changed pointwise training");
    }

    #[test]
    fn ball_constraint_holds() {
        let data = tiny_dataset();
        let mut m = MetricF::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.user.max_row_norm() <= 1.0 + 1e-5);
        assert!(m.item.max_row_norm() <= 1.0 + 1e-5);
    }
}
