//! NeuMF — Neural Collaborative Filtering (He et al., WWW 2017).
//!
//! The fusion of a Generalized Matrix Factorization branch and an MLP
//! branch, each with its own embeddings:
//!
//! ```text
//! GMF:  z_g = p_u ⊙ q_v
//! MLP:  z_m = tower([p'_u ; q'_v])
//! ŷ    = σ( w · [z_g ; z_m] )
//! ```
//!
//! trained pointwise with binary cross-entropy over observed positives and
//! `negatives_per_positive` sampled negatives — the protocol of the
//! original paper. All gradients are hand-derived over the [`crate::nn`]
//! substrate. Runs on the shared pointwise engine ([`fit_pointwise`]): the
//! counter-keyed pipeline draws the samples (pool-parallel pre-draw or
//! prefetched) and feeds [`PointwiseUpdate::pointwise_step`] in the
//! reference positive-then-negatives order.

use crate::common::{fit_pointwise, BaselineConfig, ImplicitRecommender, PointwiseUpdate};
use crate::nn::{Activation, Mlp};
use mars_core::embedding::EmbeddingTable;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::rng::seeds;
use mars_tensor::{init, nonlin, ops};
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::SeedableRng;

/// NeuMF with a `[2d → d → d/2]` MLP tower (the paper's pyramid pattern).
pub struct NeuMf {
    cfg: BaselineConfig,
    // GMF branch.
    gmf_user: EmbeddingTable,
    gmf_item: EmbeddingTable,
    // MLP branch.
    mlp_user: EmbeddingTable,
    mlp_item: EmbeddingTable,
    tower: Mlp,
    /// Fusion weights over `[z_g ; z_m]`.
    fuse: Vec<f32>,
}

impl NeuMf {
    /// Creates an (untrained) model.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(seeds::model_init(cfg.seed)); // audit:allow(determinism) — seeded: pure function of the seed
        let d = cfg.dim;
        let scale = 1.0 / (d as f32).sqrt();
        let tower_out = (d / 2).max(1);
        let tower = Mlp::new(&mut rng, &[2 * d, d, tower_out], Activation::Relu);
        let mut fuse = vec![0.0; d + tower_out];
        init::uniform(&mut rng, &mut fuse, scale);
        Self {
            gmf_user: EmbeddingTable::uniform(&mut rng, num_users, d, scale),
            gmf_item: EmbeddingTable::uniform(&mut rng, num_items, d, scale),
            mlp_user: EmbeddingTable::uniform(&mut rng, num_users, d, scale),
            mlp_item: EmbeddingTable::uniform(&mut rng, num_items, d, scale),
            tower,
            fuse,
            cfg,
        }
    }

    /// Forward logit (pre-sigmoid). Needs `&mut` because the tower caches
    /// its activations; the [`Scorer`] impl clones the tower per call batch.
    fn logit(&mut self, u: usize, v: usize) -> f32 {
        let d = self.cfg.dim;
        let mut z = vec![0.0; d + self.tower.output_dim()];
        for i in 0..d {
            z[i] = self.gmf_user.row(u)[i] * self.gmf_item.row(v)[i];
        }
        let mut input = vec![0.0; 2 * d];
        input[..d].copy_from_slice(self.mlp_user.row(u));
        input[d..].copy_from_slice(self.mlp_item.row(v));
        let tower_out = self.tower.forward(&input);
        z[d..].copy_from_slice(tower_out);
        ops::dot(&z, &self.fuse)
    }

    /// One pointwise BCE step on `(u, v, label)`.
    fn step(&mut self, u: usize, v: usize, label: f32) {
        let d = self.cfg.dim;
        let lr = self.cfg.lr;
        let logit = self.logit(u, v);
        let pred = nonlin::sigmoid(logit);
        // BCE through sigmoid: ∂L/∂logit = pred − label.
        let g = pred - label;

        // Rebuild z (cheap) for the fusion gradient.
        let tower_out_dim = self.tower.output_dim();
        let mut z = vec![0.0; d + tower_out_dim];
        for i in 0..d {
            z[i] = self.gmf_user.row(u)[i] * self.gmf_item.row(v)[i];
        }
        z[d..].copy_from_slice(
            // tower cache still holds this pair's forward pass
            &{
                let mut input = vec![0.0; 2 * d];
                input[..d].copy_from_slice(self.mlp_user.row(u));
                input[d..].copy_from_slice(self.mlp_item.row(v));
                self.tower.forward(&input).to_vec()
            },
        );

        // ∂L/∂z = g·fuse (before updating fuse).
        let dz: Vec<f32> = self.fuse.iter().map(|w| g * w).collect();
        // Fusion update.
        ops::axpy(-lr * g, &z, &mut self.fuse);

        // GMF branch: z_g[i] = p_i q_i.
        for i in 0..d {
            let pu = self.gmf_user.row(u)[i];
            let qv = self.gmf_item.row(v)[i];
            self.gmf_user.row_mut(u)[i] -= lr * dz[i] * qv;
            self.gmf_item.row_mut(v)[i] -= lr * dz[i] * pu;
        }

        // MLP branch: backprop through the tower to the embeddings.
        let mut d_input = vec![0.0; 2 * d];
        self.tower.backward(&dz[d..], lr, &mut d_input);
        ops::axpy(-lr, &d_input[..d], self.mlp_user.row_mut(u));
        ops::axpy(-lr, &d_input[d..], self.mlp_item.row_mut(v));
    }
}

impl Scorer for NeuMf {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        // The tower caches activations, so scoring clones it; `score_many`
        // amortizes the clone across a candidate list.
        let mut tower = self.tower.clone();
        let d = self.cfg.dim;
        let mut z = vec![0.0; d + tower.output_dim()];
        for i in 0..d {
            z[i] = self.gmf_user.row(user as usize)[i] * self.gmf_item.row(item as usize)[i];
        }
        let mut input = vec![0.0; 2 * d];
        input[..d].copy_from_slice(self.mlp_user.row(user as usize));
        input[d..].copy_from_slice(self.mlp_item.row(item as usize));
        let out = tower.forward(&input);
        z[d..].copy_from_slice(out);
        ops::dot(&z, &self.fuse)
    }

    fn score_many(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        let mut tower = self.tower.clone();
        let d = self.cfg.dim;
        let tower_dim = tower.output_dim();
        let mut z = vec![0.0; d + tower_dim];
        let mut input = vec![0.0; 2 * d];
        input[..d].copy_from_slice(self.mlp_user.row(user as usize));
        out.clear();
        out.reserve(items.len());
        for &v in items {
            for i in 0..d {
                z[i] = self.gmf_user.row(user as usize)[i] * self.gmf_item.row(v as usize)[i];
            }
            input[d..].copy_from_slice(self.mlp_item.row(v as usize));
            let t = tower.forward(&input);
            z[d..].copy_from_slice(t);
            out.push(ops::dot(&z, &self.fuse));
        }
    }
}

impl PointwiseUpdate for NeuMf {
    fn pointwise_step(&mut self, user: usize, item: usize, label: f32) {
        self.step(user, item, label);
    }
}

impl ImplicitRecommender for NeuMf {
    fn fit(&mut self, data: &Dataset) {
        let cfg = self.cfg.clone();
        fit_pointwise(self, data, &cfg);
    }

    fn name(&self) -> &'static str {
        "NeuMF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let mut cfg = BaselineConfig::quick(16);
        cfg.lr = 0.02;
        let make = || NeuMf::new(cfg.clone(), data.num_users(), data.num_items());
        improves_over_untrained(make, &data);
    }

    #[test]
    fn score_many_agrees_with_score() {
        let data = tiny_dataset();
        let mut m = NeuMf::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        let items: Vec<ItemId> = (0..10).collect();
        let mut batch = Vec::new();
        m.score_many(3, &items, &mut batch);
        for (idx, &v) in items.iter().enumerate() {
            assert!((batch[idx] - m.score(3, v)).abs() < 1e-5);
        }
    }

    #[test]
    fn bce_step_moves_prediction_towards_label() {
        let data = tiny_dataset();
        let mut m = NeuMf::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        let before = nonlin::sigmoid(m.logit(0, 0));
        for _ in 0..50 {
            m.step(0, 0, 1.0);
        }
        let after = nonlin::sigmoid(m.logit(0, 0));
        assert!(after > before, "{before} → {after}");
        for _ in 0..100 {
            m.step(0, 0, 0.0);
        }
        let down = nonlin::sigmoid(m.logit(0, 0));
        assert!(down < after, "{after} → {down}");
    }
}
