//! Collaborative Metric Learning (Hsieh et al., WWW 2017).
//!
//! The first metric-learning recommender: a single Euclidean space where
//! `d(u, v) = ‖u − v‖`, trained with the LMNN-style hinge
//! `[m + d(u,i)² − d(u,j)²]₊` and all embeddings projected into the unit
//! ball after each step. (The original also uses rank-based weighting and a
//! covariance regularizer; the hinge + ball projection are what the MARS
//! paper's CML baseline and Table IV's K=1 column exercise, so that is what
//! we implement — consistent with the `MarsConfig::cml_like` configuration
//! in `mars-core`.)

use crate::common::{fit_triplets, BaselineConfig, ImplicitRecommender, TripletUpdate};
use mars_core::embedding::EmbeddingTable;
use mars_data::batch::Triplet;
use mars_data::dataset::Dataset;
use mars_data::{ItemId, UserId};
use mars_metrics::Scorer;
use mars_runtime::rng::seeds;
use mars_tensor::ops;
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::SeedableRng;

/// Collaborative metric learning in a single Euclidean space.
pub struct Cml {
    cfg: BaselineConfig,
    user: EmbeddingTable,
    item: EmbeddingTable,
}

impl Cml {
    /// Creates an (untrained) model.
    pub fn new(cfg: BaselineConfig, num_users: usize, num_items: usize) -> Self {
        cfg.validate().expect("invalid baseline config");
        let mut rng = StdRng::seed_from_u64(seeds::model_init(cfg.seed)); // audit:allow(determinism) — seeded: pure function of the seed
        let scale = 1.0 / (cfg.dim as f32).sqrt();
        let mut user = EmbeddingTable::uniform(&mut rng, num_users, cfg.dim, scale);
        let mut item = EmbeddingTable::uniform(&mut rng, num_items, cfg.dim, scale);
        user.clip_rows_to_unit_ball();
        item.clip_rows_to_unit_ball();
        Self { cfg, user, item }
    }

    /// Max row norm across both tables (invariant: ≤ 1 after training).
    pub fn max_norm(&self) -> f32 {
        self.user.max_row_norm().max(self.item.max_row_norm())
    }
}

impl Scorer for Cml {
    fn score(&self, user: UserId, item: ItemId) -> f32 {
        -ops::dist_sq(self.user.row(user as usize), self.item.row(item as usize))
    }

    fn score_block(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        crate::common::fused_score_block(
            crate::common::BlockKernel::NegDistSq,
            self.user.row(user as usize),
            self.item.as_slice(),
            self.cfg.dim,
            items,
            out,
        );
    }
}

impl TripletUpdate for Cml {
    fn dim(&self) -> usize {
        self.cfg.dim
    }

    fn triplet_update(&self, t: Triplet, up: &mut [f32], ui: &mut [f32], uj: &mut [f32]) -> bool {
        let u = self.user.row(t.user as usize);
        let i = self.item.row(t.positive as usize);
        let j = self.item.row(t.negative as usize);
        let d_pos = ops::dist_sq(u, i);
        let d_neg = ops::dist_sq(u, j);
        if self.cfg.margin + d_pos - d_neg <= 0.0 {
            return false; // hinge inactive
        }
        // ∂/∂u [d(u,i)² − d(u,j)²] = 2(u−i) − 2(u−j) = 2(j − i); updates are
        // the descent direction (−gradient), applied as `row += lr · upd`.
        for d in 0..self.cfg.dim {
            up[d] = -2.0 * (j[d] - i[d]);
            ui[d] = -2.0 * (i[d] - u[d]);
            uj[d] = -2.0 * (u[d] - j[d]);
        }
        true
    }

    fn apply_user(&mut self, u: usize, lr: f32, upd: &[f32]) {
        let row = self.user.row_mut(u);
        ops::axpy(lr, upd, row);
        ops::clip_to_unit_ball(row);
    }

    fn apply_item(&mut self, v: usize, lr: f32, upd: &[f32]) {
        let row = self.item.row_mut(v);
        ops::axpy(lr, upd, row);
        ops::clip_to_unit_ball(row);
    }
}

impl ImplicitRecommender for Cml {
    fn fit(&mut self, data: &Dataset) {
        let cfg = self.cfg.clone();
        fit_triplets(self, data, &cfg);
    }

    fn name(&self) -> &'static str {
        "CML"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::tests_support::{improves_over_untrained, tiny_dataset};

    #[test]
    fn training_improves_ranking() {
        let data = tiny_dataset();
        let make = || {
            Cml::new(
                BaselineConfig::quick(16),
                data.num_users(),
                data.num_items(),
            )
        };
        improves_over_untrained(make, &data);
    }

    #[test]
    fn ball_constraint_holds_after_training() {
        let data = tiny_dataset();
        let mut m = Cml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        assert!(m.max_norm() <= 1.0 + 1e-5, "max norm {}", m.max_norm());
    }

    #[test]
    fn score_block_is_bit_identical_to_score_many() {
        let data = tiny_dataset();
        let mut m = Cml::new(BaselineConfig::quick(8), data.num_users(), data.num_items());
        m.fit(&data);
        let items: Vec<u32> = (0..data.num_items() as u32).rev().collect();
        let (mut many, mut block) = (Vec::new(), Vec::new());
        for u in 0..data.num_users() as u32 {
            m.score_many(u, &items, &mut many);
            m.score_block(u, &items, &mut block);
            assert_eq!(
                many.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                block.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "user {u} diverged"
            );
            // The full Scorer contract: `score` must agree bitwise too (the
            // sequential protocol scores positives through it).
            for (idx, &v) in items.iter().enumerate() {
                assert_eq!(m.score(u, v).to_bits(), block[idx].to_bits());
            }
        }
    }

    #[test]
    fn positive_items_end_up_closer() {
        let data = tiny_dataset();
        let mut m = Cml::new(
            BaselineConfig::quick(16),
            data.num_users(),
            data.num_items(),
        );
        m.fit(&data);
        // Averaged over users: distance to a training positive should be
        // smaller than to a random non-interacted item.
        let mut pos = 0.0f64;
        let mut neg = 0.0f64;
        let mut n = 0usize;
        for u in 0..data.num_users() as u32 {
            let items = data.train.items_of(u);
            if items.is_empty() {
                continue;
            }
            let p = items[0];
            let q = (0..data.num_items() as u32)
                .find(|&v| !data.train.contains(u, v))
                .unwrap();
            pos += -m.score(u, p) as f64;
            neg += -m.score(u, q) as f64;
            n += 1;
        }
        let (avg_pos, avg_neg) = (pos / n as f64, neg / n as f64);
        assert!(avg_pos < avg_neg, "pos {avg_pos} vs neg {avg_neg}");
    }
}
