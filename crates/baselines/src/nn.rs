//! A micro neural-network substrate: dense layers with manual backprop.
//!
//! Exactly what NeuMF's MLP tower and LRML's attention need — nothing more.
//! Layers own their parameters and a cached forward state, so backward can
//! be called right after forward on the same input (the usage pattern of
//! per-sample SGD).

use mars_tensor::{init, nonlin, ops, Matrix};
use rand::Rng;

/// Activation applied after a dense layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    Identity,
    Relu,
    Sigmoid,
}

impl Activation {
    #[inline]
    fn forward(&self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Relu => nonlin::relu(x),
            Activation::Sigmoid => nonlin::sigmoid(x),
        }
    }

    /// Derivative as a function of the pre-activation `z` and the output `a`.
    #[inline]
    fn grad(&self, z: f32, a: f32) -> f32 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => nonlin::relu_grad(z),
            Activation::Sigmoid => a * (1.0 - a),
        }
    }
}

/// A fully connected layer `a = act(Wx + b)` with cached state for backprop.
#[derive(Clone, Debug)]
pub struct Dense {
    /// `out × in` weight matrix.
    w: Matrix,
    b: Vec<f32>,
    act: Activation,
    // Cached forward pass.
    input: Vec<f32>,
    pre: Vec<f32>,
    out: Vec<f32>,
}

impl Dense {
    /// He-initialized layer (suits the ReLU towers; harmless otherwise).
    pub fn new<R: Rng + ?Sized>(rng: &mut R, input: usize, output: usize, act: Activation) -> Self {
        Self {
            w: init::he_matrix(rng, output, input),
            b: vec![0.0; output],
            act,
            input: vec![0.0; input],
            pre: vec![0.0; output],
            out: vec![0.0; output],
        }
    }

    pub fn input_dim(&self) -> usize {
        self.w.cols()
    }

    pub fn output_dim(&self) -> usize {
        self.w.rows()
    }

    /// Forward pass; caches input/pre-activation/output and returns the
    /// output slice.
    pub fn forward(&mut self, x: &[f32]) -> &[f32] {
        assert_eq!(x.len(), self.input_dim(), "Dense: wrong input size");
        self.input.copy_from_slice(x);
        self.w.matvec(x, &mut self.pre);
        for (p, b) in self.pre.iter_mut().zip(&self.b) {
            *p += b;
        }
        for (o, &p) in self.out.iter_mut().zip(&self.pre) {
            *o = self.act.forward(p);
        }
        &self.out
    }

    /// Backward pass for the cached forward: consumes `d_out = ∂L/∂a`,
    /// applies an SGD step with rate `lr` to `W` and `b`, and writes
    /// `∂L/∂x` into `d_in`.
    pub fn backward(&mut self, d_out: &[f32], lr: f32, d_in: &mut [f32]) {
        assert_eq!(d_out.len(), self.output_dim());
        assert_eq!(d_in.len(), self.input_dim());
        // δ = d_out ⊙ act'(pre)
        let delta: Vec<f32> = d_out
            .iter()
            .zip(&self.pre)
            .zip(&self.out)
            .map(|((&d, &z), &a)| d * self.act.grad(z, a))
            .collect();
        // ∂L/∂x = Wᵀ δ (before the weight update).
        self.w.matvec_t(&delta, d_in);
        // W ← W − lr · δ xᵀ ; b ← b − lr·δ.
        self.w.ger(-lr, &delta, &self.input);
        ops::axpy(-lr, &delta, &mut self.b);
    }

    /// Last output (valid after `forward`).
    pub fn output(&self) -> &[f32] {
        &self.out
    }
}

/// A stack of dense layers trained with per-sample SGD.
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Dense>,
    // Scratch gradients between layers.
    grads: Vec<Vec<f32>>,
}

impl Mlp {
    /// Builds a tower with the given layer sizes, ReLU on hidden layers and
    /// the given activation on the output layer.
    ///
    /// `sizes = [in, h1, h2, out]` produces 3 layers.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, sizes: &[usize], out_act: Activation) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        let mut layers = Vec::with_capacity(sizes.len() - 1);
        for w in sizes.windows(2) {
            let is_last = layers.len() == sizes.len() - 2;
            layers.push(Dense::new(
                rng,
                w[0],
                w[1],
                if is_last { out_act } else { Activation::Relu },
            ));
        }
        let grads = sizes.iter().map(|&s| vec![0.0; s]).collect();
        Self { layers, grads }
    }

    pub fn input_dim(&self) -> usize {
        self.layers.first().unwrap().input_dim()
    }

    pub fn output_dim(&self) -> usize {
        self.layers.last().unwrap().output_dim()
    }

    /// Forward pass through all layers; returns the output slice.
    pub fn forward(&mut self, x: &[f32]) -> &[f32] {
        let n = self.layers.len();
        self.layers[0].forward(x);
        for i in 1..n {
            let (head, tail) = self.layers.split_at_mut(i);
            tail[0].forward(head[i - 1].output());
        }
        self.layers[n - 1].output()
    }

    /// Backward + SGD through all layers; writes `∂L/∂input` into `d_in`.
    pub fn backward(&mut self, d_out: &[f32], lr: f32, d_in: &mut [f32]) {
        let n = self.layers.len();
        self.grads[n].as_mut_slice().copy_from_slice(d_out);
        for i in (0..n).rev() {
            // Split the grads buffer to get disjoint in/out slices.
            let (lo, hi) = self.grads.split_at_mut(i + 1);
            self.layers[i].backward(&hi[0], lr, &mut lo[i]);
        }
        d_in.copy_from_slice(&self.grads[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dense_forward_hand_example() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(&mut rng, 2, 1, Activation::Identity);
        // Overwrite weights deterministically.
        layer.w.as_mut_slice().copy_from_slice(&[2.0, -1.0]);
        layer.b[0] = 0.5;
        let out = layer.forward(&[3.0, 4.0]);
        assert!((out[0] - (6.0 - 4.0 + 0.5)).abs() < 1e-6);
    }

    #[test]
    fn dense_gradient_check() {
        // Loss L = Σ out²/2 → d_out = out. Check ∂L/∂x by finite differences.
        let mut rng = StdRng::seed_from_u64(2);
        for act in [Activation::Identity, Activation::Sigmoid] {
            let layer = Dense::new(&mut rng, 3, 2, act);
            let x = vec![0.4f32, -0.3, 0.9];
            let loss = |l: &mut Dense, x: &[f32]| -> f32 {
                let o = l.forward(x);
                0.5 * o.iter().map(|v| v * v).sum::<f32>()
            };
            let mut work = layer.clone();
            let _ = work.forward(&x);
            let d_out: Vec<f32> = work.output().to_vec();
            let mut d_in = vec![0.0; 3];
            // lr=0 step: we only want d_in (backward with lr=0 leaves W,b).
            work.backward(&d_out, 0.0, &mut d_in);
            let h = 1e-3;
            for i in 0..3 {
                let mut xp = x.clone();
                let mut xm = x.clone();
                xp[i] += h;
                xm[i] -= h;
                let mut lp = layer.clone();
                let mut lm = layer.clone();
                let fd = (loss(&mut lp, &xp) - loss(&mut lm, &xm)) / (2.0 * h);
                assert!(
                    (fd - d_in[i]).abs() < 2e-3,
                    "{act:?} input {i}: fd {fd} vs analytic {}",
                    d_in[i]
                );
            }
        }
    }

    #[test]
    fn relu_kills_negative_gradients() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(&mut rng, 1, 1, Activation::Relu);
        layer.w.as_mut_slice()[0] = 1.0;
        layer.b[0] = 0.0;
        let out = layer.forward(&[-1.0]).to_vec();
        assert_eq!(out[0], 0.0);
        let mut d_in = vec![0.0; 1];
        layer.backward(&[1.0], 0.1, &mut d_in);
        assert_eq!(d_in[0], 0.0, "gradient through dead ReLU must vanish");
    }

    #[test]
    fn mlp_shapes_and_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(&mut rng, &[4, 8, 2], Activation::Sigmoid);
        assert_eq!(mlp.input_dim(), 4);
        assert_eq!(mlp.output_dim(), 2);
        let out = mlp.forward(&[0.1, -0.2, 0.3, 0.4]).to_vec();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|v| (0.0..=1.0).contains(v)));
    }

    #[test]
    fn mlp_learns_xor() {
        // The classic nonlinearity check: XOR is not linearly separable.
        let mut rng = StdRng::seed_from_u64(12);
        let mut mlp = Mlp::new(&mut rng, &[2, 8, 1], Activation::Sigmoid);
        let data = [
            ([0.0f32, 0.0], 0.0f32),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut d_in = vec![0.0; 2];
        for _ in 0..4000 {
            for (x, y) in &data {
                let p = mlp.forward(x)[0];
                // BCE gradient through sigmoid output: dL/da where we use
                // squared error for simplicity: d = (p − y).
                mlp.backward(&[p - y], 0.5, &mut d_in);
            }
        }
        for (x, y) in &data {
            let p = mlp.forward(x)[0];
            assert!((p - y).abs() < 0.25, "xor({:?}) = {p}, want {y}", x);
        }
    }

    #[test]
    fn mlp_gradient_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&mut rng, &[3, 5, 2], Activation::Identity);
        let x = vec![0.2f32, 0.7, -0.5];
        let loss = |m: &mut Mlp, x: &[f32]| -> f32 {
            let o = m.forward(x);
            0.5 * o.iter().map(|v| v * v).sum::<f32>()
        };
        let mut work = mlp.clone();
        let _ = work.forward(&x);
        let d_out: Vec<f32> = work.layers.last().unwrap().output().to_vec();
        let mut d_in = vec![0.0; 3];
        work.backward(&d_out, 0.0, &mut d_in);
        let h = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp[i] += h;
            xm[i] -= h;
            let fd = (loss(&mut mlp.clone(), &xp) - loss(&mut mlp.clone(), &xm)) / (2.0 * h);
            assert!(
                (fd - d_in[i]).abs() < 5e-3,
                "input {i}: fd {fd} vs analytic {}",
                d_in[i]
            );
        }
    }
}
