//! Shared configuration, the training interface all baselines implement,
//! and the **batch/accumulate triplet engine** the pairwise models train
//! on — the same execution model as `mars-core`'s batched trainer, so the
//! paper's baseline-table comparisons exercise identical machinery.

use mars_data::batch::{Triplet, TripletBatcher};
use mars_data::dataset::Dataset;
use mars_data::sampler::{UniformNegativeSampler, UserSampler};
use mars_metrics::Scorer;
use mars_optim::{BatchMode, GradAccumulator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hyperparameters shared by the baselines. Model-specific knobs (memory
/// slots for LRML, tower widths for NeuMF, …) live on the model structs with
/// documented defaults.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs (one epoch ≈ one pass over the interactions).
    pub epochs: usize,
    /// Triplets / samples per batch. For models on the shared triplet
    /// engine this is the gradient-accumulation window in
    /// [`BatchMode::Batched`]; for the rest it controls epoch granularity.
    pub batch_size: usize,
    /// Hinge margin where applicable.
    pub margin: f32,
    /// L2 regularization weight where applicable.
    pub reg: f32,
    /// Negatives per positive for the pointwise models (NeuMF, MetricF).
    pub negatives_per_positive: usize,
    /// Update scheduling for engine-based models (BPR, CML): batched
    /// accumulation (default) or the reference per-sample SGD.
    pub batch_mode: BatchMode,
    /// Worker threads for the batched engine (shard-by-user); `0` = all
    /// cores, `1` = serial.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            lr: 0.05,
            epochs: 20,
            batch_size: 512,
            margin: 0.5,
            reg: 1e-4,
            negatives_per_positive: 4,
            batch_mode: BatchMode::Batched,
            threads: 1,
            seed: 42,
        }
    }
}

impl BaselineConfig {
    /// Quick-run settings for tests.
    pub fn quick(dim: usize) -> Self {
        Self {
            dim,
            epochs: 5,
            batch_size: 256,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be ≥ 1".into());
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(format!("invalid lr {}", self.lr));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be ≥ 1".into());
        }
        if self.negatives_per_positive == 0 {
            return Err("negatives_per_positive must be ≥ 1".into());
        }
        Ok(())
    }
}

/// A recommender trainable from implicit feedback. All baselines implement
/// this plus [`Scorer`], so the harness treats them uniformly.
pub trait ImplicitRecommender: Scorer {
    /// Trains on the dataset's train split.
    fn fit(&mut self, data: &Dataset);

    /// Model display name (matches the paper's tables).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Shared batch/accumulate triplet engine
// ---------------------------------------------------------------------------

/// A pairwise model trainable by [`fit_triplets`]: it exposes per-triplet
/// *ascent updates* (the quantity added as `row += lr · upd`, matching the
/// reference implementations' update conventions) and constraint-aware
/// appliers for user and item rows.
pub trait TripletUpdate: Scorer + Sync {
    /// Embedding dimension (update-row length).
    fn dim(&self) -> usize;

    /// Writes the updates for `t` against the **current** parameters into
    /// `up` / `ui` / `uj` (user / positive / negative rows). Returns `false`
    /// when the example is inactive (e.g. hinge satisfied) and stages
    /// nothing.
    fn triplet_update(&self, t: Triplet, up: &mut [f32], ui: &mut [f32], uj: &mut [f32]) -> bool;

    /// Applies an update to user row `u` (plus any projection/constraint).
    fn apply_user(&mut self, u: usize, lr: f32, upd: &[f32]);

    /// Applies an update to item row `v` (plus any projection/constraint).
    fn apply_item(&mut self, v: usize, lr: f32, upd: &[f32]);
}

const ROW_USER: u64 = 0;
const ROW_ITEM: u64 = 1;

#[inline]
fn row_key(kind: u64, row: usize) -> u64 {
    ((row as u64) << 1) | kind
}

/// Trains `model` on the dataset's train split with the shared engine:
/// uniform user/negative sampling into [`TripletBatcher`] batches, then —
/// per [`BaselineConfig::batch_mode`] —
///
/// * **PerTriplet**: the reference path, one immediate apply per triplet;
/// * **Batched**: updates accumulate per row over the batch against frozen
///   parameters and each touched row is applied once (first-touch order).
///   With `threads > 1` each batch is sharded by user across a thread scope
///   and shard accumulators merge in shard order, so training stays
///   deterministic for a fixed seed and thread count.
pub fn fit_triplets<M: TripletUpdate>(model: &mut M, data: &Dataset, cfg: &BaselineConfig) {
    let x = &data.train;
    if x.num_interactions() == 0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(1));
    let mut batcher = TripletBatcher::new(
        UserSampler::uniform(x),
        UniformNegativeSampler,
        cfg.batch_size,
    );
    let batches = batcher.batches_per_epoch(x);
    let lr = cfg.lr;
    let dim = model.dim();
    let threads = mars_optim::resolve_threads(cfg.threads);

    // Per-worker state: update scratch + accumulator (reused across batches).
    type Worker = (Vec<f32>, Vec<f32>, Vec<f32>, GradAccumulator);
    let mut workers: Vec<Worker> = (0..threads)
        .map(|_| {
            (
                vec![0.0; dim],
                vec![0.0; dim],
                vec![0.0; dim],
                GradAccumulator::new(dim),
            )
        })
        .collect();
    let mut shard_bufs: Vec<Vec<Triplet>> = (0..threads).map(|_| Vec::new()).collect();
    let mut merged = GradAccumulator::new(dim);

    for _ in 0..cfg.epochs {
        for _ in 0..batches {
            // The batcher's internal buffer is borrowed directly — no
            // per-batch copy on the hot path.
            match cfg.batch_mode {
                BatchMode::PerTriplet => {
                    let (up, ui, uj, _) = &mut workers[0];
                    for &t in batcher.next_batch(x, &mut rng) {
                        if model.triplet_update(t, up, ui, uj) {
                            model.apply_user(t.user as usize, lr, up);
                            model.apply_item(t.positive as usize, lr, ui);
                            model.apply_item(t.negative as usize, lr, uj);
                        }
                    }
                }
                BatchMode::Batched => {
                    if threads <= 1 {
                        let (up, ui, uj, acc) = &mut workers[0];
                        acc.clear();
                        accumulate_shard(model, batcher.next_batch(x, &mut rng), up, ui, uj, acc);
                        apply_accumulated(model, acc, lr);
                    } else {
                        for buf in &mut shard_bufs {
                            buf.clear();
                        }
                        for &t in batcher.next_batch(x, &mut rng) {
                            shard_bufs[t.user as usize % threads].push(t);
                        }
                        let frozen: &M = model;
                        std::thread::scope(|scope| {
                            let mut handles = Vec::with_capacity(threads - 1);
                            let (head, tail) = workers.split_at_mut(1);
                            for (i, w) in tail.iter_mut().enumerate() {
                                let buf = &shard_bufs[i + 1];
                                handles.push(scope.spawn(move || {
                                    let (up, ui, uj, acc) = w;
                                    acc.clear();
                                    accumulate_shard(frozen, buf, up, ui, uj, acc);
                                }));
                            }
                            let (up, ui, uj, acc) = &mut head[0];
                            acc.clear();
                            accumulate_shard(frozen, &shard_bufs[0], up, ui, uj, acc);
                            for h in handles {
                                h.join().expect("shard worker panicked");
                            }
                        });
                        merged.clear();
                        for (_, _, _, acc) in &workers {
                            merged.merge_from(acc);
                        }
                        apply_accumulated(model, &mut merged, lr);
                    }
                }
            }
        }
    }
}

fn accumulate_shard<M: TripletUpdate>(
    model: &M,
    batch: &[Triplet],
    up: &mut [f32],
    ui: &mut [f32],
    uj: &mut [f32],
    acc: &mut GradAccumulator,
) {
    for &t in batch {
        if model.triplet_update(t, up, ui, uj) {
            acc.add(row_key(ROW_USER, t.user as usize), up);
            acc.add(row_key(ROW_ITEM, t.positive as usize), ui);
            acc.add(row_key(ROW_ITEM, t.negative as usize), uj);
        }
    }
}

fn apply_accumulated<M: TripletUpdate>(model: &mut M, acc: &mut GradAccumulator, lr: f32) {
    acc.drain(|key, upd, _| {
        let row = (key >> 1) as usize;
        if key & 1 == ROW_USER {
            model.apply_user(row, lr, upd);
        } else {
            model.apply_item(row, lr, upd);
        }
    });
}

/// Shared helpers for the per-model unit tests (compiled only for tests).
#[cfg(test)]
pub mod tests_support {
    use super::ImplicitRecommender;
    use mars_data::dataset::Dataset;
    use mars_data::{SyntheticConfig, SyntheticDataset};
    use mars_metrics::RankingEvaluator;

    /// A small planted multi-facet dataset every baseline trains on in
    /// seconds.
    pub fn tiny_dataset() -> Dataset {
        SyntheticDataset::generate(
            "baseline-test",
            &SyntheticConfig {
                num_users: 60,
                num_items: 50,
                num_interactions: 1500,
                num_categories: 3,
                dirichlet_alpha: 0.3,
                seed: 77,
                ..Default::default()
            },
        )
        .dataset
    }

    /// Asserts that training strictly improves test HR@10 over the
    /// untrained initialization — the basic sanity check every model must
    /// pass.
    pub fn improves_over_untrained<M: ImplicitRecommender>(make: impl Fn() -> M, data: &Dataset) {
        let ev = RankingEvaluator::paper();
        let untrained = make();
        let before = ev.evaluate(&untrained, data).hr_at(10);
        let mut model = make();
        model.fit(data);
        let after = ev.evaluate(&model, data).hr_at(10);
        assert!(
            after > before,
            "{}: training should improve HR@10 ({before} → {after})",
            model.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpr::Bpr;
    use crate::cml::Cml;
    use tests_support::tiny_dataset;

    #[test]
    fn default_config_validates() {
        assert!(BaselineConfig::default().validate().is_ok());
        assert!(BaselineConfig::quick(16).validate().is_ok());
    }

    fn scores(model: &impl Scorer, n_users: u32, n_items: u32) -> Vec<f32> {
        (0..n_users)
            .flat_map(|u| (0..n_items).map(move |v| (u, v)))
            .map(|(u, v)| model.score(u, v))
            .collect()
    }

    #[test]
    fn engine_is_deterministic_per_mode_and_thread_count() {
        let data = tiny_dataset();
        for (mode, threads) in [
            (BatchMode::PerTriplet, 1usize),
            (BatchMode::Batched, 1),
            (BatchMode::Batched, 3),
        ] {
            let run = || {
                let cfg = BaselineConfig {
                    batch_mode: mode,
                    threads,
                    epochs: 2,
                    ..BaselineConfig::quick(8)
                };
                let mut m = Bpr::new(cfg, data.num_users(), data.num_items());
                m.fit(&data);
                scores(&m, data.num_users() as u32, data.num_items() as u32)
            };
            assert_eq!(
                run(),
                run(),
                "mode {mode:?} threads {threads} not deterministic"
            );
        }
    }

    #[test]
    fn batched_and_per_triplet_both_learn_cml() {
        let data = tiny_dataset();
        for mode in [BatchMode::PerTriplet, BatchMode::Batched] {
            let cfg = BaselineConfig {
                batch_mode: mode,
                ..BaselineConfig::quick(16)
            };
            tests_support::improves_over_untrained(
                || Cml::new(cfg.clone(), data.num_users(), data.num_items()),
                &data,
            );
        }
    }

    #[test]
    fn sharded_engine_matches_training_quality() {
        // Threads change float summation order, not the algorithm: the
        // sharded run must still train to a working model.
        let data = tiny_dataset();
        let cfg = BaselineConfig {
            threads: 4,
            ..BaselineConfig::quick(16)
        };
        tests_support::improves_over_untrained(
            || Bpr::new(cfg.clone(), data.num_users(), data.num_items()),
            &data,
        );
    }

    #[test]
    fn rejects_bad_values() {
        let bad_dim = BaselineConfig {
            dim: 0,
            ..Default::default()
        };
        assert!(bad_dim.validate().is_err());
        let bad_lr = BaselineConfig {
            lr: f32::NAN,
            ..Default::default()
        };
        assert!(bad_lr.validate().is_err());
        let bad_negs = BaselineConfig {
            negatives_per_positive: 0,
            ..Default::default()
        };
        assert!(bad_negs.validate().is_err());
    }
}
