//! Shared configuration and the training interface all baselines implement.

use mars_data::dataset::Dataset;
use mars_metrics::Scorer;

/// Hyperparameters shared by the baselines. Model-specific knobs (memory
/// slots for LRML, tower widths for NeuMF, …) live on the model structs with
/// documented defaults.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs (one epoch ≈ one pass over the interactions).
    pub epochs: usize,
    /// Triplets / samples per batch (controls epoch granularity only; the
    /// updates are per-sample SGD like the reference implementations).
    pub batch_size: usize,
    /// Hinge margin where applicable.
    pub margin: f32,
    /// L2 regularization weight where applicable.
    pub reg: f32,
    /// Negatives per positive for the pointwise models (NeuMF, MetricF).
    pub negatives_per_positive: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            lr: 0.05,
            epochs: 20,
            batch_size: 512,
            margin: 0.5,
            reg: 1e-4,
            negatives_per_positive: 4,
            seed: 42,
        }
    }
}

impl BaselineConfig {
    /// Quick-run settings for tests.
    pub fn quick(dim: usize) -> Self {
        Self {
            dim,
            epochs: 5,
            batch_size: 256,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be ≥ 1".into());
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(format!("invalid lr {}", self.lr));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be ≥ 1".into());
        }
        if self.negatives_per_positive == 0 {
            return Err("negatives_per_positive must be ≥ 1".into());
        }
        Ok(())
    }
}

/// A recommender trainable from implicit feedback. All baselines implement
/// this plus [`Scorer`], so the harness treats them uniformly.
pub trait ImplicitRecommender: Scorer {
    /// Trains on the dataset's train split.
    fn fit(&mut self, data: &Dataset);

    /// Model display name (matches the paper's tables).
    fn name(&self) -> &'static str;
}

/// Shared helpers for the per-model unit tests (compiled only for tests).
#[cfg(test)]
pub mod tests_support {
    use super::ImplicitRecommender;
    use mars_data::dataset::Dataset;
    use mars_data::{SyntheticConfig, SyntheticDataset};
    use mars_metrics::RankingEvaluator;

    /// A small planted multi-facet dataset every baseline trains on in
    /// seconds.
    pub fn tiny_dataset() -> Dataset {
        SyntheticDataset::generate(
            "baseline-test",
            &SyntheticConfig {
                num_users: 60,
                num_items: 50,
                num_interactions: 1500,
                num_categories: 3,
                dirichlet_alpha: 0.3,
                seed: 77,
                ..Default::default()
            },
        )
        .dataset
    }

    /// Asserts that training strictly improves test HR@10 over the
    /// untrained initialization — the basic sanity check every model must
    /// pass.
    pub fn improves_over_untrained<M: ImplicitRecommender>(
        make: impl Fn() -> M,
        data: &Dataset,
    ) {
        let ev = RankingEvaluator::paper();
        let untrained = make();
        let before = ev.evaluate(&untrained, data).hr_at(10);
        let mut model = make();
        model.fit(data);
        let after = ev.evaluate(&model, data).hr_at(10);
        assert!(
            after > before,
            "{}: training should improve HR@10 ({before} → {after})",
            model.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        assert!(BaselineConfig::default().validate().is_ok());
        assert!(BaselineConfig::quick(16).validate().is_ok());
    }

    #[test]
    fn rejects_bad_values() {
        let bad_dim = BaselineConfig { dim: 0, ..Default::default() };
        assert!(bad_dim.validate().is_err());
        let bad_lr = BaselineConfig { lr: f32::NAN, ..Default::default() };
        assert!(bad_lr.validate().is_err());
        let bad_negs = BaselineConfig { negatives_per_positive: 0, ..Default::default() };
        assert!(bad_negs.validate().is_err());
    }
}
