//! Shared configuration, the training interface all baselines implement,
//! and the **batch/accumulate triplet engine** the pairwise models train
//! on — the same execution model as `mars-core`'s batched trainer, so the
//! paper's baseline-table comparisons exercise identical machinery.

use mars_data::batch::{FillMode, Triplet, TripletBatcher, TripletStream};
use mars_data::dataset::Dataset;
use mars_data::sampler::{UniformNegativeSampler, UserSampler};
use mars_metrics::Scorer;
use mars_optim::{BatchMode, GradAccumulator};
use mars_runtime::rng::seeds;
use mars_runtime::{shard_items, WorkerPool};

/// Hyperparameters shared by the baselines. Model-specific knobs (memory
/// slots for LRML, tower widths for NeuMF, …) live on the model structs with
/// documented defaults.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs (one epoch ≈ one pass over the interactions).
    pub epochs: usize,
    /// Triplets / samples per batch. For models on the shared triplet
    /// engine this is the gradient-accumulation window in
    /// [`BatchMode::Batched`]; for the rest it controls epoch granularity.
    pub batch_size: usize,
    /// Hinge margin where applicable.
    pub margin: f32,
    /// L2 regularization weight where applicable.
    pub reg: f32,
    /// Negatives per positive for the pointwise models (NeuMF, MetricF).
    pub negatives_per_positive: usize,
    /// Update scheduling for engine-based models (BPR, CML): batched
    /// accumulation (default) or the reference per-sample SGD.
    pub batch_mode: BatchMode,
    /// Worker threads for the batched engine (shard-by-user); `0` = all
    /// cores, `1` = serial.
    pub threads: usize,
    /// Draw batch `b + 1` on a background thread while batch `b` trains
    /// (identical triplet stream either way — batches are pure functions of
    /// `(seed, index)`). Off = fill inline, fanned across the worker pool.
    pub prefetch: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self {
            dim: 32,
            lr: 0.05,
            epochs: 20,
            batch_size: 512,
            margin: 0.5,
            reg: 1e-4,
            negatives_per_positive: 4,
            batch_mode: BatchMode::Batched,
            threads: 1,
            prefetch: true,
            seed: 42,
        }
    }
}

impl BaselineConfig {
    /// Quick-run settings for tests.
    pub fn quick(dim: usize) -> Self {
        Self {
            dim,
            epochs: 5,
            batch_size: 256,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 {
            return Err("dim must be ≥ 1".into());
        }
        if !(self.lr > 0.0 && self.lr.is_finite()) {
            return Err(format!("invalid lr {}", self.lr));
        }
        if self.batch_size == 0 {
            return Err("batch_size must be ≥ 1".into());
        }
        if self.negatives_per_positive == 0 {
            return Err("negatives_per_positive must be ≥ 1".into());
        }
        Ok(())
    }
}

/// A recommender trainable from implicit feedback. All baselines implement
/// this plus [`Scorer`], so the harness treats them uniformly.
pub trait ImplicitRecommender: Scorer {
    /// Trains on the dataset's train split.
    fn fit(&mut self, data: &Dataset);

    /// Model display name (matches the paper's tables).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Shared batch/accumulate triplet engine
// ---------------------------------------------------------------------------

/// A pairwise model trainable by [`fit_triplets`]: it exposes per-triplet
/// *ascent updates* (the quantity added as `row += lr · upd`, matching the
/// reference implementations' update conventions) and constraint-aware
/// appliers for user and item rows.
pub trait TripletUpdate: Scorer + Sync {
    /// Embedding dimension (update-row length).
    fn dim(&self) -> usize;

    /// Called once at the start of every epoch, before any triplet of that
    /// epoch is drawn. Models with epoch-scoped caches (TransCF's lazy
    /// neighbourhood means) refresh them here; the default is a no-op.
    fn begin_epoch(&mut self, _data: &Dataset) {}

    /// Writes the updates for `t` against the **current** parameters into
    /// `up` / `ui` / `uj` (user / positive / negative rows). Returns `false`
    /// when the example is inactive (e.g. hinge satisfied) and stages
    /// nothing.
    fn triplet_update(&self, t: Triplet, up: &mut [f32], ui: &mut [f32], uj: &mut [f32]) -> bool;

    /// Updates any *side parameters* — parameters outside the user/item
    /// embedding rows, such as SML's learnable per-user / per-item margins
    /// or LRML's relation memory and attention keys — for one triplet. The
    /// engine calls it once per triplet, in **original batch order**,
    /// against the same embedding rows `triplet_update` saw: before the row
    /// applies of the triplet (per-triplet mode) or of the batch (batched
    /// mode). Side updates may cascade within a batch (they touch no
    /// embedding row, so the frozen-parameter contract of the row
    /// accumulation is unaffected). Models without side parameters keep the
    /// default no-op.
    fn side_update(&mut self, _t: Triplet) {}

    /// Applies an update to user row `u` (plus any projection/constraint).
    fn apply_user(&mut self, u: usize, lr: f32, upd: &[f32]);

    /// Applies an update to item row `v` (plus any projection/constraint).
    fn apply_item(&mut self, v: usize, lr: f32, upd: &[f32]);
}

const ROW_USER: u64 = 0;
const ROW_ITEM: u64 = 1;

#[inline]
fn row_key(kind: u64, row: usize) -> u64 {
    ((row as u64) << 1) | kind
}

/// The engines' shared batch source: a counter-keyed [`TripletBatcher`]
/// over uniform user/negative sampling, seeded by the workspace convention
/// ([`seeds::sampling`]). Batch `b` is a pure function of `(seed, b)`, so
/// prefetching and pool-parallel fills produce the identical stream (see
/// the `mars-data::batch` module docs).
fn make_batcher(
    x: &mars_data::Interactions,
    slots: usize,
    negatives_per_slot: usize,
    seed: u64,
) -> TripletBatcher<UniformNegativeSampler> {
    // Every baseline engine funnels through here: route the counter-stream
    // fills through the vectorized splitmix64 kernel (bit-identical to the
    // scalar fallback — pure throughput).
    mars_tensor::simd::install_rng_kernel();
    TripletBatcher::with_negatives(
        UserSampler::uniform(x),
        UniformNegativeSampler,
        slots,
        negatives_per_slot,
        seeds::sampling(seed),
    )
}

/// Trains `model` on the dataset's train split with the shared engine:
/// counter-keyed uniform user/negative sampling into [`TripletBatcher`]
/// batches (prefetched on a background thread per
/// [`BaselineConfig::prefetch`], else filled inline across the pool), then
/// — per [`BaselineConfig::batch_mode`] —
///
/// * **PerTriplet**: the reference path, one immediate apply per triplet;
/// * **Batched**: updates accumulate per row over the batch against frozen
///   parameters and each touched row is applied once (first-touch order).
///   With `threads > 1` each batch is sharded by user across a persistent
///   [`mars_runtime::WorkerPool`] (created once for the whole fit, no
///   per-batch spawn/join) and shard accumulators merge in shard order, so
///   training stays deterministic for a fixed seed — at **any** thread
///   count for the sampling, and per thread count for the float merges.
pub fn fit_triplets<M: TripletUpdate>(model: &mut M, data: &Dataset, cfg: &BaselineConfig) {
    let x = &data.train;
    if x.num_interactions() == 0 {
        return;
    }
    let batcher = make_batcher(x, cfg.batch_size, 1, cfg.seed);
    let batches = batcher.batches_per_epoch(x);
    let lr = cfg.lr;
    let dim = model.dim();

    // The reference path never shards: no pool, no accumulators — just the
    // three update rows (mirrors the trainer, which also gates its worker
    // state on the batch mode).
    if cfg.batch_mode == BatchMode::PerTriplet {
        let (mut up, mut ui, mut uj) = (vec![0.0; dim], vec![0.0; dim], vec![0.0; dim]);
        std::thread::scope(|scope| {
            let mode = if cfg.prefetch {
                FillMode::Prefetch
            } else {
                FillMode::Serial
            };
            let mut stream = TripletStream::spawn(scope, x, batcher, mode);
            for _ in 0..cfg.epochs {
                model.begin_epoch(data);
                for _ in 0..batches {
                    // The stream's buffer is borrowed directly — no
                    // per-batch copy on the hot path.
                    for &t in stream.next_batch().triplets() {
                        let active = model.triplet_update(t, &mut up, &mut ui, &mut uj);
                        // Side parameters first: the hook sees the same
                        // parameters the update was computed against.
                        model.side_update(t);
                        if active {
                            model.apply_user(t.user as usize, lr, &up);
                            model.apply_item(t.positive as usize, lr, &ui);
                            model.apply_item(t.negative as usize, lr, &uj);
                        }
                    }
                }
            }
        });
        return;
    }

    let pool = WorkerPool::with_threads(cfg.threads);
    let threads = pool.workers();

    // Per-worker state: triplet slice + update scratch + accumulator, all
    // reused across batches.
    struct Shard {
        buf: Vec<Triplet>,
        up: Vec<f32>,
        ui: Vec<f32>,
        uj: Vec<f32>,
        acc: GradAccumulator,
    }
    let mut shards: Vec<Shard> = (0..threads)
        .map(|_| Shard {
            buf: Vec::new(),
            up: vec![0.0; dim],
            ui: vec![0.0; dim],
            uj: vec![0.0; dim],
            acc: GradAccumulator::new(dim),
        })
        .collect();
    let mut merged = GradAccumulator::new(dim);

    std::thread::scope(|scope| {
        // With prefetch the pool is free during the fill, so it is reserved
        // for the gradient scatter; without it the fill itself fans across
        // the pool between scatters.
        let mode = if cfg.prefetch {
            FillMode::Prefetch
        } else {
            FillMode::Pool(&pool)
        };
        let mut stream = TripletStream::spawn(scope, x, batcher, mode);
        for _ in 0..cfg.epochs {
            model.begin_epoch(data);
            for _ in 0..batches {
                if threads <= 1 {
                    let batch = stream.next_batch().triplets();
                    let Shard {
                        up, ui, uj, acc, ..
                    } = &mut shards[0];
                    acc.clear();
                    accumulate_shard(model, batch, up, ui, uj, acc);
                    // Side parameters update serially in batch order against
                    // the frozen rows, then the rows apply.
                    for &t in batch {
                        model.side_update(t);
                    }
                    apply_accumulated(model, acc, lr);
                } else {
                    let batch = stream.next_batch().triplets();
                    shard_items(batch, shards.iter_mut().map(|s| &mut s.buf), |t| {
                        t.user as usize
                    });
                    let frozen: &M = model;
                    pool.scatter(&mut shards, |_, sh| {
                        sh.acc.clear();
                        accumulate_shard(
                            frozen,
                            &sh.buf,
                            &mut sh.up,
                            &mut sh.ui,
                            &mut sh.uj,
                            &mut sh.acc,
                        );
                    });
                    // Side parameters update in *original batch order* (not
                    // shard order), so they are identical at every thread
                    // count.
                    for &t in batch {
                        model.side_update(t);
                    }
                    // Deterministic merge: fixed shard order.
                    merged.clear();
                    for sh in &shards {
                        merged.merge_from(&sh.acc);
                    }
                    apply_accumulated(model, &mut merged, lr);
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Shared pointwise engine (the triplet engine's twin)
// ---------------------------------------------------------------------------

/// A pointwise model trainable by [`fit_pointwise`]: it consumes labelled
/// `(user, item, label)` samples one at a time (the training protocol of
/// NeuMF and MetricF, whose updates are inherently sequential — shared MLP
/// towers, immediate ball projections). The engine owns everything around
/// the step: the counter-keyed sampling pipeline, the worker pool that
/// parallelizes the pre-draw, the prefetch overlap, and the epoch schedule.
pub trait PointwiseUpdate: Scorer {
    /// Called once at the start of every epoch, before any sample of that
    /// epoch is drawn. The default is a no-op.
    fn begin_epoch(&mut self, _data: &Dataset) {}

    /// One SGD step on the labelled pair (`label` 1 = observed positive,
    /// 0 = sampled negative).
    fn pointwise_step(&mut self, user: usize, item: usize, label: f32);
}

/// Trains `model` with the shared pointwise engine — the same counter-keyed
/// batcher/pool/prefetch plumbing as [`fit_triplets`], reshaped: each slot
/// draws one user, one positive and [`BaselineConfig::negatives_per_positive`]
/// negatives, and the model steps on the positive (label 1) then each
/// negative (label 0) in slot order — the sample order of the bespoke
/// per-sample loops this engine replaced. Sampling is bit-identical at any
/// worker count and with prefetch on or off; the updates themselves run
/// serially (pointwise models share non-row parameters such as MLP towers).
pub fn fit_pointwise<M: PointwiseUpdate>(model: &mut M, data: &Dataset, cfg: &BaselineConfig) {
    let x = &data.train;
    if x.num_interactions() == 0 {
        return;
    }
    let k = cfg.negatives_per_positive;
    let slots = (cfg.batch_size / k).max(1);
    let batcher = make_batcher(x, slots, k, cfg.seed);
    let batches = batcher.batches_per_epoch(x);
    // The updates are serial, so the pool only ever fills batches — don't
    // spawn its workers when the prefetch thread does the filling instead.
    let pool = (!cfg.prefetch).then(|| WorkerPool::with_threads(cfg.threads));
    std::thread::scope(|scope| {
        let mode = match &pool {
            None => FillMode::Prefetch,
            Some(pool) => FillMode::Pool(pool),
        };
        let mut stream = TripletStream::spawn(scope, x, batcher, mode);
        for _ in 0..cfg.epochs {
            model.begin_epoch(data);
            for _ in 0..batches {
                for slot in stream.next_batch().slots() {
                    let first = slot[0];
                    model.pointwise_step(first.user as usize, first.positive as usize, 1.0);
                    for t in slot {
                        model.pointwise_step(t.user as usize, t.negative as usize, 0.0);
                    }
                }
            }
        }
    });
}

/// Runs `f` with a thread-local scratch buffer — the gather block
/// [`fused_score_block`] reuses across calls, so the batched evaluator's
/// hot path stays allocation-free per pair (evaluation worker threads are
/// persistent, so the buffers amortize across the whole run).
fn with_block_scratch<R>(f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    thread_local! {
        static BLOCK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    BLOCK.with(|b| f(&mut b.borrow_mut()))
}

/// Row kernel a [`fused_score_block`] call scores with.
pub(crate) enum BlockKernel {
    /// `user · item` (inner-product models: BPR).
    Dot,
    /// `−‖user − item‖²` (metric models: CML, SML).
    NegDistSq,
}

/// The shared batched-scoring path behind the baselines' `score_block`
/// overrides: gather the candidate rows into a reusable thread-local block,
/// then one fused one-vs-rows kernel pass. Bit-identical to the per-item
/// `score` loop — the kernels call the same `ops` primitives on the same
/// values, and negation of identical values is identical.
pub(crate) fn fused_score_block(
    kernel: BlockKernel,
    user_row: &[f32],
    item_table: &[f32],
    dim: usize,
    items: &[mars_data::ItemId],
    out: &mut Vec<f32>,
) {
    with_block_scratch(|block| {
        mars_tensor::rows::gather_rows(item_table, dim, items.iter().map(|&v| v as usize), block);
        out.clear();
        out.resize(items.len(), 0.0);
        match kernel {
            BlockKernel::Dot => mars_tensor::rows::dot_one_rows(user_row, block, out),
            BlockKernel::NegDistSq => {
                mars_tensor::rows::dist_sq_one_rows(user_row, block, out);
                for s in out.iter_mut() {
                    *s = -*s;
                }
            }
        }
    });
}

fn accumulate_shard<M: TripletUpdate>(
    model: &M,
    batch: &[Triplet],
    up: &mut [f32],
    ui: &mut [f32],
    uj: &mut [f32],
    acc: &mut GradAccumulator,
) {
    for &t in batch {
        if model.triplet_update(t, up, ui, uj) {
            acc.add(row_key(ROW_USER, t.user as usize), up);
            acc.add(row_key(ROW_ITEM, t.positive as usize), ui);
            acc.add(row_key(ROW_ITEM, t.negative as usize), uj);
        }
    }
}

fn apply_accumulated<M: TripletUpdate>(model: &mut M, acc: &mut GradAccumulator, lr: f32) {
    acc.drain(|key, upd, _| {
        let row = (key >> 1) as usize;
        if key & 1 == ROW_USER {
            model.apply_user(row, lr, upd);
        } else {
            model.apply_item(row, lr, upd);
        }
    });
}

/// Shared helpers for the per-model unit tests (compiled only for tests).
#[cfg(test)]
pub mod tests_support {
    use super::ImplicitRecommender;
    use mars_data::dataset::Dataset;
    use mars_data::{SyntheticConfig, SyntheticDataset};
    use mars_metrics::RankingEvaluator;

    /// A small planted multi-facet dataset every baseline trains on in
    /// seconds.
    pub fn tiny_dataset() -> Dataset {
        SyntheticDataset::generate(
            "baseline-test",
            &SyntheticConfig {
                num_users: 60,
                num_items: 50,
                num_interactions: 1500,
                num_categories: 3,
                dirichlet_alpha: 0.3,
                seed: 77,
                ..Default::default()
            },
        )
        .dataset
    }

    /// Asserts that training strictly improves test HR@10 over the
    /// untrained initialization — the basic sanity check every model must
    /// pass.
    pub fn improves_over_untrained<M: ImplicitRecommender + Sync>(
        make: impl Fn() -> M,
        data: &Dataset,
    ) {
        let ev = RankingEvaluator::paper();
        let untrained = make();
        let before = ev.evaluate(&untrained, data).hr_at(10);
        let mut model = make();
        model.fit(data);
        let after = ev.evaluate(&model, data).hr_at(10);
        assert!(
            after > before,
            "{}: training should improve HR@10 ({before} → {after})",
            model.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpr::Bpr;
    use crate::cml::Cml;
    use tests_support::tiny_dataset;

    #[test]
    fn default_config_validates() {
        assert!(BaselineConfig::default().validate().is_ok());
        assert!(BaselineConfig::quick(16).validate().is_ok());
    }

    fn scores(model: &impl Scorer, n_users: u32, n_items: u32) -> Vec<f32> {
        (0..n_users)
            .flat_map(|u| (0..n_items).map(move |v| (u, v)))
            .map(|(u, v)| model.score(u, v))
            .collect()
    }

    #[test]
    fn engine_is_deterministic_per_mode_and_thread_count() {
        let data = tiny_dataset();
        for (mode, threads) in [
            (BatchMode::PerTriplet, 1usize),
            (BatchMode::Batched, 1),
            (BatchMode::Batched, 3),
        ] {
            let run = || {
                let cfg = BaselineConfig {
                    batch_mode: mode,
                    threads,
                    epochs: 2,
                    ..BaselineConfig::quick(8)
                };
                let mut m = Bpr::new(cfg, data.num_users(), data.num_items());
                m.fit(&data);
                scores(&m, data.num_users() as u32, data.num_items() as u32)
            };
            assert_eq!(
                run(),
                run(),
                "mode {mode:?} threads {threads} not deterministic"
            );
        }
    }

    #[test]
    fn prefetch_does_not_change_training() {
        // Batches are pure functions of (seed, index), so overlapping the
        // fill with gradient work must not move a single float.
        let data = tiny_dataset();
        for (mode, threads) in [
            (BatchMode::PerTriplet, 1usize),
            (BatchMode::Batched, 1),
            (BatchMode::Batched, 3),
        ] {
            let run = |prefetch: bool| {
                let cfg = BaselineConfig {
                    batch_mode: mode,
                    threads,
                    prefetch,
                    epochs: 2,
                    ..BaselineConfig::quick(8)
                };
                let mut m = Bpr::new(cfg, data.num_users(), data.num_items());
                m.fit(&data);
                scores(&m, data.num_users() as u32, data.num_items() as u32)
            };
            assert_eq!(
                run(true),
                run(false),
                "prefetch changed training (mode {mode:?}, threads {threads})"
            );
        }
    }

    #[test]
    fn batched_and_per_triplet_both_learn_cml() {
        let data = tiny_dataset();
        for mode in [BatchMode::PerTriplet, BatchMode::Batched] {
            let cfg = BaselineConfig {
                batch_mode: mode,
                ..BaselineConfig::quick(16)
            };
            tests_support::improves_over_untrained(
                || Cml::new(cfg.clone(), data.num_users(), data.num_items()),
                &data,
            );
        }
    }

    #[test]
    fn sharded_engine_matches_training_quality() {
        // Threads change float summation order, not the algorithm: the
        // sharded run must still train to a working model.
        let data = tiny_dataset();
        let cfg = BaselineConfig {
            threads: 4,
            ..BaselineConfig::quick(16)
        };
        tests_support::improves_over_untrained(
            || Bpr::new(cfg.clone(), data.num_users(), data.num_items()),
            &data,
        );
    }

    #[test]
    fn rejects_bad_values() {
        let bad_dim = BaselineConfig {
            dim: 0,
            ..Default::default()
        };
        assert!(bad_dim.validate().is_err());
        let bad_lr = BaselineConfig {
            lr: f32::NAN,
            ..Default::default()
        };
        assert!(bad_lr.validate().is_err());
        let bad_negs = BaselineConfig {
            negatives_per_positive: 0,
            ..Default::default()
        };
        assert!(bad_negs.validate().is_err());
    }
}
