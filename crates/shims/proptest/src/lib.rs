//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the subset of proptest's API its property tests use: the [`Strategy`]
//! trait over ranges / tuples / [`collection::vec`] / `prop_map`, and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the case number and message;
//!   inputs are deterministic per test (seeded from the test's name), so a
//!   failure reproduces exactly by re-running the test.
//! * **Fixed case count** (default [`DEFAULT_CASES`]) instead of an
//!   adaptive runner; override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::Range;

/// Cases run per property unless a block overrides it.
pub const DEFAULT_CASES: u32 = 64;

/// Failure raised by `prop_assert!`-style macros inside a property body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (case count only).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic per-test RNG: FNV-1a of the test name, so adding or
/// reordering tests never perturbs another test's inputs.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of test inputs. Unlike upstream there is no value tree — a
/// strategy simply draws a value from the runner's RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f` (upstream `prop_map`).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Sizes accepted by [`collection::vec`]: a fixed length or a length range.
pub trait SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    /// Upstream-compatible constructor.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import the tests use.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests. Supported grammar (a subset of upstream):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))] // optional
///     #[test]
///     fn name(pattern in strategy, ...) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            cfg.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, f in -1.0f32..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn prop_map_applies(d in (0u32..4, 0u32..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(d <= 6);
        }

        #[test]
        fn early_ok_return_is_supported(n in 0usize..3) {
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n < 3);
        }
    }

    #[test]
    fn deterministic_inputs_per_test() {
        let mut a = crate::test_rng("x");
        let mut b = crate::test_rng("x");
        let s = crate::collection::vec(0u64..1000, 5usize);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
