//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace vendors
//! the *subset* of `rand` 0.8's API its code actually uses: the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, and [`rngs::StdRng`]. The generator behind `StdRng` is
//! xoshiro256++ seeded through SplitMix64 — not the ChaCha12 of upstream
//! `rand`, so streams differ from the real crate, but every consumer in this
//! workspace only relies on determinism-given-seed and statistical quality,
//! both of which xoshiro provides.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. Mirror of `rand_core::RngCore`, reduced
/// to what the workspace needs.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods over any [`RngCore`] — the user-facing sampling API.
pub trait Rng: RngCore {
    /// A sample from the "standard" distribution of `T`: uniform in `[0, 1)`
    /// for floats, uniform over all values for integers and `bool`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// If the range is empty.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: invalid probability {p}"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution (see [`Rng::gen`]).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform sample can be drawn from (see [`Rng::gen_range`]).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Modulo draw: the bias is < span/2^64, far below anything a
                // statistical test in this workspace can resolve.
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // Rounding can land exactly on `end`; nudge back inside.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty float range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the ChaCha12 of upstream `rand` — see the crate docs. Passes
    /// BigCrush-level statistical tests per its authors (Blackman & Vigna),
    /// which is far more than the training loops here require.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the seeding scheme xoshiro's authors
            // recommend; it cannot produce the all-zero state.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let j = rng.gen_range(0usize..=4);
            assert!(j <= 4);
            let f = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        let draws = 80_000;
        for _ in 0..draws {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            let f = c as f64 / draws as f64;
            assert!((f - 0.125).abs() < 0.01, "bucket frequency {f}");
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(draw(&mut rng) < 10);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
