//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of criterion's API its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`, `Bencher::iter`
//! / `iter_batched`, `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model (simpler than upstream, same contract): each benchmark
//! is warmed up for a fixed wall-clock budget, then timed over batches until
//! the measurement budget elapses; the mean ns/iter is printed. There are no
//! statistical reports or HTML output — the numbers land on stdout, one line
//! per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Returns its argument, preventing the optimizer from deleting the
/// computation that produced it.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (accepted and ignored: the shim always
/// times routine-only, per call).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> Self {
        Self {
            label: format!("{name}/{param}"),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            label: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level driver handed to every bench function.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warmup: Duration::from_millis(150),
            measure: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            warmup: self.warmup,
            measure: self.measure,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        println!(
            "bench: {:<50} {:>12.1} ns/iter",
            id.to_string(),
            b.ns_per_iter
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; the shim's budget is
    /// fixed, so this is accepted and ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_function(full, f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Times closures; one per benchmark invocation.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    ns_per_iter: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine());
        }
        // Measure in growing batches so Instant::now overhead stays small.
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        let mut batch: u64 = 1;
        while elapsed < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            elapsed += t.elapsed();
            iters += batch;
            batch = batch.saturating_mul(2).min(1 << 20);
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        // Setup cost is excluded by timing each routine call individually.
        let start = Instant::now();
        while start.elapsed() < self.warmup {
            black_box(routine(setup()));
        }
        let mut iters: u64 = 0;
        let mut elapsed = Duration::ZERO;
        while elapsed < self.measure {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            elapsed += t.elapsed();
            iters += 1;
        }
        self.ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point: `criterion_main!(group_a, group_b);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter_batched(
                || vec![1u64; n as usize],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dot", 32).to_string(), "dot/32");
        assert_eq!(BenchmarkId::from_parameter("k4").to_string(), "k4");
    }
}
