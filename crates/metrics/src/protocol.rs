//! The paper's evaluation protocol (§V-A2).
//!
//! For each held-out `(user, item)` pair: sample 100 items the user has
//! *never* interacted with (train ∪ dev ∪ test), rank the held-out item
//! against them, and accumulate HR@K / nDCG@K / MRR / AUC. Negative sets are
//! drawn from a per-evaluation seed so every model in a comparison ranks
//! against the *same* candidates — without that, small models differences
//! drown in sampling noise.
//!
//! ## Execution engines
//!
//! [`RankingEvaluator::evaluate_pairs`] runs the **batched** engine: all
//! negative candidate sets are pre-drawn up front, each user's full
//! candidate block is scored in one [`Scorer::score_block`] call, and pairs
//! fan out across a `mars-runtime` worker pool. Each pair's outcome is
//! recorded into its own positional slot and the metric sums are reduced
//! serially in pair order, so the batched engine — serial *or* parallel —
//! is **bit-identical** to the sequential reference
//! ([`RankingEvaluator::evaluate_pairs_sequential`], the seed's one-pair-at-
//! a-time walk, kept for A/B checks and the evaluation benchmark).
//!
//! ## Counter-based negative draws
//!
//! Negative sampling is keyed per pair: pair `i` draws from its own
//! [`CounterRng`] stream `(seed, i)`, a pure function of the evaluation
//! seed and the pair index (see `mars_runtime::rng`). Because no RNG state
//! is shared across pairs, the pre-draw **fans out across the worker
//! pool** — the phase that stayed serial through PR 2 — while the candidate
//! sets remain bit-identical at every worker count, and identical to what
//! the sequential protocol draws pair by pair.

use crate::ranking::{auc_from_rank, hit_ratio_at, mrr_from_rank, ndcg_at, rank_of_positive};
use crate::Scorer;
use mars_data::dataset::{Dataset, HeldOut};
use mars_data::{ItemId, UserId};
use mars_runtime::{chunk_ranges, CounterRng, WorkerPool};
use std::collections::HashMap;

/// Evaluation configuration.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Number of sampled negatives per test case (paper: 100).
    pub num_negatives: usize,
    /// Cutoffs to report (paper: 10 and 20).
    pub cutoffs: Vec<usize>,
    /// Seed for negative sampling — shared across models in a comparison.
    /// Pair `i` draws from the counter-based stream keyed `(seed, i)`, so
    /// the candidate sets are a pure function of `(seed, pair order)`.
    pub seed: u64,
    /// Worker threads for the batched evaluator: `0` = all cores, `1` =
    /// serial. Results are bit-identical at every thread count.
    pub threads: usize,
}

impl Default for EvalConfig {
    fn default() -> Self {
        Self {
            num_negatives: 100,
            cutoffs: vec![10, 20],
            seed: 2021,
            threads: 0,
        }
    }
}

/// Aggregated evaluation results.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// `(cutoff, mean HR@cutoff)` in the order of [`EvalConfig::cutoffs`].
    pub hr: Vec<(usize, f32)>,
    /// `(cutoff, mean nDCG@cutoff)`.
    pub ndcg: Vec<(usize, f32)>,
    /// Mean reciprocal rank.
    pub mrr: f32,
    /// Mean AUC over test cases.
    pub auc: f32,
    /// Number of evaluated test cases.
    pub cases: usize,
}

impl Report {
    /// HR at the requested cutoff (panics if the cutoff was not evaluated).
    pub fn hr_at(&self, k: usize) -> f32 {
        self.hr
            .iter()
            .find(|(c, _)| *c == k)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("HR@{k} was not evaluated"))
    }

    /// nDCG at the requested cutoff (panics if the cutoff was not evaluated).
    pub fn ndcg_at(&self, k: usize) -> f32 {
        self.ndcg
            .iter()
            .find(|(c, _)| *c == k)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("nDCG@{k} was not evaluated"))
    }
}

/// All pre-drawn negative candidate sets of an evaluation, flat. Pair `i`'s
/// candidates are `items[offsets[i]..offsets[i + 1]]`.
struct DrawnNegatives {
    items: Vec<ItemId>,
    offsets: Vec<usize>,
}

impl DrawnNegatives {
    #[inline]
    fn get(&self, i: usize) -> &[ItemId] {
        &self.items[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// The per-pair outcome the parallel workers record: `(rank, negatives)`;
/// `None` when the pair was skipped (user interacted with the whole
/// catalogue). All metrics are pure functions of this record, so the
/// reduction can run serially in pair order after the parallel phase.
type PairOutcome = Option<(usize, usize)>;

/// One worker's slice of the evaluation: which pair indices it owns and the
/// outcomes it produced (positionally aligned with that range).
struct EvalShard {
    range: std::ops::Range<usize>,
    out: Vec<PairOutcome>,
}

/// Runs the sampled-negatives leave-one-out protocol.
pub struct RankingEvaluator {
    config: EvalConfig,
}

impl RankingEvaluator {
    /// Creates an evaluator with the given config.
    pub fn new(config: EvalConfig) -> Self {
        assert!(config.num_negatives > 0, "need at least one negative");
        assert!(!config.cutoffs.is_empty(), "need at least one cutoff");
        Self { config }
    }

    /// Paper defaults: 100 negatives, cutoffs {10, 20}, seed 2021.
    pub fn paper() -> Self {
        Self::new(EvalConfig::default())
    }

    /// Evaluates `model` on the dataset's test pairs.
    pub fn evaluate<S: Scorer + Sync + ?Sized>(&self, model: &S, data: &Dataset) -> Report {
        self.evaluate_pairs(model, data, &data.test)
    }

    /// Evaluates on the dev pairs (for tuning / early stopping).
    pub fn evaluate_dev<S: Scorer + Sync + ?Sized>(&self, model: &S, data: &Dataset) -> Report {
        self.evaluate_pairs(model, data, &data.dev)
    }

    /// Evaluates on an explicit list of held-out pairs with the batched
    /// engine (see the module docs), spinning up a worker pool per
    /// [`EvalConfig::threads`].
    pub fn evaluate_pairs<S: Scorer + Sync + ?Sized>(
        &self,
        model: &S,
        data: &Dataset,
        pairs: &[HeldOut],
    ) -> Report {
        let pool = WorkerPool::with_threads(self.config.threads);
        self.evaluate_pairs_on(model, data, pairs, &pool)
    }

    /// The batched engine on a caller-provided pool (reused across calls —
    /// the grouped evaluation and repeated dev evals share one pool).
    pub fn evaluate_pairs_on<S: Scorer + Sync + ?Sized>(
        &self,
        model: &S,
        data: &Dataset,
        pairs: &[HeldOut],
        pool: &WorkerPool,
    ) -> Report {
        // Phase 1 (parallel): pre-draw every candidate set. Streams are
        // keyed per pair, so the fan-out cannot change a single draw.
        let drawn = self.predraw_negatives(data, pairs, pool);

        // Phase 2 (parallel): score each pair's full candidate block and
        // record its (rank, #negatives) outcome into its positional slot.
        let mut shards: Vec<EvalShard> = chunk_ranges(pairs.len(), pool.workers())
            .into_iter()
            .map(|range| EvalShard {
                out: Vec::with_capacity(range.len()),
                range,
            })
            .collect();
        pool.scatter(&mut shards, |_, sh| {
            let mut scores: Vec<f32> = Vec::with_capacity(self.config.num_negatives + 1);
            let mut block: Vec<ItemId> = Vec::with_capacity(self.config.num_negatives + 1);
            sh.out.clear();
            for i in sh.range.clone() {
                let h = &pairs[i];
                let negatives = drawn.get(i);
                if negatives.is_empty() {
                    sh.out.push(None);
                    continue;
                }
                // One fused call over the user's full candidate block —
                // held-out item first, then its negatives — so the per-user
                // scoring setup (Θ softmax, facet gather, norms) is paid
                // once per 101 candidates.
                block.clear();
                block.push(h.item);
                block.extend_from_slice(negatives);
                model.score_block(h.user, &block, &mut scores);
                sh.out.push(Some((
                    rank_of_positive(scores[0], &scores[1..]),
                    negatives.len(),
                )));
            }
        });

        // Phase 3 (serial): reduce in pair order — shards are contiguous
        // in-order chunks, so this is the sequential accumulation order.
        self.reduce(shards.iter().flat_map(|sh| sh.out.iter().copied()))
    }

    /// The seed's sequential reference protocol: one held-out pair at a
    /// time through scalar [`Scorer::score_many`] calls, negatives drawn
    /// on the fly. Kept as the A/B baseline for the batched engine (the
    /// equivalence is asserted in tests and measured in `BENCH_eval.json`).
    pub fn evaluate_pairs_sequential<S: Scorer + ?Sized>(
        &self,
        model: &S,
        data: &Dataset,
        pairs: &[HeldOut],
    ) -> Report {
        // Reusable buffers (perf-book: workhorse collections).
        let mut negatives: Vec<ItemId> = Vec::with_capacity(self.config.num_negatives);
        let mut scores: Vec<f32> = Vec::with_capacity(self.config.num_negatives);

        let outcomes = pairs.iter().enumerate().map(|(i, h)| {
            self.sample_negatives(data, h, i, &mut negatives);
            if negatives.is_empty() {
                return None; // user interacted with the whole catalogue
            }
            let pos_score = model.score(h.user, h.item);
            model.score_many(h.user, &negatives, &mut scores);
            Some((rank_of_positive(pos_score, &scores), negatives.len()))
        });
        // Funnel through the same reduction as the batched engine so the
        // two paths share their float accumulation operation-for-operation.
        let collected: Vec<PairOutcome> = outcomes.collect();
        self.reduce(collected.into_iter())
    }

    /// Folds per-pair outcomes into a [`Report`], in iteration order. Both
    /// engines funnel through this, so their float accumulation is
    /// literally the same code.
    fn reduce(&self, outcomes: impl Iterator<Item = PairOutcome>) -> Report {
        let cutoffs = &self.config.cutoffs;
        let mut hr_acc = vec![0.0f64; cutoffs.len()];
        let mut ndcg_acc = vec![0.0f64; cutoffs.len()];
        let mut mrr_acc = 0.0f64;
        let mut auc_acc = 0.0f64;
        let mut cases = 0usize;
        for outcome in outcomes {
            let Some((rank, num_negatives)) = outcome else {
                continue;
            };
            for (i, &k) in cutoffs.iter().enumerate() {
                hr_acc[i] += hit_ratio_at(rank, k) as f64;
                ndcg_acc[i] += ndcg_at(rank, k) as f64;
            }
            mrr_acc += mrr_from_rank(rank) as f64;
            auc_acc += auc_from_rank(rank, num_negatives) as f64;
            cases += 1;
        }

        let n = cases.max(1) as f64;
        Report {
            hr: cutoffs
                .iter()
                .zip(&hr_acc)
                .map(|(&k, &v)| (k, (v / n) as f32))
                .collect(),
            ndcg: cutoffs
                .iter()
                .zip(&ndcg_acc)
                .map(|(&k, &v)| (k, (v / n) as f32))
                .collect(),
            mrr: (mrr_acc / n) as f32,
            auc: (auc_acc / n) as f32,
            cases,
        }
    }

    /// Evaluates per user-difficulty group: test users are bucketed by
    /// their *training* interaction count and one report is produced per
    /// bucket.
    ///
    /// This is the controlled experiment the paper lists as future work
    /// ("closely study the behavior of MARS regarding the so-called
    /// difficult users … grouped based on the number of interactions"):
    /// the spherical constraint exists precisely to stop the model from
    /// parking difficult (low-degree) users on the sphere surface, so the
    /// interesting comparison is MAR-vs-MARS *within the low buckets*.
    ///
    /// `edges` are ascending upper bounds; a user with degree `d` falls
    /// into the first bucket with `d <= edge`, the rest into a final
    /// overflow bucket. Returns `(label, report)` pairs. All buckets run
    /// through the batched engine on one shared worker pool.
    pub fn evaluate_by_user_degree<S: Scorer + Sync + ?Sized>(
        &self,
        model: &S,
        data: &Dataset,
        edges: &[usize],
    ) -> Vec<(String, Report)> {
        assert!(!edges.is_empty(), "need at least one bucket edge");
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must ascend");
        let bucket_of = |degree: usize| -> usize {
            edges
                .iter()
                .position(|&e| degree <= e)
                .unwrap_or(edges.len())
        };
        let mut buckets: Vec<Vec<HeldOut>> = vec![Vec::new(); edges.len() + 1];
        for h in &data.test {
            let deg = data.train.user_degree(h.user);
            buckets[bucket_of(deg)].push(*h);
        }
        let pool = WorkerPool::with_threads(self.config.threads);
        let mut out = Vec::with_capacity(buckets.len());
        let mut lower = 0usize;
        for (i, pairs) in buckets.iter().enumerate() {
            let label = if i < edges.len() {
                let l = format!("{}-{}", lower, edges[i]);
                lower = edges[i] + 1;
                l
            } else {
                format!(">{}", edges[edges.len() - 1])
            };
            out.push((label, self.evaluate_pairs_on(model, data, pairs, &pool)));
        }
        out
    }

    /// Pre-draws the negative candidate set of every pair — **exactly** the
    /// sets that [`Self::sample_negatives`] draws pair-by-pair in the
    /// sequential protocol — fanned out across `pool`. Pair `i` draws from
    /// its own counter-based stream `(seed, i)`, so neither the sharding
    /// nor the worker count can change a single draw: the result is
    /// bit-identical at every pool size (asserted in the tests). The
    /// per-user dev/test lookups are precomputed once (the sequential path
    /// re-scans both splits per pair), which changes no accept/reject
    /// decision and therefore no draw.
    fn predraw_negatives(
        &self,
        data: &Dataset,
        pairs: &[HeldOut],
        pool: &WorkerPool,
    ) -> DrawnNegatives {
        // First occurrence wins — `Iterator::find` semantics of the
        // sequential path.
        let mut dev_of: HashMap<UserId, ItemId> = HashMap::new();
        for d in &data.dev {
            dev_of.entry(d.user).or_insert(d.item);
        }
        let mut test_of: HashMap<UserId, ItemId> = HashMap::new();
        for d in &data.test {
            test_of.entry(d.user).or_insert(d.item);
        }

        let n = data.num_items();
        let want = self.config.num_negatives;
        let budget = want * 128;

        /// One worker's slice of the pre-draw: its pair range, the drawn
        /// items (concatenated in pair order) and one length per pair.
        struct DrawShard {
            range: std::ops::Range<usize>,
            items: Vec<ItemId>,
            lens: Vec<u32>,
        }
        let mut shards: Vec<DrawShard> = chunk_ranges(pairs.len(), pool.workers())
            .into_iter()
            .map(|range| DrawShard {
                items: Vec::with_capacity(range.len() * want),
                lens: Vec::with_capacity(range.len()),
                range,
            })
            .collect();
        pool.scatter(&mut shards, |_, sh| {
            for i in sh.range.clone() {
                let h = &pairs[i];
                let start = sh.items.len();
                let dev_item = dev_of.get(&h.user).copied();
                let test_item = test_of.get(&h.user).copied();
                let known = data.train.user_degree(h.user) + 2;
                if known < n {
                    let mut rng = CounterRng::keyed(self.config.seed, i as u64);
                    let mut attempts = 0usize;
                    while sh.items.len() - start < want && attempts < budget {
                        attempts += 1;
                        let v = rng.gen_below(n as u64) as ItemId;
                        // The already-drawn check scans only this pair's own
                        // slice — the literal `out.contains` of the
                        // sequential path (O(want) per draw beats a
                        // catalogue-sized stamp array: no O(items) fill per
                        // shard, and `want` is ~100).
                        if v == h.item
                            || Some(v) == dev_item
                            || Some(v) == test_item
                            || data.train.contains(h.user, v)
                            || sh.items[start..].contains(&v)
                        {
                            continue;
                        }
                        sh.items.push(v);
                    }
                }
                sh.lens.push((sh.items.len() - start) as u32);
            }
        });

        // Stitch the shard outputs back together: shards are contiguous
        // in-order pair ranges, so shard order is pair order.
        let total: usize = shards.iter().map(|sh| sh.items.len()).sum();
        let mut items: Vec<ItemId> = Vec::with_capacity(total);
        let mut offsets: Vec<usize> = Vec::with_capacity(pairs.len() + 1);
        offsets.push(0);
        for sh in &shards {
            items.extend_from_slice(&sh.items);
            for &len in &sh.lens {
                offsets.push(offsets.last().unwrap() + len as usize);
            }
        }
        DrawnNegatives { items, offsets }
    }

    /// Samples `num_negatives` distinct items the user never touched in any
    /// split (train membership + the user's own dev/test items), drawing
    /// from pair `pair_idx`'s own counter-based stream `(seed, pair_idx)` —
    /// the stream [`Self::predraw_negatives`] replays in parallel.
    fn sample_negatives(
        &self,
        data: &Dataset,
        h: &HeldOut,
        pair_idx: usize,
        out: &mut Vec<ItemId>,
    ) {
        out.clear();
        let n = data.num_items();
        let dev_item = data.dev.iter().find(|d| d.user == h.user).map(|d| d.item);
        let test_item = data.test.iter().find(|d| d.user == h.user).map(|d| d.item);
        let known = data.train.user_degree(h.user) + 2;
        if known >= n {
            return;
        }
        let mut rng = CounterRng::keyed(self.config.seed, pair_idx as u64);
        let mut attempts = 0usize;
        let budget = self.config.num_negatives * 128;
        while out.len() < self.config.num_negatives && attempts < budget {
            attempts += 1;
            let v = rng.gen_below(n as u64) as ItemId;
            if v == h.item
                || Some(v) == dev_item
                || Some(v) == test_item
                || data.train.contains(h.user, v)
                || out.contains(&v)
            {
                continue;
            }
            out.push(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mars_data::dataset::Dataset;
    use mars_data::{ItemId, UserId};

    /// Oracle model: scores item `t` highest for every user whose held-out
    /// test item is `t`.
    struct Oracle {
        target: Vec<ItemId>,
    }

    impl Scorer for Oracle {
        fn score(&self, user: UserId, item: ItemId) -> f32 {
            if self.target[user as usize] == item {
                1.0
            } else {
                0.0
            }
        }
    }

    /// Constant scorer — with pessimistic tie handling it must score 0 HR.
    struct Constant;
    impl Scorer for Constant {
        fn score(&self, _: UserId, _: ItemId) -> f32 {
            0.5
        }
    }

    /// Deterministic pseudo-random scorer with no structure — makes ranks
    /// (and thus every metric) sensitive to any scoring discrepancy.
    struct Hashing;
    impl Scorer for Hashing {
        fn score(&self, user: UserId, item: ItemId) -> f32 {
            let mut h = (user as u64) << 32 | item as u64;
            h ^= h >> 33;
            h = h.wrapping_mul(0xff51afd7ed558ccd);
            h ^= h >> 33;
            (h % 10_000) as f32 / 10_000.0
        }
    }

    fn toy_dataset() -> Dataset {
        // 4 users × 50 items, each with history [u, u+1, ..., u+5].
        let histories: Vec<Vec<ItemId>> = (0..4u32)
            .map(|u| (0..6).map(|i| u * 10 + i).collect())
            .collect();
        Dataset::leave_one_out("toy", 4, 50, &histories, vec![], 0)
    }

    /// A larger dataset so parallel evaluation actually spreads over
    /// several shards.
    fn wide_dataset() -> Dataset {
        let histories: Vec<Vec<ItemId>> = (0..60u32)
            .map(|u| (0..8).map(|i| (u * 7 + i * 3) % 200).collect())
            .collect();
        Dataset::leave_one_out("wide", 60, 200, &histories, vec![], 0)
    }

    #[test]
    fn oracle_gets_perfect_scores() {
        let data = toy_dataset();
        let mut target = vec![0; 4];
        for h in &data.test {
            target[h.user as usize] = h.item;
        }
        let report = RankingEvaluator::new(EvalConfig {
            num_negatives: 20,
            cutoffs: vec![1, 10],
            seed: 7,
            threads: 1,
        })
        .evaluate(&Oracle { target }, &data);
        assert_eq!(report.cases, 4);
        assert_eq!(report.hr_at(1), 1.0);
        assert_eq!(report.hr_at(10), 1.0);
        assert_eq!(report.ndcg_at(10), 1.0);
        assert_eq!(report.mrr, 1.0);
        assert_eq!(report.auc, 1.0);
    }

    #[test]
    fn constant_scorer_gets_zero() {
        let data = toy_dataset();
        let report = RankingEvaluator::new(EvalConfig {
            num_negatives: 20,
            cutoffs: vec![10],
            seed: 7,
            threads: 1,
        })
        .evaluate(&Constant, &data);
        assert_eq!(report.hr_at(10), 0.0);
        assert_eq!(report.ndcg_at(10), 0.0);
        assert_eq!(report.auc, 0.0);
    }

    #[test]
    fn negatives_exclude_all_known_items() {
        // Covered indirectly: the oracle test would fail if the test item
        // ever appeared among negatives (it would tie with score 1). Here we
        // explicitly check the sampler output.
        let data = toy_dataset();
        let ev = RankingEvaluator::new(EvalConfig {
            num_negatives: 30,
            cutoffs: vec![10],
            seed: 3,
            threads: 1,
        });
        let mut negs = Vec::new();
        for (i, h) in data.test.iter().enumerate() {
            ev.sample_negatives(&data, h, i, &mut negs);
            assert_eq!(negs.len(), 30);
            for &v in &negs {
                assert!(!data.train.contains(h.user, v));
                assert_ne!(v, h.item);
                assert!(data.dev.iter().all(|d| d.user != h.user || d.item != v));
            }
            // Distinct.
            let mut sorted = negs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 30);
        }
    }

    #[test]
    fn predrawn_negatives_match_sequential_draws_exactly() {
        // The batched engine's phase 1 must reproduce the sequential
        // per-pair streams set-for-set — this is what makes the engines
        // bit-identical.
        for data in [toy_dataset(), wide_dataset()] {
            let ev = RankingEvaluator::new(EvalConfig {
                num_negatives: 25,
                cutoffs: vec![10],
                seed: 13,
                threads: 1,
            });
            let drawn = ev.predraw_negatives(&data, &data.test, &WorkerPool::new(1));
            let mut negs = Vec::new();
            for (i, h) in data.test.iter().enumerate() {
                ev.sample_negatives(&data, h, i, &mut negs);
                assert_eq!(drawn.get(i), &negs[..], "pair {i} diverged");
            }
        }
    }

    #[test]
    fn parallel_predraw_is_bit_identical_at_every_worker_count() {
        // The counter-based streams make the pre-draw a pure function of
        // (seed, pair index): fanning it across 1..=8 workers must not
        // change one item of one candidate set.
        for data in [toy_dataset(), wide_dataset()] {
            let ev = RankingEvaluator::new(EvalConfig {
                num_negatives: 40,
                cutoffs: vec![10],
                seed: 99,
                threads: 1,
            });
            let reference = ev.predraw_negatives(&data, &data.test, &WorkerPool::new(1));
            for workers in 2..=8 {
                let got = ev.predraw_negatives(&data, &data.test, &WorkerPool::new(workers));
                assert_eq!(
                    got.items, reference.items,
                    "items diverged at {workers} workers"
                );
                assert_eq!(
                    got.offsets, reference.offsets,
                    "offsets diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn batched_and_parallel_reports_are_bit_identical_to_sequential() {
        // The acceptance gate of the batched engine: same seed ⇒ the exact
        // same Report, across scorers, thread counts and datasets.
        for data in [toy_dataset(), wide_dataset()] {
            let mut target = vec![0; data.num_users()];
            for h in &data.test {
                target[h.user as usize] = h.item;
            }
            let scorers: Vec<Box<dyn Scorer + Sync>> = vec![
                Box::new(Hashing),
                Box::new(Constant),
                Box::new(Oracle { target }),
            ];
            for scorer in &scorers {
                for threads in [1usize, 2, 4, 7] {
                    let ev = RankingEvaluator::new(EvalConfig {
                        num_negatives: 40,
                        cutoffs: vec![5, 10, 20],
                        seed: 99,
                        threads,
                    });
                    let sequential =
                        ev.evaluate_pairs_sequential(scorer.as_ref(), &data, &data.test);
                    let batched = ev.evaluate_pairs(scorer.as_ref(), &data, &data.test);
                    assert_eq!(
                        sequential, batched,
                        "batched engine diverged at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_same_report() {
        let data = toy_dataset();
        let cfg = EvalConfig {
            num_negatives: 25,
            cutoffs: vec![5, 10],
            seed: 11,
            threads: 0,
        };
        let a = RankingEvaluator::new(cfg.clone()).evaluate(&Constant, &data);
        let b = RankingEvaluator::new(cfg).evaluate(&Constant, &data);
        assert_eq!(a.hr, b.hr);
        assert_eq!(a.ndcg, b.ndcg);
        assert_eq!(a.cases, b.cases);
    }

    #[test]
    fn report_accessors_panic_on_missing_cutoff() {
        let r = Report {
            hr: vec![(10, 0.5)],
            ndcg: vec![(10, 0.3)],
            mrr: 0.0,
            auc: 0.0,
            cases: 1,
        };
        assert_eq!(r.hr_at(10), 0.5);
        let res = std::panic::catch_unwind(|| r.hr_at(20));
        assert!(res.is_err());
    }

    #[test]
    fn grouped_eval_partitions_all_cases() {
        let data = toy_dataset();
        let ev = RankingEvaluator::new(EvalConfig {
            num_negatives: 10,
            cutoffs: vec![10],
            seed: 5,
            threads: 2,
        });
        let groups = ev.evaluate_by_user_degree(&Constant, &data, &[2, 5]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].0, "0-2");
        assert_eq!(groups[1].0, "3-5");
        assert_eq!(groups[2].0, ">5");
        let total: usize = groups.iter().map(|(_, r)| r.cases).sum();
        assert_eq!(total, data.test.len());
        // Every toy user has 4 train interactions (6 distinct − dev − test).
        assert_eq!(groups[1].1.cases, data.test.len());
    }

    #[test]
    fn dev_and_test_eval_differ() {
        let data = toy_dataset();
        let mut target = vec![0; 4];
        for h in &data.test {
            target[h.user as usize] = h.item;
        }
        let oracle = Oracle { target };
        let ev = RankingEvaluator::paper();
        let test_rep = ev.evaluate(&oracle, &data);
        let dev_rep = ev.evaluate_dev(&oracle, &data);
        // Oracle targets the test items, so test HR is 1 and dev HR is 0.
        assert_eq!(test_rep.hr_at(10), 1.0);
        assert_eq!(dev_rep.hr_at(10), 0.0);
    }
}
