//! Rank-based metric primitives.
//!
//! In the leave-one-out protocol each test case has exactly one relevant
//! item ranked against `n` sampled negatives, so every metric reduces to a
//! function of the relevant item's 0-based rank:
//!
//! * HR@K   = 1 if rank < K
//! * nDCG@K = 1/log₂(rank+2) if rank < K (the single-relevant-item DCG,
//!   with ideal DCG = 1)
//! * MRR    = 1/(rank+1)
//! * AUC    = fraction of negatives ranked below the positive

/// 0-based rank of the positive among `negatives ∪ {positive}` when sorted
/// by descending score.
///
/// Ties count *against* the positive (a tied negative is ranked above it) —
/// the pessimistic convention, so an untrained constant scorer gets
/// HR ≈ 0 rather than a flattering random number. NaN scores are treated as
/// −∞ (never outrank anything).
pub fn rank_of_positive(positive_score: f32, negative_scores: &[f32]) -> usize {
    let p = if positive_score.is_nan() {
        f32::NEG_INFINITY
    } else {
        positive_score
    };
    negative_scores
        .iter()
        .filter(|&&s| !s.is_nan() && s >= p)
        .count()
}

/// HR@K for a single test case given the positive's 0-based rank.
#[inline]
pub fn hit_ratio_at(rank: usize, k: usize) -> f32 {
    if rank < k {
        1.0
    } else {
        0.0
    }
}

/// nDCG@K for a single test case with one relevant item at `rank` (0-based).
#[inline]
pub fn ndcg_at(rank: usize, k: usize) -> f32 {
    if rank < k {
        1.0 / ((rank as f32 + 2.0).log2())
    } else {
        0.0
    }
}

/// Reciprocal rank (MRR contribution) for one test case.
#[inline]
pub fn mrr_from_rank(rank: usize) -> f32 {
    1.0 / (rank as f32 + 1.0)
}

/// AUC for one test case: fraction of the `num_negatives` ranked *below*
/// the positive.
#[inline]
pub fn auc_from_rank(rank: usize, num_negatives: usize) -> f32 {
    if num_negatives == 0 {
        return 1.0;
    }
    debug_assert!(rank <= num_negatives);
    (num_negatives - rank) as f32 / num_negatives as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_better_and_ties() {
        assert_eq!(rank_of_positive(0.9, &[0.1, 0.2, 0.3]), 0);
        assert_eq!(rank_of_positive(0.25, &[0.1, 0.2, 0.3]), 1);
        assert_eq!(rank_of_positive(0.05, &[0.1, 0.2, 0.3]), 3);
        // Ties go against the positive.
        assert_eq!(rank_of_positive(0.2, &[0.1, 0.2, 0.3]), 2);
    }

    #[test]
    fn nan_scores_are_worst() {
        assert_eq!(rank_of_positive(f32::NAN, &[0.0, 1.0]), 2);
        // NaN negatives never outrank.
        assert_eq!(rank_of_positive(0.5, &[f32::NAN, 0.1]), 0);
    }

    #[test]
    fn hit_ratio_boundary() {
        assert_eq!(hit_ratio_at(9, 10), 1.0);
        assert_eq!(hit_ratio_at(10, 10), 0.0);
        assert_eq!(hit_ratio_at(0, 1), 1.0);
    }

    #[test]
    fn ndcg_hand_values() {
        // rank 0: 1/log2(2) = 1
        assert!((ndcg_at(0, 10) - 1.0).abs() < 1e-6);
        // rank 1: 1/log2(3) ≈ 0.63093
        assert!((ndcg_at(1, 10) - 0.63093).abs() < 1e-4);
        // rank 9 within K=10, rank 10 outside
        assert!(ndcg_at(9, 10) > 0.0);
        assert_eq!(ndcg_at(10, 10), 0.0);
    }

    #[test]
    fn ndcg_monotone_in_rank() {
        let mut prev = f32::INFINITY;
        for r in 0..10 {
            let v = ndcg_at(r, 10);
            assert!(v < prev);
            prev = v;
        }
    }

    #[test]
    fn mrr_values() {
        assert_eq!(mrr_from_rank(0), 1.0);
        assert_eq!(mrr_from_rank(1), 0.5);
        assert_eq!(mrr_from_rank(3), 0.25);
    }

    #[test]
    fn auc_extremes() {
        assert_eq!(auc_from_rank(0, 100), 1.0);
        assert_eq!(auc_from_rank(100, 100), 0.0);
        assert_eq!(auc_from_rank(50, 100), 0.5);
        assert_eq!(auc_from_rank(0, 0), 1.0);
    }
}
