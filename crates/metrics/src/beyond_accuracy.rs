//! Beyond-accuracy metrics: catalogue coverage, recommendation Gini, and
//! embedding-based intra-list diversity.
//!
//! Not in the paper's tables, but standard for a production recommender
//! library and directly relevant to its motivation: a model that resolves
//! multi-facet conflicts should recommend across a user's *several*
//! interests rather than collapsing onto one, which shows up as higher
//! intra-list diversity at equal accuracy.

use mars_data::ItemId;

/// Fraction of the catalogue that appears in at least one user's top-N
/// list. `lists` holds one recommendation list per user.
pub fn catalogue_coverage(lists: &[Vec<ItemId>], num_items: usize) -> f32 {
    if num_items == 0 {
        return 0.0;
    }
    let mut seen = vec![false; num_items];
    let mut distinct = 0usize;
    for list in lists {
        for &v in list {
            let idx = v as usize;
            if !seen[idx] {
                seen[idx] = true;
                distinct += 1;
            }
        }
    }
    distinct as f32 / num_items as f32
}

/// Gini coefficient of recommendation exposure across items: 0 = every
/// item recommended equally often, → 1 = all exposure on one item.
///
/// Computed over the items that exist (unrecommended items count as zero
/// exposure — a recommender that only ever shows 10 blockbusters should
/// score near 1, not near 0).
pub fn exposure_gini(lists: &[Vec<ItemId>], num_items: usize) -> f32 {
    if num_items == 0 {
        return 0.0;
    }
    let mut counts = vec![0usize; num_items];
    for list in lists {
        for &v in list {
            counts[v as usize] += 1;
        }
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts.sort_unstable();
    // Gini over a sorted distribution: 1 - 2·Σ_i (n-i-0.5)·x_i / (n·Σx).
    let n = num_items as f64;
    let sum: f64 = total as f64;
    let weighted: f64 = counts
        .iter()
        .enumerate()
        .map(|(i, &c)| (n - i as f64 - 0.5) * c as f64)
        .sum();
    (1.0 - 2.0 * weighted / (n * sum)).clamp(-1.0, 1.0) as f32
}

/// Mean pairwise distance between the items of one recommendation list
/// under a caller-provided distance (e.g. 1 − cos over item embeddings).
/// Returns 0 for lists shorter than 2.
pub fn intra_list_diversity(
    list: &[ItemId],
    mut distance: impl FnMut(ItemId, ItemId) -> f32,
) -> f32 {
    if list.len() < 2 {
        return 0.0;
    }
    let mut sum = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..list.len() {
        for j in (i + 1)..list.len() {
            sum += distance(list[i], list[j]) as f64;
            pairs += 1;
        }
    }
    (sum / pairs as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_distinct_items() {
        let lists = vec![vec![0, 1, 2], vec![2, 3], vec![0]];
        assert!((catalogue_coverage(&lists, 8) - 0.5).abs() < 1e-6);
        assert_eq!(catalogue_coverage(&[], 8), 0.0);
        assert_eq!(catalogue_coverage(&lists, 0), 0.0);
    }

    #[test]
    fn gini_uniform_is_low_concentrated_is_high() {
        // Every item recommended once: perfectly equal.
        let uniform: Vec<Vec<ItemId>> = (0..8).map(|v| vec![v]).collect();
        let g_uniform = exposure_gini(&uniform, 8);
        assert!(g_uniform.abs() < 1e-6, "{g_uniform}");
        // All exposure on item 0.
        let concentrated = vec![vec![0; 10], vec![0; 10]];
        let g_conc = exposure_gini(&concentrated, 8);
        assert!(g_conc > 0.8, "{g_conc}");
        assert!(g_conc > g_uniform);
    }

    #[test]
    fn gini_empty_is_zero() {
        assert_eq!(exposure_gini(&[], 4), 0.0);
        assert_eq!(exposure_gini(&[vec![]], 4), 0.0);
    }

    #[test]
    fn diversity_of_identical_items_is_zero() {
        let d = intra_list_diversity(&[1, 1, 1], |_, _| 0.0);
        assert_eq!(d, 0.0);
        let single = intra_list_diversity(&[3], |_, _| 1.0);
        assert_eq!(single, 0.0);
    }

    #[test]
    fn diversity_averages_pairwise_distances() {
        // Items 0,1 close (0.2), both far from 2 (1.0): mean = (0.2+1+1)/3.
        let d = intra_list_diversity(&[0, 1, 2], |a, b| {
            if (a, b) == (0, 1) || (a, b) == (1, 0) {
                0.2
            } else {
                1.0
            }
        });
        assert!((d - (0.2 + 1.0 + 1.0) / 3.0).abs() < 1e-6);
    }
}
