//! # mars-metrics
//!
//! Ranking metrics and the evaluation protocol of the paper (§V-A2):
//! leave-one-out with 100 sampled negatives, reporting HR@{10,20} and
//! nDCG@{10,20}. The [`Scorer`] trait is the only thing a model must
//! implement to be evaluated — every baseline and MAR/MARS plug into the
//! same [`RankingEvaluator`], so comparisons in the harness differ only in
//! the model.

// This crate is part of the deterministic numeric core: no unsafe
// anywhere (the vetted unsafe surface lives in mars-tensor::simd
// and mars-runtime; see `cargo run -p mars-audit -- check`).
#![forbid(unsafe_code)]
pub mod beyond_accuracy;
pub mod protocol;
pub mod ranking;

pub use protocol::{EvalConfig, RankingEvaluator, Report};
pub use ranking::{auc_from_rank, hit_ratio_at, mrr_from_rank, ndcg_at};

use mars_data::{ItemId, UserId};

/// Anything that can score a `(user, item)` pair. Higher = more relevant.
///
/// Implementations must be deterministic during evaluation (train first,
/// then score).
///
/// **Bitwise-agreement contract:** all three scoring entry points must
/// produce bit-identical values for the same `(user, item)` — `score`,
/// `score_many`, and `score_block` may reorganize the computation (hoist
/// loop-invariant work, fuse kernels) but not its float semantics. The
/// batched evaluation engine is asserted bit-identical to the sequential
/// protocol, and the two paths mix entry points freely (sequential scores
/// the held-out item via `score` and the negatives via `score_many`;
/// batched scores the whole candidate block via `score_block`), so a model
/// whose entry points disagree in even the last bit can flip a rank on a
/// near-tie and silently break that guarantee.
///
/// **Ordering contract (retrieval):** scores only need to be *comparable*,
/// not calibrated. `mars-serve`'s top-k retriever orders candidates by
/// descending score under a **total** order (`mars_serve::rank_cmp`):
/// equal scores — including `+0.0` vs `-0.0`, which compare IEEE-equal —
/// break by ascending item id, and NaN ranks strictly after every real
/// score (either sign, any payload). A scorer should avoid NaN — it means
/// "rank this item last", never "rank it high" — but emitting one cannot
/// produce nondeterminism, an inconsistent sort, or a panic downstream.
/// Note the *evaluation* protocol's tie convention is different and
/// stricter: `rank_of_positive` is pessimistic (a negative tying the
/// held-out item ranks above it, with no id tie-break), so score ties are
/// harmless in serving but cost HR/nDCG in evaluation.
pub trait Scorer {
    /// Preference score of `user` for `item`.
    fn score(&self, user: UserId, item: ItemId) -> f32;

    /// Scores one user against many items. The default loops over
    /// [`Scorer::score`]; models with shareable per-user work (projecting
    /// the user into K facet spaces, say) override this.
    fn score_many(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        out.clear();
        out.extend(items.iter().map(|&v| self.score(user, v)));
    }

    /// Scores one user against a whole candidate *block* — the batched
    /// evaluator's hot path (one call per 101-candidate leave-one-out
    /// case). The default delegates to [`Scorer::score_many`]; models whose
    /// parameters admit fused row kernels (MARS over contiguous facet
    /// blocks, the metric baselines over `mars-tensor::rows`) override this
    /// with a gather-free / fused implementation.
    ///
    /// **Contract:** must be bit-identical to [`Scorer::score_many`] on the
    /// same inputs — the evaluator's batched path is asserted to reproduce
    /// the sequential protocol exactly, which holds only if the two scoring
    /// entry points agree bitwise.
    fn score_block(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        self.score_many(user, items, out)
    }
}
