//! # mars-metrics
//!
//! Ranking metrics and the evaluation protocol of the paper (§V-A2):
//! leave-one-out with 100 sampled negatives, reporting HR@{10,20} and
//! nDCG@{10,20}. The [`Scorer`] trait is the only thing a model must
//! implement to be evaluated — every baseline and MAR/MARS plug into the
//! same [`RankingEvaluator`], so comparisons in the harness differ only in
//! the model.

pub mod beyond_accuracy;
pub mod protocol;
pub mod ranking;

pub use protocol::{EvalConfig, RankingEvaluator, Report};
pub use ranking::{auc_from_rank, hit_ratio_at, mrr_from_rank, ndcg_at};

use mars_data::{ItemId, UserId};

/// Anything that can score a `(user, item)` pair. Higher = more relevant.
///
/// Implementations must be deterministic during evaluation (train first,
/// then score).
pub trait Scorer {
    /// Preference score of `user` for `item`.
    fn score(&self, user: UserId, item: ItemId) -> f32;

    /// Scores one user against many items. The default loops over
    /// [`Scorer::score`]; models with shareable per-user work (projecting
    /// the user into K facet spaces, say) override this.
    fn score_many(&self, user: UserId, items: &[ItemId], out: &mut Vec<f32>) {
        out.clear();
        out.extend(items.iter().map(|&v| self.score(user, v)));
    }
}
