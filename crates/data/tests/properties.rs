//! Property-based tests for the data layer.

use mars_data::alias::AliasTable;
use mars_data::dataset::Dataset;
use mars_data::interactions::Interactions;
use mars_data::margin::{compute_margins, MarginMode};
use mars_data::sampler::{NegativeSampler, UniformNegativeSampler, UserSampler};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Arbitrary interaction sets over a small universe.
fn pairs_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..12, 0u32..15), 0..120)
}

proptest! {
    #[test]
    fn interactions_roundtrip_through_pairs(pairs in pairs_strategy()) {
        let x = Interactions::from_pairs(12, 15, &pairs);
        let rebuilt: Vec<_> = x.iter_pairs().collect();
        let y = Interactions::from_pairs(12, 15, &rebuilt);
        prop_assert_eq!(x.num_interactions(), y.num_interactions());
        for u in 0..12 {
            prop_assert_eq!(x.items_of(u), y.items_of(u));
        }
    }

    #[test]
    fn degrees_sum_to_interactions(pairs in pairs_strategy()) {
        let x = Interactions::from_pairs(12, 15, &pairs);
        let user_sum: usize = (0..12).map(|u| x.user_degree(u)).sum();
        let item_sum: usize = (0..15).map(|v| x.item_degree(v)).sum();
        prop_assert_eq!(user_sum, x.num_interactions());
        prop_assert_eq!(item_sum, x.num_interactions());
    }

    #[test]
    fn membership_agrees_with_both_orientations(pairs in pairs_strategy()) {
        let x = Interactions::from_pairs(12, 15, &pairs);
        for u in 0..12u32 {
            for v in 0..15u32 {
                let via_user = x.items_of(u).contains(&v);
                let via_item = x.users_of(v).contains(&u);
                prop_assert_eq!(via_user, via_item);
                prop_assert_eq!(via_user, x.contains(u, v));
            }
        }
    }

    #[test]
    fn margins_always_in_configured_range(pairs in pairs_strategy()) {
        let x = Interactions::from_pairs(12, 15, &pairs);
        for mode in [MarginMode::DistinctTwoHop, MarginMode::ClampedSum, MarginMode::Fixed(0.4)] {
            let m = compute_margins(&x, mode, 0.05);
            prop_assert_eq!(m.len(), 12);
            prop_assert!(m.iter().all(|&g| (0.05..=1.0).contains(&g)));
        }
    }

    #[test]
    fn negative_sampler_never_returns_positive(pairs in pairs_strategy(), seed in 0u64..100) {
        let x = Interactions::from_pairs(12, 15, &pairs);
        let mut rng = StdRng::seed_from_u64(seed);
        let s = UniformNegativeSampler;
        for u in 0..12u32 {
            if let Some(v) = s.sample_negative(&x, u, &mut rng) {
                prop_assert!(!x.contains(u, v));
            } else {
                // None is only allowed when the user saturated the catalogue.
                prop_assert_eq!(x.user_degree(u), 15);
            }
        }
    }

    #[test]
    fn user_sampler_only_emits_eligible(pairs in pairs_strategy(), seed in 0u64..100) {
        let x = Interactions::from_pairs(12, 15, &pairs);
        if x.num_interactions() == 0 {
            return Ok(());
        }
        let s = UserSampler::explorative(&x, 0.8);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let u = s.sample(&mut rng);
            prop_assert!(x.user_degree(u) > 0, "sampled cold user {u}");
        }
    }

    #[test]
    fn alias_table_samples_within_support(
        weights in proptest::collection::vec(0.0f32..10.0, 1..40),
        seed in 0u64..100,
    ) {
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..100 {
            let i = t.sample(&mut rng);
            prop_assert!(i < weights.len());
        }
    }

    #[test]
    fn alias_empirical_frequencies_match_weights(
        weights in proptest::collection::vec(0.0f32..10.0, 2..10),
        seed in 0u64..20,
    ) {
        // Enough mass to make the target distribution well-defined.
        let total: f32 = weights.iter().sum();
        if total < 0.5 {
            return Ok(());
        }
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 30_000;
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = (w / total) as f64;
            let freq = counts[i] as f64 / draws as f64;
            prop_assert!(
                (freq - expect).abs() < 0.02,
                "outcome {i}: empirical {freq:.4} vs target {expect:.4}"
            );
        }
    }

    #[test]
    fn alias_all_zero_support_stays_uniform(
        n in 1usize..20,
        seed in 0u64..20,
    ) {
        // Degenerate all-zero weights: the documented fallback is uniform
        // over the same support.
        let t = AliasTable::new(&vec![0.0f32; n]);
        let mut rng = StdRng::seed_from_u64(seed);
        let draws = 8_000 * n;
        let mut counts = vec![0usize; n];
        for _ in 0..draws {
            counts[t.sample(&mut rng)] += 1;
        }
        let expect = 1.0 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / draws as f64;
            prop_assert!(
                (freq - expect).abs() < 0.02,
                "outcome {i}: empirical {freq:.4} vs uniform {expect:.4}"
            );
        }
    }

    #[test]
    fn alias_single_outcome_always_sampled(
        weight in 0.0f32..100.0,
        seed in 0u64..50,
    ) {
        // Single-outcome supports (including weight 0) must stay valid and
        // always return index 0.
        let t = AliasTable::new(&[weight]);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn alias_never_samples_zero_weight_when_support_mixed(
        nonzero in 1usize..8,
        seed in 0u64..50,
    ) {
        // First `nonzero` outcomes have weight 1, the rest 0.
        let mut weights = vec![1.0f32; nonzero];
        weights.extend(std::iter::repeat_n(0.0, 8 - nonzero.min(8)));
        let t = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            prop_assert!(t.sample(&mut rng) < nonzero);
        }
    }

    #[test]
    fn leave_one_out_never_leaks(histories in proptest::collection::vec(
        proptest::collection::vec(0u32..20, 0..12), 6)) {
        let d = Dataset::leave_one_out("prop", 6, 20, &histories, vec![], 0);
        prop_assert!(d.split_is_consistent());
        // Each eligible user appears at most once in dev and test.
        for held in [&d.dev, &d.test] {
            let mut users: Vec<u32> = held.iter().map(|h| h.user).collect();
            users.sort_unstable();
            let before = users.len();
            users.dedup();
            prop_assert_eq!(users.len(), before);
        }
        prop_assert_eq!(d.dev.len(), d.test.len());
    }
}

// ---------------------------------------------------------------------------
// Counter-keyed batcher determinism (the PR 4 sampling-pipeline contract)
// ---------------------------------------------------------------------------

mod batcher_determinism {
    use mars_data::batch::{FillMode, TripletBatch, TripletBatcher, TripletStream};
    use mars_data::sampler::{PopularityNegativeSampler, UniformNegativeSampler, UserSampler};
    use mars_data::{Interactions, SyntheticConfig, SyntheticDataset};
    use mars_runtime::WorkerPool;

    fn medium() -> Interactions {
        SyntheticDataset::generate(
            "batcher-prop",
            &SyntheticConfig {
                num_users: 80,
                num_items: 60,
                num_interactions: 2000,
                num_categories: 3,
                dirichlet_alpha: 0.3,
                seed: 13,
                ..Default::default()
            },
        )
        .dataset
        .train
        .clone()
    }

    fn serial_batches(x: &Interactions, slots: usize, negs: usize, n: u64) -> Vec<TripletBatch> {
        let mut b = TripletBatcher::with_negatives(
            UserSampler::explorative(x, 0.8),
            UniformNegativeSampler,
            slots,
            negs,
            99,
        );
        (0..n).map(|i| b.fill(x, i).clone()).collect()
    }

    #[test]
    fn parallel_fill_is_bit_identical_at_1_to_8_workers() {
        let x = medium();
        let reference = serial_batches(&x, 256, 2, 6);
        for workers in 1..=8 {
            let pool = WorkerPool::new(workers);
            let mut b = TripletBatcher::with_negatives(
                UserSampler::explorative(&x, 0.8),
                UniformNegativeSampler,
                256,
                2,
                99,
            );
            for (i, want) in reference.iter().enumerate() {
                assert_eq!(
                    want,
                    b.fill_parallel(&x, &pool, i as u64),
                    "batch {i} diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn prefetch_stream_matches_inline_fills_exactly() {
        let x = medium();
        let reference = serial_batches(&x, 128, 3, 10);
        std::thread::scope(|scope| {
            let batcher = TripletBatcher::with_negatives(
                UserSampler::explorative(&x, 0.8),
                UniformNegativeSampler,
                128,
                3,
                99,
            );
            let mut stream = TripletStream::spawn(scope, &x, batcher, FillMode::Prefetch);
            for (i, want) in reference.iter().enumerate() {
                assert_eq!(want, stream.next_batch(), "prefetched batch {i} diverged");
            }
        });
    }

    #[test]
    fn batch_content_is_independent_of_visit_order() {
        // Batch b is a pure function of (seed, b): visiting batches in
        // reverse produces the same content as visiting them forward.
        let x = medium();
        let forward = serial_batches(&x, 64, 1, 8);
        let mut b = TripletBatcher::new(
            UserSampler::explorative(&x, 0.8),
            UniformNegativeSampler,
            64,
            99,
        );
        for i in (0..8u64).rev() {
            assert_eq!(&forward[i as usize], b.fill(&x, i), "batch {i} diverged");
        }
    }

    #[test]
    fn popularity_sampler_rides_the_same_contract() {
        // The keyed-stream guarantees hold for any NegativeSampler, not
        // just the uniform one.
        let x = medium();
        let make = || {
            TripletBatcher::new(
                UserSampler::uniform(&x),
                PopularityNegativeSampler::new(&x, 0.75),
                200,
                7,
            )
        };
        let reference: Vec<TripletBatch> = {
            let mut b = make();
            (0..4).map(|i| b.fill(&x, i).clone()).collect()
        };
        for workers in [2usize, 5, 8] {
            let pool = WorkerPool::new(workers);
            let mut b = make();
            for (i, want) in reference.iter().enumerate() {
                assert_eq!(
                    want,
                    b.fill_parallel(&x, &pool, i as u64),
                    "batch {i} diverged at {workers} workers"
                );
            }
        }
    }
}
