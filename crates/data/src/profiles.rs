//! Dataset profiles mirroring Table I of the paper.
//!
//! Each profile reproduces a benchmark dataset's user/item/interaction
//! counts (and hence density) with the synthetic generator. `Scale::Paper`
//! matches Table I exactly; `Scale::Small` divides the axes so CI runs and
//! Criterion benches finish in seconds while preserving the density ordering
//! across datasets (Delicious densest after ML-1M, BookX sparsest, …), the
//! activity skew, and the planted facet structure.
//!
//! The facet sharpness knob (`dirichlet_alpha`) differs per profile: the
//! paper observes the largest MARS gains on Ciao and BookX, which they
//! attribute to richer multi-facet structure and sparsity — our stand-ins
//! therefore plant sharper mixtures there.

use crate::latent_metric::{generate_latent_metric, LatentMetricConfig};
use crate::synthetic::{SyntheticConfig, SyntheticDataset};

/// How large the generated stand-in should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Table I sizes. ML-20M at this scale generates 17M interactions —
    /// expect minutes of generation and long training.
    Paper,
    /// Divided sizes for CI / benches (seconds end-to-end).
    Small,
}

/// The six benchmark datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Profile {
    Delicious,
    Lastfm,
    Ciao,
    BookX,
    Ml1m,
    Ml20m,
}

impl Profile {
    /// All profiles in the paper's Table I order.
    pub const ALL: [Profile; 6] = [
        Profile::Delicious,
        Profile::Lastfm,
        Profile::Ciao,
        Profile::BookX,
        Profile::Ml1m,
        Profile::Ml20m,
    ];

    /// The four datasets used in the ablation / hyper-parameter studies
    /// (Tables IV, Figures 5–6).
    pub const ABLATION: [Profile; 4] = [
        Profile::Delicious,
        Profile::Lastfm,
        Profile::Ciao,
        Profile::BookX,
    ];

    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Delicious => "Delicious",
            Profile::Lastfm => "Lastfm",
            Profile::Ciao => "Ciao",
            Profile::BookX => "BookX",
            Profile::Ml1m => "ML-1M",
            Profile::Ml20m => "ML-20M",
        }
    }

    /// Parses a (case-insensitive) profile name.
    pub fn parse(s: &str) -> Option<Profile> {
        let lower = s.to_ascii_lowercase();
        Some(match lower.as_str() {
            "delicious" => Profile::Delicious,
            "lastfm" => Profile::Lastfm,
            "ciao" => Profile::Ciao,
            "bookx" => Profile::BookX,
            "ml-1m" | "ml1m" => Profile::Ml1m,
            "ml-20m" | "ml20m" => Profile::Ml20m,
            _ => return None,
        })
    }

    /// Generator configuration for this profile at the given scale.
    ///
    /// Paper-scale counts are Table I's (users, items, interactions);
    /// small-scale divides users/items by the per-profile factor and keeps
    /// the interaction count such that density is preserved.
    pub fn config(&self, scale: Scale) -> SyntheticConfig {
        // (users, items, interactions, categories, alpha)
        let (users, items, inter, cats, alpha) = match self {
            // Table I: 1K users, 1K items, 8K inter (density 0.61%... the
            // paper's table says 0.61% with ~1.3K x 1.3K; we use the rounded
            // counts and accept the density it implies).
            Profile::Delicious => (1_000, 1_000, 8_000, 8, 0.25),
            Profile::Lastfm => (2_000, 175_000, 92_000, 10, 0.30),
            Profile::Ciao => (7_000, 11_000, 147_000, 12, 0.15),
            Profile::BookX => (20_000, 40_000, 605_000, 12, 0.20),
            Profile::Ml1m => (6_000, 4_000, 1_000_000, 8, 0.50),
            Profile::Ml20m => (62_000, 27_000, 17_000_000, 10, 0.45),
        };
        let (users, items, inter) = match scale {
            Scale::Paper => (users, items, inter),
            // Small-scale counts are set explicitly rather than by pure
            // density division: leave-one-out evaluation needs a healthy
            // per-user history (mean degree ≈ 20–40, as in the real
            // datasets), otherwise every model is reduced to guessing.
            // The relative ordering (ML-1M densest, BookX sparsest per
            // item, Lastfm widest catalogue) is preserved.
            Scale::Small => match self {
                Profile::Delicious => (250, 250, 6_000),
                Profile::Lastfm => (200, 1_200, 7_000),
                Profile::Ciao => (400, 650, 8_500),
                Profile::BookX => (500, 1_000, 15_000),
                Profile::Ml1m => (400, 300, 16_000),
                Profile::Ml20m => (600, 270, 12_000),
            },
        };
        // Popularity/activity exponents below the generator's defaults:
        // calibrated (see DESIGN.md) so that the planted facet structure —
        // not global item popularity — is the dominant preference signal,
        // matching the paper's benchmark regime where metric-learning
        // models outperform popularity-friendly MF baselines.
        SyntheticConfig {
            num_users: users,
            num_items: items,
            num_interactions: inter,
            num_categories: cats,
            max_item_categories: 3,
            dirichlet_alpha: alpha,
            item_popularity_exp: 0.4,
            user_activity_exp: 0.6,
            seed: self.seed(),
        }
    }

    /// Stable per-profile seed so every run of the harness sees the same
    /// stand-in datasets.
    fn seed(&self) -> u64 {
        match self {
            Profile::Delicious => 101,
            Profile::Lastfm => 102,
            Profile::Ciao => 103,
            Profile::BookX => 104,
            Profile::Ml1m => 105,
            Profile::Ml20m => 106,
        }
    }

    /// Latent-metric generator configuration for this profile (the one
    /// [`Profile::generate`] uses — see `crate::latent_metric` for why the
    /// benchmark stand-ins need the geometric generator).
    pub fn latent_config(&self, scale: Scale) -> LatentMetricConfig {
        let base = self.config(scale);
        // Facet/cluster richness per profile: the datasets where the paper
        // reports the biggest multi-facet gains (Ciao, BookX) get more
        // facets and sharper in-facet tastes.
        let (facets, clusters, facet_alpha, cluster_alpha) = match self {
            Profile::Delicious => (3, 10, 0.20, 0.12),
            Profile::Lastfm => (4, 12, 0.15, 0.10),
            Profile::Ciao => (4, 16, 0.10, 0.08),
            Profile::BookX => (4, 16, 0.10, 0.08),
            Profile::Ml1m => (3, 8, 0.35, 0.18),
            Profile::Ml20m => (4, 10, 0.30, 0.15),
        };
        LatentMetricConfig {
            num_users: base.num_users,
            num_items: base.num_items,
            num_interactions: base.num_interactions,
            facets,
            clusters_per_facet: clusters,
            latent_dim: 8,
            cluster_noise: 0.35,
            facet_alpha,
            cluster_alpha,
            item_popularity_exp: 0.35,
            user_activity_exp: 0.6,
            seed: self.seed(),
        }
    }

    /// Generates the stand-in dataset for this profile (latent-metric
    /// generator; see module docs of `crate::latent_metric`).
    pub fn generate(&self, scale: Scale) -> SyntheticDataset {
        let suffix = match scale {
            Scale::Paper => "paper",
            Scale::Small => "small",
        };
        generate_latent_metric(
            format!("{}-{}", self.name(), suffix),
            &self.latent_config(scale),
        )
    }
}

/// One row of Table I: the statistics of a generated stand-in.
#[derive(Clone, Debug)]
pub struct TableOneRow {
    pub name: String,
    pub users: usize,
    pub items: usize,
    pub interactions: usize,
    pub density_pct: f64,
}

/// Computes Table I statistics for a generated dataset (train+dev+test, i.e.
/// the full interaction set before splitting).
pub fn table_one_row(data: &SyntheticDataset) -> TableOneRow {
    let d = &data.dataset;
    let total = d.train.num_interactions() + d.dev.len() + d.test.len();
    let density = total as f64 / (d.num_users() as f64 * d.num_items() as f64) * 100.0;
    TableOneRow {
        name: d.name.clone(),
        users: d.num_users(),
        items: d.num_items(),
        interactions: total,
        density_pct: density,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for p in Profile::ALL {
            assert_eq!(Profile::parse(p.name()), Some(p));
        }
        assert_eq!(Profile::parse("ml1m"), Some(Profile::Ml1m));
        assert_eq!(Profile::parse("nope"), None);
    }

    #[test]
    fn paper_scale_counts_match_table_one() {
        let c = Profile::Ciao.config(Scale::Paper);
        assert_eq!(c.num_users, 7_000);
        assert_eq!(c.num_items, 11_000);
        assert_eq!(c.num_interactions, 147_000);
        let m = Profile::Ml20m.config(Scale::Paper);
        assert_eq!(m.num_interactions, 17_000_000);
    }

    #[test]
    fn small_scale_preserves_density_ordering() {
        // Density ordering of Table I: ML-1M > ML-20M > Delicious > Lastfm >
        // Ciao > BookX. Check on the small configs (analytic density of the
        // target counts, not the realized data).
        let dens = |p: Profile| {
            let c = p.config(Scale::Small);
            c.num_interactions as f64 / (c.num_users as f64 * c.num_items as f64)
        };
        assert!(dens(Profile::Ml1m) > dens(Profile::Delicious));
        assert!(dens(Profile::Delicious) > dens(Profile::Lastfm));
        assert!(dens(Profile::Ciao) > dens(Profile::BookX));
    }

    #[test]
    fn small_generation_is_fast_and_consistent() {
        let d = Profile::Delicious.generate(Scale::Small);
        assert!(d.dataset.split_is_consistent());
        assert!(d.dataset.train.num_interactions() > 500);
        let row = table_one_row(&d);
        assert_eq!(row.users, d.dataset.num_users());
        assert!(row.density_pct > 0.0);
    }

    #[test]
    fn profiles_have_distinct_seeds() {
        let mut seeds: Vec<u64> = Profile::ALL.iter().map(|p| p.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 6);
    }
}
