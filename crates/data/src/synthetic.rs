//! Synthetic multi-facet implicit-feedback generator.
//!
//! Substitute for the paper's six public datasets (see DESIGN.md). The
//! generative story mirrors the paper's Figure 1 world:
//!
//! 1. There are `num_categories` latent categories ("romantic", "comedy", …).
//! 2. Each item belongs to 1..=`max_item_categories` categories, with the
//!    *primary* category drawn from a Zipf-like popularity over categories.
//!    Within a category items have a long-tailed (Zipf `s ≈ 1`) popularity.
//! 3. Each user draws a preference mixture over categories from a symmetric
//!    Dirichlet(α). Small α ⇒ users concentrate on few facets (strong
//!    multi-facet conflicts across the population); large α ⇒ everyone likes
//!    everything (single space suffices). `facet_sharpness = 1/α` is the
//!    generator's main knob.
//! 4. User activity (how many interactions a user makes) is Zipf-like too,
//!    matching the heavy imbalance of real implicit feedback.
//! 5. Each interaction: pick a category from the user's mixture, then an
//!    item from that category's popularity, reject duplicates. The category
//!    that *caused* each interaction is recorded — this ground truth backs
//!    the Table V/VI case studies and lets tests verify that multi-facet
//!    models actually discover the planted structure.
//!
//! Everything is driven by one seed; the same config + seed always produces
//! byte-identical datasets.

use crate::alias::AliasTable;
use crate::dataset::Dataset;
use crate::ItemId;
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::{Rng, SeedableRng};

/// Configuration of the generator. See the module docs for the generative
/// story each field controls.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    pub num_users: usize,
    pub num_items: usize,
    /// Target number of raw interactions (before per-user dedup).
    pub num_interactions: usize,
    /// Number of planted latent categories.
    pub num_categories: usize,
    /// Max categories per item (≥1). Items get 1..=this, biased towards 1.
    pub max_item_categories: usize,
    /// Dirichlet concentration for user mixtures; smaller ⇒ sharper facets.
    pub dirichlet_alpha: f64,
    /// Zipf exponent for item popularity inside a category (≈1 realistic).
    pub item_popularity_exp: f64,
    /// Zipf exponent for user activity (≈0.8 realistic).
    pub user_activity_exp: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_users: 500,
            num_items: 400,
            num_interactions: 10_000,
            num_categories: 6,
            max_item_categories: 3,
            dirichlet_alpha: 0.3,
            item_popularity_exp: 1.0,
            user_activity_exp: 0.8,
            seed: 42,
        }
    }
}

/// A generated dataset: the split plus full ground truth.
#[derive(Clone, Debug)]
pub struct SyntheticDataset {
    /// Leave-one-out split ready for training/evaluation.
    pub dataset: Dataset,
    /// `user_mixture[u][c]` = probability user `u` interacts via category `c`.
    pub user_mixtures: Vec<Vec<f32>>,
    /// The category that caused each *training-order* interaction of each
    /// user, aligned with the generation history (before dedup/split).
    pub interaction_categories: Vec<Vec<u16>>,
}

impl SyntheticDataset {
    /// Generates a dataset from the config. See module docs.
    pub fn generate(name: impl Into<String>, cfg: &SyntheticConfig) -> Self {
        assert!(cfg.num_users > 0 && cfg.num_items > 0);
        assert!(cfg.num_categories > 0 && cfg.num_categories <= u16::MAX as usize);
        assert!(cfg.max_item_categories >= 1);
        assert!(cfg.dirichlet_alpha > 0.0);
        let mut rng = StdRng::seed_from_u64(cfg.seed); // audit:allow(determinism) — seeded: pure function of the seed

        // --- Item → categories assignment -------------------------------
        let cat_weights: Vec<f32> = (0..cfg.num_categories)
            .map(|c| 1.0 / (1.0 + c as f32).powf(0.5))
            .collect();
        let cat_table = AliasTable::new(&cat_weights);
        let mut item_categories: Vec<Vec<u16>> = Vec::with_capacity(cfg.num_items);
        let mut items_in_cat: Vec<Vec<ItemId>> = vec![Vec::new(); cfg.num_categories];
        for v in 0..cfg.num_items {
            // Geometric-ish count: P(k extra) halves each time.
            let mut count = 1;
            while count < cfg.max_item_categories && rng.gen::<f32>() < 0.35 {
                count += 1;
            }
            let mut cats: Vec<u16> = Vec::with_capacity(count);
            while cats.len() < count {
                let c = cat_table.sample(&mut rng) as u16;
                if !cats.contains(&c) {
                    cats.push(c);
                }
            }
            cats.sort_unstable();
            for &c in &cats {
                items_in_cat[c as usize].push(v as ItemId);
            }
            item_categories.push(cats);
        }
        // Guarantee no category is empty (tiny configs could starve one).
        for (c, items) in items_in_cat.iter_mut().enumerate() {
            if items.is_empty() {
                let v = (c % cfg.num_items) as ItemId;
                items.push(v);
                item_categories[v as usize].push(c as u16);
                item_categories[v as usize].sort_unstable();
            }
        }

        // --- Per-category item popularity tables -------------------------
        let cat_item_tables: Vec<AliasTable> = items_in_cat
            .iter()
            .map(|items| {
                let w: Vec<f32> = (0..items.len())
                    .map(|r| 1.0 / (1.0 + r as f64).powf(cfg.item_popularity_exp) as f32)
                    .collect();
                AliasTable::new(&w)
            })
            .collect();

        // --- User mixtures (symmetric Dirichlet via Gamma(α,1) draws) ----
        let user_mixtures: Vec<Vec<f32>> = (0..cfg.num_users)
            .map(|_| dirichlet(&mut rng, cfg.num_categories, cfg.dirichlet_alpha))
            .collect();
        let user_cat_tables: Vec<AliasTable> =
            user_mixtures.iter().map(|m| AliasTable::new(m)).collect();

        // --- User activity ------------------------------------------------
        let activity: Vec<f32> = (0..cfg.num_users)
            .map(|r| (1.0 / (1.0 + r as f64).powf(cfg.user_activity_exp)) as f32)
            .collect();
        // Shuffle ranks so user id order is not activity order.
        let mut rank_of_user: Vec<usize> = (0..cfg.num_users).collect();
        shuffle(&mut rank_of_user, &mut rng);
        let user_weights: Vec<f32> = (0..cfg.num_users)
            .map(|u| activity[rank_of_user[u]])
            .collect();
        let user_table = AliasTable::new(&user_weights);

        // --- Interaction sampling ----------------------------------------
        let mut histories: Vec<Vec<ItemId>> = vec![Vec::new(); cfg.num_users];
        let mut history_cats: Vec<Vec<u16>> = vec![Vec::new(); cfg.num_users];
        let mut produced = 0usize;
        let budget = cfg.num_interactions * 8; // rejection headroom
        let mut attempts = 0usize;
        while produced < cfg.num_interactions && attempts < budget {
            attempts += 1;
            let u = user_table.sample(&mut rng);
            let c = user_cat_tables[u].sample(&mut rng);
            let items = &items_in_cat[c];
            let v = items[cat_item_tables[c].sample(&mut rng)];
            if histories[u].contains(&v) {
                continue;
            }
            histories[u].push(v);
            history_cats[u].push(c as u16);
            produced += 1;
        }

        let dataset = Dataset::leave_one_out(
            name,
            cfg.num_users,
            cfg.num_items,
            &histories,
            item_categories,
            cfg.num_categories,
        );
        Self {
            dataset,
            user_mixtures,
            interaction_categories: history_cats,
        }
    }
}

/// Flat `n × dim` clustered point cloud, plus the planted cluster id of
/// each row — the item-embedding side of an ANN-scale catalogue.
///
/// The interaction generator above stops being the right tool once the
/// catalogue reaches IVF-bench scale (≥100k items): a retrieval bench
/// needs item *embeddings* with real cluster structure, not interaction
/// histories. This draws `num_clusters` Gaussian centers (standard normal
/// per coordinate) and scatters `n` points around uniformly-chosen centers
/// with per-coordinate noise `spread`. Deterministic given `seed`;
/// `spread ≈ 0.15–0.3` against unit-scale centers gives the
/// separated-but-overlapping geometry real embedding tables show.
///
/// # Panics
/// If `n`, `dim`, or `num_clusters` is zero.
pub fn clustered_points(
    n: usize,
    dim: usize,
    num_clusters: usize,
    spread: f32,
    seed: u64,
) -> (Vec<f32>, Vec<u32>) {
    assert!(n > 0 && dim > 0 && num_clusters > 0);
    let mut rng = StdRng::seed_from_u64(seed); // audit:allow(determinism) — seeded: pure function of the seed
    let centers: Vec<f32> = (0..num_clusters * dim)
        .map(|_| normal64(&mut rng) as f32)
        .collect();
    let mut points = Vec::with_capacity(n * dim);
    let mut assignment = Vec::with_capacity(n);
    for _ in 0..n {
        let c = rng.gen_range(0..num_clusters);
        assignment.push(c as u32);
        let center = &centers[c * dim..(c + 1) * dim];
        points.extend(
            center
                .iter()
                .map(|&x| x + spread * normal64(&mut rng) as f32),
        );
    }
    (points, assignment)
}

/// Crate-internal alias so the latent-metric generator shares the sampler.
pub(crate) fn dirichlet_pub<R: Rng + ?Sized>(rng: &mut R, k: usize, alpha: f64) -> Vec<f32> {
    dirichlet(rng, k, alpha)
}

/// Draws a symmetric Dirichlet(α) sample of dimension `k` by normalizing
/// Gamma(α, 1) variates (Marsaglia–Tsang for α ≥ 1, boosted for α < 1).
fn dirichlet<R: Rng + ?Sized>(rng: &mut R, k: usize, alpha: f64) -> Vec<f32> {
    let mut g: Vec<f64> = (0..k).map(|_| gamma_sample(rng, alpha)).collect();
    let sum: f64 = g.iter().sum();
    if sum <= 0.0 {
        return vec![1.0 / k as f32; k];
    }
    for v in g.iter_mut() {
        *v /= sum;
    }
    g.into_iter().map(|v| v as f32).collect()
}

/// Marsaglia–Tsang Gamma(α, 1) sampler.
fn gamma_sample<R: Rng + ?Sized>(rng: &mut R, alpha: f64) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(α) = Gamma(α+1) · U^{1/α}
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return gamma_sample(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal64(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen::<f64>();
        if u < 1.0 - 0.0331 * x * x * x * x || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
            return d * v3;
        }
    }
}

/// Standard normal via Box–Muller (f64).
fn normal64<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Fisher–Yates shuffle (avoids pulling in `rand`'s `SliceRandom` trait just
/// for one call site).
fn shuffle<T, R: Rng + ?Sized>(xs: &mut [T], rng: &mut R) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticConfig {
        SyntheticConfig {
            num_users: 60,
            num_items: 50,
            num_interactions: 1200,
            num_categories: 4,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticDataset::generate("a", &tiny());
        let b = SyntheticDataset::generate("b", &tiny());
        assert_eq!(
            a.dataset.train.num_interactions(),
            b.dataset.train.num_interactions()
        );
        let pa: Vec<_> = a.dataset.train.iter_pairs().collect();
        let pb: Vec<_> = b.dataset.train.iter_pairs().collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn different_seed_different_data() {
        let a = SyntheticDataset::generate("a", &tiny());
        let mut cfg = tiny();
        cfg.seed = 8;
        let b = SyntheticDataset::generate("b", &cfg);
        let pa: Vec<_> = a.dataset.train.iter_pairs().collect();
        let pb: Vec<_> = b.dataset.train.iter_pairs().collect();
        assert_ne!(pa, pb);
    }

    #[test]
    fn reaches_interaction_target() {
        let s = SyntheticDataset::generate("t", &tiny());
        let total = s.dataset.train.num_interactions() + s.dataset.dev.len() + s.dataset.test.len();
        // Dedup happens at sampling time, so we should land on target
        // exactly unless the space is saturated.
        assert_eq!(total, 1200);
    }

    #[test]
    fn split_is_consistent() {
        let s = SyntheticDataset::generate("t", &tiny());
        assert!(s.dataset.split_is_consistent());
        assert!(!s.dataset.test.is_empty());
        assert_eq!(s.dataset.dev.len(), s.dataset.test.len());
    }

    #[test]
    fn every_item_has_a_category() {
        let s = SyntheticDataset::generate("t", &tiny());
        assert_eq!(s.dataset.item_categories.len(), 50);
        assert!(s.dataset.item_categories.iter().all(|c| !c.is_empty()));
        assert!(s
            .dataset
            .item_categories
            .iter()
            .flatten()
            .all(|&c| (c as usize) < 4));
    }

    #[test]
    fn mixtures_are_distributions() {
        let s = SyntheticDataset::generate("t", &tiny());
        for m in &s.user_mixtures {
            let sum: f32 = m.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(m.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn sharp_dirichlet_concentrates() {
        // With very small alpha every user should put most mass on one facet.
        let mut cfg = tiny();
        cfg.dirichlet_alpha = 0.05;
        let s = SyntheticDataset::generate("sharp", &cfg);
        let avg_max: f32 = s
            .user_mixtures
            .iter()
            .map(|m| m.iter().cloned().fold(0.0, f32::max))
            .sum::<f32>()
            / s.user_mixtures.len() as f32;
        assert!(avg_max > 0.8, "avg max mixture weight {avg_max}");
    }

    #[test]
    fn popularity_is_long_tailed() {
        let s = SyntheticDataset::generate("t", &tiny());
        let mut degrees = s.dataset.train.item_degrees_f32();
        degrees.sort_by(|a, b| b.total_cmp(a));
        let top_decile: f32 = degrees[..5].iter().sum();
        let total: f32 = degrees.iter().sum();
        assert!(
            top_decile / total > 0.2,
            "top-10% items should hold >20% of interactions, got {}",
            top_decile / total
        );
    }

    #[test]
    fn interaction_categories_align_with_items() {
        let s = SyntheticDataset::generate("t", &tiny());
        // Every recorded cause category must be one of the item's categories.
        // (We need histories; reconstruct per-user from cats + items via the
        // recorded alignment: interaction_categories[u][i] caused
        // histories[u][i]. We can't access histories after split, but we can
        // at least check category ids are valid.)
        for cats in &s.interaction_categories {
            assert!(cats.iter().all(|&c| (c as usize) < 4));
        }
    }

    #[test]
    fn clustered_points_are_deterministic_and_clustered() {
        let (pts_a, asg_a) = clustered_points(400, 8, 5, 0.1, 13);
        let (pts_b, asg_b) = clustered_points(400, 8, 5, 0.1, 13);
        assert_eq!(asg_a, asg_b);
        assert!(pts_a
            .iter()
            .zip(&pts_b)
            .all(|(x, y)| x.to_bits() == y.to_bits()));
        assert_eq!(pts_a.len(), 400 * 8);
        assert_eq!(asg_a.len(), 400);
        assert!(asg_a.iter().all(|&c| c < 5));

        // Same-cluster points sit closer together than cross-cluster ones
        // on average — the structure an IVF index exploits.
        let dist = |i: usize, j: usize| -> f32 {
            (0..8)
                .map(|d| (pts_a[i * 8 + d] - pts_a[j * 8 + d]).powi(2))
                .sum()
        };
        let (mut within, mut wn, mut across, mut an) = (0.0f64, 0, 0.0f64, 0);
        for i in 0..100 {
            for j in (i + 1)..100 {
                if asg_a[i] == asg_a[j] {
                    within += dist(i, j) as f64;
                    wn += 1;
                } else {
                    across += dist(i, j) as f64;
                    an += 1;
                }
            }
        }
        assert!(wn > 0 && an > 0);
        assert!(
            within / wn as f64 * 4.0 < across / an as f64,
            "within {within} ({wn}) vs across {across} ({an})"
        );
    }

    #[test]
    fn gamma_sampler_mean_matches() {
        let mut rng = StdRng::seed_from_u64(11); // audit:allow(determinism) — seeded: pure function of the seed
        for &alpha in &[0.3f64, 1.0, 2.5] {
            let n = 20_000;
            let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, alpha)).sum::<f64>() / n as f64;
            assert!(
                (mean - alpha).abs() < 0.08 * (1.0 + alpha),
                "alpha={alpha} mean={mean}"
            );
        }
    }
}
