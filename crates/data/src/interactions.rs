//! Compressed sparse interaction store.
//!
//! [`Interactions`] holds the binary implicit-feedback matrix `X` of the
//! paper in both orientations: user→items (CSR) and item→users (CSC-like).
//! Item lists per user are sorted, so membership (`X_uv = 1?`) is a binary
//! search over a contiguous slice — the negative samplers call this in their
//! rejection loop, so it is the hottest read path in training after the
//! similarity kernels.

use crate::{ItemId, UserId};

/// An immutable bipartite interaction graph between `num_users` users and
/// `num_items` items.
#[derive(Clone, Debug)]
pub struct Interactions {
    num_users: usize,
    num_items: usize,
    /// CSR offsets: user `u`'s items live at `items[user_off[u]..user_off[u+1]]`.
    user_off: Vec<usize>,
    /// Sorted item ids, grouped by user.
    items: Vec<ItemId>,
    /// CSC offsets: item `v`'s users live at `users[item_off[v]..item_off[v+1]]`.
    item_off: Vec<usize>,
    /// Sorted user ids, grouped by item.
    users: Vec<UserId>,
}

impl Interactions {
    /// Builds the store from raw `(user, item)` pairs.
    ///
    /// Duplicate pairs are collapsed (implicit feedback is binary — the
    /// paper's `X_uv ∈ {0, 1}`). Pairs referencing ids outside the declared
    /// ranges panic: silently dropping data would corrupt every downstream
    /// statistic.
    pub fn from_pairs(num_users: usize, num_items: usize, pairs: &[(UserId, ItemId)]) -> Self {
        for &(u, v) in pairs {
            assert!(
                (u as usize) < num_users,
                "user id {u} out of range ({num_users} users)"
            );
            assert!(
                (v as usize) < num_items,
                "item id {v} out of range ({num_items} items)"
            );
        }

        // Counting sort into CSR by user.
        let mut user_deg = vec![0usize; num_users];
        for &(u, _) in pairs {
            user_deg[u as usize] += 1;
        }
        let mut user_off = Vec::with_capacity(num_users + 1);
        user_off.push(0);
        for d in &user_deg {
            user_off.push(user_off.last().unwrap() + d);
        }
        let mut items = vec![0 as ItemId; pairs.len()];
        let mut cursor = user_off.clone();
        for &(u, v) in pairs {
            let c = &mut cursor[u as usize];
            items[*c] = v;
            *c += 1;
        }
        // Sort + dedup each user's slice, then compact.
        let mut dedup_items: Vec<ItemId> = Vec::with_capacity(items.len());
        let mut new_off = Vec::with_capacity(num_users + 1);
        new_off.push(0usize);
        for u in 0..num_users {
            let s = &mut items[user_off[u]..user_off[u + 1]];
            s.sort_unstable();
            let start = dedup_items.len();
            for &v in s.iter() {
                if dedup_items.len() == start || *dedup_items.last().unwrap() != v {
                    dedup_items.push(v);
                }
            }
            new_off.push(dedup_items.len());
        }

        // Build the item→user orientation from the deduped data.
        let mut item_deg = vec![0usize; num_items];
        for &v in &dedup_items {
            item_deg[v as usize] += 1;
        }
        let mut item_off = Vec::with_capacity(num_items + 1);
        item_off.push(0);
        for d in &item_deg {
            item_off.push(item_off.last().unwrap() + d);
        }
        let mut users = vec![0 as UserId; dedup_items.len()];
        let mut icursor = item_off.clone();
        for u in 0..num_users {
            for &v in &dedup_items[new_off[u]..new_off[u + 1]] {
                let c = &mut icursor[v as usize];
                users[*c] = u as UserId;
                *c += 1;
            }
        }
        // Users arrive in increasing order (outer loop over u), so each
        // item's user slice is already sorted.

        Self {
            num_users,
            num_items,
            user_off: new_off,
            items: dedup_items,
            item_off,
            users,
        }
    }

    /// Number of users (rows of `X`).
    #[inline]
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items (columns of `X`).
    #[inline]
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total number of distinct interactions (`‖X‖₀`).
    #[inline]
    pub fn num_interactions(&self) -> usize {
        self.items.len()
    }

    /// Density of `X` as a fraction in `[0, 1]`.
    pub fn density(&self) -> f64 {
        if self.num_users == 0 || self.num_items == 0 {
            return 0.0;
        }
        self.num_interactions() as f64 / (self.num_users as f64 * self.num_items as f64)
    }

    /// Sorted items user `u` interacted with (`V_u` in the paper).
    #[inline]
    pub fn items_of(&self, u: UserId) -> &[ItemId] {
        let u = u as usize;
        &self.items[self.user_off[u]..self.user_off[u + 1]]
    }

    /// Sorted users that interacted with item `v` (`U_v` in the paper).
    #[inline]
    pub fn users_of(&self, v: ItemId) -> &[UserId] {
        let v = v as usize;
        &self.users[self.item_off[v]..self.item_off[v + 1]]
    }

    /// User `u`'s interaction count (`freq(u)` of Eq. 10).
    #[inline]
    pub fn user_degree(&self, u: UserId) -> usize {
        self.items_of(u).len()
    }

    /// Item `v`'s interaction count (popularity).
    #[inline]
    pub fn item_degree(&self, v: ItemId) -> usize {
        self.users_of(v).len()
    }

    /// Whether `X_uv = 1`. Binary search over the user's sorted item list.
    #[inline]
    pub fn contains(&self, u: UserId, v: ItemId) -> bool {
        self.items_of(u).binary_search(&v).is_ok()
    }

    /// Iterates all `(user, item)` pairs in user order.
    pub fn iter_pairs(&self) -> impl Iterator<Item = (UserId, ItemId)> + '_ {
        (0..self.num_users as UserId)
            .flat_map(move |u| self.items_of(u).iter().map(move |&v| (u, v)))
    }

    /// Per-user degrees as `f32` (used by samplers and margins).
    pub fn user_degrees_f32(&self) -> Vec<f32> {
        (0..self.num_users as UserId)
            .map(|u| self.user_degree(u) as f32)
            .collect()
    }

    /// Per-item degrees as `f32`.
    pub fn item_degrees_f32(&self) -> Vec<f32> {
        (0..self.num_items as ItemId)
            .map(|v| self.item_degree(v) as f32)
            .collect()
    }

    /// Returns a copy with the given pairs removed (used to carve the train
    /// split out of the full data). Pairs not present are ignored.
    pub fn without_pairs(&self, remove: &[(UserId, ItemId)]) -> Self {
        use std::collections::HashSet;
        let removal: HashSet<(UserId, ItemId)> = remove.iter().cloned().collect();
        let kept: Vec<(UserId, ItemId)> =
            self.iter_pairs().filter(|p| !removal.contains(p)).collect();
        Self::from_pairs(self.num_users, self.num_items, &kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Interactions {
        // 3 users, 4 items.
        // u0: {0, 1}; u1: {1, 2, 3}; u2: {} (cold user)
        Interactions::from_pairs(3, 4, &[(0, 1), (0, 0), (1, 3), (1, 1), (1, 2)])
    }

    #[test]
    fn counts_and_density() {
        let x = sample();
        assert_eq!(x.num_users(), 3);
        assert_eq!(x.num_items(), 4);
        assert_eq!(x.num_interactions(), 5);
        assert!((x.density() - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn items_are_sorted_and_deduped() {
        let x = Interactions::from_pairs(1, 5, &[(0, 3), (0, 1), (0, 3), (0, 1), (0, 4)]);
        assert_eq!(x.items_of(0), &[1, 3, 4]);
        assert_eq!(x.num_interactions(), 3);
    }

    #[test]
    fn both_orientations_agree() {
        let x = sample();
        assert_eq!(x.items_of(0), &[0, 1]);
        assert_eq!(x.items_of(1), &[1, 2, 3]);
        assert_eq!(x.items_of(2), &[] as &[ItemId]);
        assert_eq!(x.users_of(0), &[0]);
        assert_eq!(x.users_of(1), &[0, 1]);
        assert_eq!(x.users_of(2), &[1]);
        assert_eq!(x.users_of(3), &[1]);
    }

    #[test]
    fn membership() {
        let x = sample();
        assert!(x.contains(0, 1));
        assert!(!x.contains(0, 2));
        assert!(!x.contains(2, 0));
    }

    #[test]
    fn degrees() {
        let x = sample();
        assert_eq!(x.user_degree(1), 3);
        assert_eq!(x.item_degree(1), 2);
        assert_eq!(x.user_degrees_f32(), vec![2.0, 3.0, 0.0]);
        assert_eq!(x.item_degrees_f32(), vec![1.0, 2.0, 1.0, 1.0]);
    }

    #[test]
    fn iter_pairs_roundtrip() {
        let x = sample();
        let pairs: Vec<_> = x.iter_pairs().collect();
        let y = Interactions::from_pairs(3, 4, &pairs);
        assert_eq!(y.num_interactions(), x.num_interactions());
        for u in 0..3 {
            assert_eq!(x.items_of(u), y.items_of(u));
        }
    }

    #[test]
    fn without_pairs_removes() {
        let x = sample();
        let y = x.without_pairs(&[(1, 2), (2, 3)]);
        assert!(!y.contains(1, 2));
        assert!(y.contains(1, 1));
        assert_eq!(y.num_interactions(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_items() {
        let _ = Interactions::from_pairs(2, 2, &[(0, 5)]);
    }

    #[test]
    fn empty_graph_is_fine() {
        let x = Interactions::from_pairs(4, 4, &[]);
        assert_eq!(x.num_interactions(), 0);
        assert_eq!(x.density(), 0.0);
        assert!(x.items_of(3).is_empty());
    }
}
