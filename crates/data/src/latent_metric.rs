//! Latent *metric* multi-facet generator — the geometric world of the
//! paper's Figure 1, used by the benchmark profiles.
//!
//! The first generator ([`crate::synthetic`]) plants a categorical mixture
//! (user mixes categories, category owns items). That process is low-rank
//! *bilinear*, which is exactly the model class MF baselines fit — it
//! cannot reproduce the paper's central phenomenon (metric learning and
//! multi-facet spaces beating MF). This generator plants the structure the
//! paper actually argues from:
//!
//! * `F` independent **facet spaces**, each a unit sphere `S^{d'−1}`;
//! * per facet, `C` **clusters** with random unit centroids — an item gets
//!   an independently drawn cluster *per facet* (a movie can sit in the
//!   "romance" cluster of the genre facet and the "comedian X" cluster of
//!   the cast facet), and its position in that facet is its centroid plus
//!   noise, re-normalized;
//! * a **user** holds a Dirichlet mixture over facets and, within each
//!   facet, a sharp Dirichlet preference over clusters; their position per
//!   facet is the preference-weighted centroid mix;
//! * an **interaction** picks facet ~ user's facet mixture, cluster ~ the
//!   user's in-facet preference, then an item of that cluster by
//!   within-cluster popularity.
//!
//! Because cluster assignments are independent across facets, two items
//! routinely share a cluster in facet A while sitting in different clusters
//! of facet B — the "items 2 and 4 must be simultaneously close and far"
//! conflict that no single metric space can resolve (Figure 1b) but `K`
//! facet spaces resolve trivially (Figure 1c). The ground-truth category
//! labels exported for the case-study experiments are the per-facet cluster
//! ids, `label = facet·C + cluster`.

use crate::alias::AliasTable;
use crate::dataset::Dataset;
use crate::synthetic::SyntheticDataset;
use crate::ItemId;
use rand::rngs::StdRng; // audit:allow(determinism) — only ever seeded (init/datagen)
use rand::{Rng, SeedableRng};

/// Configuration of the latent-metric generator.
#[derive(Clone, Debug)]
pub struct LatentMetricConfig {
    pub num_users: usize,
    pub num_items: usize,
    /// Target number of interactions (dedup happens at sampling time).
    pub num_interactions: usize,
    /// Number of latent facet spaces `F`.
    pub facets: usize,
    /// Clusters per facet `C`. The export label space has `F·C` categories.
    pub clusters_per_facet: usize,
    /// Dimension of each latent facet sphere.
    pub latent_dim: usize,
    /// Noise scale around cluster centroids for item positions.
    pub cluster_noise: f32,
    /// Dirichlet concentration of the user facet mixture (small = users
    /// care about few facets).
    pub facet_alpha: f64,
    /// Dirichlet concentration of per-facet cluster preferences (small =
    /// sharp tastes inside a facet).
    pub cluster_alpha: f64,
    /// Zipf exponent of within-cluster item popularity.
    pub item_popularity_exp: f64,
    /// Zipf exponent of user activity.
    pub user_activity_exp: f64,
    pub seed: u64,
}

impl Default for LatentMetricConfig {
    fn default() -> Self {
        Self {
            num_users: 500,
            num_items: 400,
            num_interactions: 10_000,
            facets: 4,
            clusters_per_facet: 12,
            latent_dim: 8,
            cluster_noise: 0.35,
            facet_alpha: 0.3,
            cluster_alpha: 0.12,
            item_popularity_exp: 0.6,
            user_activity_exp: 0.6,
            seed: 42,
        }
    }
}

/// Generates a dataset from the latent-metric process. Returns the same
/// [`SyntheticDataset`] shape as the categorical generator: `user_mixtures`
/// holds the facet mixtures `w_u`, and `interaction_categories` the label
/// (`facet·C + cluster`) that caused each interaction.
pub fn generate_latent_metric(
    name: impl Into<String>,
    cfg: &LatentMetricConfig,
) -> SyntheticDataset {
    assert!(cfg.num_users > 0 && cfg.num_items > 0);
    assert!(cfg.facets > 0 && cfg.clusters_per_facet > 0);
    assert!(cfg.facets * cfg.clusters_per_facet <= u16::MAX as usize);
    assert!(cfg.latent_dim >= 2, "latent spheres need dim ≥ 2");
    assert!(cfg.facet_alpha > 0.0 && cfg.cluster_alpha > 0.0);
    let mut rng = StdRng::seed_from_u64(cfg.seed); // audit:allow(determinism) — seeded: pure function of the seed
    let f_count = cfg.facets;
    let c_count = cfg.clusters_per_facet;

    // --- Item cluster assignments per facet -----------------------------
    // Mild skew over clusters so some are mainstream, some niche.
    let cluster_weights: Vec<f32> = (0..c_count)
        .map(|c| 1.0 / (1.0 + c as f32).powf(0.3))
        .collect();
    let cluster_table = AliasTable::new(&cluster_weights);
    // z[v][f] = cluster of item v in facet f.
    let mut assignment = vec![vec![0u16; f_count]; cfg.num_items];
    let mut members: Vec<Vec<Vec<ItemId>>> = vec![vec![Vec::new(); c_count]; f_count];
    let mut item_categories: Vec<Vec<u16>> = Vec::with_capacity(cfg.num_items);
    for v in 0..cfg.num_items {
        let mut labels = Vec::with_capacity(f_count);
        for f in 0..f_count {
            let c = cluster_table.sample(&mut rng) as u16;
            assignment[v][f] = c;
            members[f][c as usize].push(v as ItemId);
            labels.push((f * c_count) as u16 + c);
        }
        item_categories.push(labels);
    }
    // No cluster may be empty (tiny configs): recruit one item per empty
    // cluster (its label list gains the new assignment too).
    for f in 0..f_count {
        for c in 0..c_count {
            if members[f][c].is_empty() {
                let v = ((f * c_count + c) % cfg.num_items) as ItemId;
                members[f][c].push(v);
                item_categories[v as usize].push((f * c_count + c) as u16);
            }
        }
    }

    // --- Within-cluster popularity tables --------------------------------
    let pop_tables: Vec<Vec<AliasTable>> = members
        .iter()
        .map(|per_cluster| {
            per_cluster
                .iter()
                .map(|items| {
                    let w: Vec<f32> = (0..items.len())
                        .map(|r| (1.0 / (1.0 + r as f64).powf(cfg.item_popularity_exp)) as f32)
                        .collect();
                    AliasTable::new(&w)
                })
                .collect()
        })
        .collect();

    // --- Users ------------------------------------------------------------
    // Facet mixture w_u and, per facet, cluster preferences p_{u,f}.
    let mut facet_mixtures: Vec<Vec<f32>> = Vec::with_capacity(cfg.num_users);
    let mut facet_tables: Vec<AliasTable> = Vec::with_capacity(cfg.num_users);
    let mut cluster_pref_tables: Vec<Vec<AliasTable>> = Vec::with_capacity(cfg.num_users);
    for _ in 0..cfg.num_users {
        let w = crate::synthetic::dirichlet_pub(&mut rng, f_count, cfg.facet_alpha);
        facet_tables.push(AliasTable::new(&w));
        facet_mixtures.push(w);
        let prefs: Vec<AliasTable> = (0..f_count)
            .map(|_| {
                let p = crate::synthetic::dirichlet_pub(&mut rng, c_count, cfg.cluster_alpha);
                AliasTable::new(&p)
            })
            .collect();
        cluster_pref_tables.push(prefs);
    }

    // --- Activity ----------------------------------------------------------
    let mut ranks: Vec<usize> = (0..cfg.num_users).collect();
    for i in (1..ranks.len()).rev() {
        let j = rng.gen_range(0..=i);
        ranks.swap(i, j);
    }
    let activity: Vec<f32> = (0..cfg.num_users)
        .map(|u| (1.0 / (1.0 + ranks[u] as f64).powf(cfg.user_activity_exp)) as f32)
        .collect();
    let user_table = AliasTable::new(&activity);

    // --- Interactions --------------------------------------------------------
    let mut histories: Vec<Vec<ItemId>> = vec![Vec::new(); cfg.num_users];
    let mut history_labels: Vec<Vec<u16>> = vec![Vec::new(); cfg.num_users];
    let mut produced = 0usize;
    let mut attempts = 0usize;
    let budget = cfg.num_interactions * 8;
    while produced < cfg.num_interactions && attempts < budget {
        attempts += 1;
        let u = user_table.sample(&mut rng);
        let f = facet_tables[u].sample(&mut rng);
        let c = cluster_pref_tables[u][f].sample(&mut rng);
        let items = &members[f][c];
        let v = items[pop_tables[f][c].sample(&mut rng)];
        if histories[u].contains(&v) {
            continue;
        }
        histories[u].push(v);
        history_labels[u].push((f * c_count + c) as u16);
        produced += 1;
    }

    let dataset = Dataset::leave_one_out(
        name,
        cfg.num_users,
        cfg.num_items,
        &histories,
        item_categories,
        f_count * c_count,
    );
    SyntheticDataset {
        dataset,
        user_mixtures: facet_mixtures,
        interaction_categories: history_labels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LatentMetricConfig {
        LatentMetricConfig {
            num_users: 80,
            num_items: 60,
            num_interactions: 1600,
            facets: 3,
            clusters_per_facet: 5,
            seed: 9,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_and_consistent() {
        let a = generate_latent_metric("a", &tiny());
        let b = generate_latent_metric("b", &tiny());
        let pa: Vec<_> = a.dataset.train.iter_pairs().collect();
        let pb: Vec<_> = b.dataset.train.iter_pairs().collect();
        assert_eq!(pa, pb);
        assert!(a.dataset.split_is_consistent());
    }

    #[test]
    fn labels_cover_facet_times_cluster_space() {
        let s = generate_latent_metric("t", &tiny());
        assert_eq!(s.dataset.num_categories, 15);
        // Every item carries one label per facet (possibly more after
        // empty-cluster recruitment).
        for cats in &s.dataset.item_categories {
            assert!(cats.len() >= 3);
            assert!(cats.iter().all(|&c| (c as usize) < 15));
        }
    }

    #[test]
    fn items_have_independent_clusters_across_facets() {
        // The conflict mechanism: two items sharing a facet-0 cluster must
        // frequently differ in facet 1. With 5 clusters and independent
        // assignment, agreement in facet 1 given agreement in facet 0
        // should be ~weights², far below 1.
        let s = generate_latent_metric("t", &tiny());
        let cats = &s.dataset.item_categories;
        let mut share0 = 0usize;
        let mut share_both = 0usize;
        for i in 0..cats.len() {
            for j in (i + 1)..cats.len() {
                if cats[i][0] == cats[j][0] {
                    share0 += 1;
                    if cats[i][1] == cats[j][1] {
                        share_both += 1;
                    }
                }
            }
        }
        assert!(share0 > 0);
        let agree = share_both as f64 / share0 as f64;
        assert!(agree < 0.8, "facet clusters too correlated: {agree}");
    }

    #[test]
    fn facet_mixtures_are_distributions() {
        let s = generate_latent_metric("t", &tiny());
        for w in &s.user_mixtures {
            assert_eq!(w.len(), 3);
            let sum: f32 = w.iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn interaction_labels_match_item_assignment() {
        // Every recorded cause label must be one of the caused item's
        // labels. We can't recover per-interaction items after the split,
        // but all labels must at least be valid.
        let s = generate_latent_metric("t", &tiny());
        for labels in &s.interaction_categories {
            assert!(labels.iter().all(|&l| (l as usize) < 15));
        }
    }

    #[test]
    fn reaches_target_volume() {
        let s = generate_latent_metric("t", &tiny());
        let total = s.dataset.train.num_interactions() + s.dataset.dev.len() + s.dataset.test.len();
        assert!(total >= 1500, "only {total} interactions generated");
    }
}
