//! Triplet batching.
//!
//! Every hinge-based model in the workspace (CML, TransCF, SML, MAR, MARS…)
//! consumes a stream of `(user, positive, negative)` triplets. The
//! [`TripletBatcher`] owns the user and negative samplers and fills a
//! reusable buffer per batch, so the training loop allocates nothing per
//! step (perf-book: reuse workhorse collections).

use crate::interactions::Interactions;
use crate::sampler::{sample_positive, NegativeSampler, UserSampler};
use crate::{ItemId, UserId};
use rand::Rng;

/// One training triplet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Triplet {
    pub user: UserId,
    pub positive: ItemId,
    pub negative: ItemId,
}

/// Samples batches of training triplets.
pub struct TripletBatcher<N: NegativeSampler> {
    user_sampler: UserSampler,
    negative_sampler: N,
    batch_size: usize,
    buffer: Vec<Triplet>,
}

impl<N: NegativeSampler> TripletBatcher<N> {
    /// Creates a batcher producing `batch_size` triplets per call.
    pub fn new(user_sampler: UserSampler, negative_sampler: N, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            user_sampler,
            negative_sampler,
            batch_size,
            buffer: Vec::with_capacity(batch_size),
        }
    }

    /// Batch size this batcher was configured with.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Fills the internal buffer with a fresh batch and returns it.
    ///
    /// Users whose negatives cannot be sampled (interacted with everything)
    /// are skipped; with a pathological dataset where *no* user has a
    /// negative this would loop, so a draw budget of `64 × batch_size`
    /// caps the attempts and the function returns a short (possibly empty)
    /// batch instead.
    pub fn next_batch<R: Rng + ?Sized>(&mut self, x: &Interactions, rng: &mut R) -> &[Triplet] {
        self.buffer.clear();
        let mut attempts = 0usize;
        let budget = self.batch_size * 64;
        while self.buffer.len() < self.batch_size && attempts < budget {
            attempts += 1;
            let u = self.user_sampler.sample(rng);
            let vp = sample_positive(x, u, rng);
            if let Some(vq) = self.negative_sampler.sample_negative(x, u, rng) {
                self.buffer.push(Triplet {
                    user: u,
                    positive: vp,
                    negative: vq,
                });
            }
        }
        &self.buffer
    }

    /// Number of batches that approximately covers every training
    /// interaction once (an "epoch" in the paper's sense).
    pub fn batches_per_epoch(&self, x: &Interactions) -> usize {
        (x.num_interactions() / self.batch_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::UniformNegativeSampler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Interactions {
        Interactions::from_pairs(3, 8, &[(0, 0), (0, 1), (1, 2), (1, 3), (2, 4)])
    }

    #[test]
    fn batch_has_requested_size_and_valid_triplets() {
        let x = toy();
        let mut b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 32);
        let mut rng = StdRng::seed_from_u64(1);
        let batch = b.next_batch(&x, &mut rng);
        assert_eq!(batch.len(), 32);
        for t in batch {
            assert!(x.contains(t.user, t.positive), "positive must be observed");
            assert!(
                !x.contains(t.user, t.negative),
                "negative must be unobserved"
            );
        }
    }

    #[test]
    fn batches_are_different_across_calls() {
        let x = toy();
        let mut b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 16);
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<Triplet> = b.next_batch(&x, &mut rng).to_vec();
        let c: Vec<Triplet> = b.next_batch(&x, &mut rng).to_vec();
        assert_ne!(a, c);
    }

    #[test]
    fn epoch_count_scales_with_data() {
        let x = toy();
        let b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 2);
        assert_eq!(b.batches_per_epoch(&x), 2); // 5 interactions / 2
        let b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 100);
        assert_eq!(b.batches_per_epoch(&x), 1);
    }

    #[test]
    fn saturated_dataset_yields_short_batch() {
        // Single user who has interacted with both items: no negatives.
        let x = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]);
        let mut b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 8);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(b.next_batch(&x, &mut rng).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = toy();
        let mut b1 = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 16);
        let mut b2 = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 16);
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        assert_eq!(b1.next_batch(&x, &mut r1), b2.next_batch(&x, &mut r2));
    }
}
