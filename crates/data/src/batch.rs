//! Counter-keyed triplet batching: the training-side sampling pipeline.
//!
//! Every hinge-based model in the workspace (CML, TransCF, SML, MAR, MARS…)
//! consumes a stream of `(user, positive, negative)` triplets, and the
//! pointwise models (MetricF, NeuMF) consume the same draws reshaped into
//! labelled pairs. [`TripletBatcher`] produces that stream; this module is
//! the single definition of *which* triplets a training run sees.
//!
//! # Determinism contract (PR 4)
//!
//! Batch `b` is a **pure function of `(seed, b)`** — nothing else. Through
//! PR 3 the batcher drew every triplet from one sequential `StdRng` stream,
//! which coupled each draw to every draw before it: the fill could not
//! parallelize, prefetching a batch would have shifted all later batches,
//! and two engines with different batch schedules saw different data. The
//! batcher is now keyed on [`mars_runtime::rng::CounterRng`], the same
//! construction PR 3 used to decouple the evaluator's negative pre-draw:
//!
//! * a batch is `slots_per_batch` **slots**; batch `b` owns the counter
//!   stream `keyed(seed, b)`, and slot `s` draws from its own disjoint
//!   view of it — the words at positions `≡ s (mod slots_per_batch)`, in
//!   order (see the PR 9 section below) — independent of every other
//!   slot;
//! * one slot draws one user (via [`UserSampler`], 1–2 ticks), one positive
//!   (1 tick) and `negatives_per_slot` negatives, emitting one triplet per
//!   negative (all sharing the slot's user and positive) — the multi-negative
//!   regime of the paper's Eq. 5/8 double sum;
//! * a slot whose user turns out saturated (no negative exists) retries
//!   with a fresh user from the same stream, up to [`SLOT_ATTEMPTS`] times,
//!   then yields nothing (short batch — only possible on pathological
//!   datasets where nearly every user interacted with everything).
//!
//! Because slots are independent, [`TripletBatcher::fill_parallel`] fans
//! contiguous slot ranges across a [`WorkerPool`] and concatenates the
//! shard outputs in shard order: the resulting triplet stream is
//! **bit-identical at any worker count**, including the 1-worker serial
//! fill ([`TripletBatcher::fill`]) — asserted by the property tests in
//! `tests/properties.rs` and pinned by golden values below. For the same
//! reason [`TripletStream`] can *prefetch*: a double-buffered background
//! thread draws batch `b + 1` while the caller trains on batch `b`, and the
//! stream it produces is identical to the non-prefetching one.
//!
//! This deliberately **changed the triplet streams** relative to the
//! PR ≤ 3 shared-`StdRng` order (as PR 3 changed the evaluator's candidate
//! sets): the reproducibility contract is "bit-identical runs for a fixed
//! seed at any worker count, with or without prefetch", not "identical to
//! the historical serial stream".
//!
//! # Block-draw pipeline (PR 9 stream bump)
//!
//! PR 9 rebuilt the draw path inside a slot: instead of one counter
//! stream *per slot* (keyed `b · slots_per_batch + s`, one key mix per
//! slot) feeding scalar `gen_range` (modulo) draws through trait
//! dispatch, batch `b` now keys a **single** stream and slot `s` owns the
//! words at positions `≡ s (mod slots_per_batch)` of it — a perfect
//! partition, so slots stay mutually independent and parallel-safe with
//! **one key mix per batch**. The payoff is layout: word `j` of *all*
//! slots is the contiguous position range `[j·S, (j+1)·S)`, so the fill
//! loops mix the first [`HEAD`] words of every slot with one
//! [`CounterRng::fill_block`] call per word index — 8-wide through the
//! installed `mars-tensor` kernel — instead of every slot serially paying
//! the mix latency on its own critical path. Past its head a slot falls
//! through to on-demand strided draws ([`crate::draws::DrawStream`]);
//! range mappings all run through the shared Lemire reduction, and
//! multi-negative slots draw in bulk via
//! [`NegativeSampler::sample_negatives_block`]. This **changed the
//! triplet streams again** (same precedent as above: the word positions,
//! the modulo → Lemire remap, and block rejection all reshape the draws);
//! the golden batches below are re-pinned accordingly. Everything the
//! contract promises is unchanged: batch `b` is still a pure function of
//! `(seed, b)`, bit-identical at 1..=8 workers, any chunk size, prefetch
//! on or off.

use crate::draws::{DrawStream, HEAD};
use crate::interactions::Interactions;
use crate::sampler::{
    positive_from_items, sample_positive, FastSingle, NegativeSampler, UserSampler,
};
use crate::{ItemId, UserId};
use mars_runtime::rng::CounterRng;
use mars_runtime::{chunk_ranges, resolve_threads, WorkerPool};
use std::ops::Range;
use std::sync::mpsc;

/// One training triplet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Triplet {
    pub user: UserId,
    pub positive: ItemId,
    pub negative: ItemId,
}

/// Fresh-user retries a slot is allowed before yielding nothing. Retries
/// only trigger when the drawn user has interacted with *every* item, so in
/// practice a slot succeeds on the first attempt.
const SLOT_ATTEMPTS: usize = 8;

/// One filled batch: the triplets plus the slot structure over them.
///
/// `slot_ends[k]` is the end offset (exclusive) of the `k`-th *successful*
/// slot's triplets; all triplets of a slot share one `(user, positive)`
/// pair. One-negative batches (the pairwise engines' configuration) leave
/// `slot_ends` **empty** — every triplet is its own slot, so the offsets
/// are just `1, 2, …, len` and materializing them would cost a second
/// push on every slot of the hot fill loop; [`Self::slots`] synthesizes
/// them. Pairwise engines iterate [`Self::triplets`] flat; pointwise
/// engines iterate [`Self::slots`] to recover the
/// one-positive-then-`k`-negatives sample order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TripletBatch {
    triplets: Vec<Triplet>,
    slot_ends: Vec<u32>,
}

impl TripletBatch {
    /// All triplets of the batch, in slot order.
    #[inline]
    pub fn triplets(&self) -> &[Triplet] {
        &self.triplets
    }

    /// Number of triplets in the batch.
    #[inline]
    pub fn len(&self) -> usize {
        self.triplets.len()
    }

    /// Whether the batch holds no triplets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.triplets.is_empty()
    }

    /// The batch grouped by slot: each item is one slot's triplets (never
    /// empty; failed slots are not recorded). Empty `slot_ends` is the
    /// one-triplet-per-slot batch (see the struct docs).
    pub fn slots(&self) -> impl Iterator<Item = &[Triplet]> + '_ {
        let unit = self.slot_ends.is_empty();
        let count = if unit {
            self.triplets.len()
        } else {
            self.slot_ends.len()
        };
        let mut start = 0usize;
        (0..count).map(move |k| {
            let end = if unit {
                k + 1
            } else {
                self.slot_ends[k] as usize
            };
            let s = start;
            start = end;
            &self.triplets[s..end]
        })
    }

    fn clear(&mut self) {
        self.triplets.clear();
        self.slot_ends.clear();
    }
}

/// Draws one slot from its stream view into `out`. The draw order within
/// the view — user, positive, then the negatives — is part of the pinned
/// determinism contract (see the module docs). `rng` is the slot's
/// interleaved view of the batch stream, its head words already mixed by
/// the caller's block fills. `scratch` is the caller's reused negative
/// buffer.
// Seven arguments, all routinely needed: the three sampler refs, the slot
// stream, and the two output buffers don't group into anything more
// meaningful than this call site.
//
// `inline(always)`: called once per slot from the two fill loops; out of
// line, the call itself (argument shuffling over seven parameters) costs a
// measurable share of a ~30 ns slot.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn fill_slot<N: NegativeSampler>(
    x: &Interactions,
    user_sampler: &UserSampler,
    negative_sampler: &N,
    negatives_per_slot: usize,
    mut rng: DrawStream,
    scratch: &mut Vec<ItemId>,
    out: &mut TripletBatch,
) {
    for _ in 0..SLOT_ATTEMPTS {
        let user = user_sampler.sample(&mut rng);
        let positive = sample_positive(x, user, &mut rng);
        // A single-negative slot (the pairwise engines' configuration) has
        // no batching to exploit: take the scalar draw straight into the
        // triplet, skipping the scratch round-trip. Multi-negative slots
        // go through the samplers' block draw.
        if negatives_per_slot == 1 {
            match negative_sampler.sample_negative(x, user, &mut rng) {
                Some(negative) => {
                    // Unit slot: `slot_ends` stays implicit (see
                    // `TripletBatch`).
                    out.triplets.push(Triplet {
                        user,
                        positive,
                        negative,
                    });
                    return;
                }
                // Saturated user: retry with a fresh user from the stream.
                None => continue,
            }
        }
        scratch.clear();
        negative_sampler.sample_negatives_block(x, user, negatives_per_slot, &mut rng, scratch);
        // The block draw leaves `scratch` empty iff the user is saturated
        // (no negative exists): retry the slot with a fresh user from the
        // same stream.
        if scratch.is_empty() {
            continue;
        }
        for &negative in scratch.iter() {
            out.triplets.push(Triplet {
                user,
                positive,
                negative,
            });
        }
        out.slot_ends.push(out.triplets.len() as u32);
        return;
    }
}

/// One worker's slice of a parallel fill: its contiguous slot range, the
/// triplets those slots produced, and its negative-draw scratch and
/// slot-head buffers (reused across batches).
#[derive(Default)]
struct FillShard {
    range: Range<usize>,
    out: TripletBatch,
    scratch: Vec<ItemId>,
    heads: Vec<u64>,
}

/// Mixes the head words of `len` consecutive slots starting at `first`
/// into `heads`, word-major: `heads[j · len + i]` is head word `j` of slot
/// `first + i`. Under the mod-`slots` partition, word `j` of those slots
/// is the contiguous position range `j·slots + first ..` of the batch
/// stream — one [`CounterRng::fill_block`] call per head word index,
/// 8-wide through the installed kernel.
fn fill_heads(batch_rng: CounterRng, first: usize, len: usize, slots: usize, heads: &mut Vec<u64>) {
    // Sized, not cleared: every word is overwritten below, and a
    // clear + resize would memset the whole buffer each batch.
    if heads.len() != HEAD * len {
        heads.resize(HEAD * len, 0);
    }
    for (j, row) in heads.chunks_exact_mut(len).enumerate() {
        let mut r = batch_rng.skip((j * slots + first) as u64);
        r.fill_block(row);
    }
}

/// The head rows of a word-major head buffer (`heads[j · len + i]` = head
/// word `j` of the `i`-th slot in the filled range), as one slice per head
/// word index — each exactly as long as the slot range, so the fill loops'
/// per-slot column gathers bounds-check-free.
#[inline]
fn head_rows(heads: &[u64]) -> [&[u64]; HEAD] {
    let len = heads.len() / HEAD;
    std::array::from_fn(|j| &heads[j * len..(j + 1) * len])
}

/// One slot of the fill loops: the fused fast path for the common slot
/// shape (one negative, sampler with a single-word draw), falling back to
/// the generic [`fill_slot`] over the slot's full stream view.
///
/// The fast path decides user, positive, and first negative try straight
/// from the slot's pre-mixed head words — no view construction, no
/// per-word stream bookkeeping. A miss (collision, saturated user) reruns
/// the slot generically, which re-draws the same words in the same order:
/// the triplet stream is identical with the fast path on or off.
// Same argument-count story as `fill_slot`, plus the slot's words and
// stream coordinates; grouping them into a struct would just rename the
// call site.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn fill_one_slot<N: NegativeSampler>(
    x: &Interactions,
    user_sampler: &UserSampler,
    negative_sampler: &N,
    negatives_per_slot: usize,
    batch_rng: CounterRng,
    words: [u64; HEAD],
    slot: usize,
    slots: usize,
    scratch: &mut Vec<ItemId>,
    out: &mut TripletBatch,
) {
    // Slot `slot`'s full interleaved view: the pre-mixed head words plus a
    // tail positioned at its first post-head word.
    let view = || {
        DrawStream::strided(
            words,
            batch_rng.skip((HEAD * slots + slot) as u64),
            slots as u64,
        )
    };
    if N::HAS_FAST_SINGLE && negatives_per_slot == 1 {
        let (user, used) = user_sampler.fast_draw(&words);
        let items = x.items_of(user);
        let positive = positive_from_items(items, words[used]);
        match negative_sampler.fast_single(x, items, words[used + 1]) {
            FastSingle::Hit(negative) => {
                // Unit slot: `slot_ends` stays implicit (see
                // `TripletBatch`).
                out.triplets.push(Triplet {
                    user,
                    positive,
                    negative,
                });
                return;
            }
            // First rejection try collided: keep the user and positive,
            // continue the rejection loop mid-view — no slot rerun.
            FastSingle::Collision => {
                let mut rest = view();
                rest.skip_served(used + 2);
                if let Some(negative) = negative_sampler.resume_single(x, items, &mut rest) {
                    out.triplets.push(Triplet {
                        user,
                        positive,
                        negative,
                    });
                    return;
                }
                // A collision implies a negative exists, so resumption
                // cannot come up empty; if a sampler ever breaks that
                // contract, the generic rerun below is the canonical
                // answer (same words, same order).
            }
            FastSingle::NoPath => {}
        }
    }
    fill_slot(
        x,
        user_sampler,
        negative_sampler,
        negatives_per_slot,
        view(),
        scratch,
        out,
    );
}

/// Samples batches of training triplets, keyed per batch on [`CounterRng`]
/// with each slot drawing a disjoint interleaved view of the batch stream
/// (see the module docs for the determinism contract).
pub struct TripletBatcher<N: NegativeSampler> {
    user_sampler: UserSampler,
    negative_sampler: N,
    slots_per_batch: usize,
    negatives_per_slot: usize,
    seed: u64,
    batch: TripletBatch,
    scratch: Vec<ItemId>,
    heads: Vec<u64>,
    shards: Vec<FillShard>,
}

impl<N: NegativeSampler> TripletBatcher<N> {
    /// A batcher producing up to `batch_size` triplets per batch, one
    /// negative per positive (the pairwise engines' configuration).
    pub fn new(
        user_sampler: UserSampler,
        negative_sampler: N,
        batch_size: usize,
        seed: u64,
    ) -> Self {
        Self::with_negatives(user_sampler, negative_sampler, batch_size, 1, seed)
    }

    /// A batcher with `slots_per_batch` positives per batch and
    /// `negatives_per_slot` negatives (= triplets) per positive.
    pub fn with_negatives(
        user_sampler: UserSampler,
        negative_sampler: N,
        slots_per_batch: usize,
        negatives_per_slot: usize,
        seed: u64,
    ) -> Self {
        assert!(slots_per_batch > 0, "batch must have at least one slot");
        assert!(
            negatives_per_slot > 0,
            "need at least one negative per slot"
        );
        Self {
            user_sampler,
            negative_sampler,
            slots_per_batch,
            negatives_per_slot,
            seed,
            batch: TripletBatch::default(),
            scratch: Vec::new(),
            heads: Vec::new(),
            shards: Vec::new(),
        }
    }

    /// Maximum triplets per batch (`slots × negatives_per_slot`).
    pub fn batch_size(&self) -> usize {
        self.slots_per_batch * self.negatives_per_slot
    }

    /// Positives (slots) per batch.
    pub fn slots_per_batch(&self) -> usize {
        self.slots_per_batch
    }

    /// Number of batches that approximately covers every training
    /// interaction's positive once (an "epoch" in the paper's sense).
    pub fn batches_per_epoch(&self, x: &Interactions) -> usize {
        (x.num_interactions() / self.slots_per_batch).max(1)
    }

    /// Fills batch `batch_index` serially and returns it. Calling this
    /// twice with the same index produces the identical batch; the index,
    /// not call order, selects the content.
    pub fn fill(&mut self, x: &Interactions, batch_index: u64) -> &TripletBatch {
        self.batch.clear();
        let base = CounterRng::stream_base(self.seed);
        let slots = self.slots_per_batch;
        // Split borrows: the batch and scratch buffers are written while
        // the samplers are read.
        let TripletBatcher {
            user_sampler,
            negative_sampler,
            negatives_per_slot,
            batch,
            scratch,
            heads,
            ..
        } = self;
        let batch_rng = CounterRng::keyed_from_base(base, batch_index);
        fill_heads(batch_rng, 0, slots, slots, heads);
        let rows = head_rows(heads);
        for slot in 0..slots {
            fill_one_slot(
                x,
                user_sampler,
                negative_sampler,
                *negatives_per_slot,
                batch_rng,
                std::array::from_fn(|j| rows[j][slot]),
                slot,
                slots,
                scratch,
                batch,
            );
        }
        &self.batch
    }

    /// Fills batch `batch_index` then swaps the result into `out` (the
    /// prefetch thread's buffer-recycling handoff).
    fn fill_swap(&mut self, x: &Interactions, batch_index: u64, out: &mut TripletBatch) {
        self.fill(x, batch_index);
        std::mem::swap(&mut self.batch, out);
    }

    /// Fills batch `batch_index` with contiguous slot ranges fanned across
    /// `pool`, bit-identical to [`Self::fill`] at every worker count: each
    /// slot draws from its own disjoint view of the batch stream, and the
    /// shard outputs are concatenated in shard (= slot) order.
    pub fn fill_parallel(
        &mut self,
        x: &Interactions,
        pool: &WorkerPool,
        batch_index: u64,
    ) -> &TripletBatch
    where
        N: Sync,
    {
        let ranges = chunk_ranges(self.slots_per_batch, pool.workers());
        if ranges.len() <= 1 {
            return self.fill(x, batch_index);
        }
        // Split borrows: the shard buffers are written by the pool while the
        // samplers are read by every worker.
        let TripletBatcher {
            user_sampler,
            negative_sampler,
            slots_per_batch,
            negatives_per_slot,
            seed,
            batch,
            shards,
            ..
        } = self;
        shards.resize_with(ranges.len(), FillShard::default);
        for (sh, range) in shards.iter_mut().zip(ranges) {
            sh.range = range;
            sh.out.clear();
        }
        let base = CounterRng::stream_base(*seed);
        let (slots, negs) = (*slots_per_batch, *negatives_per_slot);
        let batch_rng = CounterRng::keyed_from_base(base, batch_index);
        pool.scatter(&mut shards[..], |_, sh| {
            // Same up-front head mixing as the serial fill, restricted to
            // the shard's contiguous slot range.
            fill_heads(
                batch_rng,
                sh.range.start,
                sh.range.len(),
                slots,
                &mut sh.heads,
            );
            let rows = head_rows(&sh.heads);
            for (i, slot) in sh.range.clone().enumerate() {
                fill_one_slot(
                    x,
                    user_sampler,
                    negative_sampler,
                    negs,
                    batch_rng,
                    std::array::from_fn(|j| rows[j][i]),
                    slot,
                    slots,
                    &mut sh.scratch,
                    &mut sh.out,
                );
            }
        });
        // Shards are contiguous in-order slot ranges, so shard order is slot
        // order: concatenation reproduces the serial fill exactly.
        batch.clear();
        for sh in shards.iter() {
            let base = batch.triplets.len() as u32;
            batch.triplets.extend_from_slice(&sh.out.triplets);
            batch
                .slot_ends
                .extend(sh.out.slot_ends.iter().map(|&end| end + base));
        }
        &self.batch
    }
}

/// How a [`TripletStream`] fills its batches.
pub enum FillMode<'p> {
    /// Serial fill on the calling thread.
    Serial,
    /// Inline fill with slot ranges fanned across the pool.
    Pool(&'p WorkerPool),
    /// Double-buffered background prefetch: a dedicated thread draws batch
    /// `b + 1` while the caller consumes batch `b`, so sampling cost
    /// overlaps gradient work. Identical stream to the other modes.
    ///
    /// On a single-core box there is nothing to overlap with — the filler
    /// thread just timeshares with the trainer and adds handoff overhead —
    /// so [`TripletStream::spawn`] degrades this mode to [`Self::Serial`]
    /// when [`resolve_threads`] detects one core. The stream is identical
    /// either way.
    Prefetch,
}

/// The engines' batch source: a [`TripletBatcher`] plus a fill strategy.
///
/// `next()` returns batches `0, 1, 2, …` in order; since batch content is a
/// pure function of the index, every [`FillMode`] yields the identical
/// stream (property-tested). Created inside a [`std::thread::scope`] so the
/// prefetch thread can borrow the interaction store without cloning it;
/// dropping the stream (or leaving the scope) shuts the thread down.
pub struct TripletStream<'env, N: NegativeSampler> {
    inner: StreamInner<'env, N>,
    next_index: u64,
}

enum StreamInner<'env, N: NegativeSampler> {
    Inline {
        batcher: TripletBatcher<N>,
        x: &'env Interactions,
        pool: Option<&'env WorkerPool>,
    },
    Prefetch {
        /// Requests: (batch index, recycled buffer to fill).
        req: mpsc::Sender<(u64, TripletBatch)>,
        /// Filled batches, in request order.
        res: mpsc::Receiver<TripletBatch>,
        /// The batch currently borrowed by the caller.
        cur: TripletBatch,
    },
}

impl<'env, N: NegativeSampler + Send + Sync + 'env> TripletStream<'env, N> {
    /// Builds the stream; [`FillMode::Prefetch`] spawns the background
    /// filler into `scope` (it exits when the stream is dropped).
    pub fn spawn<'scope>(
        scope: &'scope std::thread::Scope<'scope, 'env>,
        x: &'env Interactions,
        mut batcher: TripletBatcher<N>,
        mode: FillMode<'env>,
    ) -> Self {
        // Prefetch needs a second core to overlap with; on one core it is
        // pure overhead (BENCH_sampling.json measured 0.98×), so fall back
        // to the identical-stream serial fill.
        let mode = match mode {
            FillMode::Prefetch if resolve_threads(0) == 1 => FillMode::Serial,
            m => m,
        };
        let inner = match mode {
            FillMode::Serial => StreamInner::Inline {
                batcher,
                x,
                pool: None,
            },
            FillMode::Pool(pool) => StreamInner::Inline {
                batcher,
                x,
                pool: Some(pool),
            },
            FillMode::Prefetch => {
                let (req_tx, req_rx) = mpsc::channel::<(u64, TripletBatch)>();
                let (res_tx, res_rx) = mpsc::channel::<TripletBatch>();
                scope.spawn(move || {
                    while let Ok((index, mut buf)) = req_rx.recv() {
                        batcher.fill_swap(x, index, &mut buf);
                        if res_tx.send(buf).is_err() {
                            return;
                        }
                    }
                });
                // Prime the double buffer: batches 0 and 1 start filling
                // immediately; from then on buffers recycle through `next`.
                req_tx.send((0, TripletBatch::default())).expect("filler");
                req_tx.send((1, TripletBatch::default())).expect("filler");
                StreamInner::Prefetch {
                    req: req_tx,
                    res: res_rx,
                    cur: TripletBatch::default(),
                }
            }
        };
        Self {
            inner,
            next_index: 0,
        }
    }

    /// The next batch of the stream (batch `0` on the first call).
    pub fn next_batch(&mut self) -> &TripletBatch {
        let index = self.next_index;
        self.next_index += 1;
        match &mut self.inner {
            StreamInner::Inline { batcher, x, pool } => match pool {
                Some(pool) => batcher.fill_parallel(x, pool, index),
                None => batcher.fill(x, index),
            },
            StreamInner::Prefetch { req, res, cur } => {
                let filled = res.recv().expect("prefetch thread died");
                let consumed = std::mem::replace(cur, filled);
                // Recycle the consumed buffer as the request for batch
                // `index + 2` (two requests were primed at spawn, so two
                // stay in flight); ignore send failure (the filler only
                // exits once `req` is gone).
                let _ = req.send((index + 2, consumed));
                cur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::UniformNegativeSampler;

    fn toy() -> Interactions {
        Interactions::from_pairs(3, 8, &[(0, 0), (0, 1), (1, 2), (1, 3), (2, 4)])
    }

    #[test]
    fn batch_has_requested_size_and_valid_triplets() {
        let x = toy();
        let mut b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 32, 1);
        let batch = b.fill(&x, 0);
        assert_eq!(batch.len(), 32);
        for t in batch.triplets() {
            assert!(x.contains(t.user, t.positive), "positive must be observed");
            assert!(
                !x.contains(t.user, t.negative),
                "negative must be unobserved"
            );
        }
    }

    #[test]
    fn batches_differ_across_indices_but_not_across_calls() {
        let x = toy();
        let mut b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 16, 2);
        let first = b.fill(&x, 0).clone();
        let second = b.fill(&x, 1).clone();
        assert_ne!(first, second, "distinct batch indices must differ");
        // Batch content is a pure function of the index: refilling batch 0
        // after batch 1 reproduces it bit for bit.
        assert_eq!(&first, b.fill(&x, 0));
    }

    #[test]
    fn epoch_count_scales_with_data() {
        let x = toy();
        let b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 2, 1);
        assert_eq!(b.batches_per_epoch(&x), 2); // 5 interactions / 2
        let b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 100, 1);
        assert_eq!(b.batches_per_epoch(&x), 1);
    }

    #[test]
    fn saturated_dataset_yields_empty_batch() {
        // Single user who has interacted with both items: no negatives.
        let x = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]);
        let mut b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 8, 3);
        assert!(b.fill(&x, 0).is_empty());
    }

    #[test]
    fn deterministic_given_seed_and_independent_of_history() {
        let x = toy();
        let mut b1 = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 16, 9);
        let mut b2 = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 16, 9);
        // b2 jumps straight to batch 3; b1 walks there. Same result.
        let walked = {
            for i in 0..3 {
                b1.fill(&x, i);
            }
            b1.fill(&x, 3).clone()
        };
        assert_eq!(&walked, b2.fill(&x, 3));
    }

    #[test]
    fn multi_negative_slots_share_user_and_positive() {
        let x = toy();
        let mut b = TripletBatcher::with_negatives(
            UserSampler::uniform(&x),
            UniformNegativeSampler,
            6,
            4,
            5,
        );
        let batch = b.fill(&x, 0).clone();
        assert_eq!(b.batch_size(), 24);
        let mut slot_count = 0;
        for slot in batch.slots() {
            slot_count += 1;
            assert!(!slot.is_empty() && slot.len() <= 4);
            for t in slot {
                assert_eq!(t.user, slot[0].user);
                assert_eq!(t.positive, slot[0].positive);
                assert!(!x.contains(t.user, t.negative));
            }
        }
        assert_eq!(slot_count, 6, "every slot of the toy data must succeed");
        let by_slots: usize = batch.slots().map(<[Triplet]>::len).sum();
        assert_eq!(by_slots, batch.len(), "slot partition covers the batch");
    }

    /// The pinned stream: these literals are the determinism contract for
    /// the training-side sampling pipeline (the batcher analogue of the
    /// evaluator's golden candidate sets). If any literal changes, every
    /// recorded training run changes with it — bump them only with a
    /// deliberate protocol break.
    #[test]
    fn golden_values_pin_the_keyed_triplet_stream() {
        let x = toy();
        let mut b = TripletBatcher::new(UserSampler::uniform(&x), UniformNegativeSampler, 4, 42);
        let got: Vec<(u32, u32, u32)> = b
            .fill(&x, 0)
            .triplets()
            .iter()
            .map(|t| (t.user, t.positive, t.negative))
            .collect();
        assert_eq!(got, GOLDEN_BATCH_0, "batch 0 drifted");
        let got1: Vec<(u32, u32, u32)> = b
            .fill(&x, 1)
            .triplets()
            .iter()
            .map(|t| (t.user, t.positive, t.negative))
            .collect();
        assert_eq!(got1, GOLDEN_BATCH_1, "batch 1 drifted");
    }

    const GOLDEN_BATCH_0: [(u32, u32, u32); 4] = [(1, 3, 7), (1, 3, 7), (0, 0, 7), (1, 3, 5)];
    const GOLDEN_BATCH_1: [(u32, u32, u32); 4] = [(0, 1, 6), (1, 2, 4), (2, 4, 1), (1, 2, 7)];

    #[test]
    fn stream_modes_produce_identical_batches() {
        let x = toy();
        let make = || {
            TripletBatcher::with_negatives(
                UserSampler::uniform(&x),
                UniformNegativeSampler,
                8,
                2,
                7,
            )
        };
        let serial: Vec<TripletBatch> = {
            let mut b = make();
            (0..6).map(|i| b.fill(&x, i).clone()).collect()
        };
        // Prefetch mode.
        std::thread::scope(|scope| {
            let mut stream = TripletStream::spawn(scope, &x, make(), FillMode::Prefetch);
            for want in &serial {
                assert_eq!(want, stream.next_batch(), "prefetch diverged");
            }
        });
        // Pool mode.
        let pool = WorkerPool::new(3);
        std::thread::scope(|scope| {
            let mut stream = TripletStream::spawn(scope, &x, make(), FillMode::Pool(&pool));
            for want in &serial {
                assert_eq!(want, stream.next_batch(), "pool fill diverged");
            }
        });
    }
}
