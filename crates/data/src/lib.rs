//! # mars-data
//!
//! Implicit-feedback data layer for the MARS reproduction.
//!
//! The paper evaluates on six public datasets (Delicious, Lastfm, Ciao,
//! BookX, ML-1M, ML-20M — Table I). Those files are not available in this
//! environment, so the crate ships a **synthetic multi-facet generator**
//! ([`synthetic`]) that plants the structure the paper's argument relies on:
//!
//! * a long-tailed popularity distribution over items,
//! * heterogeneous user activity,
//! * and, crucially, **latent multi-facet structure**: every item belongs to
//!   one or more latent categories and every user holds a mixture of
//!   category preferences, so an interaction happens *because of* one facet.
//!   This is exactly the "user C likes item 2 for its romance and item 4 for
//!   its humour" conflict of the paper's Figure 1 that single-space metric
//!   learning cannot resolve.
//!
//! [`profiles`] mirrors the six datasets' user/item/interaction counts at
//! full scale and at a `small` scale suitable for CI and the benchmark
//! harness.
//!
//! The rest of the crate is protocol plumbing shared by every model:
//!
//! * [`interactions::Interactions`] — compressed sparse user→item and
//!   item→user adjacency with O(log deg) membership tests;
//! * [`dataset::Dataset`] — leave-one-out train/dev/test split (§V-A2);
//! * [`sampler`] — uniform and popularity-smoothed negative samplers plus
//!   the explorative active-user sampler of Eq. 10;
//! * [`margin`] — the adaptive adoption margins `γ_u` of Eq. 7;
//! * [`batch`] — the triplet stream `(u, v⁺, v⁻)` the hinge losses consume;
//! * [`alias`] — O(1) weighted sampling (Walker's alias method) backing the
//!   biased samplers;
//! * [`draws`] — the block-buffered [`draws::DrawStream`] every sampler
//!   draws through (8-wide splitmix64 fills + Lemire range mapping).

// Indexed loops over parallel slices are deliberate in the numeric code
// (the math reads as subscripts); the lint is relaxed workspace-wide in
// the root Cargo.toml `[workspace.lints]` table.
//
// This crate is part of the deterministic numeric core: no unsafe
// anywhere (the vetted unsafe surface lives in mars-tensor::simd
// and mars-runtime; see `cargo run -p mars-audit -- check`).
#![forbid(unsafe_code)]

pub mod alias;
pub mod batch;
pub mod dataset;
pub mod draws;
pub mod interactions;
pub mod latent_metric;
pub mod loader;
pub mod margin;
pub mod profiles;
pub mod sampler;
pub mod synthetic;

pub use dataset::Dataset;
pub use interactions::Interactions;
pub use latent_metric::{generate_latent_metric, LatentMetricConfig};
pub use synthetic::{SyntheticConfig, SyntheticDataset};

/// User index. Kept at 32 bits: the largest profile (ML-20M-like) has 62k
/// users, and half-width indices keep the CSR arrays cache-friendly.
pub type UserId = u32;

/// Item index (see [`UserId`] for the width rationale).
pub type ItemId = u32;
