//! Loading implicit feedback from delimited text files.
//!
//! The paper's datasets ship as `user item [rating] [timestamp]` text files
//! (MovieLens `::`-separated, TransCF's tab-separated dumps, …). This
//! module parses that family of formats into a [`Dataset`]:
//!
//! * arbitrary single-character delimiters (or ASCII whitespace),
//! * raw ids of any string form — remapped to dense `u32` indices in first-
//!   seen order (the mapping is returned for round-tripping),
//! * optional rating column with a threshold (the usual "ratings ≥ 4 count
//!   as implicit positives" binarization),
//! * optional timestamp column used to order each user's history before
//!   the leave-one-out split; files without timestamps keep line order
//!   (the paper randomizes in that case — line order with a shuffled file
//!   is equivalent and reproducible).
//!
//! Malformed lines are collected as warnings rather than silently dropped,
//! so data bugs surface.

use crate::dataset::Dataset;
use crate::ItemId;
use std::collections::HashMap;
use std::io::BufRead;
use std::path::Path;

/// Column layout and parsing rules.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Field delimiter; `None` splits on ASCII whitespace.
    pub delimiter: Option<char>,
    /// 0-based column of the user id.
    pub user_col: usize,
    /// 0-based column of the item id.
    pub item_col: usize,
    /// Optional `(column, threshold)`: keep rows with `rating >= threshold`.
    pub rating: Option<(usize, f32)>,
    /// Optional timestamp column for chronological ordering.
    pub timestamp_col: Option<usize>,
    /// Lines starting with this prefix are skipped (headers/comments).
    pub comment_prefix: Option<String>,
}

impl Default for LoadOptions {
    fn default() -> Self {
        Self {
            delimiter: None,
            user_col: 0,
            item_col: 1,
            rating: None,
            timestamp_col: None,
            comment_prefix: Some("#".to_string()),
        }
    }
}

impl LoadOptions {
    /// MovieLens `.dat` layout: `user::item::rating::timestamp`, ratings
    /// ≥ 4 as positives. (`::` is a two-character separator; MovieLens
    /// files tokenize correctly by splitting on ':' and ignoring empties,
    /// which [`load_lines`] does for `delimiter: Some(':')`.)
    pub fn movielens() -> Self {
        Self {
            delimiter: Some(':'),
            user_col: 0,
            item_col: 1,
            rating: Some((2, 4.0)),
            timestamp_col: Some(3),
            comment_prefix: None,
        }
    }

    /// Tab-separated `user item` pairs (the TransCF data dumps).
    pub fn tsv_pairs() -> Self {
        Self {
            delimiter: Some('\t'),
            ..Self::default()
        }
    }
}

/// Result of a load: the split dataset, the id mappings, and any skipped
/// lines with reasons.
#[derive(Debug)]
pub struct Loaded {
    pub dataset: Dataset,
    /// Raw user id (as appearing in the file) per dense index.
    pub user_ids: Vec<String>,
    /// Raw item id per dense index.
    pub item_ids: Vec<String>,
    /// `(line_number, reason)` for every skipped line (1-based).
    pub warnings: Vec<(usize, String)>,
}

/// Loads a dataset from a file path. See [`load_lines`].
pub fn load_path(
    name: impl Into<String>,
    path: &Path,
    opts: &LoadOptions,
) -> std::io::Result<Loaded> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut lines = Vec::new();
    // Workhorse-string read loop (perf-book): no allocation per line
    // beyond the retained copies.
    for line in reader.lines() {
        lines.push(line?);
    }
    Ok(load_lines(name, lines.iter().map(|s| s.as_str()), opts))
}

/// Parses an iterator of lines into a leave-one-out [`Dataset`].
pub fn load_lines<'a>(
    name: impl Into<String>,
    lines: impl Iterator<Item = &'a str>,
    opts: &LoadOptions,
) -> Loaded {
    let mut user_index: HashMap<String, u32> = HashMap::new();
    let mut item_index: HashMap<String, u32> = HashMap::new();
    let mut user_ids: Vec<String> = Vec::new();
    let mut item_ids: Vec<String> = Vec::new();
    let mut warnings: Vec<(usize, String)> = Vec::new();
    // (user, item, timestamp) events; timestamp defaults to arrival order.
    let mut events: Vec<(u32, u32, i64)> = Vec::new();

    let max_col = [
        Some(opts.user_col),
        Some(opts.item_col),
        opts.rating.map(|(c, _)| c),
        opts.timestamp_col,
    ]
    .into_iter()
    .flatten()
    .max()
    .unwrap_or(0);

    for (lineno, raw) in lines.enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(prefix) = &opts.comment_prefix {
            if line.starts_with(prefix.as_str()) {
                continue;
            }
        }
        let fields: Vec<&str> = match opts.delimiter {
            Some(d) => line.split(d).filter(|f| !f.is_empty()).collect(),
            None => line.split_ascii_whitespace().collect(),
        };
        if fields.len() <= max_col {
            warnings.push((
                lineno,
                format!("expected ≥ {} fields, got {}", max_col + 1, fields.len()),
            ));
            continue;
        }
        if let Some((col, threshold)) = opts.rating {
            match fields[col].parse::<f32>() {
                Ok(r) if r >= threshold => {}
                Ok(_) => continue, // below threshold: a valid non-positive
                Err(_) => {
                    warnings.push((lineno, format!("bad rating '{}'", fields[col])));
                    continue;
                }
            }
        }
        let ts = match opts.timestamp_col {
            None => events.len() as i64,
            Some(col) => match fields[col].parse::<i64>() {
                Ok(t) => t,
                Err(_) => {
                    warnings.push((lineno, format!("bad timestamp '{}'", fields[col])));
                    continue;
                }
            },
        };
        let u = *user_index
            .entry(fields[opts.user_col].to_string())
            .or_insert_with(|| {
                user_ids.push(fields[opts.user_col].to_string());
                (user_ids.len() - 1) as u32
            });
        let v = *item_index
            .entry(fields[opts.item_col].to_string())
            .or_insert_with(|| {
                item_ids.push(fields[opts.item_col].to_string());
                (item_ids.len() - 1) as u32
            });
        events.push((u, v, ts));
    }

    // Chronological per-user histories (stable sort keeps arrival order on
    // timestamp ties).
    events.sort_by_key(|&(_, _, t)| t);
    let mut histories: Vec<Vec<ItemId>> = vec![Vec::new(); user_ids.len()];
    for &(u, v, _) in &events {
        histories[u as usize].push(v);
    }
    let dataset =
        Dataset::leave_one_out(name, user_ids.len(), item_ids.len(), &histories, vec![], 0);
    Loaded {
        dataset,
        user_ids,
        item_ids,
        warnings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whitespace_pairs_roundtrip() {
        let text = [
            "alice item1",
            "alice item2",
            "bob item2",
            "alice item3",
            "alice item4",
        ];
        let loaded = load_lines("t", text.into_iter(), &LoadOptions::default());
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.user_ids, vec!["alice", "bob"]);
        assert_eq!(loaded.item_ids, vec!["item1", "item2", "item3", "item4"]);
        // Alice has 4 items: last → test, second-to-last → dev.
        let d = &loaded.dataset;
        assert_eq!(d.test.len(), 1);
        assert_eq!(d.test[0].item, 3); // item4
        assert_eq!(d.dev[0].item, 2); // item3
        assert!(d.train.contains(0, 0) && d.train.contains(0, 1));
        // Bob's short history stays fully in train.
        assert!(d.train.contains(1, 1));
    }

    #[test]
    fn movielens_format_with_rating_threshold_and_timestamps() {
        // user::item::rating::timestamp — out-of-order timestamps and one
        // below-threshold rating.
        let text = [
            "1::10::5::300",
            "1::11::2::100", // rating below threshold: dropped, no warning
            "1::12::4::100",
            "1::13::4::200",
            "1::14::5::50",
        ];
        let loaded = load_lines("ml", text.into_iter(), &LoadOptions::movielens());
        assert!(loaded.warnings.is_empty(), "{:?}", loaded.warnings);
        let d = &loaded.dataset;
        // Chronological order: 14(t=50), 12(t=100), 13(t=200), 10(t=300).
        // So test = item "10", dev = item "13".
        let test_raw = &loaded.item_ids[d.test[0].item as usize];
        let dev_raw = &loaded.item_ids[d.dev[0].item as usize];
        assert_eq!(test_raw, "10");
        assert_eq!(dev_raw, "13");
    }

    #[test]
    fn malformed_lines_produce_warnings_not_corruption() {
        let text = ["a 1", "broken", "b 2", "c notanumber extra", "a 2", "a 3"];
        let opts = LoadOptions::default();
        let loaded = load_lines("w", text.into_iter(), &opts);
        // "broken" has 1 field → warning; "c notanumber extra" parses fine
        // as user=c item=notanumber (no rating column).
        assert_eq!(loaded.warnings.len(), 1);
        assert_eq!(loaded.warnings[0].0, 2);
        assert_eq!(
            loaded.dataset.train.num_interactions()
                + loaded.dataset.dev.len()
                + loaded.dataset.test.len(),
            5
        );
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = ["# header", "", "u1 i1", "  ", "u1 i2"];
        let loaded = load_lines("c", text.into_iter(), &LoadOptions::default());
        assert!(loaded.warnings.is_empty());
        assert_eq!(loaded.dataset.train.num_interactions(), 2);
    }

    #[test]
    fn bad_rating_and_timestamp_are_warned() {
        let opts = LoadOptions {
            delimiter: Some(','),
            rating: Some((2, 1.0)),
            timestamp_col: Some(3),
            ..LoadOptions::default()
        };
        let text = ["u,i,notafloat,1", "u,j,2.0,notatime", "u,k,2.0,5"];
        let loaded = load_lines("b", text.into_iter(), &opts);
        assert_eq!(loaded.warnings.len(), 2);
        assert_eq!(
            loaded.dataset.train.num_interactions()
                + loaded.dataset.dev.len()
                + loaded.dataset.test.len(),
            1
        );
    }

    #[test]
    fn load_path_reads_files() {
        let mut path = std::env::temp_dir();
        path.push(format!("mars-loader-test-{}.txt", std::process::id()));
        std::fs::write(&path, "u1 i1\nu1 i2\nu2 i1\n").unwrap();
        let loaded = load_path("f", &path, &LoadOptions::default()).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.user_ids.len(), 2);
        assert_eq!(loaded.item_ids.len(), 2);
    }
}
