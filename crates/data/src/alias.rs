//! Walker's alias method for O(1) sampling from a fixed discrete
//! distribution.
//!
//! Both biased samplers in this crate — the popularity-smoothed negative
//! sampler and the explorative active-user sampler of Eq. 10 — draw millions
//! of samples per epoch from a distribution that never changes during
//! training. The alias method pays an O(n) build once and then answers every
//! draw with one uniform index and one biased coin flip.
//!
//! Every draw consumes exactly two 64-bit words — one for the bucket index
//! (mapped through the workspace's shared [`lemire_map`] reduction), one for
//! the coin — so [`AliasTable::sample_block`] can pull whole word blocks
//! from a [`DrawStream`] and decide buckets in a tight loop.

use crate::draws::{DrawStream, DRAW_BLOCK};
use mars_runtime::rng::lemire_map;
use rand::RngCore;

/// Outcomes decided per block round in [`AliasTable::sample_block`]: half a
/// word block, since each outcome consumes two words.
const ALIAS_BLOCK: usize = DRAW_BLOCK / 2;

/// A prebuilt alias table over `n` outcomes.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of the "home" outcome in each bucket.
    prob: Vec<f32>,
    /// Fallback outcome of each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// Weights are normalized internally. An all-zero (or empty) weight
    /// vector yields a uniform table over the same support — a zero-weight
    /// distribution has no meaningful answer, and uniform is the least
    /// surprising fallback for samplers over degenerate data (e.g. a dataset
    /// slice where every user has the same degree 0).
    ///
    /// # Panics
    /// If any weight is negative or non-finite.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "alias table over empty support");
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
        }
        let n = weights.len();
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        if total <= 0.0 {
            return Self {
                prob: vec![1.0; n],
                alias: (0..n as u32).collect(),
            };
        }

        // Scaled weights: mean 1.
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| (w as f64) * n as f64 / total)
            .collect();
        let mut prob = vec![0.0f32; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize] as f32;
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the support is empty (never true — construction panics).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index (consumes exactly two words).
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let index_word = rng.next_u64();
        let coin_word = rng.next_u64();
        self.decide(index_word, coin_word)
    }

    /// Draws `out.len()` outcome indices from `rng`'s stream, two words per
    /// outcome, in blocks — equivalent to repeated [`AliasTable::sample`]
    /// over the same stream.
    pub fn sample_block(&self, rng: &mut DrawStream, out: &mut [u32]) {
        let mut words = [0u64; 2 * ALIAS_BLOCK];
        for chunk in out.chunks_mut(ALIAS_BLOCK) {
            let words = &mut words[..2 * chunk.len()];
            rng.fill_words(words);
            for (j, o) in chunk.iter_mut().enumerate() {
                *o = self.decide(words[2 * j], words[2 * j + 1]) as u32;
            }
        }
    }

    /// Resolves one bucket from its two raw words: Lemire-mapped index, then
    /// the biased coin. The coin reproduces the 24-bit `[0, 1)` float the
    /// samplers historically flipped (`rand`'s standard `f32`: high 32 bits
    /// of the word, top 24 kept), so acceptance thresholds behave
    /// identically. `pub(crate)` so the batcher's fused slot fast path can
    /// decide straight from pre-mixed words — same logic, same words as
    /// [`Self::sample`].
    #[inline]
    pub(crate) fn decide(&self, index_word: u64, coin_word: u64) -> usize {
        let i = lemire_map(index_word, self.len() as u64) as usize;
        let coin = ((coin_word >> 32) as u32 >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        if coin < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0f32, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let freq = empirical(&table, 200_000, 1);
        for (i, &w) in weights.iter().enumerate() {
            let expect = (w / 10.0) as f64;
            assert!(
                (freq[i] - expect).abs() < 0.01,
                "outcome {i}: {:.4} vs {:.4}",
                freq[i],
                expect
            );
        }
    }

    #[test]
    fn skewed_distribution() {
        let weights = [0.0f32, 0.0, 1000.0, 1.0];
        let table = AliasTable::new(&weights);
        let freq = empirical(&table, 100_000, 2);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[1], 0.0);
        assert!(freq[2] > 0.99);
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[3.5]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let table = AliasTable::new(&[0.0, 0.0, 0.0]);
        let freq = empirical(&table, 90_000, 4);
        for f in freq {
            assert!((f - 1.0 / 3.0).abs() < 0.01, "{f}");
        }
    }

    #[test]
    fn block_draws_match_scalar_draws_over_one_stream() {
        use crate::draws::DrawStream;
        use mars_runtime::rng::CounterRng;

        let table = AliasTable::new(&[1.0f32, 2.0, 3.0, 4.0, 0.5]);
        // sample_block must be a pure re-batching of sample: same stream in,
        // same outcomes out, for lengths that cover partial final chunks.
        for len in [1usize, 2, 3, 4, 5, 7, 8, 9, 31] {
            let mut scalar = DrawStream::new(CounterRng::keyed(11, 5));
            let want: Vec<u32> = (0..len).map(|_| table.sample(&mut scalar) as u32).collect();
            let mut block = DrawStream::new(CounterRng::keyed(11, 5));
            let mut got = vec![0u32; len];
            table.sample_block(&mut block, &mut got);
            assert_eq!(want, got, "len {len}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn rejects_negative_weight() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }
}
