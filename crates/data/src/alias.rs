//! Walker's alias method for O(1) sampling from a fixed discrete
//! distribution.
//!
//! Both biased samplers in this crate — the popularity-smoothed negative
//! sampler and the explorative active-user sampler of Eq. 10 — draw millions
//! of samples per epoch from a distribution that never changes during
//! training. The alias method pays an O(n) build once and then answers every
//! draw with one uniform index and one biased coin flip.

use rand::Rng;

/// A prebuilt alias table over `n` outcomes.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability of the "home" outcome in each bucket.
    prob: Vec<f32>,
    /// Fallback outcome of each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from non-negative weights.
    ///
    /// Weights are normalized internally. An all-zero (or empty) weight
    /// vector yields a uniform table over the same support — a zero-weight
    /// distribution has no meaningful answer, and uniform is the least
    /// surprising fallback for samplers over degenerate data (e.g. a dataset
    /// slice where every user has the same degree 0).
    ///
    /// # Panics
    /// If any weight is negative or non-finite.
    pub fn new(weights: &[f32]) -> Self {
        assert!(!weights.is_empty(), "alias table over empty support");
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
        }
        let n = weights.len();
        let total: f64 = weights.iter().map(|&w| w as f64).sum();
        if total <= 0.0 {
            return Self {
                prob: vec![1.0; n],
                alias: (0..n as u32).collect(),
            };
        }

        // Scaled weights: mean 1.
        let mut scaled: Vec<f64> = weights
            .iter()
            .map(|&w| (w as f64) * n as f64 / total)
            .collect();
        let mut prob = vec![0.0f32; n];
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize] as f32;
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers are numerically 1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the support is empty (never true — construction panics).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.len());
        if rng.gen::<f32>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0f32, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let freq = empirical(&table, 200_000, 1);
        for (i, &w) in weights.iter().enumerate() {
            let expect = (w / 10.0) as f64;
            assert!(
                (freq[i] - expect).abs() < 0.01,
                "outcome {i}: {:.4} vs {:.4}",
                freq[i],
                expect
            );
        }
    }

    #[test]
    fn skewed_distribution() {
        let weights = [0.0f32, 0.0, 1000.0, 1.0];
        let table = AliasTable::new(&weights);
        let freq = empirical(&table, 100_000, 2);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[1], 0.0);
        assert!(freq[2] > 0.99);
    }

    #[test]
    fn single_outcome() {
        let table = AliasTable::new(&[3.5]);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weights_fall_back_to_uniform() {
        let table = AliasTable::new(&[0.0, 0.0, 0.0]);
        let freq = empirical(&table, 90_000, 4);
        for f in freq {
            assert!((f - 1.0 / 3.0).abs() < 0.01, "{f}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn rejects_negative_weight() {
        let _ = AliasTable::new(&[1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "empty support")]
    fn rejects_empty() {
        let _ = AliasTable::new(&[]);
    }
}
