//! Negative and user samplers.
//!
//! Training triplets `(u, v⁺, v⁻)` need two random choices beyond the
//! positive pair: which *user* to train on and which *negative item* to
//! contrast against. The paper contributes the **explorative sampling** of
//! Eq. 10 — bias user selection towards active users with smoothing β — and
//! uses standard uniform negatives. We additionally provide a
//! popularity-smoothed negative sampler (the common word2vec-style
//! `deg^0.75` scheme the paper cites via its refs 43 and 52) for the ablation harness.

use crate::alias::AliasTable;
use crate::draws::{DrawStream, DRAW_BLOCK};
use crate::interactions::Interactions;
use crate::{ItemId, UserId};
use mars_runtime::rng::lemire_map;
use rand::RngCore;

/// Outcome of a [`NegativeSampler::fast_single`] draw.
pub enum FastSingle {
    /// The word decided a negative.
    Hit(ItemId),
    /// The word hit a positive: the sampler's first rejection try failed.
    /// The caller keeps the user and positive and hands the stream —
    /// positioned right after this word — to
    /// [`NegativeSampler::resume_single`].
    Collision,
    /// No decision possible (saturated user, or the sampler has no
    /// single-word path): rerun the whole slot generically.
    NoPath,
}

/// Samples a negative item for a user: an item with `X_uv = 0`.
pub trait NegativeSampler {
    /// Whether [`Self::fast_single`] can decide a negative — lets the
    /// batcher's fused slot fast path compile out entirely for samplers
    /// without a single-word draw.
    const HAS_FAST_SINGLE: bool = false;

    /// Draws one negative item for `u`, or `None` if the user has interacted
    /// with every item (no negatives exist).
    fn sample_negative<R: RngCore + ?Sized>(
        &self,
        x: &Interactions,
        u: UserId,
        rng: &mut R,
    ) -> Option<ItemId>;

    /// Single-word fast path for the batcher's fused slot loop: decides the
    /// negative the scalar path's *first* rejection try would produce from
    /// exactly `word`. `items` is the user's sorted positive list
    /// (`x.items_of(u)` — the caller already holds it for the positive
    /// draw, so the slot resolves the offset table once). On
    /// [`FastSingle::Collision`] the caller continues via
    /// [`Self::resume_single`]; on [`FastSingle::NoPath`] it reruns the
    /// slot generically over the same stream view, which re-draws this
    /// word and continues — the triplet stream is identical in all cases.
    #[inline]
    fn fast_single(&self, _x: &Interactions, _items: &[ItemId], _word: u64) -> FastSingle {
        FastSingle::NoPath
    }

    /// Continues a [`FastSingle::Collision`]: runs the scalar path's
    /// remaining rejection tries (and exact fallback, where the sampler
    /// has one) over `rng`, which the caller positioned immediately after
    /// the collided word — together with the first try this consumes
    /// exactly the words [`Self::sample_negative`] would. Only called
    /// after this sampler returned `Collision`, which implies a negative
    /// exists; samplers without a single-word path never collide.
    #[inline]
    fn resume_single(
        &self,
        _x: &Interactions,
        _items: &[ItemId],
        _rng: &mut DrawStream,
    ) -> Option<ItemId> {
        unreachable!("resume_single without a collision fast path")
    }

    /// Draws up to `k` negatives for `u` into `out`, consuming `rng`'s
    /// stream block-wise. Pushes exactly `k` items unless the user is
    /// saturated (no negative exists), in which case it pushes nothing —
    /// `out` left empty ⟺ [`NegativeSampler::sample_negative`] would
    /// return `None`.
    ///
    /// The default implementation loops the scalar path; samplers with a
    /// cheap bulk draw override it to draw candidate blocks and reject
    /// positive collisions in bulk. Implementations may consume a
    /// different number of stream words than `k` scalar calls would — the
    /// word budget is part of each sampler's deterministic draw pattern,
    /// not of this contract.
    fn sample_negatives_block(
        &self,
        x: &Interactions,
        u: UserId,
        k: usize,
        rng: &mut DrawStream,
        out: &mut Vec<ItemId>,
    ) {
        for _ in 0..k {
            match self.sample_negative(x, u, rng) {
                Some(v) => out.push(v),
                None => return,
            }
        }
    }
}

/// Rejection rounds a block sampler runs before switching to its exact
/// fallback. Each round draws one candidate block per missing negative, so
/// even mildly sparse data converges in a round or two; the fallback is
/// exact, so a small cap only bounds worst-case work.
const BLOCK_REJECTION_ROUNDS: usize = 16;

/// Uniform rejection sampling over the item universe — the paper's default.
///
/// Rejection is cheap because implicit-feedback matrices are extremely
/// sparse (≤ 4.5% dense in Table I): the expected number of draws is
/// `1/(1−density)` ≈ 1. A cap guards against pathological users.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformNegativeSampler;

impl NegativeSampler for UniformNegativeSampler {
    const HAS_FAST_SINGLE: bool = true;

    /// First rejection iteration of the scalar path, decided from one
    /// pre-mixed word (`items.len()` is the user's degree, and the
    /// positive check is the same binary search `Interactions::contains`
    /// runs).
    #[inline]
    fn fast_single(&self, x: &Interactions, items: &[ItemId], word: u64) -> FastSingle {
        let n = x.num_items();
        if items.len() >= n {
            return FastSingle::NoPath;
        }
        let v = lemire_map(word, n as u64) as ItemId;
        if items.binary_search(&v).is_err() {
            FastSingle::Hit(v)
        } else {
            FastSingle::Collision
        }
    }

    /// Rejection tries `2..` of the scalar path, then the same exact
    /// complement-rank fallback — word-for-word the continuation of
    /// [`Self::sample_negative`] after its first try.
    fn resume_single(
        &self,
        x: &Interactions,
        items: &[ItemId],
        rng: &mut DrawStream,
    ) -> Option<ItemId> {
        let n = x.num_items();
        for _ in 1..64 {
            let v = lemire_map(rng.next_word(), n as u64) as ItemId;
            if items.binary_search(&v).is_err() {
                return Some(v);
            }
        }
        let k = lemire_map(rng.next_word(), (n - items.len()) as u64) as usize;
        Some(kth_missing_item(items, k))
    }

    fn sample_negative<R: RngCore + ?Sized>(
        &self,
        x: &Interactions,
        u: UserId,
        rng: &mut R,
    ) -> Option<ItemId> {
        let n = x.num_items();
        let deg = x.user_degree(u);
        if deg >= n {
            return None;
        }
        // With degree < n a negative exists; rejection almost always wins on
        // sparse data (expected `1/(1−density)` ≈ 1 draws).
        for _ in 0..64 {
            let v = lemire_map(rng.next_u64(), n as u64) as ItemId;
            if !x.contains(u, v) {
                return Some(v);
            }
        }
        // Rejection-free fallback for dense users (degree close to `n`,
        // where rejection stalls): draw a rank uniformly over the complement
        // and select the rank-th *non-interacted* item exactly, by binary
        // search over the user's sorted positives. One draw, O(log deg),
        // exactly uniform over the negatives — so the sampler terminates
        // with `Some` whenever a negative exists.
        let k = lemire_map(rng.next_u64(), (n - deg) as u64) as usize;
        Some(kth_missing_item(x.items_of(u), k))
    }

    /// Block path: each round draws one candidate per still-missing
    /// negative (whole u64 blocks Lemire-mapped into `0..n`), rejects the
    /// positives in bulk, and tops up from the same stream; dense-user
    /// stragglers fall back to the exact complement-rank draw.
    fn sample_negatives_block(
        &self,
        x: &Interactions,
        u: UserId,
        k: usize,
        rng: &mut DrawStream,
        out: &mut Vec<ItemId>,
    ) {
        let n = x.num_items();
        let deg = x.user_degree(u);
        if deg >= n {
            return;
        }
        let mut need = k;
        let mut cand = [0u32; DRAW_BLOCK];
        for _ in 0..BLOCK_REJECTION_ROUNDS {
            if need == 0 {
                return;
            }
            let take = need.min(DRAW_BLOCK);
            if take < DRAW_BLOCK {
                // Partial block (the k = 1 slot is the common case): same
                // words, same order, but drawn-and-checked inline — below
                // kernel width the array round-trip through `fill_indices`
                // costs more than it saves.
                for _ in 0..take {
                    let v = lemire_map(rng.next_word(), n as u64) as ItemId;
                    if !x.contains(u, v) {
                        out.push(v);
                        need -= 1;
                    }
                }
            } else {
                rng.fill_indices(n, &mut cand[..take]);
                for &v in &cand[..take] {
                    if !x.contains(u, v) {
                        out.push(v);
                        need -= 1;
                    }
                }
            }
        }
        // Same exact fallback as the scalar path, once per straggler.
        let items = x.items_of(u);
        for _ in 0..need {
            let r = lemire_map(rng.next_word(), (n - deg) as u64) as usize;
            out.push(kth_missing_item(items, r));
        }
    }
}

/// Popularity-smoothed negatives: items drawn ∝ `(deg(v)+1)^β`, rejected
/// if positive. Harder negatives (popular items the user skipped) sharpen
/// ranking; exposed for the ablation bench.
///
/// Two draw paths share one weight vector:
///
/// * **Alias rejection** (the common case): one O(1) [`AliasTable`] draw,
///   retried a handful of times. On sparse data the first try almost
///   always survives the positive check.
/// * **Exact complement draw** (the fallback): the prefix-sum table
///   `cum` is *split at the user's positives* — the complement of a
///   sorted positive list is a union of contiguous id ranges, each with
///   mass `cum[end] − cum[start]` — and one uniform tick lands in one
///   range, then a binary search inside it finds the item. This is an
///   **exact** draw from the popularity distribution restricted to the
///   user's negatives (the pre-PR 7 fallback degraded to *uniform*
///   negatives for hyper-active users, silently flattening the
///   distribution exactly where rejection stalls), costs O(deg + log n),
///   and always terminates.
#[derive(Clone, Debug)]
pub struct PopularityNegativeSampler {
    table: AliasTable,
    /// `cum[v]` = total weight of items `< v` (`cum[n]` = grand total),
    /// in f64 so catalogue-scale sums keep item-level resolution.
    cum: Vec<f64>,
}

/// Alias-rejection tries before switching to the exact complement draw.
/// Small: each miss costs two RNG ticks, and the fallback is exact — the
/// only reason to retry at all is that an alias draw is cheaper than the
/// O(deg) positive-mass scan.
const POPULARITY_REJECTION_TRIES: usize = 8;

impl PopularityNegativeSampler {
    /// Builds the sampler over the training interactions with exponent
    /// `beta` (0 = uniform over interacted items, 1 = proportional).
    pub fn new(x: &Interactions, beta: f32) -> Self {
        let weights: Vec<f32> = x
            .item_degrees_f32()
            .iter()
            // +1 smoothing keeps never-interacted items reachable (and
            // every weight strictly positive, which the complement draw's
            // range masses rely on).
            .map(|&d| (d + 1.0).powf(beta))
            .collect();
        let mut cum = Vec::with_capacity(weights.len() + 1);
        let mut acc = 0.0f64;
        cum.push(0.0);
        for &w in &weights {
            acc += w as f64;
            cum.push(acc);
        }
        Self {
            table: AliasTable::new(&weights),
            cum,
        }
    }

    /// Exact draw ∝ weight over the complement of the sorted positive
    /// list: walk the complement's contiguous ranges accumulating mass
    /// until the target tick lands, then binary-search inside the range.
    fn sample_complement<R: RngCore + ?Sized>(
        &self,
        positives: &[ItemId],
        n: usize,
        rng: &mut R,
    ) -> ItemId {
        let w_pos: f64 = positives
            .iter()
            .map(|&p| self.cum[p as usize + 1] - self.cum[p as usize])
            .sum();
        let w_neg = self.cum[n] - w_pos;
        // One tick in [0, w_neg): 53 uniform mantissa bits.
        let r = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * w_neg;

        let mut acc = 0.0f64;
        let mut start = 0usize;
        let mut last_range: Option<(usize, usize)> = None;
        for end in positives
            .iter()
            .map(|&p| p as usize)
            .chain(std::iter::once(n))
        {
            if start < end {
                let mass = self.cum[end] - self.cum[start];
                if acc + mass > r {
                    // Smallest v in [start, end) with cum[v+1] > target.
                    let target = self.cum[start] + (r - acc);
                    let (mut lo, mut hi) = (start, end - 1);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        if self.cum[mid + 1] > target {
                            hi = mid;
                        } else {
                            lo = mid + 1;
                        }
                    }
                    return lo as ItemId;
                }
                acc += mass;
                last_range = Some((start, end));
            }
            start = end + 1;
        }
        // Float residue (r within rounding error of w_neg): the last item
        // of the last non-empty range — callers guarantee one exists.
        let (_, end) = last_range.expect("complement draw over a saturated user");
        (end - 1) as ItemId
    }
}

impl NegativeSampler for PopularityNegativeSampler {
    fn sample_negative<R: RngCore + ?Sized>(
        &self,
        x: &Interactions,
        u: UserId,
        rng: &mut R,
    ) -> Option<ItemId> {
        let n = x.num_items();
        if x.user_degree(u) >= n {
            return None;
        }
        for _ in 0..POPULARITY_REJECTION_TRIES {
            let v = self.table.sample(rng) as ItemId;
            if !x.contains(u, v) {
                return Some(v);
            }
        }
        // Rejection stalled (popular items dominate this user's history):
        // draw exactly from the popularity distribution over the
        // complement instead.
        Some(self.sample_complement(x.items_of(u), n, rng))
    }

    /// Block path: rejection rounds draw alias candidates through
    /// [`AliasTable::sample_block`] (two stream words each, decided in a
    /// tight loop) and reject positives in bulk; stalled draws fall back to
    /// the exact complement draw, once per straggler.
    fn sample_negatives_block(
        &self,
        x: &Interactions,
        u: UserId,
        k: usize,
        rng: &mut DrawStream,
        out: &mut Vec<ItemId>,
    ) {
        let n = x.num_items();
        if x.user_degree(u) >= n {
            return;
        }
        let mut need = k;
        let mut cand = [0u32; DRAW_BLOCK];
        for _ in 0..POPULARITY_REJECTION_TRIES {
            if need == 0 {
                return;
            }
            let take = need.min(DRAW_BLOCK);
            if take < DRAW_BLOCK {
                // Partial block: scalar alias draws consume the stream in
                // the same two-words-per-outcome order as `sample_block`
                // (tested equivalence), without the candidate-array
                // round-trip — cheaper below kernel width.
                for _ in 0..take {
                    let v = self.table.sample(rng) as ItemId;
                    if !x.contains(u, v) {
                        out.push(v);
                        need -= 1;
                    }
                }
            } else {
                self.table.sample_block(rng, &mut cand[..take]);
                for &v in &cand[..take] {
                    if !x.contains(u, v) {
                        out.push(v);
                        need -= 1;
                    }
                }
            }
        }
        let items = x.items_of(u);
        for _ in 0..need {
            out.push(self.sample_complement(items, n, rng));
        }
    }
}

/// How training picks the next user.
#[derive(Clone, Debug)]
pub enum UserSampler {
    /// Uniform over users that have at least one training interaction.
    Uniform { eligible: Vec<UserId> },
    /// Explorative sampling of Eq. 10: `Pr(u) ∝ freq(u)^β`.
    Explorative {
        eligible: Vec<UserId>,
        table: AliasTable,
    },
}

impl UserSampler {
    /// Uniform sampler over users with ≥1 training interaction.
    pub fn uniform(x: &Interactions) -> Self {
        Self::Uniform {
            eligible: eligible_users(x),
        }
    }

    /// Explorative sampler (Eq. 10) with smoothing `beta` (paper default
    /// 0.8) over users with ≥1 training interaction.
    pub fn explorative(x: &Interactions, beta: f32) -> Self {
        let eligible = eligible_users(x);
        assert!(!eligible.is_empty(), "no user has any training interaction");
        let weights: Vec<f32> = eligible
            .iter()
            .map(|&u| (x.user_degree(u) as f32).powf(beta))
            .collect();
        Self::Explorative {
            eligible,
            table: AliasTable::new(&weights),
        }
    }

    /// Draws one user.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> UserId {
        match self {
            UserSampler::Uniform { eligible } => {
                assert!(!eligible.is_empty(), "no eligible users");
                eligible[lemire_map(rng.next_u64(), eligible.len() as u64) as usize]
            }
            UserSampler::Explorative { eligible, table } => eligible[table.sample(rng)],
        }
    }

    /// Word-level form of [`Self::sample`] for the batcher's fused slot
    /// fast path: draws from `words` exactly as [`Self::sample`] would
    /// from a stream serving them in order, returning the user and the
    /// number of words consumed (1 uniform, 2 explorative).
    #[inline]
    pub(crate) fn fast_draw(&self, words: &[u64; 4]) -> (UserId, usize) {
        match self {
            UserSampler::Uniform { eligible } => {
                assert!(!eligible.is_empty(), "no eligible users");
                (
                    eligible[lemire_map(words[0], eligible.len() as u64) as usize],
                    1,
                )
            }
            UserSampler::Explorative { eligible, table } => {
                (eligible[table.decide(words[0], words[1])], 2)
            }
        }
    }

    /// Users this sampler can produce.
    pub fn eligible(&self) -> &[UserId] {
        match self {
            UserSampler::Uniform { eligible } => eligible,
            UserSampler::Explorative { eligible, .. } => eligible,
        }
    }
}

/// The `rank`-th smallest item id **not** present in the sorted positive
/// list `items` (0-based). The number of missing ids below `items[i]` is
/// `items[i] − i`, which is non-decreasing, so a binary search finds how
/// many positives precede the answer.
fn kth_missing_item(items: &[ItemId], rank: usize) -> ItemId {
    let (mut lo, mut hi) = (0usize, items.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if items[mid] as usize - mid <= rank {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (rank + lo) as ItemId
}

fn eligible_users(x: &Interactions) -> Vec<UserId> {
    (0..x.num_users() as UserId)
        .filter(|&u| x.user_degree(u) > 0)
        .collect()
}

/// Draws a uniformly random positive item of `u` (panics if `u` has none —
/// callers draw `u` from an eligible-user sampler first). One stream word,
/// mapped through the shared Lemire reduction.
pub fn sample_positive<R: RngCore + ?Sized>(x: &Interactions, u: UserId, rng: &mut R) -> ItemId {
    let items = x.items_of(u);
    assert!(!items.is_empty(), "user {u} has no positives");
    positive_from_items(items, rng.next_u64())
}

/// Word-level form of [`sample_positive`] over the user's already-resolved
/// positive list, for the batcher's fused slot fast path — the single
/// definition of the positive draw.
#[inline]
pub(crate) fn positive_from_items(items: &[ItemId], word: u64) -> ItemId {
    assert!(!items.is_empty(), "user has no positives");
    items[lemire_map(word, items.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Interactions {
        // u0: 3 items; u1: 1 item; u2: none.
        Interactions::from_pairs(3, 6, &[(0, 0), (0, 1), (0, 2), (1, 5)])
    }

    #[test]
    fn uniform_negative_is_never_positive() {
        let x = toy();
        let s = UniformNegativeSampler;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = s.sample_negative(&x, 0, &mut rng).unwrap();
            assert!(!x.contains(0, v));
        }
    }

    #[test]
    fn uniform_negative_none_when_saturated() {
        let x = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]);
        let s = UniformNegativeSampler;
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(s.sample_negative(&x, 0, &mut rng), None);
    }

    #[test]
    fn uniform_negative_fallback_finds_the_single_negative() {
        // 1 user, 4 items, 3 positive: the single negative must always come
        // back even though rejection may need several tries.
        let x = Interactions::from_pairs(1, 4, &[(0, 0), (0, 1), (0, 3)]);
        let s = UniformNegativeSampler;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(s.sample_negative(&x, 0, &mut rng), Some(2));
        }
    }

    #[test]
    fn dense_user_always_finds_the_single_negative() {
        // The dense-user edge case: 1 user who interacted with all but one
        // of 2000 items. The rejection loop hits a positive with probability
        // 1999/2000 per try, so the rejection-free fallback carries the
        // load — and must return the unique negative every single time.
        let n = 2000u32;
        let missing = 1337u32;
        let pairs: Vec<(UserId, ItemId)> =
            (0..n).filter(|&v| v != missing).map(|v| (0, v)).collect();
        let x = Interactions::from_pairs(1, n as usize, &pairs);
        let s = UniformNegativeSampler;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            assert_eq!(s.sample_negative(&x, 0, &mut rng), Some(missing));
        }
    }

    #[test]
    fn kth_missing_item_enumerates_the_complement() {
        // items = {1, 3, 4} over 0..7 ⇒ complement = [0, 2, 5, 6].
        let items: &[ItemId] = &[1, 3, 4];
        let complement: Vec<ItemId> = (0..4).map(|k| kth_missing_item(items, k)).collect();
        assert_eq!(complement, vec![0, 2, 5, 6]);
        // Empty positives: identity.
        assert_eq!(kth_missing_item(&[], 5), 5);
        // Prefix positives: shifted by the prefix length.
        assert_eq!(kth_missing_item(&[0, 1, 2], 0), 3);
    }

    #[test]
    fn popularity_negative_prefers_popular() {
        // Item 0 very popular among other users, item 5 cold. For user 1
        // (positive: item 5 only... make item 5 not positive for u2).
        let x = Interactions::from_pairs(4, 6, &[(0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 5)]);
        let s = PopularityNegativeSampler::new(&x, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut count0 = 0;
        let mut count4 = 0;
        for _ in 0..5000 {
            // User 2's only positive is 0, so 0 can't be sampled for u2.
            // Use user 1: positives {0, 5}.
            let v = s.sample_negative(&x, 1, &mut rng).unwrap();
            assert!(!x.contains(1, v));
            if v == 1 {
                count0 += 1;
            }
            if v == 4 {
                count4 += 1;
            }
        }
        // Item 1 has degree 1, item 4 degree 0 — item 1 should be sampled
        // roughly 2x as often ((1+1)/(0+1) with beta=1).
        assert!(count0 > count4, "{count0} vs {count4}");
    }

    #[test]
    fn popularity_dense_user_always_finds_the_single_negative() {
        // All but one of 500 items positive: alias rejection virtually
        // never survives, so the exact complement draw carries the load —
        // and must return the unique negative every time.
        let n = 500u32;
        let missing = 137u32;
        let mut pairs: Vec<(UserId, ItemId)> =
            (0..n).filter(|&v| v != missing).map(|v| (0, v)).collect();
        // A second user gives items non-trivial degrees.
        pairs.extend((0..20).map(|v| (1, v)));
        let x = Interactions::from_pairs(2, n as usize, &pairs);
        let s = PopularityNegativeSampler::new(&x, 0.75);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..300 {
            assert_eq!(s.sample_negative(&x, 0, &mut rng), Some(missing));
        }
    }

    #[test]
    fn popularity_complement_draw_keeps_the_popularity_ratio() {
        // A user dense enough that the fallback dominates, with exactly
        // two negatives of very different popularity: the empirical ratio
        // must match the weight ratio — the exact-draw property the old
        // uniform fallback violated (it would return ~50/50).
        let n = 64u32;
        let (hot, cold) = (10u32, 40u32);
        let mut pairs: Vec<(UserId, ItemId)> = (0..n)
            .filter(|&v| v != hot && v != cold)
            .map(|v| (0, v))
            .collect();
        // 9 other users interact with `hot`; nobody touches `cold`.
        pairs.extend((1..10).map(|u| (u, hot)));
        let x = Interactions::from_pairs(10, n as usize, &pairs);
        let beta = 1.0;
        let s = PopularityNegativeSampler::new(&x, beta);
        let mut rng = StdRng::seed_from_u64(22);
        let (mut n_hot, mut n_cold) = (0u32, 0u32);
        for _ in 0..30_000 {
            match s.sample_negative(&x, 0, &mut rng) {
                Some(v) if v == hot => n_hot += 1,
                Some(v) if v == cold => n_cold += 1,
                other => panic!("impossible negative {other:?}"),
            }
        }
        // weight(hot) = (9+1)^1 = 10, weight(cold) = (0+1)^1 = 1.
        let ratio = n_hot as f64 / n_cold as f64;
        assert!((ratio - 10.0).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn popularity_complement_draw_covers_scattered_ranges() {
        // Positives scattered so the complement is many short ranges —
        // every draw must land in the complement, and all of it is
        // reachable.
        let n = 40u32;
        let pairs: Vec<(UserId, ItemId)> = (0..n)
            .filter(|&v| v % 3 != 1) // positives: 0,2,3,5,6,8,…
            .map(|v| (0, v))
            .collect();
        let x = Interactions::from_pairs(1, n as usize, &pairs);
        let s = PopularityNegativeSampler::new(&x, 0.5);
        let mut rng = StdRng::seed_from_u64(23);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let v = s.sample_negative(&x, 0, &mut rng).unwrap();
            assert!(!x.contains(0, v), "positive {v} drawn");
            assert_eq!(v % 3, 1);
            seen.insert(v);
        }
        // All 13 negatives (1, 4, 7, …, 37) reachable.
        assert_eq!(seen.len(), (0..n).filter(|v| v % 3 == 1).count());
    }

    #[test]
    fn explorative_biases_towards_active_users() {
        let x = toy();
        let s = UserSampler::explorative(&x, 0.8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut c0 = 0;
        let mut c1 = 0;
        for _ in 0..20_000 {
            match s.sample(&mut rng) {
                0 => c0 += 1,
                1 => c1 += 1,
                u => panic!("user {u} should not be eligible"),
            }
        }
        // Pr(0)/Pr(1) = 3^0.8 ≈ 2.41.
        let ratio = c0 as f64 / c1 as f64;
        assert!((ratio - 3f64.powf(0.8)).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn explorative_beta_zero_is_uniform_over_eligible() {
        let x = toy();
        let s = UserSampler::explorative(&x, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut c0 = 0;
        for _ in 0..20_000 {
            if s.sample(&mut rng) == 0 {
                c0 += 1;
            }
        }
        let f = c0 as f64 / 20_000.0;
        assert!((f - 0.5).abs() < 0.02, "{f}");
    }

    #[test]
    fn uniform_user_sampler_skips_cold_users() {
        let x = toy();
        let s = UserSampler::uniform(&x);
        assert_eq!(s.eligible(), &[0, 1]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_ne!(s.sample(&mut rng), 2);
        }
    }

    #[test]
    fn block_negatives_are_valid_and_exactly_k() {
        use crate::draws::DrawStream;
        use mars_runtime::rng::CounterRng;

        let x = toy();
        let uni = UniformNegativeSampler;
        let pop = PopularityNegativeSampler::new(&x, 0.75);
        let mut out = Vec::new();
        for stream in 0..50u64 {
            for k in [1usize, 3, 8, 17] {
                let mut rng = DrawStream::new(CounterRng::keyed(99, stream));
                out.clear();
                uni.sample_negatives_block(&x, 0, k, &mut rng, &mut out);
                assert_eq!(out.len(), k);
                assert!(out.iter().all(|&v| !x.contains(0, v)), "{out:?}");
                out.clear();
                pop.sample_negatives_block(&x, 0, k, &mut rng, &mut out);
                assert_eq!(out.len(), k);
                assert!(out.iter().all(|&v| !x.contains(0, v)), "{out:?}");
            }
        }
    }

    #[test]
    fn block_negatives_empty_for_saturated_user() {
        use crate::draws::DrawStream;
        use mars_runtime::rng::CounterRng;

        let x = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]);
        let mut rng = DrawStream::new(CounterRng::keyed(7, 0));
        let mut out = Vec::new();
        UniformNegativeSampler.sample_negatives_block(&x, 0, 4, &mut rng, &mut out);
        assert!(out.is_empty());
        PopularityNegativeSampler::new(&x, 1.0)
            .sample_negatives_block(&x, 0, 4, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn block_negatives_dense_user_hits_the_exact_fallback() {
        use crate::draws::DrawStream;
        use mars_runtime::rng::CounterRng;

        // All but one of 2000 items positive: every block round rejects
        // almost everything, so the exact complement-rank fallback must
        // deliver all k copies of the unique negative.
        let n = 2000u32;
        let missing = 1337u32;
        let pairs: Vec<(UserId, ItemId)> =
            (0..n).filter(|&v| v != missing).map(|v| (0, v)).collect();
        let x = Interactions::from_pairs(1, n as usize, &pairs);
        let mut rng = DrawStream::new(CounterRng::keyed(13, 2));
        let mut out = Vec::new();
        UniformNegativeSampler.sample_negatives_block(&x, 0, 5, &mut rng, &mut out);
        assert_eq!(out, vec![missing; 5]);
    }

    #[test]
    fn sample_positive_returns_interacted() {
        let x = toy();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let v = sample_positive(&x, 0, &mut rng);
            assert!(x.contains(0, v));
        }
    }
}
