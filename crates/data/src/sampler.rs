//! Negative and user samplers.
//!
//! Training triplets `(u, v⁺, v⁻)` need two random choices beyond the
//! positive pair: which *user* to train on and which *negative item* to
//! contrast against. The paper contributes the **explorative sampling** of
//! Eq. 10 — bias user selection towards active users with smoothing β — and
//! uses standard uniform negatives. We additionally provide a
//! popularity-smoothed negative sampler (the common word2vec-style
//! `deg^0.75` scheme the paper cites via its refs 43 and 52) for the ablation harness.

use crate::alias::AliasTable;
use crate::interactions::Interactions;
use crate::{ItemId, UserId};
use rand::Rng;

/// Samples a negative item for a user: an item with `X_uv = 0`.
pub trait NegativeSampler {
    /// Draws one negative item for `u`, or `None` if the user has interacted
    /// with every item (no negatives exist).
    fn sample_negative<R: Rng + ?Sized>(
        &self,
        x: &Interactions,
        u: UserId,
        rng: &mut R,
    ) -> Option<ItemId>;
}

/// Uniform rejection sampling over the item universe — the paper's default.
///
/// Rejection is cheap because implicit-feedback matrices are extremely
/// sparse (≤ 4.5% dense in Table I): the expected number of draws is
/// `1/(1−density)` ≈ 1. A cap guards against pathological users.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformNegativeSampler;

impl NegativeSampler for UniformNegativeSampler {
    fn sample_negative<R: Rng + ?Sized>(
        &self,
        x: &Interactions,
        u: UserId,
        rng: &mut R,
    ) -> Option<ItemId> {
        let n = x.num_items();
        let deg = x.user_degree(u);
        if deg >= n {
            return None;
        }
        // With degree < n a negative exists; rejection almost always wins on
        // sparse data (expected `1/(1−density)` ≈ 1 draws).
        for _ in 0..64 {
            let v = rng.gen_range(0..n) as ItemId;
            if !x.contains(u, v) {
                return Some(v);
            }
        }
        // Rejection-free fallback for dense users (degree close to `n`,
        // where rejection stalls): draw a rank uniformly over the complement
        // and select the rank-th *non-interacted* item exactly, by binary
        // search over the user's sorted positives. One draw, O(log deg),
        // exactly uniform over the negatives — so the sampler terminates
        // with `Some` whenever a negative exists.
        let k = rng.gen_range(0..n - deg);
        Some(kth_missing_item(x.items_of(u), k))
    }
}

/// Popularity-smoothed negatives: items drawn ∝ `(deg(v)+1)^β`, rejected
/// if positive. Harder negatives (popular items the user skipped) sharpen
/// ranking; exposed for the ablation bench.
///
/// Two draw paths share one weight vector:
///
/// * **Alias rejection** (the common case): one O(1) [`AliasTable`] draw,
///   retried a handful of times. On sparse data the first try almost
///   always survives the positive check.
/// * **Exact complement draw** (the fallback): the prefix-sum table
///   `cum` is *split at the user's positives* — the complement of a
///   sorted positive list is a union of contiguous id ranges, each with
///   mass `cum[end] − cum[start]` — and one uniform tick lands in one
///   range, then a binary search inside it finds the item. This is an
///   **exact** draw from the popularity distribution restricted to the
///   user's negatives (the pre-PR 7 fallback degraded to *uniform*
///   negatives for hyper-active users, silently flattening the
///   distribution exactly where rejection stalls), costs O(deg + log n),
///   and always terminates.
#[derive(Clone, Debug)]
pub struct PopularityNegativeSampler {
    table: AliasTable,
    /// `cum[v]` = total weight of items `< v` (`cum[n]` = grand total),
    /// in f64 so catalogue-scale sums keep item-level resolution.
    cum: Vec<f64>,
}

/// Alias-rejection tries before switching to the exact complement draw.
/// Small: each miss costs two RNG ticks, and the fallback is exact — the
/// only reason to retry at all is that an alias draw is cheaper than the
/// O(deg) positive-mass scan.
const POPULARITY_REJECTION_TRIES: usize = 8;

impl PopularityNegativeSampler {
    /// Builds the sampler over the training interactions with exponent
    /// `beta` (0 = uniform over interacted items, 1 = proportional).
    pub fn new(x: &Interactions, beta: f32) -> Self {
        let weights: Vec<f32> = x
            .item_degrees_f32()
            .iter()
            // +1 smoothing keeps never-interacted items reachable (and
            // every weight strictly positive, which the complement draw's
            // range masses rely on).
            .map(|&d| (d + 1.0).powf(beta))
            .collect();
        let mut cum = Vec::with_capacity(weights.len() + 1);
        let mut acc = 0.0f64;
        cum.push(0.0);
        for &w in &weights {
            acc += w as f64;
            cum.push(acc);
        }
        Self {
            table: AliasTable::new(&weights),
            cum,
        }
    }

    /// Exact draw ∝ weight over the complement of the sorted positive
    /// list: walk the complement's contiguous ranges accumulating mass
    /// until the target tick lands, then binary-search inside the range.
    fn sample_complement<R: Rng + ?Sized>(
        &self,
        positives: &[ItemId],
        n: usize,
        rng: &mut R,
    ) -> ItemId {
        let w_pos: f64 = positives
            .iter()
            .map(|&p| self.cum[p as usize + 1] - self.cum[p as usize])
            .sum();
        let w_neg = self.cum[n] - w_pos;
        // One tick in [0, w_neg): 53 uniform mantissa bits.
        let r = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) * w_neg;

        let mut acc = 0.0f64;
        let mut start = 0usize;
        let mut last_range: Option<(usize, usize)> = None;
        for end in positives
            .iter()
            .map(|&p| p as usize)
            .chain(std::iter::once(n))
        {
            if start < end {
                let mass = self.cum[end] - self.cum[start];
                if acc + mass > r {
                    // Smallest v in [start, end) with cum[v+1] > target.
                    let target = self.cum[start] + (r - acc);
                    let (mut lo, mut hi) = (start, end - 1);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        if self.cum[mid + 1] > target {
                            hi = mid;
                        } else {
                            lo = mid + 1;
                        }
                    }
                    return lo as ItemId;
                }
                acc += mass;
                last_range = Some((start, end));
            }
            start = end + 1;
        }
        // Float residue (r within rounding error of w_neg): the last item
        // of the last non-empty range — callers guarantee one exists.
        let (_, end) = last_range.expect("complement draw over a saturated user");
        (end - 1) as ItemId
    }
}

impl NegativeSampler for PopularityNegativeSampler {
    fn sample_negative<R: Rng + ?Sized>(
        &self,
        x: &Interactions,
        u: UserId,
        rng: &mut R,
    ) -> Option<ItemId> {
        let n = x.num_items();
        if x.user_degree(u) >= n {
            return None;
        }
        for _ in 0..POPULARITY_REJECTION_TRIES {
            let v = self.table.sample(rng) as ItemId;
            if !x.contains(u, v) {
                return Some(v);
            }
        }
        // Rejection stalled (popular items dominate this user's history):
        // draw exactly from the popularity distribution over the
        // complement instead.
        Some(self.sample_complement(x.items_of(u), n, rng))
    }
}

/// How training picks the next user.
#[derive(Clone, Debug)]
pub enum UserSampler {
    /// Uniform over users that have at least one training interaction.
    Uniform { eligible: Vec<UserId> },
    /// Explorative sampling of Eq. 10: `Pr(u) ∝ freq(u)^β`.
    Explorative {
        eligible: Vec<UserId>,
        table: AliasTable,
    },
}

impl UserSampler {
    /// Uniform sampler over users with ≥1 training interaction.
    pub fn uniform(x: &Interactions) -> Self {
        Self::Uniform {
            eligible: eligible_users(x),
        }
    }

    /// Explorative sampler (Eq. 10) with smoothing `beta` (paper default
    /// 0.8) over users with ≥1 training interaction.
    pub fn explorative(x: &Interactions, beta: f32) -> Self {
        let eligible = eligible_users(x);
        assert!(!eligible.is_empty(), "no user has any training interaction");
        let weights: Vec<f32> = eligible
            .iter()
            .map(|&u| (x.user_degree(u) as f32).powf(beta))
            .collect();
        Self::Explorative {
            eligible,
            table: AliasTable::new(&weights),
        }
    }

    /// Draws one user.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> UserId {
        match self {
            UserSampler::Uniform { eligible } => {
                assert!(!eligible.is_empty(), "no eligible users");
                eligible[rng.gen_range(0..eligible.len())]
            }
            UserSampler::Explorative { eligible, table } => eligible[table.sample(rng)],
        }
    }

    /// Users this sampler can produce.
    pub fn eligible(&self) -> &[UserId] {
        match self {
            UserSampler::Uniform { eligible } => eligible,
            UserSampler::Explorative { eligible, .. } => eligible,
        }
    }
}

/// The `rank`-th smallest item id **not** present in the sorted positive
/// list `items` (0-based). The number of missing ids below `items[i]` is
/// `items[i] − i`, which is non-decreasing, so a binary search finds how
/// many positives precede the answer.
fn kth_missing_item(items: &[ItemId], rank: usize) -> ItemId {
    let (mut lo, mut hi) = (0usize, items.len());
    while lo < hi {
        let mid = (lo + hi) / 2;
        if items[mid] as usize - mid <= rank {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (rank + lo) as ItemId
}

fn eligible_users(x: &Interactions) -> Vec<UserId> {
    (0..x.num_users() as UserId)
        .filter(|&u| x.user_degree(u) > 0)
        .collect()
}

/// Draws a uniformly random positive item of `u` (panics if `u` has none —
/// callers draw `u` from an eligible-user sampler first).
pub fn sample_positive<R: Rng + ?Sized>(x: &Interactions, u: UserId, rng: &mut R) -> ItemId {
    let items = x.items_of(u);
    assert!(!items.is_empty(), "user {u} has no positives");
    items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy() -> Interactions {
        // u0: 3 items; u1: 1 item; u2: none.
        Interactions::from_pairs(3, 6, &[(0, 0), (0, 1), (0, 2), (1, 5)])
    }

    #[test]
    fn uniform_negative_is_never_positive() {
        let x = toy();
        let s = UniformNegativeSampler;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            let v = s.sample_negative(&x, 0, &mut rng).unwrap();
            assert!(!x.contains(0, v));
        }
    }

    #[test]
    fn uniform_negative_none_when_saturated() {
        let x = Interactions::from_pairs(1, 2, &[(0, 0), (0, 1)]);
        let s = UniformNegativeSampler;
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(s.sample_negative(&x, 0, &mut rng), None);
    }

    #[test]
    fn uniform_negative_fallback_finds_the_single_negative() {
        // 1 user, 4 items, 3 positive: the single negative must always come
        // back even though rejection may need several tries.
        let x = Interactions::from_pairs(1, 4, &[(0, 0), (0, 1), (0, 3)]);
        let s = UniformNegativeSampler;
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(s.sample_negative(&x, 0, &mut rng), Some(2));
        }
    }

    #[test]
    fn dense_user_always_finds_the_single_negative() {
        // The dense-user edge case: 1 user who interacted with all but one
        // of 2000 items. The rejection loop hits a positive with probability
        // 1999/2000 per try, so the rejection-free fallback carries the
        // load — and must return the unique negative every single time.
        let n = 2000u32;
        let missing = 1337u32;
        let pairs: Vec<(UserId, ItemId)> =
            (0..n).filter(|&v| v != missing).map(|v| (0, v)).collect();
        let x = Interactions::from_pairs(1, n as usize, &pairs);
        let s = UniformNegativeSampler;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            assert_eq!(s.sample_negative(&x, 0, &mut rng), Some(missing));
        }
    }

    #[test]
    fn kth_missing_item_enumerates_the_complement() {
        // items = {1, 3, 4} over 0..7 ⇒ complement = [0, 2, 5, 6].
        let items: &[ItemId] = &[1, 3, 4];
        let complement: Vec<ItemId> = (0..4).map(|k| kth_missing_item(items, k)).collect();
        assert_eq!(complement, vec![0, 2, 5, 6]);
        // Empty positives: identity.
        assert_eq!(kth_missing_item(&[], 5), 5);
        // Prefix positives: shifted by the prefix length.
        assert_eq!(kth_missing_item(&[0, 1, 2], 0), 3);
    }

    #[test]
    fn popularity_negative_prefers_popular() {
        // Item 0 very popular among other users, item 5 cold. For user 1
        // (positive: item 5 only... make item 5 not positive for u2).
        let x = Interactions::from_pairs(4, 6, &[(0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 5)]);
        let s = PopularityNegativeSampler::new(&x, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut count0 = 0;
        let mut count4 = 0;
        for _ in 0..5000 {
            // User 2's only positive is 0, so 0 can't be sampled for u2.
            // Use user 1: positives {0, 5}.
            let v = s.sample_negative(&x, 1, &mut rng).unwrap();
            assert!(!x.contains(1, v));
            if v == 1 {
                count0 += 1;
            }
            if v == 4 {
                count4 += 1;
            }
        }
        // Item 1 has degree 1, item 4 degree 0 — item 1 should be sampled
        // roughly 2x as often ((1+1)/(0+1) with beta=1).
        assert!(count0 > count4, "{count0} vs {count4}");
    }

    #[test]
    fn popularity_dense_user_always_finds_the_single_negative() {
        // All but one of 500 items positive: alias rejection virtually
        // never survives, so the exact complement draw carries the load —
        // and must return the unique negative every time.
        let n = 500u32;
        let missing = 137u32;
        let mut pairs: Vec<(UserId, ItemId)> =
            (0..n).filter(|&v| v != missing).map(|v| (0, v)).collect();
        // A second user gives items non-trivial degrees.
        pairs.extend((0..20).map(|v| (1, v)));
        let x = Interactions::from_pairs(2, n as usize, &pairs);
        let s = PopularityNegativeSampler::new(&x, 0.75);
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..300 {
            assert_eq!(s.sample_negative(&x, 0, &mut rng), Some(missing));
        }
    }

    #[test]
    fn popularity_complement_draw_keeps_the_popularity_ratio() {
        // A user dense enough that the fallback dominates, with exactly
        // two negatives of very different popularity: the empirical ratio
        // must match the weight ratio — the exact-draw property the old
        // uniform fallback violated (it would return ~50/50).
        let n = 64u32;
        let (hot, cold) = (10u32, 40u32);
        let mut pairs: Vec<(UserId, ItemId)> = (0..n)
            .filter(|&v| v != hot && v != cold)
            .map(|v| (0, v))
            .collect();
        // 9 other users interact with `hot`; nobody touches `cold`.
        pairs.extend((1..10).map(|u| (u, hot)));
        let x = Interactions::from_pairs(10, n as usize, &pairs);
        let beta = 1.0;
        let s = PopularityNegativeSampler::new(&x, beta);
        let mut rng = StdRng::seed_from_u64(22);
        let (mut n_hot, mut n_cold) = (0u32, 0u32);
        for _ in 0..30_000 {
            match s.sample_negative(&x, 0, &mut rng) {
                Some(v) if v == hot => n_hot += 1,
                Some(v) if v == cold => n_cold += 1,
                other => panic!("impossible negative {other:?}"),
            }
        }
        // weight(hot) = (9+1)^1 = 10, weight(cold) = (0+1)^1 = 1.
        let ratio = n_hot as f64 / n_cold as f64;
        assert!((ratio - 10.0).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn popularity_complement_draw_covers_scattered_ranges() {
        // Positives scattered so the complement is many short ranges —
        // every draw must land in the complement, and all of it is
        // reachable.
        let n = 40u32;
        let pairs: Vec<(UserId, ItemId)> = (0..n)
            .filter(|&v| v % 3 != 1) // positives: 0,2,3,5,6,8,…
            .map(|v| (0, v))
            .collect();
        let x = Interactions::from_pairs(1, n as usize, &pairs);
        let s = PopularityNegativeSampler::new(&x, 0.5);
        let mut rng = StdRng::seed_from_u64(23);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let v = s.sample_negative(&x, 0, &mut rng).unwrap();
            assert!(!x.contains(0, v), "positive {v} drawn");
            assert_eq!(v % 3, 1);
            seen.insert(v);
        }
        // All 13 negatives (1, 4, 7, …, 37) reachable.
        assert_eq!(seen.len(), (0..n).filter(|v| v % 3 == 1).count());
    }

    #[test]
    fn explorative_biases_towards_active_users() {
        let x = toy();
        let s = UserSampler::explorative(&x, 0.8);
        let mut rng = StdRng::seed_from_u64(5);
        let mut c0 = 0;
        let mut c1 = 0;
        for _ in 0..20_000 {
            match s.sample(&mut rng) {
                0 => c0 += 1,
                1 => c1 += 1,
                u => panic!("user {u} should not be eligible"),
            }
        }
        // Pr(0)/Pr(1) = 3^0.8 ≈ 2.41.
        let ratio = c0 as f64 / c1 as f64;
        assert!((ratio - 3f64.powf(0.8)).abs() < 0.25, "ratio {ratio}");
    }

    #[test]
    fn explorative_beta_zero_is_uniform_over_eligible() {
        let x = toy();
        let s = UserSampler::explorative(&x, 0.0);
        let mut rng = StdRng::seed_from_u64(6);
        let mut c0 = 0;
        for _ in 0..20_000 {
            if s.sample(&mut rng) == 0 {
                c0 += 1;
            }
        }
        let f = c0 as f64 / 20_000.0;
        assert!((f - 0.5).abs() < 0.02, "{f}");
    }

    #[test]
    fn uniform_user_sampler_skips_cold_users() {
        let x = toy();
        let s = UserSampler::uniform(&x);
        assert_eq!(s.eligible(), &[0, 1]);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            assert_ne!(s.sample(&mut rng), 2);
        }
    }

    #[test]
    fn sample_positive_returns_interacted() {
        let x = toy();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let v = sample_positive(&x, 0, &mut rng);
            assert!(x.contains(0, v));
        }
    }
}
