//! Leave-one-out dataset splits.
//!
//! §V-A2 of the paper: "the testing set comprises the last item of all
//! users. If there are no timestamps available in the dataset, the test
//! sample is randomly selected. One item for each user is also sampled to
//! form the development set."
//!
//! Our synthetic interactions carry a generation order which stands in for
//! timestamps; [`Dataset::leave_one_out`] removes the *last* two
//! interactions of each user (last → test, second-to-last → dev). Users with
//! fewer than three interactions keep everything in train and are skipped at
//! evaluation time — the standard handling (they cannot lose an item and
//! still be trainable).

use crate::interactions::Interactions;
use crate::{ItemId, UserId};

/// A held-out `(user, item)` evaluation pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeldOut {
    pub user: UserId,
    pub item: ItemId,
}

/// A train/dev/test split of an implicit-feedback dataset, plus the
/// ground-truth category annotations the synthetic generator provides
/// (used only by the case-study experiments, never by the models).
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Human-readable name (e.g. `"ciao-small"`).
    pub name: String,
    /// Training interactions.
    pub train: Interactions,
    /// One dev pair per eligible user.
    pub dev: Vec<HeldOut>,
    /// One test pair per eligible user.
    pub test: Vec<HeldOut>,
    /// `categories[v]` = ground-truth category ids of item `v` (possibly
    /// several — the paper's movies belong to multiple genres). Empty when
    /// the source has no annotations.
    pub item_categories: Vec<Vec<u16>>,
    /// Number of distinct categories (0 when unannotated).
    pub num_categories: usize,
}

impl Dataset {
    /// Splits time-ordered per-user interaction lists into train/dev/test.
    ///
    /// `ordered` holds each user's interactions in chronological order
    /// (duplicates allowed; resolved towards the earliest occurrence). The
    /// last distinct item of each user goes to test, the second-to-last to
    /// dev, the rest to train. Users with fewer than 3 distinct items
    /// contribute everything to train.
    pub fn leave_one_out(
        name: impl Into<String>,
        num_users: usize,
        num_items: usize,
        ordered: &[Vec<ItemId>],
        item_categories: Vec<Vec<u16>>,
        num_categories: usize,
    ) -> Self {
        assert_eq!(
            ordered.len(),
            num_users,
            "need one (possibly empty) history per user"
        );
        let mut train_pairs: Vec<(UserId, ItemId)> = Vec::new();
        let mut dev = Vec::new();
        let mut test = Vec::new();
        for (u, history) in ordered.iter().enumerate() {
            let u = u as UserId;
            // Keep first occurrence of each item, preserving order.
            let mut seen = std::collections::HashSet::new();
            let distinct: Vec<ItemId> = history
                .iter()
                .cloned()
                .filter(|v| seen.insert(*v))
                .collect();
            if distinct.len() < 3 {
                train_pairs.extend(distinct.iter().map(|&v| (u, v)));
                continue;
            }
            let n = distinct.len();
            test.push(HeldOut {
                user: u,
                item: distinct[n - 1],
            });
            dev.push(HeldOut {
                user: u,
                item: distinct[n - 2],
            });
            train_pairs.extend(distinct[..n - 2].iter().map(|&v| (u, v)));
        }
        let train = Interactions::from_pairs(num_users, num_items, &train_pairs);
        Self {
            name: name.into(),
            train,
            dev,
            test,
            item_categories,
            num_categories,
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.train.num_users()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.train.num_items()
    }

    /// Whether the held-out pairs are disjoint from train (sanity invariant,
    /// checked by tests and the harness in debug builds).
    pub fn split_is_consistent(&self) -> bool {
        self.dev
            .iter()
            .chain(self.test.iter())
            .all(|h| !self.train.contains(h.user, h.item))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histories() -> Vec<Vec<ItemId>> {
        vec![
            vec![0, 1, 2, 3],    // enough: train {0,1}, dev 2, test 3
            vec![4, 4, 5],       // dup collapses to {4,5}: too short, all to train
            vec![1, 2, 0, 2, 4], // distinct [1,2,0,4]: train {1,2}, dev 0, test 4
            vec![],              // cold user
        ]
    }

    fn split() -> Dataset {
        Dataset::leave_one_out("toy", 4, 6, &histories(), vec![], 0)
    }

    #[test]
    fn last_goes_to_test_second_last_to_dev() {
        let d = split();
        assert_eq!(
            d.test,
            vec![HeldOut { user: 0, item: 3 }, HeldOut { user: 2, item: 4 }]
        );
        assert_eq!(
            d.dev,
            vec![HeldOut { user: 0, item: 2 }, HeldOut { user: 2, item: 0 }]
        );
    }

    #[test]
    fn short_histories_stay_in_train() {
        let d = split();
        assert!(d.train.contains(1, 4));
        assert!(d.train.contains(1, 5));
        // User 1 appears in no held-out pair.
        assert!(d.test.iter().all(|h| h.user != 1));
        assert!(d.dev.iter().all(|h| h.user != 1));
    }

    #[test]
    fn split_is_disjoint() {
        let d = split();
        assert!(d.split_is_consistent());
    }

    #[test]
    fn train_counts() {
        let d = split();
        // u0: {0,1}; u1: {4,5}; u2: {1,2}; u3: {}
        assert_eq!(d.train.num_interactions(), 6);
        assert_eq!(d.train.items_of(0), &[0, 1]);
        assert_eq!(d.train.items_of(2), &[1, 2]);
    }

    #[test]
    fn duplicates_resolve_to_first_occurrence() {
        // history [2, 1, 2, 0, 1, 3]: distinct order [2, 1, 0, 3]
        let d = Dataset::leave_one_out("dup", 1, 4, &[vec![2, 1, 2, 0, 1, 3]], vec![], 0);
        assert_eq!(d.test[0].item, 3);
        assert_eq!(d.dev[0].item, 0);
        assert_eq!(d.train.items_of(0), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "one (possibly empty) history per user")]
    fn history_count_must_match() {
        let _ = Dataset::leave_one_out("bad", 3, 4, &[vec![0]], vec![], 0);
    }
}
