//! Adaptive adoption margins (Eq. 7 of the paper).
//!
//! The push loss uses a per-user margin `γ_u` instead of a global `m`. The
//! paper computes it from the user's two-hop neighbourhood on the bipartite
//! graph: users with many distinct two-hop neighbours are "high adoption"
//! (open to new things) and get a *small* margin, cautious users get a large
//! one.
//!
//! Eq. 7 as printed is `γ_u = 1 − (Σ_{v∈V_u} |U_v|) / N`, a *sum* over
//! possibly-overlapping neighbour sets; that quantity can exceed `N`, making
//! the claimed range `γ_u ∈ [0,1]` fail. The surrounding prose — "the more
//! **different** two-hop neighbors u has" — describes the *distinct* count
//! `|∪_{v∈V_u} U_v|`, which is ≤ N by construction. We implement the
//! distinct-union reading as the default ([`MarginMode::DistinctTwoHop`])
//! and the literal clamped sum ([`MarginMode::ClampedSum`]) for comparison;
//! the ablation harness exercises both, plus the fixed margin of CML.

use crate::interactions::Interactions;
use crate::UserId;

/// Which margin rule the trainer uses.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum MarginMode {
    /// A single global margin for every user (CML-style, Eq. 5).
    Fixed(f32),
    /// `γ_u = 1 − |∪_{v∈V_u} U_v| / N` — distinct two-hop neighbours
    /// (the reading consistent with the paper's prose and range claim).
    #[default]
    DistinctTwoHop,
    /// `γ_u = max(0, 1 − Σ_{v∈V_u} |U_v| / N)` — Eq. 7 verbatim, clamped.
    ClampedSum,
}

/// Computes the per-user margin vector for the given rule.
///
/// Margins are clamped to `[min_margin, 1]`: a margin of exactly zero would
/// let the hinge collapse (any `s_p ≥ s_q` satisfies it), so a small floor
/// keeps every user contributing gradient. The paper does not state a floor;
/// 0.05 empirically matches the behaviour its Table IV implies (adaptive
/// margins strictly help).
pub fn compute_margins(x: &Interactions, mode: MarginMode, min_margin: f32) -> Vec<f32> {
    let n = x.num_users().max(1) as f64;
    match mode {
        MarginMode::Fixed(m) => vec![m.clamp(min_margin, 1.0); x.num_users()],
        MarginMode::DistinctTwoHop => {
            let mut seen = vec![u32::MAX; x.num_users()];
            (0..x.num_users() as UserId)
                .map(|u| {
                    let mut distinct = 0usize;
                    for &v in x.items_of(u) {
                        for &w in x.users_of(v) {
                            if seen[w as usize] != u {
                                seen[w as usize] = u;
                                distinct += 1;
                            }
                        }
                    }
                    let gamma = 1.0 - distinct as f64 / n;
                    (gamma as f32).clamp(min_margin, 1.0)
                })
                .collect()
        }
        MarginMode::ClampedSum => (0..x.num_users() as UserId)
            .map(|u| {
                let sum: usize = x.items_of(u).iter().map(|&v| x.users_of(v).len()).sum();
                let gamma = 1.0 - sum as f64 / n;
                (gamma as f32).clamp(min_margin, 1.0)
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 4 users, 3 items.
    /// u0: {0};  u1: {0, 1};  u2: {1, 2};  u3: {2}
    fn toy() -> Interactions {
        Interactions::from_pairs(4, 3, &[(0, 0), (1, 0), (1, 1), (2, 1), (2, 2), (3, 2)])
    }

    #[test]
    fn fixed_mode_is_constant() {
        let x = toy();
        let m = compute_margins(&x, MarginMode::Fixed(0.5), 0.05);
        assert_eq!(m, vec![0.5; 4]);
    }

    #[test]
    fn distinct_two_hop_hand_computed() {
        let x = toy();
        let m = compute_margins(&x, MarginMode::DistinctTwoHop, 0.0);
        // u0: items {0} → users {0,1} → 2 distinct → 1 - 2/4 = 0.5
        assert!((m[0] - 0.5).abs() < 1e-6);
        // u1: items {0,1} → users {0,1} ∪ {1,2} = {0,1,2} → 1 - 3/4 = 0.25
        assert!((m[1] - 0.25).abs() < 1e-6);
        // u2: items {1,2} → {1,2} ∪ {2,3} = {1,2,3} → 0.25
        assert!((m[2] - 0.25).abs() < 1e-6);
        // u3: items {2} → {2,3} → 0.5
        assert!((m[3] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn clamped_sum_hand_computed() {
        let x = toy();
        let m = compute_margins(&x, MarginMode::ClampedSum, 0.0);
        // u1: |U_0| + |U_1| = 2 + 2 = 4 → 1 - 4/4 = 0 (clamped at 0)
        assert!((m[1] - 0.0).abs() < 1e-6);
        // u0: |U_0| = 2 → 0.5
        assert!((m[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn margins_in_unit_interval() {
        let x = toy();
        for mode in [MarginMode::DistinctTwoHop, MarginMode::ClampedSum] {
            for &g in &compute_margins(&x, mode, 0.05) {
                assert!((0.05..=1.0).contains(&g), "{g}");
            }
        }
    }

    #[test]
    fn active_users_get_smaller_margins() {
        // The more items a user has, the more two-hop neighbours, the
        // smaller the margin — the paper's adoption story.
        let x = toy();
        let m = compute_margins(&x, MarginMode::DistinctTwoHop, 0.0);
        assert!(m[1] < m[0]);
    }

    #[test]
    fn cold_user_margin_is_max() {
        let x = Interactions::from_pairs(2, 2, &[(0, 0)]);
        let m = compute_margins(&x, MarginMode::DistinctTwoHop, 0.05);
        // u1 has no items → 0 two-hop → γ = 1.
        assert_eq!(m[1], 1.0);
    }
}
