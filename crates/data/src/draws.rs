//! Block draws for the sampling pipeline.
//!
//! Every random decision the training batcher makes — which user, which
//! positive, which negatives — consumes 64-bit words from a per-slot view
//! of a [`CounterRng`] stream. [`DrawStream`] is the adapter the samplers
//! draw through: single words for the scalar decisions, word blocks for
//! the bulk decisions, and every range mapping goes through the
//! workspace's single range reduction, [`mars_runtime::rng::lemire_map`].
//!
//! Two stream shapes share the adapter:
//!
//! * [`DrawStream::new`] — a **dense** view: words `0, 1, 2, …` of one
//!   counter stream, mixed on demand (block draws run through
//!   [`CounterRng::fill_block`], 8-wide when an engine has installed the
//!   vectorized kernel via `mars_tensor::simd::install_rng_kernel`).
//! * [`DrawStream::strided`] — an **interleaved** view: a pre-mixed
//!   [`HEAD`]-word head plus every `stride`-th word of the underlying
//!   stream from there on. The batcher carves one batch-level stream into
//!   `slots` such views (slot `s` owns the words at positions
//!   `≡ s (mod slots)`): the heads of *all* slots are contiguous word
//!   ranges, so one kernel call per head word mixes them 8-wide at
//!   throughput, instead of each slot paying the mix latency serially on
//!   its own critical path.
//!
//! Word-for-word each view is a pure function of the underlying stream
//! key and the view's position set; how a consumer draws (single words or
//! blocks) changes only *how* the counter advances, never which word
//! arrives next. Since every consumer's draw pattern is itself
//! deterministic, batch content stays a pure function of the key at any
//! worker count — the batcher's contract.

use mars_runtime::rng::{lemire_map, CounterRng};

/// Bulk-draw granularity for the samplers' block paths (candidate blocks,
/// alias chunks) — the vectorized kernel's native width.
pub const DRAW_BLOCK: usize = 8;

/// Words in a [`DrawStream::strided`] head — the typical whole-slot budget
/// (explorative user 2, positive 1, one negative 1). Over-provisioned head
/// words cost one amortized 8-wide mix each; under-provisioned slots fall
/// through to the strided tail.
pub const HEAD: usize = 4;

/// A draw adapter over one counter-stream view: words in stream order,
/// single or block-wise. `Copy`: a handful of words — cheap to build per
/// unit of work and pass by value.
#[derive(Clone, Copy)]
pub struct DrawStream {
    /// Pre-mixed head; `head[pos..]` is still unserved.
    head: [u64; HEAD],
    pos: u8,
    /// Tail words, positioned at the next unserved tail word.
    rng: CounterRng,
    /// Tail advance per word: 1 for dense views, the interleave factor
    /// for strided views.
    stride: u64,
}

impl DrawStream {
    /// A dense view of `rng`'s stream; words are mixed on demand.
    #[inline]
    pub fn new(rng: CounterRng) -> Self {
        Self {
            head: [0; HEAD],
            pos: HEAD as u8,
            rng,
            stride: 1,
        }
    }

    /// An interleaved view: serves the pre-mixed `head` first, then every
    /// `stride`-th word of `tail` (whose position must already account for
    /// the head — the caller mixed those words elsewhere).
    #[inline]
    pub fn strided(head: [u64; HEAD], tail: CounterRng, stride: u64) -> Self {
        debug_assert!(stride > 0, "stride must be ≥ 1");
        Self {
            head,
            pos: 0,
            rng: tail,
            stride,
        }
    }

    /// Marks the first `k` head words as already served — for callers that
    /// decided work straight from the head elsewhere (the batcher's fused
    /// slot fast path) and now continue drawing mid-view.
    ///
    /// # Panics
    /// In debug builds, if words past the head were already served or `k`
    /// overruns the head.
    #[inline]
    pub fn skip_served(&mut self, k: usize) {
        debug_assert!(
            self.pos as usize + k <= HEAD,
            "skip_served({k}) overruns the head at pos {}",
            self.pos
        );
        self.pos += k as u8;
    }

    /// The next word of the view.
    #[inline]
    pub fn next_word(&mut self) -> u64 {
        let pos = self.pos as usize;
        if pos < HEAD {
            self.pos += 1;
            return self.head[pos];
        }
        let v = self.rng.next_u64();
        self.rng = self.rng.skip(self.stride - 1);
        v
    }

    /// One uniform index in `0..n` ([`lemire_map`] over [`Self::next_word`]).
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "index needs n ≥ 1");
        lemire_map(self.next_word(), n as u64) as usize
    }

    /// The next `out.len()` words of the view, in order: any unserved head
    /// first, then the tail — as one block draw for dense views (exactly
    /// that many words; bulk draws never over-advance the counter), word
    /// by word for strided ones.
    pub fn fill_words(&mut self, out: &mut [u64]) {
        let pos = self.pos as usize;
        let buffered = (HEAD - pos).min(out.len());
        if buffered > 0 {
            out[..buffered].copy_from_slice(&self.head[pos..pos + buffered]);
            self.pos += buffered as u8;
        }
        let rest = &mut out[buffered..];
        if rest.is_empty() {
            return;
        }
        if self.stride == 1 {
            self.rng.fill_block(rest);
        } else {
            for o in rest.iter_mut() {
                *o = self.rng.next_u64();
                self.rng = self.rng.skip(self.stride - 1);
            }
        }
    }

    /// The next `out.len()` words, each mapped to a uniform index in
    /// `0..n` — the block form of [`Self::index`], one word per index.
    pub fn fill_indices(&mut self, n: usize, out: &mut [u32]) {
        debug_assert!(n > 0, "fill_indices needs n ≥ 1");
        let mut words = [0u64; DRAW_BLOCK];
        for chunk in out.chunks_mut(DRAW_BLOCK) {
            let words = &mut words[..chunk.len()];
            self.fill_words(words);
            for (o, &w) in chunk.iter_mut().zip(words.iter()) {
                *o = lemire_map(w, n as u64) as u32;
            }
        }
    }
}

/// The samplers' generic scalar paths (`R: RngCore`) accept a
/// `DrawStream` unchanged — same words, same order.
impl rand::RngCore for DrawStream {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_arrive_in_stream_order() {
        let mut seq = CounterRng::keyed(7, 3);
        let want: Vec<u64> = (0..20).map(|_| seq.next_u64()).collect();
        let mut s = DrawStream::new(CounterRng::keyed(7, 3));
        let got: Vec<u64> = (0..20).map(|_| s.next_word()).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn bulk_fills_continue_the_same_stream() {
        // Mixed single/bulk consumption still yields the stream's words in
        // order: 3 singles, a 7-word bulk, then more singles.
        let mut s = DrawStream::new(CounterRng::keyed(42, 1));
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(s.next_word());
        }
        let mut bulk = [0u64; 7];
        s.fill_words(&mut bulk);
        got.extend_from_slice(&bulk);
        got.push(s.next_word());

        let mut ref_stream = DrawStream::new(CounterRng::keyed(42, 1));
        let want: Vec<u64> = (0..11).map(|_| ref_stream.next_word()).collect();
        assert_eq!(want, got);
    }

    #[test]
    fn strided_view_serves_its_residue_class() {
        // A strided view over stride 5, slot 2: head = words 2, 7, 12, 17
        // of the base stream, tail = words 22, 27, 32, … — under single
        // and bulk consumption alike.
        let (stride, slot) = (5u64, 2u64);
        let base = CounterRng::keyed(3, 4);
        let mut seq = base;
        let words: Vec<u64> = (0..60).map(|_| seq.next_u64()).collect();
        let want: Vec<u64> = (0..12)
            .map(|j| words[(j * stride + slot) as usize])
            .collect();

        let mut head = [0u64; HEAD];
        for (j, h) in head.iter_mut().enumerate() {
            *h = words[j * stride as usize + slot as usize];
        }
        let tail = base.skip(HEAD as u64 * stride + slot);
        let mut view = DrawStream::strided(head, tail, stride);
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(view.next_word());
        }
        let mut bulk = [0u64; 6];
        view.fill_words(&mut bulk);
        got.extend_from_slice(&bulk);
        for _ in 0..3 {
            got.push(view.next_word());
        }
        assert_eq!(want, got);
    }

    #[test]
    fn skip_served_resumes_mid_head() {
        // A caller that decided three head words elsewhere resumes at the
        // fourth, then flows into the tail — the batcher's collision
        // continuation.
        let (stride, slot) = (3u64, 1u64);
        let base = CounterRng::keyed(8, 1);
        let mut seq = base;
        let words: Vec<u64> = (0..30).map(|_| seq.next_u64()).collect();
        let head = [words[1], words[4], words[7], words[10]];
        let tail = base.skip(HEAD as u64 * stride + slot);
        let mut view = DrawStream::strided(head, tail, stride);
        view.skip_served(3);
        assert_eq!(view.next_word(), words[10]);
        assert_eq!(view.next_word(), words[13]);
        assert_eq!(view.next_word(), words[16]);
    }

    #[test]
    fn indices_are_lemire_mapped_words() {
        let mut s = DrawStream::new(CounterRng::keyed(9, 9));
        let mut w = DrawStream::new(CounterRng::keyed(9, 9));
        for _ in 0..50 {
            let want = lemire_map(w.next_word(), 1000) as usize;
            assert_eq!(s.index(1000), want);
        }
        // Block form: same mapping, one word per index.
        let mut blk = [0u32; 13];
        s.fill_indices(997, &mut blk);
        for &v in &blk {
            let want = lemire_map(w.next_word(), 997) as u32;
            assert_eq!(v, want);
        }
    }

    #[test]
    fn index_covers_the_range() {
        let mut s = DrawStream::new(CounterRng::keyed(1, 0));
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[s.index(5)] = true;
        }
        assert!(seen.iter().all(|&b| b), "{seen:?}");
    }
}
