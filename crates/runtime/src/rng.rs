//! Counter-based random numbers (splitmix64-style), dependency-free.
//!
//! The batched evaluator pre-draws one negative candidate set per held-out
//! pair. With a conventional sequential generator the draws form one shared
//! stream, so the pre-draw cannot parallelize without changing the sets.
//! [`CounterRng`] removes the coupling: the stream is a **pure function of
//! `(seed, stream, draw index)`** — output `i` of `CounterRng::keyed(seed,
//! stream)` is
//!
//! ```text
//! mix64( key(seed, stream) + (i + 1) · GOLDEN )
//! ```
//!
//! where `mix64` is the splitmix64 finalizer and `GOLDEN` is the 64-bit
//! golden-ratio increment. Give every unit of work (the evaluator: every
//! held-out pair) its own `stream` and the draws of different units are
//! independent of each other and of any scheduling: sharding the units
//! across a [`crate::WorkerPool`] at any worker count reproduces exactly
//! the candidate sets a serial walk draws. The golden-value tests below pin
//! the stream so it can never drift silently.
//!
//! # Block draws and the pluggable fill kernel
//!
//! Because output `i` depends only on `(state, i)`, a whole block of draws
//! is one embarrassingly parallel map — [`CounterRng::fill_block`] computes
//! it without a loop-carried dependency and is **defined** to produce
//! exactly the values the same number of [`CounterRng::next_u64`] calls
//! would. That definition is what makes the block form swappable for the
//! sequential form anywhere (the training batcher does so freely), and it
//! is also a contract an accelerated implementation must meet:
//! [`install_fill_block_kernel`] lets a downstream crate (in this workspace
//! `mars-tensor::simd`, which carries the runtime-dispatched 8-wide
//! vectorized tiers) route `fill_block` through a faster kernel **without**
//! this crate gaining a dependency. The hook is a plain `fn` pointer — an
//! installed kernel must be bit-identical to the scalar fallback (the
//! installer's test suite proves it against the golden vector below), so
//! installation affects throughput only, never values: a process that never
//! installs anything draws the exact same streams as one that does.
//!
//! # Range mapping
//!
//! Every bounded draw in the workspace reduces a full 64-bit word to
//! `0..n` through one definition: [`lemire_map`], Lemire's widening
//! multiply `⌊word · n / 2⁶⁴⌋`. Unlike the `%` reduction it costs one
//! multiply instead of a hardware divide, and unlike rejection sampling it
//! consumes exactly one word per draw, so a unit of work's draw count is a
//! pure function of its accept/reject decisions.

/// 64-bit golden-ratio increment (the splitmix64 gamma): the counter step
/// between consecutive draws of a stream. Public so kernel implementations
/// ([`install_fill_block_kernel`]) can reproduce the stream exactly.
pub const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

pub mod seeds {
    //! The workspace's seed-derivation convention, in one place.
    //!
    //! Every model in the workspace draws randomness for two distinct
    //! purposes: **initialization** (embedding tables, tower weights) and
    //! **training-time sampling** (users, positives, negatives). The two must
    //! not share a stream — otherwise adding an init parameter would shift
    //! every triplet drawn afterwards — so each purpose derives its own seed
    //! from the one user-facing `seed` knob. Before PR 4 the derivation
    //! (`seed` for init, `seed.wrapping_add(1)` for sampling) was
    //! copy-pasted across every baseline and the trainer; these helpers are
    //! now the single definition, so the convention cannot drift between
    //! models.

    /// Seed for parameter initialization: the config seed itself.
    #[inline]
    pub fn model_init(seed: u64) -> u64 {
        seed
    }

    /// Seed for training-time sampling (the batcher's counter-keyed streams,
    /// or any remaining sequential sampler): decorrelated from
    /// [`model_init`] by the fixed `+1` offset the baselines always used.
    #[inline]
    pub fn sampling(seed: u64) -> u64 {
        seed.wrapping_add(1)
    }
}

/// The splitmix64 output finalizer (Stafford's mix; also murmur3-strength):
/// a bijection on `u64` that diffuses every input bit to every output bit.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    z
}

/// Lemire's multiplicative range reduction: maps a uniform 64-bit `word`
/// to `0..n` as `⌊word · n / 2⁶⁴⌋` — the high half of the widening
/// multiply. Bias is at most `n / 2⁶⁴` (immaterial for catalogue-sized
/// `n`), the cost is one multiply (no hardware divide, unlike `%`), and
/// every call consumes exactly one word. This is the workspace's **single
/// definition** of "uniform index below `n`": `CounterRng::gen_below`, the
/// samplers, and the alias table all bottom out here.
///
/// `n = 0` returns 0 (callers assert their own non-empty ranges).
#[inline]
pub const fn lemire_map(word: u64, n: u64) -> u64 {
    (((word as u128) * (n as u128)) >> 64) as u64
}

/// An accelerated block-fill implementation: must write
/// `out[i] = mix64(base + (i + 1) · GOLDEN)` for every `i` — exactly the
/// scalar fallback inside [`CounterRng::fill_block`], bit for bit.
pub type FillBlockKernel = fn(base: u64, out: &mut [u64]);

/// The installed fill kernel, or null for the scalar fallback. A plain
/// atomic pointer keeps this crate dependency-free while letting the
/// vectorized tiers in `mars-tensor::simd` take over the hot loop.
static FILL_KERNEL: std::sync::atomic::AtomicPtr<()> =
    std::sync::atomic::AtomicPtr::new(std::ptr::null_mut());

/// Routes every [`CounterRng::fill_block`] in the process through `kernel`.
///
/// The kernel **must** be bit-identical to the scalar fallback (see
/// [`FillBlockKernel`]); installing one is therefore a pure throughput
/// decision — values, and hence every recorded stream, are unaffected.
/// Idempotent and thread-safe; last install wins.
pub fn install_fill_block_kernel(kernel: FillBlockKernel) {
    FILL_KERNEL.store(kernel as *mut (), std::sync::atomic::Ordering::Release);
}

/// Fills shorter than this run the inline scalar loop without consulting
/// the kernel hook: below ~half a vector block the atomic load, indirect
/// call, and the kernel's lane setup cost more than the mixes themselves.
/// Routing, like the kernel, is invisible in the values.
const SHORT_FILL: usize = 4;

/// Fills `out[i] = mix64(base + (i + 1) · GOLDEN)` through the installed
/// kernel, or the scalar loop when none is installed (or the fill is too
/// short to amortize the indirect call).
#[inline]
fn fill_words(base: u64, out: &mut [u64]) {
    if out.len() > SHORT_FILL {
        let k = FILL_KERNEL.load(std::sync::atomic::Ordering::Acquire);
        if !k.is_null() {
            // SAFETY: the pointer was stored from a `FillBlockKernel` in
            // `install_fill_block_kernel`; fn pointers round-trip through
            // pointer casts losslessly.
            let kernel: FillBlockKernel = unsafe { std::mem::transmute(k) };
            kernel(base, out);
            return;
        }
    }
    for (i, o) in out.iter_mut().enumerate() {
        *o = mix64(base.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN)));
    }
}

/// A counter-based generator: splitmix64 over a state keyed by
/// `(seed, stream)`. `Copy`-cheap (one `u64`), construction is two mixes —
/// cheap enough to build one per unit of work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterRng {
    state: u64,
}

impl CounterRng {
    /// The generator for `stream` under `seed`. Distinct `(seed, stream)`
    /// pairs yield decorrelated sequences; the same pair always yields the
    /// same sequence, on any thread, in any order.
    #[inline]
    pub fn keyed(seed: u64, stream: u64) -> Self {
        Self {
            state: mix64(mix64(seed) ^ stream.wrapping_mul(GOLDEN)),
        }
    }

    /// The per-seed half of [`Self::keyed`]'s key derivation — hoist it
    /// once across many streams of the same seed and finish each with
    /// [`Self::keyed_from_base`], saving one `mix64` per stream. The
    /// batcher keys one stream per (batch, slot), so a fill touches
    /// thousands of streams under a single seed.
    #[inline]
    pub fn stream_base(seed: u64) -> u64 {
        mix64(seed)
    }

    /// The generator [`Self::keyed`] builds, given the hoisted
    /// `base = stream_base(seed)` — bit-identical streams, one mix cheaper.
    #[inline]
    pub fn keyed_from_base(base: u64, stream: u64) -> Self {
        Self {
            state: mix64(base ^ stream.wrapping_mul(GOLDEN)),
        }
    }

    /// Next 64 uniformly distributed bits (draw counter advances by one).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix64(self.state)
    }

    /// The same stream advanced by `n` draws, in O(1) — the counter is
    /// position-indexed, so jumping ahead is one multiply-add, no mixing.
    /// `skip(n)` then drawing word 0 yields exactly what the `n`-th
    /// `next_u64` of the unskipped stream would.
    #[inline]
    #[must_use]
    pub fn skip(self, n: u64) -> Self {
        Self {
            state: self.state.wrapping_add(n.wrapping_mul(GOLDEN)),
        }
    }

    /// The next `out.len()` draws of the stream — exactly the values that
    /// many [`Self::next_u64`] calls would return, and the counter advances
    /// the same way. Output `i` is `mix64(state + (i+1)·GOLDEN)`: no
    /// loop-carried dependency, so the mixes pipeline (and vectorize)
    /// instead of serializing on the state update — the batcher refills
    /// its per-slot draw buffer through this. Runs on the installed
    /// vectorized kernel when one is present (see
    /// [`install_fill_block_kernel`]); the values are identical either way.
    #[inline]
    pub fn fill_block(&mut self, out: &mut [u64]) {
        let base = self.state;
        fill_words(base, out);
        self.state = base.wrapping_add((out.len() as u64).wrapping_mul(GOLDEN));
    }

    /// Next 32 uniformly distributed bits (the high half of
    /// [`Self::next_u64`]).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `0..n` by [`lemire_map`] — the shared widening
    /// multiply reduction. Bias is at most `n / 2⁶⁴` — immaterial for
    /// catalogue-sized `n` — and, unlike rejection sampling, every call
    /// consumes **exactly one** counter tick, so the draw count of a unit
    /// of work is a pure function of its accept/reject decisions.
    #[inline]
    pub fn gen_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "gen_below needs n ≥ 1");
        lemire_map(self.next_u64(), n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pinned stream: these literals are the contract. If any of them
    /// changes, every pre-drawn candidate set in every recorded evaluation
    /// changes with it — bump them only with a deliberate protocol break.
    ///
    /// `keyed(0, 0)` has state 0 (`mix64(0) = 0`), so its stream is plain
    /// splitmix64 seeded with 0 — the first value is the canonical
    /// splitmix64 test vector `0xe220a8397b1dcdaf`, an external
    /// cross-check on the implementation.
    #[test]
    fn golden_values_pin_the_stream() {
        let mut r = CounterRng::keyed(0, 0);
        assert_eq!(
            [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
            [
                0xe220_a839_7b1d_cdaf,
                0x6e78_9e6a_a1b9_65f4,
                0x06c4_5d18_8009_454f,
                0xf88b_b8a8_724c_81ec,
            ]
        );
        let mut r = CounterRng::keyed(2021, 0);
        assert_eq!(
            [r.next_u64(), r.next_u64()],
            [0x7e30_4ce9_f3ce_dd5f, 0xdb0e_9264_d49d_63ca]
        );
        let mut r = CounterRng::keyed(2021, 1);
        assert_eq!(
            [r.next_u64(), r.next_u64()],
            [0xa7c5_5b48_4d86_da01, 0x50e0_80bf_0ca6_3383]
        );
    }

    #[test]
    fn gen_below_golden_values_and_range() {
        let mut r = CounterRng::keyed(7, 3);
        let draws: Vec<u64> = (0..6).map(|_| r.gen_below(1_000)).collect();
        assert_eq!(draws, [376, 78, 62, 661, 761, 389]);
        let mut r = CounterRng::keyed(123, 456);
        for _ in 0..10_000 {
            assert!(r.gen_below(17) < 17);
        }
        let mut r = CounterRng::keyed(9, 9);
        for _ in 0..100 {
            assert_eq!(r.gen_below(1), 0);
        }
    }

    /// `fill_block` must reproduce the sequential stream exactly — the
    /// batcher swaps between the two forms freely, so any divergence would
    /// silently change every training run.
    #[test]
    fn fill_block_matches_sequential_draws() {
        for (seed, stream, len) in [(0, 0, 1usize), (7, 3, 8), (42, 9, 13), (2021, 1, 64)] {
            let mut seq = CounterRng::keyed(seed, stream);
            let want: Vec<u64> = (0..len).map(|_| seq.next_u64()).collect();
            let mut blk = CounterRng::keyed(seed, stream);
            let mut got = vec![0u64; len];
            blk.fill_block(&mut got);
            assert_eq!(want, got, "block at ({seed},{stream},{len})");
            // And the counter landed in the same place: next draws agree.
            assert_eq!(seq.next_u64(), blk.next_u64());
            // Split refills cross block boundaries without drift.
            let mut split = CounterRng::keyed(seed, stream);
            let (a, b) = got.split_at(len / 2);
            let mut got_a = vec![0u64; a.len()];
            let mut got_b = vec![0u64; b.len()];
            split.fill_block(&mut got_a);
            split.fill_block(&mut got_b);
            assert_eq!(a, got_a);
            assert_eq!(b, got_b);
        }
    }

    /// The hoisted two-step key derivation is the same function as `keyed`.
    #[test]
    fn keyed_from_base_matches_keyed() {
        for seed in [0u64, 1, 42, 2021, u64::MAX] {
            let base = CounterRng::stream_base(seed);
            for stream in [0u64, 1, 7, 1_000_003, u64::MAX] {
                assert_eq!(
                    CounterRng::keyed(seed, stream),
                    CounterRng::keyed_from_base(base, stream),
                    "({seed},{stream})"
                );
            }
        }
    }

    #[test]
    fn lemire_map_bounds_and_golden_values() {
        assert_eq!(lemire_map(0, 1000), 0);
        assert_eq!(lemire_map(u64::MAX, 1000), 999);
        // Midpoint word lands at the midpoint of the range.
        assert_eq!(lemire_map(1 << 63, 1000), 500);
        for n in [1u64, 2, 17, 1000, u64::MAX] {
            let mut r = CounterRng::keyed(5, 5);
            for _ in 0..1000 {
                assert!(lemire_map(r.next_u64(), n) < n);
            }
        }
    }

    /// Installing a (correct) kernel must not change a single value:
    /// the hook is a throughput knob, never a semantics knob. The test
    /// kernel is a hand-written duplicate of the scalar fallback, which is
    /// exactly the contract a real vectorized kernel must meet — and since
    /// the hook is process-global, installing it here also exercises every
    /// other test in this binary against an installed kernel.
    #[test]
    fn installed_kernel_preserves_the_stream() {
        fn duplicate(base: u64, out: &mut [u64]) {
            for (i, o) in out.iter_mut().enumerate() {
                *o = mix64(base.wrapping_add((i as u64 + 1).wrapping_mul(GOLDEN)));
            }
        }
        let mut want = vec![0u64; 67];
        CounterRng::keyed(2021, 7).fill_block(&mut want);
        install_fill_block_kernel(duplicate);
        let mut got = vec![0u64; 67];
        CounterRng::keyed(2021, 7).fill_block(&mut got);
        assert_eq!(want, got);
        // And the golden vector still holds through the hook.
        let mut first = [0u64; 1];
        CounterRng::keyed(0, 0).fill_block(&mut first);
        assert_eq!(first[0], 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn streams_are_order_independent() {
        // The whole point: drawing stream 5 first (or on another thread)
        // cannot change stream 2.
        let draw = |stream: u64| -> Vec<u64> {
            let mut r = CounterRng::keyed(42, stream);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let two_then_five = (draw(2), draw(5));
        let five_then_two = (draw(5), draw(2));
        assert_eq!(two_then_five.0, five_then_two.1);
        assert_eq!(two_then_five.1, five_then_two.0);
    }

    #[test]
    fn distinct_keys_give_distinct_streams() {
        let first = |seed, stream| CounterRng::keyed(seed, stream).next_u64();
        let mut seen = std::collections::HashSet::new();
        for seed in 0..30u64 {
            for stream in 0..30u64 {
                assert!(
                    seen.insert(first(seed, stream)),
                    "collision at ({seed},{stream})"
                );
            }
        }
    }

    #[test]
    fn output_bits_look_balanced() {
        // Cheap sanity (not a statistical suite): over 4096 draws each of
        // the 64 output bits should be set roughly half the time.
        let mut r = CounterRng::keyed(1, 0);
        let mut ones = [0u32; 64];
        let n = 4096;
        for _ in 0..n {
            let v = r.next_u64();
            for (b, count) in ones.iter_mut().enumerate() {
                *count += ((v >> b) & 1) as u32;
            }
        }
        for (b, &count) in ones.iter().enumerate() {
            let frac = count as f64 / n as f64;
            assert!((0.44..=0.56).contains(&frac), "bit {b} biased: {frac}");
        }
    }
}
