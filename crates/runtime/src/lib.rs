//! # mars-runtime
//!
//! Persistent worker-pool execution runtime shared by every data-parallel
//! engine in the workspace: the batched trainer (`mars-core`), the shared
//! baseline triplet engine (`mars-baselines`) and the batched ranking
//! evaluator (`mars-metrics`). Also home of the counter-based RNG
//! ([`rng::CounterRng`]) that lets per-unit random draws fan out across the
//! pool without changing their values, and of the one-shot rendezvous slot
//! ([`oneshot::OneShotSlot`]) the async service layer parks requests on.
//!
//! The three modules are the workspace's entire `unsafe` surface on the
//! runtime side (`mars-audit`'s `unsafe-safety` rule confines `unsafe` to
//! them plus `tensor::simd` and `serve::service`):
//!
//! - [`pool`] — [`WorkerPool`]: allocation-free job-slot dispatch with the
//!   shard-order scatter/merge determinism contract (module docs there).
//! - [`oneshot`] — a caller-stack response slot with park/unpark wake-up.
//! - [`rng`] — [`CounterRng`], counter-keyed splitmix64 with Lemire range
//!   mapping and the pluggable 8-wide fill-block kernel hook.

pub mod oneshot;
pub mod pool;
pub mod rng;

pub use oneshot::OneShotSlot;
pub use pool::{chunk_ranges, resolve_threads, shard_items, WorkerPool};
pub use rng::CounterRng;
