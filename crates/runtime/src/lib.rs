//! # mars-runtime
//!
//! Persistent worker-pool execution runtime shared by every data-parallel
//! engine in the workspace: the batched trainer (`mars-core`), the shared
//! baseline triplet engine (`mars-baselines`) and the batched ranking
//! evaluator (`mars-metrics`).
//!
//! PR 1's engines re-spawned a `std::thread::scope` for every mini-batch, so
//! the spawn/join cost recurred once per batch (and the evaluator had no
//! parallelism at all). [`WorkerPool`] replaces that: worker threads are
//! created **once** — typically for the whole `fit()` or the whole
//! evaluation — and every [`WorkerPool::scatter`] call reuses them.
//!
//! ## Determinism contract
//!
//! Parallel callers stay reproducible because of two ordering guarantees
//! that this crate provides and the engines rely on:
//!
//! 1. **Shard-order scatter/merge.** [`WorkerPool::scatter`] runs one
//!    closure per shard and returns the results **in shard order**,
//!    regardless of which worker finished first. Callers that fold shard
//!    accumulators (`BatchAccum::merge_from`, `GradAccumulator::merge_from`,
//!    the evaluator's per-pair records) therefore always merge in the same
//!    fixed order, so float summation order — and every downstream apply —
//!    is a pure function of the sharding, never of thread scheduling.
//! 2. **Scheduling-independent sharding.** [`shard_items`] and
//!    [`chunk_ranges`] partition work by *value* (`shard_fn(item) % shards`)
//!    or by *position* (contiguous chunks), both independent of the worker
//!    count actually available. Together with (1), a run is bit-identical
//!    for a fixed seed and shard count on any machine.
//!
//! Downstream, the optimizer applies each shard-merged batch in
//! **first-touch order** (see `mars-optim::GradAccumulator`); this crate's
//! shard-order guarantee is what makes that first-touch order well defined
//! under parallelism. The batched evaluator instead records per-pair results
//! into positional slots and reduces them serially in pair order, which
//! makes parallel evaluation bit-identical to the sequential protocol.
//!
//! ## Degenerate single-thread mode
//!
//! A pool built with one thread spawns **no** background workers: `scatter`
//! runs every shard inline on the caller, in shard order. One-core CI and
//! `threads = 1` configs therefore execute exactly the code path of a
//! multi-core run minus the thread hops — same sharding, same merge order,
//! same results.
//!
//! Shutdown is graceful: dropping the pool closes the job channels and
//! joins every worker.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::thread;

/// Resolves a configured worker-thread count: `0` means "all available
/// cores", anything else is taken literally (min 1). Shared by every
/// sharded engine in the workspace so the auto-detection rule cannot
/// drift between them.
pub fn resolve_threads(configured: usize) -> usize {
    match configured {
        0 => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .max(1)
}

/// A type-erased job shipped to a worker thread. The `'static` bound is a
/// fiction maintained by [`WorkerPool::scatter`], which never returns (or
/// unwinds) before every job it submitted has completed.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Worker {
    /// Job queue; `None` only during shutdown.
    jobs: Option<mpsc::Sender<Job>>,
    handle: Option<thread::JoinHandle<()>>,
}

/// A fixed set of persistent worker threads plus the caller's own thread.
///
/// The pool holds `threads − 1` background workers; the calling thread
/// always executes shard 0 (and any shards beyond the worker count), so a
/// pool of `n` threads gives `n`-way parallelism without idling the caller.
pub struct WorkerPool {
    workers: Vec<Worker>,
}

/// Raw-pointer wrapper that may cross a thread boundary. Safety is argued at
/// the use sites in [`WorkerPool::scatter`]: every worker receives pointers
/// to *disjoint* elements, and the owning frame outlives all workers.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}

// Manual impls: the derives would add an unwanted `T: Copy` bound.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Element pointer `base + i`. Methods (rather than field access) keep
    /// closures capturing the whole `Send` wrapper under the edition-2021
    /// disjoint-capture rules.
    ///
    /// # Safety
    /// `i` must be in bounds of the allocation this pointer heads.
    unsafe fn at(self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

impl WorkerPool {
    /// A pool of exactly `threads` workers (min 1, including the caller).
    /// `threads <= 1` spawns nothing — the degenerate serial mode.
    pub fn new(threads: usize) -> Self {
        let workers = (1..threads.max(1))
            .map(|i| {
                let (tx, rx) = mpsc::channel::<Job>();
                let handle = thread::Builder::new()
                    .name(format!("mars-runtime-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("failed to spawn mars-runtime worker");
                Worker {
                    jobs: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers }
    }

    /// A pool sized by the shared `threads` convention ([`resolve_threads`]:
    /// `0` = all cores).
    pub fn with_threads(configured: usize) -> Self {
        Self::new(resolve_threads(configured))
    }

    /// Total parallelism: background workers + the calling thread.
    pub fn workers(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(i, &mut shards[i])` for every shard and returns the results
    /// **in shard order** — the scatter half of the engines'
    /// scatter → merge protocol (the caller merges, in that same order).
    ///
    /// Shard 0 (and any shards beyond the worker count) run on the calling
    /// thread; shards `1..=workers` run on the background workers. The call
    /// blocks until every shard has finished. Shard counts may differ from
    /// the pool size: extra shards are executed serially by the caller, so
    /// the result — including float summation order inside any shard-order
    /// merge — is independent of how many workers the pool actually has.
    ///
    /// # Panics
    /// If a shard closure panics, the panic is re-raised on the caller
    /// *after* every other shard has completed (no job ever outlives the
    /// call frame).
    pub fn scatter<T, R, F>(&self, shards: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = shards.len();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        if n == 0 {
            return Vec::new();
        }

        // Background shards 1..=bg; everything else runs on the caller.
        let bg = self.workers.len().min(n - 1);
        if bg == 0 {
            for (i, (shard, slot)) in shards.iter_mut().zip(results.iter_mut()).enumerate() {
                *slot = Some(f(i, shard));
            }
            return results.into_iter().map(Option::unwrap).collect();
        }

        let (done_tx, done_rx) = mpsc::channel::<thread::Result<()>>();
        let shards_ptr = SendPtr(shards.as_mut_ptr());
        let results_ptr = SendPtr(results.as_mut_ptr());
        let f_ref = &f;
        for i in 1..=bg {
            let tx = done_tx.clone();
            // SAFETY (pointer use): worker `i` touches only `shards[i]` /
            // `results[i]`; the caller touches only shard 0 and `bg+1..n`.
            // All index sets are disjoint, and the Vec headers are not
            // mutated while workers run.
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
                    let shard = &mut *shards_ptr.at(i);
                    *results_ptr.at(i) = Some(f_ref(i, shard));
                }));
                let _ = tx.send(outcome);
            });
            // SAFETY (lifetime erasure): this frame blocks below until all
            // `bg` completions arrived — even when the caller's own shard
            // panics — so every borrow inside the job outlives its use.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
            self.workers[i - 1]
                .jobs
                .as_ref()
                .expect("pool is shutting down")
                .send(job)
                .expect("worker thread terminated");
        }

        let caller_outcome = catch_unwind(AssertUnwindSafe(|| unsafe {
            *results_ptr.at(0) = Some(f_ref(0, &mut *shards_ptr.at(0)));
            for i in bg + 1..n {
                let shard = &mut *shards_ptr.at(i);
                *results_ptr.at(i) = Some(f_ref(i, shard));
            }
        }));

        // Unconditional barrier: every submitted job must report back before
        // this frame can be left, whether by return or by unwind.
        let mut panic_payload = caller_outcome.err();
        for _ in 0..bg {
            match done_rx.recv().expect("worker thread terminated") {
                Ok(()) => {}
                Err(payload) => {
                    panic_payload.get_or_insert(payload);
                }
            }
        }
        if let Some(payload) = panic_payload {
            resume_unwind(payload);
        }
        results.into_iter().map(Option::unwrap).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close every job channel first so all workers see disconnection…
        for w in &mut self.workers {
            w.jobs = None;
        }
        // …then join them.
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Distributes `items` into the buffers by `shard_fn(item) % buffer count`,
/// clearing the buffers first (capacity is kept across batches). Buffers
/// are taken as an iterator of `&mut Vec` so callers can shard straight
/// into per-worker state structs.
///
/// The assignment depends only on the item and the shard count — never on
/// worker availability — which is half of the determinism contract (see the
/// module docs).
pub fn shard_items<'a, I: Copy + 'a>(
    items: &[I],
    bufs: impl IntoIterator<Item = &'a mut Vec<I>>,
    mut shard_fn: impl FnMut(&I) -> usize,
) {
    let mut bufs: Vec<&mut Vec<I>> = bufs.into_iter().collect();
    let n = bufs.len();
    assert!(n > 0, "shard_items needs at least one buffer");
    for buf in bufs.iter_mut() {
        buf.clear();
    }
    for item in items {
        bufs[shard_fn(item) % n].push(*item);
    }
}

/// Splits `0..len` into at most `shards` contiguous, near-equal, in-order
/// ranges (the first `len % shards` ranges get one extra element). Used by
/// positional engines — the batched evaluator — where shard `i`'s slots in
/// the output are exactly its input positions, so a serial in-order
/// reduction is bit-identical to a fully sequential run.
pub fn chunk_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1).min(len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn single_thread_pool_spawns_nothing_and_runs_in_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let mut shards = vec![0u32; 5];
        let order = std::sync::Mutex::new(Vec::new());
        let out = pool.scatter(&mut shards, |i, s| {
            *s = i as u32 * 10;
            order.lock().unwrap().push(i);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(shards, vec![0, 10, 20, 30, 40]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scatter_returns_results_in_shard_order() {
        let pool = WorkerPool::new(4);
        let mut shards: Vec<usize> = (0..4).collect();
        let out = pool.scatter(&mut shards, |i, s| {
            // Stagger finish times against the shard order.
            std::thread::sleep(std::time::Duration::from_millis(5 * (4 - i as u64)));
            *s += 100;
            i * 2
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
        assert_eq!(shards, vec![100, 101, 102, 103]);
    }

    #[test]
    fn scatter_handles_more_shards_than_workers() {
        let pool = WorkerPool::new(2);
        let mut shards: Vec<u64> = (0..7).collect();
        let out = pool.scatter(&mut shards, |i, s| *s + i as u64);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn scatter_handles_fewer_shards_than_workers_and_empty() {
        let pool = WorkerPool::new(8);
        let mut one = [41u8];
        assert_eq!(pool.scatter(&mut one, |_, s| *s + 1), vec![42]);
        let mut none: [u8; 0] = [];
        assert!(pool.scatter(&mut none, |_, s| *s).is_empty());
    }

    #[test]
    fn pool_is_reusable_across_many_calls() {
        // The whole point vs. thread::scope: no per-call spawn.
        let pool = WorkerPool::new(3);
        let mut shards = vec![0u64; 3];
        for round in 0..100u64 {
            let sums = pool.scatter(&mut shards, |i, s| {
                *s += round + i as u64;
                *s
            });
            assert_eq!(sums.len(), 3);
        }
        assert_eq!(shards[0], (0..100).sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates_after_all_shards_finish() {
        let pool = WorkerPool::new(4);
        let finished = std::sync::atomic::AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut shards = vec![0u32; 4];
            pool.scatter(&mut shards, |i, _| {
                if i == 2 {
                    panic!("shard 2 exploded");
                }
                finished.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(finished.load(std::sync::atomic::Ordering::SeqCst), 3);
        // The pool must survive a panicked scatter.
        let mut shards = vec![1u32; 4];
        let out = pool.scatter(&mut shards, |_, s| *s);
        assert_eq!(out, vec![1, 1, 1, 1]);
    }

    #[test]
    fn shard_items_distributes_and_clears() {
        let mut bufs: Vec<Vec<u32>> = vec![vec![99]; 3];
        shard_items(&[0, 1, 2, 3, 4, 5, 6], bufs.iter_mut(), |&v| v as usize);
        assert_eq!(bufs[0], vec![0, 3, 6]);
        assert_eq!(bufs[1], vec![1, 4]);
        assert_eq!(bufs[2], vec![2, 5]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_ranges(2, 5), vec![0..1, 1..2]);
        assert_eq!(chunk_ranges(0, 4), vec![0..0]);
        let ranges = chunk_ranges(101, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 101);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
