//! Persistent worker pool with allocation-free job-slot dispatch.
//!
//! PR 1's engines re-spawned a `std::thread::scope` for every mini-batch, so
//! the spawn/join cost recurred once per batch (and the evaluator had no
//! parallelism at all). [`WorkerPool`] replaces that: worker threads are
//! created **once** — typically for the whole `fit()` or the whole
//! evaluation — and every [`WorkerPool::scatter`] call reuses them.
//!
//! ## Allocation-free job-slot dispatch
//!
//! Through PR 2, every `scatter` boxed one closure per worker per call and
//! shipped it over an `mpsc` channel (a second channel collected
//! completions), so the per-batch hot path allocated `O(workers)` times.
//! Dispatch now uses a **preallocated job slot** per worker: one
//! `AtomicPtr` that the caller points at a per-call [`TaskHeader`] living
//! on the `scatter` stack frame (publish = one release store + `unpark`),
//! and that the worker consumes, runs, and acknowledges by decrementing the
//! header's remaining-counter and unparking the caller. Worker `i − 1`
//! always executes shard `i`, so the slot carries no payload beyond the
//! header pointer; results are written straight into the caller's output
//! buffer through the header. Steady-state dispatch therefore performs
//! **zero heap allocations** — no boxed jobs, no channel nodes (the only
//! remaining allocation is the caller's result `Vec`, which is free for
//! zero-sized results, i.e. for every engine hot loop). Panic payloads are
//! the one exception: unwinding already allocates, so the panic path may
//! too.
//!
//! `scatter` takes `&self` and serializes concurrent calls internally; it
//! must not be called **re-entrantly** from inside a shard closure of the
//! same pool (the outer call holds the dispatch slots — same as the
//! channel-based dispatch, where a nested call would deadlock on its own
//! worker).
//!
//! ## Determinism contract
//!
//! Parallel callers stay reproducible because of two ordering guarantees
//! that this module provides and the engines rely on:
//!
//! 1. **Shard-order scatter/merge.** [`WorkerPool::scatter`] runs one
//!    closure per shard and returns the results **in shard order**,
//!    regardless of which worker finished first. Callers that fold shard
//!    accumulators (`BatchAccum::merge_from`, `GradAccumulator::merge_from`,
//!    the evaluator's per-pair records) therefore always merge in the same
//!    fixed order, so float summation order — and every downstream apply —
//!    is a pure function of the sharding, never of thread scheduling.
//! 2. **Scheduling-independent sharding.** [`shard_items`] and
//!    [`chunk_ranges`] partition work by *value* (`shard_fn(item) % shards`)
//!    or by *position* (contiguous chunks), both independent of the worker
//!    count actually available. Together with (1), a run is bit-identical
//!    for a fixed seed and shard count on any machine.
//!
//! Downstream, the optimizer applies each shard-merged batch in
//! **first-touch order** (see `mars-optim::GradAccumulator`); this module's
//! shard-order guarantee is what makes that first-touch order well defined
//! under parallelism. The batched evaluator instead records per-pair results
//! into positional slots and reduces them serially in pair order, which
//! makes parallel evaluation bit-identical to the sequential protocol — and
//! its negative pre-draw keys one [`crate::rng::CounterRng`] stream per
//! pair, so the drawn candidate sets are the same at every worker count too.
//!
//! ## Degenerate single-thread mode
//!
//! A pool built with one thread spawns **no** background workers: `scatter`
//! runs every shard inline on the caller, in shard order. One-core CI and
//! `threads = 1` configs therefore execute exactly the code path of a
//! multi-core run minus the thread hops — same sharding, same merge order,
//! same results.
//!
//! Shutdown is graceful: dropping the pool publishes a shutdown sentinel to
//! every slot and joins every worker.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, Thread};

/// Resolves a configured worker-thread count: `0` means "all available
/// cores", anything else is taken literally (min 1). Shared by every
/// sharded engine in the workspace so the auto-detection rule cannot
/// drift between them.
pub fn resolve_threads(configured: usize) -> usize {
    match configured {
        0 => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
    .max(1)
}

/// Worker-side job outcome recorded in its slot; the caller reads these on
/// the panic path to know which result slots were initialized.
const OUTCOME_PENDING: u8 = 0;
const OUTCOME_OK: u8 = 1;
const OUTCOME_PANICKED: u8 = 2;

/// Iterations a worker spins on its slot before parking. Kept small: the
/// pool also runs on single-core machines, where spinning only delays the
/// publisher. Shared with [`crate::oneshot`], which uses the same
/// spin-then-park discipline on the response side.
pub(crate) const SPIN_BEFORE_PARK: usize = 64;

/// The shutdown sentinel published to a slot by `Drop`: the canonical
/// dangling (aligned, never-allocated) address, which cannot alias a real
/// [`TaskHeader`] — those live in the publishing `scatter` frame, and no
/// allocation ever sits in the null page.
fn shutdown_sentinel() -> *mut TaskHeader {
    std::ptr::dangling_mut::<TaskHeader>()
}

/// Per-`scatter` dispatch header, living on the `scatter` stack frame. The
/// `'static`-free raw pointers are sound because `scatter` never returns
/// (or unwinds) before `remaining` reaches zero — no worker can touch the
/// header or the buffers it points into after the frame is gone.
struct TaskHeader {
    /// Monomorphized trampoline: runs shard `i` against the erased context
    /// and writes the result into the caller's output buffer at slot `i`.
    run: unsafe fn(*const (), usize),
    /// Type-erased pointer to the monomorphized context (closure + shard
    /// and result base pointers).
    ctx: *const (),
    /// Background shards still running; the caller's barrier.
    remaining: AtomicUsize,
    /// The caller, unparked by each worker acknowledgement.
    caller: Thread,
    /// First panic payload from a worker shard (allocates only when a shard
    /// actually panics — unwinding allocates anyway).
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

/// A worker's preallocated job slot: the only channel between caller and
/// worker, reused for the lifetime of the pool.
struct JobSlot {
    /// Published task: null = idle, [`shutdown_sentinel`] = terminate,
    /// anything else = a live [`TaskHeader`] for one `scatter` call.
    task: AtomicPtr<TaskHeader>,
    /// Outcome of the worker's shard in the current `scatter` call.
    outcome: AtomicU8,
}

struct Worker {
    slot: Arc<JobSlot>,
    /// Handle for `unpark` (cloned from the `JoinHandle` at spawn).
    thread: Thread,
    handle: Option<thread::JoinHandle<()>>,
}

/// A fixed set of persistent worker threads plus the caller's own thread.
///
/// The pool holds `threads − 1` background workers; the calling thread
/// always executes shard 0 (and any shards beyond the worker count), so a
/// pool of `n` threads gives `n`-way parallelism without idling the caller.
pub struct WorkerPool {
    workers: Vec<Worker>,
    /// Serializes `scatter` calls: each worker has exactly one job slot, so
    /// only one dispatch may be in flight (uncontended in every engine —
    /// scatters are barriers).
    dispatch: Mutex<()>,
}

/// The background worker loop: wait on the slot (spin, then park), run the
/// published shard, acknowledge through the header. `index` is the shard
/// this worker always executes (worker `i − 1` → shard `i`).
fn worker_loop(slot: Arc<JobSlot>, index: usize) {
    loop {
        let mut task = slot.task.load(Ordering::Acquire);
        let mut spins = 0;
        while task.is_null() {
            if spins < SPIN_BEFORE_PARK {
                spins += 1;
                std::hint::spin_loop();
            } else {
                thread::park();
            }
            task = slot.task.load(Ordering::Acquire);
        }
        if task == shutdown_sentinel() {
            return;
        }
        // Consume the slot before running; the caller cannot publish again
        // until this call's barrier has passed, so the store cannot race a
        // new task.
        // ORDERING: relaxed suffices — the null store publishes no data;
        // the next publisher's release store on this same slot is what
        // orders the following task's header against this worker's load.
        slot.task.store(ptr::null_mut(), Ordering::Relaxed);
        // SAFETY: the publishing `scatter` frame blocks until `remaining`
        // hits zero — the `fetch_sub` below is therefore the *last* access
        // to the header (and everything it points into) this worker may
        // make: the moment it lands, the frame is free to die. The caller
        // handle for the final wake-up is cloned out beforehand (a refcount
        // bump, not an allocation) for exactly that reason.
        let header = unsafe { &*task };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: `run` is the monomorphized trampoline for exactly the
            // `Ctx` that `ctx` points to (both set together in `scatter`),
            // and worker `index − 1` is the only executor of shard `index`.
            unsafe { (header.run)(header.ctx, index) }
        }));
        match outcome {
            Ok(()) => slot.outcome.store(OUTCOME_OK, Ordering::Release),
            Err(payload) => {
                slot.outcome.store(OUTCOME_PANICKED, Ordering::Release);
                header
                    .panic
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .get_or_insert(payload);
            }
        }
        let caller = header.caller.clone();
        header.remaining.fetch_sub(1, Ordering::AcqRel);
        caller.unpark();
    }
}

impl WorkerPool {
    /// A pool of exactly `threads` workers (min 1, including the caller).
    /// `threads <= 1` spawns nothing — the degenerate serial mode.
    pub fn new(threads: usize) -> Self {
        let workers = (1..threads.max(1))
            .map(|i| {
                let slot = Arc::new(JobSlot {
                    task: AtomicPtr::new(ptr::null_mut()),
                    outcome: AtomicU8::new(OUTCOME_PENDING),
                });
                let worker_slot = Arc::clone(&slot);
                let handle = thread::Builder::new()
                    .name(format!("mars-runtime-{i}"))
                    .spawn(move || worker_loop(worker_slot, i))
                    .expect("failed to spawn mars-runtime worker");
                let thread = handle.thread().clone();
                Worker {
                    slot,
                    thread,
                    handle: Some(handle),
                }
            })
            .collect();
        Self {
            workers,
            dispatch: Mutex::new(()),
        }
    }

    /// A pool sized by the shared `threads` convention ([`resolve_threads`]:
    /// `0` = all cores).
    pub fn with_threads(configured: usize) -> Self {
        Self::new(resolve_threads(configured))
    }

    /// Total parallelism: background workers + the calling thread.
    pub fn workers(&self) -> usize {
        self.workers.len() + 1
    }

    /// Runs `f(i, &mut shards[i])` for every shard and returns the results
    /// **in shard order** — the scatter half of the engines'
    /// scatter → merge protocol (the caller merges, in that same order).
    ///
    /// Shard 0 (and any shards beyond the worker count) run on the calling
    /// thread; shards `1..=workers` run on the background workers (worker
    /// `i − 1` always executes shard `i`). The call blocks until every
    /// shard has finished. Shard counts may differ from the pool size:
    /// extra shards are executed serially by the caller, so the result —
    /// including float summation order inside any shard-order merge — is
    /// independent of how many workers the pool actually has.
    ///
    /// Dispatch is allocation-free in steady state (see the module docs);
    /// must not be called re-entrantly from inside a shard closure.
    ///
    /// # Panics
    /// If a shard closure panics, the panic is re-raised on the caller
    /// *after* every other shard has completed (no job ever outlives the
    /// call frame).
    pub fn scatter<T, R, F>(&self, shards: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let n = shards.len();
        if n == 0 {
            return Vec::new();
        }
        // Results are written in place through raw slots and the length is
        // set only on the fully-successful path. For `R = ()` — every
        // engine hot loop — this Vec never allocates.
        let mut results: Vec<R> = Vec::with_capacity(n);

        // Background shards 1..=bg; everything else runs on the caller.
        let bg = self.workers.len().min(n - 1);
        if bg == 0 {
            for (i, shard) in shards.iter_mut().enumerate() {
                results.push(f(i, shard));
            }
            return results;
        }

        let _dispatch = self
            .dispatch
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());

        /// Monomorphized context the trampoline recovers from the erased
        /// header pointer.
        struct Ctx<T, R, F> {
            f: *const F,
            shards: *mut T,
            results: *mut R,
        }

        /// Runs shard `i`.
        ///
        /// # Safety
        /// `ctx` must point to the live `Ctx<T, R, F>` of the current
        /// `scatter` frame, and each shard index must be executed exactly
        /// once per call (worker `i − 1` owns shard `i`, the caller owns
        /// the rest), so the `shards[i]` / `results[i]` accesses are
        /// disjoint across threads.
        unsafe fn trampoline<T, R, F: Fn(usize, &mut T) -> R>(ctx: *const (), i: usize) {
            // SAFETY: caller contract above — `ctx` is the live frame's
            // `Ctx`, `i < n`, and no other thread touches index `i`.
            unsafe {
                let ctx = &*(ctx as *const Ctx<T, R, F>);
                let result = (*ctx.f)(i, &mut *ctx.shards.add(i));
                ctx.results.add(i).write(result);
            }
        }

        let ctx = Ctx::<T, R, F> {
            f: &f,
            shards: shards.as_mut_ptr(),
            results: results.as_mut_ptr(),
        };
        let header = TaskHeader {
            run: trampoline::<T, R, F>,
            ctx: &ctx as *const Ctx<T, R, F> as *const (),
            remaining: AtomicUsize::new(bg),
            caller: thread::current(),
            panic: Mutex::new(None),
        };
        let header_ptr = &header as *const TaskHeader as *mut TaskHeader;
        for worker in &self.workers[..bg] {
            // ORDERING: relaxed suffices — the reset is ordered before the
            // worker's next read by the release store of the task pointer
            // below (the worker acquires the task before reading outcome).
            worker
                .slot
                .outcome
                .store(OUTCOME_PENDING, Ordering::Relaxed);
            // Publish: the release store makes the header (and the frozen
            // `shards`/`results` pointers inside it) visible to the worker.
            worker.slot.task.store(header_ptr, Ordering::Release);
            worker.thread.unpark();
        }

        // The caller's own shards: 0 first, then everything past the
        // workers, in order. `caller_done` counts completed entries of that
        // sequence so the panic path knows which result slots it filled.
        let caller_done = Cell::new(0usize);
        let caller_outcome = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: same trampoline contract — the caller owns shard 0
            // and every shard past the background workers, each run once.
            unsafe {
                trampoline::<T, R, F>(header.ctx, 0);
                caller_done.set(1);
                for i in bg + 1..n {
                    trampoline::<T, R, F>(header.ctx, i);
                    caller_done.set(caller_done.get() + 1);
                }
            }
        }));

        // Unconditional barrier: every published job must acknowledge
        // before this frame can be left, whether by return or by unwind.
        while header.remaining.load(Ordering::Acquire) != 0 {
            thread::park();
        }

        let mut panic_payload = caller_outcome.err();
        if panic_payload.is_none() {
            panic_payload = header
                .panic
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        if let Some(payload) = panic_payload {
            // Some result slots were initialized before the panic; drop
            // them (the Vec's length is still 0, so it won't).
            if std::mem::needs_drop::<R>() {
                // SAFETY: a slot is dropped iff its shard completed — the
                // caller's slots are counted by `caller_done` (slot 0, then
                // `bg + 1 ..`), a worker's slot iff its outcome is
                // OUTCOME_OK (acquire-paired with the worker's release
                // store) — and each is dropped exactly once.
                unsafe {
                    let base = results.as_mut_ptr();
                    let done = caller_done.get();
                    if done >= 1 {
                        ptr::drop_in_place(base);
                    }
                    for k in 1..done {
                        ptr::drop_in_place(base.add(bg + k));
                    }
                    for (w, worker) in self.workers[..bg].iter().enumerate() {
                        if worker.slot.outcome.load(Ordering::Acquire) == OUTCOME_OK {
                            ptr::drop_in_place(base.add(w + 1));
                        }
                    }
                }
            }
            resume_unwind(payload);
        }

        // SAFETY: no panic anywhere ⇒ every shard index 0..n ran its
        // trampoline exactly once and wrote its slot.
        unsafe { results.set_len(n) };
        results
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Publish the shutdown sentinel to every slot (all idle — `Drop`
        // has `&mut self`, so no scatter is in flight)…
        for w in &self.workers {
            w.slot.task.store(shutdown_sentinel(), Ordering::Release);
            w.thread.unpark();
        }
        // …then join them.
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// Distributes `items` into the buffers by `shard_fn(item) % buffer count`,
/// clearing the buffers first (capacity is kept across batches). Buffers
/// are taken as an iterator of `&mut Vec` so callers can shard straight
/// into per-worker state structs.
///
/// The assignment depends only on the item and the shard count — never on
/// worker availability — which is half of the determinism contract (see the
/// module docs).
pub fn shard_items<'a, I: Copy + 'a>(
    items: &[I],
    bufs: impl IntoIterator<Item = &'a mut Vec<I>>,
    mut shard_fn: impl FnMut(&I) -> usize,
) {
    let mut bufs: Vec<&mut Vec<I>> = bufs.into_iter().collect();
    let n = bufs.len();
    assert!(n > 0, "shard_items needs at least one buffer");
    for buf in bufs.iter_mut() {
        buf.clear();
    }
    for item in items {
        bufs[shard_fn(item) % n].push(*item);
    }
}

/// Splits `0..len` into at most `shards` contiguous, near-equal, in-order
/// ranges (the first `len % shards` ranges get one extra element). Used by
/// positional engines — the batched evaluator — where shard `i`'s slots in
/// the output are exactly its input positions, so a serial in-order
/// reduction is bit-identical to a fully sequential run.
pub fn chunk_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shards = shards.max(1).min(len.max(1));
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    debug_assert_eq!(start, len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Iteration counts shrink under Miri: the interpreter is ~3 orders of
    /// magnitude slower, and the aliasing/UB checks it exists for fire on
    /// the first crossing, not the hundredth.
    const REUSE_ROUNDS: u64 = if cfg!(miri) { 4 } else { 100 };

    fn stagger(ms: u64) {
        // Miri supports sleeping but executes it in real time; keep the
        // stagger symbolic there.
        if !cfg!(miri) {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        } else {
            std::thread::yield_now();
        }
    }

    #[test]
    fn resolve_threads_zero_means_all_cores() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(5), 5);
    }

    #[test]
    fn single_thread_pool_spawns_nothing_and_runs_in_order() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.workers(), 1);
        let mut shards = vec![0u32; 5];
        let order = std::sync::Mutex::new(Vec::new());
        let out = pool.scatter(&mut shards, |i, s| {
            *s = i as u32 * 10;
            order.lock().unwrap().push(i);
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        assert_eq!(shards, vec![0, 10, 20, 30, 40]);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn scatter_returns_results_in_shard_order() {
        let pool = WorkerPool::new(4);
        let mut shards: Vec<usize> = (0..4).collect();
        let out = pool.scatter(&mut shards, |i, s| {
            // Stagger finish times against the shard order.
            stagger(5 * (4 - i as u64));
            *s += 100;
            i * 2
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
        assert_eq!(shards, vec![100, 101, 102, 103]);
    }

    #[test]
    fn scatter_handles_more_shards_than_workers() {
        let pool = WorkerPool::new(2);
        let mut shards: Vec<u64> = (0..7).collect();
        let out = pool.scatter(&mut shards, |i, s| *s + i as u64);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12]);
    }

    #[test]
    fn scatter_handles_fewer_shards_than_workers_and_empty() {
        let pool = WorkerPool::new(8);
        let mut one = [41u8];
        assert_eq!(pool.scatter(&mut one, |_, s| *s + 1), vec![42]);
        let mut none: [u8; 0] = [];
        assert!(pool.scatter(&mut none, |_, s| *s).is_empty());
    }

    #[test]
    fn pool_is_reusable_across_many_calls() {
        // The whole point vs. thread::scope: no per-call spawn (and, since
        // PR 3, no per-call boxing either).
        let pool = WorkerPool::new(3);
        let mut shards = vec![0u64; 3];
        for round in 0..REUSE_ROUNDS {
            let sums = pool.scatter(&mut shards, |i, s| {
                *s += round + i as u64;
                *s
            });
            assert_eq!(sums.len(), 3);
        }
        assert_eq!(shards[0], (0..REUSE_ROUNDS).sum::<u64>());
    }

    #[test]
    fn worker_panic_propagates_after_all_shards_finish() {
        let pool = WorkerPool::new(4);
        let finished = std::sync::atomic::AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut shards = vec![0u32; 4];
            pool.scatter(&mut shards, |i, _| {
                if i == 2 {
                    panic!("shard 2 exploded");
                }
                finished.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(finished.load(std::sync::atomic::Ordering::SeqCst), 3);
        // The pool must survive a panicked scatter.
        let mut shards = vec![1u32; 4];
        let out = pool.scatter(&mut shards, |_, s| *s);
        assert_eq!(out, vec![1, 1, 1, 1]);
    }

    #[test]
    fn caller_panic_still_waits_for_workers() {
        // Shard 0 runs on the caller and panics; the background shards must
        // all complete before the panic propagates (their borrows die with
        // the frame).
        let pool = WorkerPool::new(4);
        let finished = std::sync::atomic::AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut shards = vec![0u32; 4];
            pool.scatter(&mut shards, |i, _| {
                if i == 0 {
                    panic!("caller shard exploded");
                }
                stagger(10);
                finished.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(std::sync::atomic::Ordering::SeqCst), 3);
    }

    #[test]
    fn droppable_results_survive_panics_without_leaking() {
        // Completed shards return heap-owning results; a panicking shard
        // must not leak them (checked directly under Miri, which flags a
        // leak or double-free in the drop bookkeeping).
        let pool = WorkerPool::new(3);
        for panicking in 0..3usize {
            let result = catch_unwind(AssertUnwindSafe(|| {
                let mut shards = vec![0u32; 3];
                pool.scatter(&mut shards, |i, _| {
                    if i == panicking {
                        panic!("boom");
                    }
                    vec![i; 100]
                });
            }));
            assert!(result.is_err());
        }
        let mut shards = vec![0u32; 3];
        let out = pool.scatter(&mut shards, |i, _| vec![i; 2]);
        assert_eq!(out, vec![vec![0, 0], vec![1, 1], vec![2, 2]]);
    }

    #[test]
    fn shard_items_distributes_and_clears() {
        let mut bufs: Vec<Vec<u32>> = vec![vec![99]; 3];
        shard_items(&[0, 1, 2, 3, 4, 5, 6], bufs.iter_mut(), |&v| v as usize);
        assert_eq!(bufs[0], vec![0, 3, 6]);
        assert_eq!(bufs[1], vec![1, 4]);
        assert_eq!(bufs[2], vec![2, 5]);
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        assert_eq!(chunk_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(chunk_ranges(2, 5), vec![0..1, 1..2]);
        assert_eq!(chunk_ranges(0, 4), vec![0..0]);
        let ranges = chunk_ranges(101, 8);
        assert_eq!(ranges.len(), 8);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 101);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }
}
